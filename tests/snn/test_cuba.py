"""Tests for the current-based (CuBa) LIF variant."""

import numpy as np
import pytest

from repro.autograd import tensor, zeros
from repro.config import NetworkConfig
from repro.errors import ConfigError
from repro.snn import LIFParameters, RecurrentLIFLayer, SpikingNetwork, cuba_lif_step


def params(**kwargs):
    return LIFParameters(**{**dict(beta=0.9, threshold=1.0), **kwargs})


class TestCubaStep:
    def test_synaptic_filtering(self):
        # A single input pulse decays through the synaptic state.
        p = params(threshold=100.0)  # never fire
        membrane, syn = zeros((1, 1)), zeros((1, 1))
        spikes = zeros((1, 1))
        membrane, syn, spikes = cuba_lif_step(
            membrane, syn, spikes, tensor([[1.0]]), p, alpha=0.5
        )
        assert syn.item() == pytest.approx(1.0)
        membrane, syn, spikes = cuba_lif_step(
            membrane, syn, spikes, zeros((1, 1)), p, alpha=0.5
        )
        assert syn.item() == pytest.approx(0.5)  # decayed, no new input

    def test_membrane_integrates_filtered_current(self):
        p = params(threshold=100.0)
        membrane, syn, spikes = cuba_lif_step(
            zeros((1, 1)), zeros((1, 1)), zeros((1, 1)), tensor([[1.0]]), p, alpha=0.5
        )
        assert membrane.item() == pytest.approx(1.0)  # V = 0*beta + I

    def test_spikes_fire_at_threshold(self):
        p = params(threshold=0.5)
        _, _, spikes = cuba_lif_step(
            zeros((1, 1)), zeros((1, 1)), zeros((1, 1)), tensor([[1.0]]), p, alpha=0.5
        )
        assert spikes.item() == 1.0

    def test_alpha_validation(self):
        p = params()
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ConfigError):
                cuba_lif_step(
                    zeros((1, 1)), zeros((1, 1)), zeros((1, 1)),
                    zeros((1, 1)), p, alpha=bad,
                )

    def test_gradient_flows(self):
        p = params()
        current = tensor([[0.8]], requires_grad=True)
        membrane, syn, spikes = cuba_lif_step(
            zeros((1, 1)), zeros((1, 1)), zeros((1, 1)), current, p, alpha=0.5
        )
        (membrane + spikes).sum().backward()
        assert current.grad is not None


class TestCubaLayer:
    def test_layer_accepts_alpha(self):
        layer = RecurrentLIFLayer(
            6, 4, params(), rng=np.random.default_rng(0), synapse_alpha=0.6
        )
        rng = np.random.default_rng(1)
        x = (rng.random((10, 2, 6)) < 0.4).astype(np.float32)
        out = layer.forward(x)
        assert out.shape == (10, 2, 4)
        assert set(np.unique(out.data)).issubset({0.0, 1.0})

    def test_cuba_differs_from_plain(self):
        kwargs = dict(rng=np.random.default_rng(0))
        plain = RecurrentLIFLayer(6, 4, params(), **kwargs)
        cuba = RecurrentLIFLayer(
            6, 4, params(), rng=np.random.default_rng(0), synapse_alpha=0.6
        )
        cuba.w_ff.data = plain.w_ff.data.copy()
        cuba.w_rec.data = plain.w_rec.data.copy()
        rng = np.random.default_rng(1)
        x = (rng.random((15, 2, 6)) < 0.4).astype(np.float32)
        assert not np.array_equal(plain.forward(x).data, cuba.forward(x).data)

    def test_layer_alpha_validation(self):
        with pytest.raises(ConfigError):
            RecurrentLIFLayer(6, 4, params(), synapse_alpha=1.5)

    def test_network_level_config(self):
        cfg = NetworkConfig(layer_sizes=(8, 6, 4, 3), synapse_alpha=0.7)
        net = SpikingNetwork(cfg, seed=0)
        assert all(layer.synapse_alpha == 0.7 for layer in net.hidden_layers)
        rng = np.random.default_rng(0)
        x = (rng.random((8, 2, 8)) < 0.3).astype(np.float32)
        assert net.forward(x).logits.shape == (2, 3)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            NetworkConfig(layer_sizes=(8, 6, 4, 3), synapse_alpha=0.0)
