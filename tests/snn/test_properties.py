"""Property-based tests (hypothesis) on SNN invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import tensor, zeros
from repro.config import NetworkConfig
from repro.snn import (
    LIFParameters,
    PerNeuronAdaptiveThreshold,
    RecurrentLIFLayer,
    SpikingNetwork,
    lif_step,
)


class TestLIFInvariants:
    @given(
        beta=st.floats(min_value=0.05, max_value=0.99),
        threshold=st.floats(min_value=0.2, max_value=3.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_spikes_always_binary(self, beta, threshold, seed):
        rng = np.random.default_rng(seed)
        params = LIFParameters(beta=beta, threshold=threshold)
        membrane = tensor(rng.normal(0, 1, (3, 5)).astype(np.float32))
        prev = tensor((rng.random((3, 5)) < 0.5).astype(np.float32))
        current = tensor(rng.normal(0, 2, (3, 5)).astype(np.float32))
        _, spikes = lif_step(membrane, prev, current, params)
        assert set(np.unique(spikes.data)).issubset({0.0, 1.0})

    @given(beta=st.floats(min_value=0.05, max_value=0.99))
    @settings(max_examples=20, deadline=None)
    def test_membrane_decays_geometrically_without_input(self, beta):
        steps = 50
        params = LIFParameters(beta=beta, threshold=10.0)  # never fires
        membrane = tensor(np.ones((1, 4), dtype=np.float32))
        prev = zeros((1, 4))
        for _ in range(steps):
            membrane, prev = lif_step(membrane, prev, zeros((1, 4)), params)
        expected = beta**steps
        np.testing.assert_allclose(membrane.data, expected, rtol=1e-3, atol=1e-7)

    @given(
        seed=st.integers(min_value=0, max_value=1000),
        drive=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_membrane_bounded_under_bounded_input(self, seed, drive):
        # With decay beta and bounded positive drive, the hard-reset
        # membrane cannot exceed drive / (1 - beta).
        params = LIFParameters(beta=0.9, threshold=1e9)  # never fires
        bound = drive / (1.0 - 0.9) + 1e-3
        membrane = zeros((1, 3))
        prev = zeros((1, 3))
        rng = np.random.default_rng(seed)
        for _ in range(100):
            current = tensor(rng.uniform(0, drive, (1, 3)).astype(np.float32))
            membrane, prev = lif_step(membrane, prev, current, params)
            assert np.all(membrane.data <= bound)

    @given(threshold=st.floats(min_value=0.3, max_value=2.0))
    @settings(max_examples=20, deadline=None)
    def test_lower_threshold_never_fires_less(self, threshold):
        rng = np.random.default_rng(0)
        params = LIFParameters(beta=0.9, threshold=1.0)
        current = tensor(rng.uniform(0, 2, (4, 16)).astype(np.float32))
        _, s_hi = lif_step(zeros((4, 16)), zeros((4, 16)), current, params,
                           threshold=threshold)
        _, s_lo = lif_step(zeros((4, 16)), zeros((4, 16)), current, params,
                           threshold=threshold * 0.5)
        assert s_lo.data.sum() >= s_hi.data.sum()


class TestLayerInvariants:
    @given(
        timesteps=st.integers(min_value=1, max_value=20),
        batch=st.integers(min_value=1, max_value=4),
        density=st.floats(min_value=0.0, max_value=0.8),
    )
    @settings(max_examples=25, deadline=None)
    def test_output_shape_and_binarity(self, timesteps, batch, density):
        layer = RecurrentLIFLayer(
            6, 4, LIFParameters(beta=0.9, threshold=1.0),
            rng=np.random.default_rng(0),
        )
        rng = np.random.default_rng(timesteps * 100 + batch)
        x = (rng.random((timesteps, batch, 6)) < density).astype(np.float32)
        out = layer.forward(x)
        assert out.shape == (timesteps, batch, 4)
        assert set(np.unique(out.data)).issubset({0.0, 1.0})

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_forward_deterministic(self, seed):
        layer = RecurrentLIFLayer(
            5, 3, LIFParameters(beta=0.9, threshold=1.0),
            rng=np.random.default_rng(seed),
        )
        rng = np.random.default_rng(seed + 1)
        x = (rng.random((8, 2, 5)) < 0.4).astype(np.float32)
        np.testing.assert_array_equal(layer.forward(x).data, layer.forward(x).data)


class TestNetworkInvariants:
    @given(insertion=st.integers(min_value=0, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_split_consistency(self, insertion):
        """frozen-front + learning-tail == full forward, at any split."""
        net = SpikingNetwork(
            NetworkConfig(layer_sizes=(12, 10, 8, 6, 4), beta=0.9), seed=0
        )
        rng = np.random.default_rng(insertion)
        x = (rng.random((10, 3, 12)) < 0.3).astype(np.float32)
        full = net.forward(x).logits.data
        acts = net.activations_at(insertion, x)
        partial = net.forward(acts, start_layer=insertion).logits.data
        np.testing.assert_allclose(full, partial, rtol=1e-5, atol=1e-6)


class TestPerNeuronControllerInvariants:
    @given(
        timesteps=st.integers(min_value=4, max_value=60),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_thresholds_stay_in_clamp_band(self, timesteps, seed):
        ctrl = PerNeuronAdaptiveThreshold(
            num_neurons=6, timesteps=timesteps, adjust_interval=1,
            floor=0.05, ceil=4.0,
        )
        rng = np.random.default_rng(seed)
        for t in range(timesteps):
            counts = rng.poisson(1.0, 6).astype(float)
            value = ctrl.step(t, counts, counts * t)
            assert np.all(value >= 0.05) and np.all(value <= 4.0)

    @given(t=st.integers(min_value=1, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_silent_neurons_follow_decay(self, t):
        ctrl = PerNeuronAdaptiveThreshold(num_neurons=3, timesteps=40,
                                          adjust_interval=1)
        value = ctrl.step(t, np.zeros(3), np.zeros(3))
        expected = 1.0 / (1.0 + np.exp(-0.001 * t))
        np.testing.assert_allclose(value, expected, rtol=1e-6)
