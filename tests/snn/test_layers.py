"""Tests for RecurrentLIFLayer and LeakyReadout."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.snn import LeakyReadout, LIFParameters, RecurrentLIFLayer, StaticThreshold


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def make_layer(n_in=10, n_out=6, recurrent=True, rng=None, **neuron_kwargs):
    params = LIFParameters(**{**dict(beta=0.9, threshold=1.0), **neuron_kwargs})
    return RecurrentLIFLayer(n_in, n_out, params, recurrent=recurrent,
                             rng=rng or np.random.default_rng(0))


class TestRecurrentLIFLayer:
    def test_output_shape_and_binary(self, rng):
        layer = make_layer()
        x = (rng.random((12, 3, 10)) < 0.3).astype(np.float32)
        out = layer.forward(x)
        assert out.shape == (12, 3, 6)
        assert set(np.unique(out.data)).issubset({0.0, 1.0})

    def test_rejects_wrong_rank(self, rng):
        layer = make_layer()
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((3, 10), dtype=np.float32))

    def test_rejects_wrong_fanin(self, rng):
        layer = make_layer(n_in=10)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((5, 2, 7), dtype=np.float32))

    def test_no_recurrent_weights_when_disabled(self):
        layer = make_layer(recurrent=False)
        assert layer.w_rec is None
        assert len(layer.parameters()) == 1

    def test_recurrent_changes_dynamics(self, rng):
        x = (rng.random((20, 2, 10)) < 0.4).astype(np.float32)
        ff = make_layer(recurrent=False, rng=np.random.default_rng(1))
        rec = make_layer(recurrent=True, rng=np.random.default_rng(1))
        rec.w_ff.data = ff.w_ff.data.copy()
        out_ff = ff.forward(x)
        out_rec = rec.forward(x)
        # Same feedforward weights, recurrent term must alter some spikes
        # (recurrent init is nonzero by construction).
        assert not np.array_equal(out_ff.data, out_rec.data)

    def test_frozen_layer_builds_no_tape(self, rng):
        layer = make_layer()
        layer.set_trainable(False)
        x = (rng.random((5, 2, 10)) < 0.3).astype(np.float32)
        out = layer.forward(x)
        assert not out.requires_grad
        assert out._parents == ()

    def test_trainable_layer_builds_tape(self, rng):
        layer = make_layer()
        x = (rng.random((5, 2, 10)) < 0.3).astype(np.float32)
        out = layer.forward(x)
        assert out.requires_grad

    def test_gradients_reach_both_weight_matrices(self, rng):
        layer = make_layer()
        x = (rng.random((15, 2, 10)) < 0.5).astype(np.float32)
        out = layer.forward(x)
        out.sum().backward()
        assert layer.w_ff.grad is not None and np.abs(layer.w_ff.grad).sum() > 0
        assert layer.w_rec.grad is not None

    def test_state_dict_roundtrip(self, rng):
        a = make_layer(rng=np.random.default_rng(1))
        b = make_layer(rng=np.random.default_rng(2))
        assert not np.array_equal(a.w_ff.data, b.w_ff.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.w_ff.data, b.w_ff.data)
        np.testing.assert_array_equal(a.w_rec.data, b.w_rec.data)

    def test_state_dict_shape_mismatch_raises(self):
        a = make_layer(n_in=10)
        b = make_layer(n_in=12)
        with pytest.raises(ShapeError):
            a.load_state_dict(b.state_dict())

    def test_state_dict_is_copy(self):
        layer = make_layer()
        state = layer.state_dict()
        state["w_ff"][0, 0] = 99.0
        assert layer.w_ff.data[0, 0] != 99.0

    def test_controller_receives_every_timestep(self, rng):
        class CountingController(StaticThreshold):
            def __init__(self):
                super().__init__(1.0)
                self.calls = []

            def step(self, t, spike_count, spike_time_sum):
                self.calls.append(t)
                return super().step(t, spike_count, spike_time_sum)

        ctrl = CountingController()
        layer = make_layer()
        x = (rng.random((7, 2, 10)) < 0.3).astype(np.float32)
        layer.forward(x, ctrl)
        assert ctrl.calls == list(range(7))

    def test_silent_input_gives_silent_output(self):
        layer = make_layer()
        x = np.zeros((10, 2, 10), dtype=np.float32)
        out = layer.forward(x)
        assert out.data.sum() == 0.0


class TestLeakyReadout:
    def test_logit_shape(self, rng):
        readout = LeakyReadout(6, 4, beta=0.9, rng=rng)
        x = (rng.random((12, 3, 6)) < 0.3).astype(np.float32)
        logits = readout.forward(x)
        assert logits.shape == (3, 4)

    def test_max_over_time_readout(self, rng):
        # With beta~0 the readout reduces to per-step projection; the
        # logit must equal the max over steps.
        readout = LeakyReadout(
            3, 2, beta=1e-9, rng=np.random.default_rng(0), readout_mode="max"
        )
        x = np.zeros((4, 1, 3), dtype=np.float32)
        x[1, 0, 0] = 1.0
        x[3, 0, 1] = 1.0
        logits = readout.forward(x)
        w = readout.w_ff.data
        expected = np.maximum.reduce([np.zeros(2), w[0], np.zeros(2), w[1]])
        np.testing.assert_allclose(logits.data[0], expected, rtol=1e-5)

    def test_mean_over_time_readout(self):
        readout = LeakyReadout(
            3, 2, beta=1e-9, rng=np.random.default_rng(0), readout_mode="mean"
        )
        x = np.zeros((4, 1, 3), dtype=np.float32)
        x[1, 0, 0] = 1.0
        logits = readout.forward(x)
        np.testing.assert_allclose(
            logits.data[0], readout.w_ff.data[0] / 4.0, rtol=1e-5
        )

    def test_last_readout(self):
        readout = LeakyReadout(
            3, 2, beta=0.5, rng=np.random.default_rng(0), readout_mode="last"
        )
        x = np.zeros((2, 1, 3), dtype=np.float32)
        x[0, 0, 0] = 1.0
        logits = readout.forward(x)
        np.testing.assert_allclose(
            logits.data[0], 0.5 * readout.w_ff.data[0], rtol=1e-5
        )

    def test_invalid_readout_mode(self):
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            LeakyReadout(3, 2, readout_mode="median")

    def test_rejects_wrong_rank(self, rng):
        readout = LeakyReadout(6, 4, rng=rng)
        with pytest.raises(ShapeError):
            readout.forward(np.zeros((3, 6), dtype=np.float32))

    def test_rejects_wrong_fanin(self, rng):
        readout = LeakyReadout(6, 4, rng=rng)
        with pytest.raises(ShapeError):
            readout.forward(np.zeros((5, 2, 7), dtype=np.float32))

    def test_gradient_reaches_weights(self, rng):
        readout = LeakyReadout(6, 4, rng=rng)
        x = (rng.random((10, 2, 6)) < 0.5).astype(np.float32)
        readout.forward(x).sum().backward()
        assert readout.w_ff.grad is not None
        assert np.abs(readout.w_ff.grad).sum() > 0

    def test_frozen_readout_builds_no_tape(self, rng):
        readout = LeakyReadout(6, 4, rng=rng)
        readout.set_trainable(False)
        x = (rng.random((5, 2, 6)) < 0.3).astype(np.float32)
        out = readout.forward(x)
        assert not out.requires_grad

    def test_state_dict_roundtrip(self, rng):
        a = LeakyReadout(6, 4, rng=np.random.default_rng(1))
        b = LeakyReadout(6, 4, rng=np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.w_ff.data, b.w_ff.data)
