"""Parity, selection and degradation tests for the kernel backends.

Every registered backend is pinned to the numpy reference executor:
bitwise (``np.array_equal``) for backends declaring ``parity ==
"bitwise"``, within a tight tolerance otherwise.  The torch executor is
exercised through a minimal numpy-backed stand-in module so its sweep
code runs on machines without torch installed.
"""

import sys

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ConfigError
from repro.snn import backends
from repro.snn.backends import (
    CffiExecutor,
    NumpyExecutor,
    SequenceExecutor,
    SweepSpec,
    TorchExecutor,
    register_backend,
)
from repro.snn.backends import base as backends_base
from repro.snn.backends import cffi_c, numpy_ref
from repro.snn.kernels import cuba_lif_sequence, leaky_readout_sequence, lif_sequence
from repro.snn.neurons import LIFParameters

C_AVAILABLE, C_REASON = backends.get_backend("c").availability()
needs_c = pytest.mark.skipif(not C_AVAILABLE, reason=f"C backend: {C_REASON}")


@pytest.fixture(autouse=True)
def _isolated_registry():
    """Snapshot the registry + active memo around every test."""
    snapshot = dict(backends_base._REGISTRY)
    backends_base._invalidate_active()
    yield
    backends_base._REGISTRY.clear()
    backends_base._REGISTRY.update(snapshot)
    backends_base._invalidate_active()


# ----------------------------------------------------------------------
# A minimal numpy-backed torch stand-in (just the surface TorchExecutor
# touches) so the torch sweeps run in environments without torch.
# ----------------------------------------------------------------------


def _unwrap(value):
    return value.array if isinstance(value, _FakeTensor) else value


class _FakeTensor:
    def __init__(self, array):
        self.array = np.asarray(array)

    @property
    def dtype(self):
        return self.array.dtype

    def numpy(self):
        return self.array

    def to(self, dtype):
        return _FakeTensor(self.array.astype(dtype))

    def __getitem__(self, index):
        return _FakeTensor(self.array[index])

    def __add__(self, other):
        return _FakeTensor(self.array + _unwrap(other))

    __radd__ = __add__

    def __sub__(self, other):
        return _FakeTensor(self.array - _unwrap(other))

    def __rsub__(self, other):
        return _FakeTensor(_unwrap(other) - self.array)

    def __mul__(self, other):
        return _FakeTensor(self.array * _unwrap(other))

    __rmul__ = __mul__

    def __matmul__(self, other):
        return _FakeTensor(self.array @ _unwrap(other))

    def __neg__(self):
        return _FakeTensor(-self.array)

    def __gt__(self, other):
        return _FakeTensor(self.array > _unwrap(other))


class _FakeTorch:
    __version__ = "0.0-fake"

    @staticmethod
    def from_numpy(array):
        return _FakeTensor(array)

    @staticmethod
    def zeros_like(tensor):
        return _FakeTensor(np.zeros_like(tensor.array))

    @staticmethod
    def stack(tensors):
        return _FakeTensor(np.stack([t.array for t in tensors]))

    @property
    def T(self):
        raise AttributeError


def _fake_torch_executor() -> TorchExecutor:
    return TorchExecutor(torch_module=_FakeTorch())


# ----------------------------------------------------------------------
# Parity: every backend pinned to the numpy reference sweeps.
# ----------------------------------------------------------------------

_SPECS = {
    "lif-hard": SweepSpec(beta=0.9, vthr=0.65, hard=True, alpha=None),
    "lif-soft": SweepSpec(beta=0.85, vthr=0.7, hard=False, alpha=None),
    "cuba-hard": SweepSpec(beta=0.9, vthr=0.6, hard=True, alpha=0.5),
    "per-neuron-vthr": SweepSpec(
        beta=0.9,
        vthr=np.linspace(0.4, 0.9, 6, dtype=np.float32),
        hard=True,
        alpha=None,
    ),
}


def _executors():
    cases = [pytest.param(_fake_torch_executor(), id="torch-fake")]
    cases.append(
        pytest.param(CffiExecutor(), id="c", marks=needs_c)
        if C_AVAILABLE
        else pytest.param(None, id="c", marks=needs_c)
    )
    return cases


def _assert_parity(executor, got, want):
    got, want = np.asarray(got), np.asarray(want)
    if executor.parity == "bitwise":
        assert np.array_equal(got, want), "bitwise parity violated"
    else:
        np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-7)


class TestSweepParity:
    @pytest.mark.parametrize("executor", _executors())
    @pytest.mark.parametrize("spec_name", sorted(_SPECS))
    @pytest.mark.parametrize("recurrent", [False, True])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_lif_sweeps_match_reference(self, executor, spec_name, recurrent, dtype):
        spec = _SPECS[spec_name]
        rng = np.random.default_rng(7)
        ff = rng.standard_normal((6, 3, 6)).astype(dtype)
        w_rec = (
            (rng.standard_normal((6, 6)) * 0.4).astype(dtype) if recurrent else None
        )
        want_m, want_s = numpy_ref.lif_forward_sweep(ff, w_rec, spec)
        got_m, got_s = executor.lif_forward(ff, w_rec, spec)
        _assert_parity(executor, got_m, want_m)
        _assert_parity(executor, got_s, want_s)

        g = rng.standard_normal(ff.shape).astype(dtype)
        surrogate = rng.random(ff.shape).astype(dtype)
        want_g = numpy_ref.lif_reverse_sweep(g, surrogate, want_m, want_s, w_rec, spec)
        got_g = executor.lif_backward(g, surrogate, got_m, got_s, w_rec, spec)
        _assert_parity(executor, got_g, want_g)

    @pytest.mark.parametrize("executor", _executors())
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_readout_sweeps_match_reference(self, executor, dtype):
        rng = np.random.default_rng(11)
        projected = rng.standard_normal((8, 4, 5)).astype(dtype)
        _assert_parity(
            executor,
            executor.readout_forward(projected, 0.8),
            numpy_ref.readout_forward_sweep(projected, 0.8),
        )
        g = rng.standard_normal(projected.shape).astype(dtype)
        _assert_parity(
            executor,
            executor.readout_backward(g, 0.8),
            numpy_ref.readout_backward_sweep(g, 0.8),
        )

    def test_single_timestep_edge(self):
        """T=1 exercises the no-carry branches of every sweep."""
        spec = _SPECS["lif-hard"]
        ff = np.random.default_rng(3).standard_normal((1, 2, 4)).astype(np.float32)
        for executor in (
            [_fake_torch_executor()] + ([CffiExecutor()] if C_AVAILABLE else [])
        ):
            m, s = executor.lif_forward(ff, None, spec)
            want = numpy_ref.lif_forward_sweep(ff, None, spec)
            _assert_parity(executor, m, want[0])
            _assert_parity(executor, s, want[1])


@needs_c
class TestCBackendThroughKernels:
    """End-to-end: the fused kernels produce bitwise-identical training
    quantities (outputs *and* gradients) under ``REPRO_BACKEND=c``."""

    def _grads(self, monkeypatch, backend_name):
        monkeypatch.setenv("REPRO_BACKEND", backend_name)
        backends_base._invalidate_active()
        params = LIFParameters(beta=0.9, threshold=0.6, reset_mode="zero")
        rng = np.random.default_rng(0)
        x = Tensor((rng.random((7, 3, 5)) < 0.3).astype(np.float32))
        w_ff = Tensor(
            rng.standard_normal((5, 6)).astype(np.float32) * 0.5, requires_grad=True
        )
        w_rec = Tensor(
            rng.standard_normal((6, 6)).astype(np.float32) * 0.3, requires_grad=True
        )
        w_out = Tensor(
            rng.standard_normal((6, 4)).astype(np.float32) * 0.5, requires_grad=True
        )

        spikes = lif_sequence(x, w_ff, params, w_rec=w_rec)
        trajectory = leaky_readout_sequence(spikes, w_out, beta=0.8)
        loss = (trajectory * trajectory).sum()
        loss.backward()
        return {
            "spikes": spikes.data.copy(),
            "trajectory": trajectory.data.copy(),
            "gw_ff": w_ff.grad.copy(),
            "gw_rec": w_rec.grad.copy(),
            "gw_out": w_out.grad.copy(),
        }

    def test_bitwise_training_quantities(self, monkeypatch):
        reference = self._grads(monkeypatch, "numpy")
        compiled = self._grads(monkeypatch, "c")
        for key, want in reference.items():
            assert np.array_equal(compiled[key], want), f"{key} diverged bitwise"

    def test_cuba_sequence_bitwise(self, monkeypatch):
        params = LIFParameters(beta=0.9, threshold=0.55, reset_mode="subtract")
        rng = np.random.default_rng(5)
        x = (rng.random((6, 2, 4)) < 0.4).astype(np.float32)
        w_ff = rng.standard_normal((4, 5)).astype(np.float32) * 0.6
        results = {}
        for name in ("numpy", "c"):
            monkeypatch.setenv("REPRO_BACKEND", name)
            backends_base._invalidate_active()
            out = cuba_lif_sequence(
                Tensor(x), Tensor(w_ff, requires_grad=True), params, alpha=0.45
            )
            out.sum().backward()
            results[name] = out.data.copy()
        assert np.array_equal(results["numpy"], results["c"])

    def test_unsupported_dtype_falls_back_to_reference(self):
        executor = CffiExecutor()
        spec = _SPECS["lif-hard"]
        ff = np.random.default_rng(1).standard_normal((4, 2, 3)).astype(np.float16)
        want = numpy_ref.lif_forward_sweep(ff, None, spec)
        got = executor.lif_forward(ff, None, spec)
        assert np.array_equal(got[0], want[0]) and np.array_equal(got[1], want[1])


# ----------------------------------------------------------------------
# Registry + selection semantics.
# ----------------------------------------------------------------------


class _StubExecutor(NumpyExecutor):
    name = "numpy"

    def availability(self):
        return True, "stub shadowing the reference"


class TestRegistry:
    def test_all_backends_priority_order(self):
        names = [b.name for b in backends.all_backends()]
        assert names == ["c", "torch", "numpy"]

    def test_reregistration_latest_wins(self):
        stub = _StubExecutor()
        register_backend(stub)
        assert backends.get_backend("numpy") is stub

    def test_register_rejects_abstract_name(self):
        class Nameless(NumpyExecutor):
            name = "abstract"

        with pytest.raises(ConfigError, match="concrete"):
            register_backend(Nameless())

    def test_register_rejects_unknown_parity(self):
        class BadParity(NumpyExecutor):
            name = "bad"
            parity = "vibes"

        with pytest.raises(ConfigError, match="parity"):
            register_backend(BadParity())

    def test_get_backend_unknown_name(self):
        with pytest.raises(ConfigError, match="registered backends"):
            backends.get_backend("cuda")

    def test_numpy_always_available(self):
        assert NumpyExecutor() in type(NumpyExecutor()).__mro__ or True
        ok, reason = backends.get_backend("numpy").availability()
        assert ok and "numpy" in reason


class TestSelection:
    def test_explicit_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert backends.active().name == "numpy"

    def test_active_memoised_until_env_changes(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        first = backends.active()
        assert backends.active() is first
        monkeypatch.setenv("REPRO_BACKEND", "auto")
        assert backends.active().name in ("c", "numpy", "torch")

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cuda")
        with pytest.raises(ConfigError, match="REPRO_BACKEND"):
            backends.active()

    def test_auto_prefers_fastest_available(self):
        selected = backends.select_backend("auto")
        for candidate in backends.all_backends():
            if candidate.availability()[0]:
                assert selected is candidate
                break

    def test_selection_report_shape(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "auto")
        rows = backends.selection_report()
        assert {row["name"] for row in rows} == {"numpy", "c", "torch"}
        assert sum(row["selected"] for row in rows) == 1
        for row in rows:
            assert row["reason"]
            assert row["parity"] in ("bitwise", "tolerance")


class TestDegradation:
    """auto falls back gracefully; explicit requests fail loudly."""

    def _force_unavailable(self, monkeypatch, name, reason):
        executor = backends.get_backend(name)
        monkeypatch.setattr(executor, "availability", lambda: (False, reason))

    def test_auto_falls_back_to_numpy(self, monkeypatch):
        self._force_unavailable(monkeypatch, "c", "no C compiler (cc / gcc / clang)")
        self._force_unavailable(monkeypatch, "torch", "torch not importable")
        monkeypatch.setenv("REPRO_BACKEND", "auto")
        assert backends.active().name == "numpy"

    def test_explicit_unavailable_names_dependency(self, monkeypatch):
        self._force_unavailable(
            monkeypatch, "c", "no C compiler (cc / gcc / clang) on PATH"
        )
        with pytest.raises(ConfigError, match="no C compiler"):
            backends.select_backend("c")

    def test_missing_cffi_probe(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "cffi", None)
        executor = CffiExecutor()
        ok, reason = executor.availability()
        assert not ok
        assert "cffi" in reason

    def test_missing_compiler_probe(self, monkeypatch):
        monkeypatch.setattr(cffi_c, "_find_compiler", lambda: None)
        executor = CffiExecutor()
        ok, reason = executor.availability()
        assert not ok
        assert "compiler" in reason

    def test_failing_self_check_degrades(self, monkeypatch):
        if not C_AVAILABLE:
            pytest.skip(C_REASON)

        def broken(self):
            raise AssertionError("forward sweep mismatch")

        monkeypatch.setattr(CffiExecutor, "_self_check", broken)
        executor = CffiExecutor()
        ok, reason = executor.availability()
        assert not ok
        assert "self-check" in reason

    def test_probe_result_is_cached(self, monkeypatch):
        executor = CffiExecutor()
        calls = []

        def probe():
            calls.append(1)
            return False, "down"

        monkeypatch.setattr(executor, "_probe_once", probe)
        executor.availability()
        executor.availability()
        assert len(calls) == 1

    def test_torch_absent_reports_package(self):
        executor = TorchExecutor(torch_module=None)
        executor._probed = True  # simulate a completed failed import probe
        ok, reason = executor.availability()
        assert not ok
        assert "torch" in reason

    def test_kernel_access_when_unavailable_raises(self, monkeypatch):
        monkeypatch.setattr(cffi_c, "_find_compiler", lambda: None)
        executor = CffiExecutor()
        with pytest.raises(ConfigError, match="unavailable"):
            executor._kernel("lif_forward", np.float32)


class TestKernelSource:
    def test_both_dtype_variants_present(self):
        source = cffi_c.kernel_source()
        for suffix in ("f32", "f64"):
            for name in (
                "lif_forward",
                "lif_backward",
                "readout_forward",
                "readout_backward",
            ):
                assert f"{name}_{suffix}" in source

    def test_no_unprotected_fma_flags(self):
        assert "-ffp-contract=off" in cffi_c._CFLAGS
        assert "-fno-fast-math" in cffi_c._CFLAGS


class TestExecutorContract:
    def test_abstract_surface(self):
        assert {
            "availability",
            "lif_forward",
            "lif_backward",
            "readout_forward",
            "readout_backward",
        } <= {
            name
            for name in dir(SequenceExecutor)
            if not name.startswith("_")
        }

    def test_sweep_spec_frozen(self):
        spec = SweepSpec(beta=0.9, vthr=0.5, hard=True)
        with pytest.raises(AttributeError):
            spec.beta = 0.1
