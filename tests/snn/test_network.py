"""Tests for SpikingNetwork: forward, split semantics, tracing, cloning."""

import numpy as np
import pytest

from repro.autograd import cross_entropy
from repro.config import NetworkConfig
from repro.errors import ShapeError, SplitError
from repro.snn import AdaptiveSpikeTimingThreshold, SpikingNetwork


@pytest.fixture
def config():
    return NetworkConfig(layer_sizes=(20, 16, 12, 8, 5), beta=0.9)


@pytest.fixture
def net(config):
    return SpikingNetwork(config, seed=0)


@pytest.fixture
def x():
    rng = np.random.default_rng(0)
    return (rng.random((12, 4, 20)) < 0.25).astype(np.float32)


class TestStructure:
    def test_num_weight_layers(self, net):
        assert net.num_weight_layers == 4  # L=4 as in the paper

    def test_layer_input_sizes(self, net):
        assert [net.layer_input_size(i) for i in range(4)] == [20, 16, 12, 8]

    def test_layer_index_validation(self, net):
        with pytest.raises(SplitError):
            net.layer_input_size(4)
        with pytest.raises(SplitError):
            net.layer_input_size(-1)

    def test_parameter_count(self, net):
        # 3 hidden layers x (w_ff + w_rec) + readout w_ff
        assert len(net.parameters()) == 7

    def test_seeded_determinism(self, config):
        a = SpikingNetwork(config, seed=5)
        b = SpikingNetwork(config, seed=5)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seeds_differ(self, config):
        a = SpikingNetwork(config, seed=5)
        b = SpikingNetwork(config, seed=6)
        assert not np.array_equal(a.parameters()[0].data, b.parameters()[0].data)


class TestForward:
    def test_logits_shape(self, net, x):
        result = net.forward(x)
        assert result.logits.shape == (4, 5)

    def test_trace_covers_all_layers(self, net, x):
        result = net.forward(x)
        assert [e.name for e in result.trace.entries] == [
            "hidden0",
            "hidden1",
            "hidden2",
            "readout",
        ]

    def test_trace_records_dims(self, net, x):
        entries = net.forward(x).trace.entries
        assert (entries[0].n_in, entries[0].n_out) == (20, 16)
        assert entries[0].timesteps == 12 and entries[0].batch == 4
        assert entries[-1].output_spike_count == 0.0  # readout never spikes

    def test_record_spikes(self, net, x):
        result = net.forward(x, record_spikes=True)
        assert len(result.hidden_spikes) == 3
        assert result.hidden_spikes[0].shape == (12, 4, 16)

    def test_shape_validation(self, net):
        with pytest.raises(ShapeError):
            net.forward(np.zeros((12, 4, 21), dtype=np.float32))

    def test_start_layer_shape_validation(self, net):
        with pytest.raises(ShapeError):
            net.forward(np.zeros((12, 4, 20), dtype=np.float32), start_layer=1)

    def test_backward_reaches_all_parameters(self, net, x):
        result = net.forward(x)
        cross_entropy(result.logits, np.array([0, 1, 2, 3])).backward()
        for p in net.parameters():
            assert p.grad is not None

    def test_deterministic_forward(self, net, x):
        a = net.forward(x).logits.data
        b = net.forward(x).logits.data
        np.testing.assert_array_equal(a, b)


class TestSplit:
    def test_freeze_below_marks_layers(self, net):
        net.freeze_below(2)
        assert not net.hidden_layers[0].trainable
        assert not net.hidden_layers[1].trainable
        assert net.hidden_layers[2].trainable
        assert net.readout.trainable

    def test_freeze_below_zero_trains_everything(self, net):
        net.freeze_below(0)
        assert all(layer.trainable for layer in net.hidden_layers)

    def test_trainable_parameters_subset(self, net):
        net.freeze_below(2)
        # hidden2 (w_ff + w_rec) + readout
        assert len(net.trainable_parameters()) == 3

    def test_activations_at_layer0_is_input(self, net, x):
        acts = net.activations_at(0, x)
        np.testing.assert_array_equal(acts, x)

    def test_activations_at_shape(self, net, x):
        acts = net.activations_at(2, x)
        assert acts.shape == (12, 4, 12)
        assert set(np.unique(acts)).issubset({0.0, 1.0})

    def test_partial_forward_consistent_with_full(self, net, x):
        # Running frozen part then learning part must equal the full pass.
        full = net.forward(x).logits.data
        acts = net.activations_at(2, x)
        partial = net.forward(acts, start_layer=2).logits.data
        np.testing.assert_allclose(full, partial, rtol=1e-5)

    def test_activations_do_not_flip_trainability(self, net, x):
        net.freeze_below(2)
        before = [layer.trainable for layer in net.hidden_layers]
        net.activations_at(2, x)
        after = [layer.trainable for layer in net.hidden_layers]
        assert before == after


class TestCloneAndState:
    def test_clone_matches(self, net, x):
        twin = net.clone()
        np.testing.assert_allclose(
            net.forward(x).logits.data, twin.forward(x).logits.data
        )

    def test_clone_is_independent(self, net):
        twin = net.clone()
        twin.hidden_layers[0].w_ff.data[0, 0] += 1.0
        assert net.hidden_layers[0].w_ff.data[0, 0] != twin.hidden_layers[0].w_ff.data[0, 0]

    def test_state_roundtrip(self, net, config, x):
        other = SpikingNetwork(config, seed=99)
        other.load_state_dict(net.state_dict())
        np.testing.assert_allclose(
            net.forward(x).logits.data, other.forward(x).logits.data
        )


class TestPredictAndController:
    def test_predict_shape_and_range(self, net, x):
        preds = net.predict(x, batch_size=3)
        assert preds.shape == (4,)
        assert set(preds).issubset(set(range(5)))

    def test_predict_restores_trainability(self, net, x):
        net.freeze_below(2)
        before = [layer.trainable for layer in net.hidden_layers] + [net.readout.trainable]
        net.predict(x)
        after = [layer.trainable for layer in net.hidden_layers] + [net.readout.trainable]
        assert before == after

    def test_predict_empty_batch(self, net):
        preds = net.predict(np.zeros((5, 0, 20), dtype=np.float32))
        assert preds.shape == (0,)

    def test_adaptive_controller_changes_output(self, net, x):
        static = net.forward(x).logits.data
        ctrl = AdaptiveSpikeTimingThreshold(timesteps=12, adjust_interval=1)
        adaptive = net.forward(x, controller=ctrl).logits.data
        # The controller halves thresholds on silent steps, so spiking
        # activity — and thus logits — must differ.
        assert not np.allclose(static, adaptive)


class TestClassMask:
    """Per-task readout masking (task-incremental inference)."""

    def test_full_mask_is_bitwise_noop_fused_and_per_step(self, net, x):
        full = np.ones(5, dtype=bool)
        for fused in (True, False):
            net.set_fused(fused)
            unmasked = net.forward(x).logits.data
            masked = net.forward(x, class_mask=full).logits.data
            np.testing.assert_array_equal(unmasked, masked)
        net.set_fused(True)

    def test_mask_restricts_argmax_to_active_classes(self, net, x):
        mask = np.array([False, False, True, True, False])
        preds = net.predict(x, class_mask=mask)
        assert set(preds.tolist()) <= {2, 3}

    def test_masked_logits_add_constant_penalty(self, net, x):
        from repro.snn.layers import MASKED_LOGIT

        mask = np.array([True, False, True, False, True])
        plain = net.forward(x).logits.data
        masked = net.forward(x, class_mask=mask).logits.data
        np.testing.assert_array_equal(masked[:, mask], plain[:, mask])
        np.testing.assert_allclose(
            masked[:, ~mask] - plain[:, ~mask], MASKED_LOGIT
        )

    def test_mask_supported_on_both_readout_paths(self, net, x):
        mask = np.array([True, False, True, False, True])
        net.set_fused(True)
        fused = net.forward(x, class_mask=mask).logits.data
        assert net.readout.last_forward_path == "fused"
        net.set_fused(False)
        steps = net.forward(x, class_mask=mask).logits.data
        assert net.readout.last_forward_path == "steps"
        net.set_fused(True)
        np.testing.assert_allclose(fused, steps, rtol=1e-10, atol=1e-12)

    def test_gradient_flows_through_masked_logits(self, net, x):
        mask = np.array([True, True, False, False, False])
        result = net.forward(x, class_mask=mask)
        cross_entropy(result.logits, np.array([0, 1, 0, 1])).backward()
        for p in net.trainable_parameters():
            assert p.grad is not None

    def test_wrong_shape_rejected(self, net, x):
        with pytest.raises(ShapeError, match="class_mask"):
            net.forward(x, class_mask=np.ones(4, dtype=bool))

    def test_empty_mask_rejected(self, net, x):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="at least one class"):
            net.forward(x, class_mask=np.zeros(5, dtype=bool))

    def test_integer_mask_accepted(self, net, x):
        bool_preds = net.predict(
            x, class_mask=np.array([True, False, True, False, False])
        )
        int_preds = net.predict(x, class_mask=np.array([1, 0, 1, 0, 0]))
        np.testing.assert_array_equal(bool_preds, int_preds)
