"""Tests for threshold controllers (Alg. 1 lines 10-17 and 25-30)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.snn import AdaptiveSpikeTimingThreshold, StaticThreshold


class TestStaticThreshold:
    def test_constant(self):
        ctrl = StaticThreshold(1.5)
        assert ctrl.step(0, 100.0, 0.0) == 1.5
        assert ctrl.step(7, 0.0, 0.0) == 1.5
        assert ctrl.value == 1.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            StaticThreshold(0.0)

    def test_repr(self):
        assert "1.5" in repr(StaticThreshold(1.5))


class TestAdaptiveThreshold:
    def test_spike_timing_formula_on_boundary(self):
        # Alg. 1 line 13: Vthr = 1 + 0.01 * (Tstep - avg_spike_time)
        ctrl = AdaptiveSpikeTimingThreshold(timesteps=40, adjust_interval=5)
        # 10 spikes all at t=0 -> avg_spike_time=0 -> Vthr = 1 + 0.01*40 = 1.4
        value = ctrl.step(0, 10.0, 0.0)
        assert value == pytest.approx(1.4)

    def test_late_spikes_lower_threshold(self):
        ctrl = AdaptiveSpikeTimingThreshold(timesteps=40, adjust_interval=1)
        early = ctrl.step(0, 5.0, 0.0)
        ctrl2 = AdaptiveSpikeTimingThreshold(timesteps=40, adjust_interval=1)
        ctrl2.step(0, 0.0, 0.0)
        for t in range(1, 36):
            ctrl2.step(t, 0.0, 0.0)
        late = ctrl2.step(36, 5.0, 5 * 36.0)
        assert late < early

    def test_sigmoidal_decay_when_silent(self):
        # Alg. 1 line 16: Vthr = 1 / (1 + exp(-0.001 t))
        ctrl = AdaptiveSpikeTimingThreshold(timesteps=40, adjust_interval=5)
        value = ctrl.step(3, 0.0, 0.0)  # off-boundary, no spikes yet
        assert value == pytest.approx(1.0 / (1.0 + np.exp(-0.001 * 3)))
        assert value < 0.6  # the decay roughly halves the threshold

    def test_off_boundary_decays_even_with_spikes(self):
        # Alg. 1's preparation variant only applies the timing rule on
        # t % adjust_interval == 0; other steps take the decay branch.
        ctrl = AdaptiveSpikeTimingThreshold(timesteps=40, adjust_interval=5)
        value = ctrl.step(2, 50.0, 100.0)
        assert value == pytest.approx(1.0 / (1.0 + np.exp(-0.001 * 2)))

    def test_interval_one_updates_every_step(self):
        # NCL-phase variant (lines 25-30): every step with spikes uses the
        # timing formula.
        ctrl = AdaptiveSpikeTimingThreshold(timesteps=20, adjust_interval=1)
        v0 = ctrl.step(0, 4.0, 0.0)
        v1 = ctrl.step(1, 4.0, 4.0)
        assert v0 == pytest.approx(1.2)       # avg=0 -> 1 + 0.01*20
        assert v1 == pytest.approx(1.0 + 0.01 * (20 - 0.5))  # running avg 0.5

    def test_running_mean_tracks_all_spikes(self):
        ctrl = AdaptiveSpikeTimingThreshold(timesteps=10, adjust_interval=1)
        ctrl.step(0, 2.0, 0.0)
        ctrl.step(1, 2.0, 2.0)
        assert ctrl.mean_spike_time == pytest.approx(0.5)

    def test_mean_spike_time_none_before_spikes(self):
        ctrl = AdaptiveSpikeTimingThreshold(timesteps=10)
        assert ctrl.mean_spike_time is None

    def test_reset_restores_initial(self):
        ctrl = AdaptiveSpikeTimingThreshold(timesteps=40, adjust_interval=1, initial=1.0)
        ctrl.step(0, 10.0, 0.0)
        assert ctrl.value != 1.0
        ctrl.reset()
        assert ctrl.value == 1.0
        assert ctrl.mean_spike_time is None

    def test_clamping(self):
        ctrl = AdaptiveSpikeTimingThreshold(
            timesteps=10_000, adjust_interval=1, floor=0.05, ceil=2.0
        )
        value = ctrl.step(0, 1.0, 0.0)  # formula would give 1 + 0.01*10000 = 101
        assert value == 2.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            AdaptiveSpikeTimingThreshold(timesteps=0)
        with pytest.raises(ConfigError):
            AdaptiveSpikeTimingThreshold(timesteps=10, adjust_interval=0)
        with pytest.raises(ConfigError):
            AdaptiveSpikeTimingThreshold(timesteps=10, floor=2.0, ceil=1.0)

    def test_repr_mentions_state(self):
        ctrl = AdaptiveSpikeTimingThreshold(timesteps=40)
        assert "T=40" in repr(ctrl)
