"""Tests for LIF dynamics (paper Eq. 1-2)."""

import numpy as np
import pytest

from repro.autograd import tensor, zeros
from repro.errors import ConfigError
from repro.snn import LIFParameters, lif_step


def make_params(**kwargs):
    defaults = dict(beta=0.9, threshold=1.0, reset_mode="zero")
    defaults.update(kwargs)
    return LIFParameters(**defaults)


class TestLIFStep:
    def test_membrane_integrates_current(self):
        params = make_params()
        v, s = lif_step(zeros((1, 1)), zeros((1, 1)), tensor([[0.4]]), params)
        assert v.item() == pytest.approx(0.4)
        assert s.item() == 0.0

    def test_membrane_decays(self):
        params = make_params(beta=0.5)
        v0 = tensor([[0.8]])
        v, s = lif_step(v0, zeros((1, 1)), zeros((1, 1)), params)
        assert v.item() == pytest.approx(0.4)

    def test_spike_at_threshold_crossing(self):
        params = make_params()
        v, s = lif_step(zeros((1, 1)), zeros((1, 1)), tensor([[1.2]]), params)
        assert s.item() == 1.0

    def test_no_spike_exactly_at_threshold(self):
        # Eq. 2 fires on V >= Vthr in the paper; our spike op uses strict >
        # on (V - Vthr), matching the SpikingLR reference forward pass.
        params = make_params()
        v, s = lif_step(zeros((1, 1)), zeros((1, 1)), tensor([[1.0]]), params)
        assert s.item() == 0.0

    def test_hard_reset_zeroes_membrane(self):
        params = make_params(beta=0.9, reset_mode="zero")
        prev_spikes = tensor([[1.0]])
        v, s = lif_step(tensor([[2.0]]), prev_spikes, zeros((1, 1)), params)
        # previous spike wipes the carried membrane: V = 0.9 * 2.0 * (1-1) = 0
        assert v.item() == pytest.approx(0.0)

    def test_soft_reset_subtracts_threshold(self):
        params = make_params(beta=1.0 - 1e-9, reset_mode="subtract") if False else make_params(beta=0.99, reset_mode="subtract")
        prev_spikes = tensor([[1.0]])
        v, s = lif_step(tensor([[2.0]]), prev_spikes, zeros((1, 1)), params)
        assert v.item() == pytest.approx(2.0 * 0.99 - 1.0, rel=1e-5)

    def test_threshold_override(self):
        params = make_params(threshold=1.0)
        _, s_default = lif_step(zeros((1, 1)), zeros((1, 1)), tensor([[0.7]]), params)
        _, s_lowered = lif_step(
            zeros((1, 1)), zeros((1, 1)), tensor([[0.7]]), params, threshold=0.5
        )
        assert s_default.item() == 0.0
        assert s_lowered.item() == 1.0

    def test_lower_threshold_fires_more(self):
        rng = np.random.default_rng(3)
        params = make_params()
        current = tensor(rng.random((8, 32)).astype(np.float32))
        _, s_high = lif_step(zeros((8, 32)), zeros((8, 32)), current, params, threshold=0.9)
        _, s_low = lif_step(zeros((8, 32)), zeros((8, 32)), current, params, threshold=0.3)
        assert s_low.data.sum() >= s_high.data.sum()

    def test_invalid_effective_threshold_rejected(self):
        params = make_params()
        with pytest.raises(ConfigError):
            lif_step(zeros((1, 1)), zeros((1, 1)), zeros((1, 1)), params, threshold=0.0)

    def test_gradient_flows_through_step(self):
        params = make_params()
        current = tensor([[0.9, 1.1]], requires_grad=True)
        v, s = lif_step(zeros((1, 2)), zeros((1, 2)), current, params)
        (v + s).sum().backward()
        assert current.grad is not None
        assert np.all(np.abs(current.grad) > 0)


class TestLIFParameters:
    def test_beta_bounds(self):
        with pytest.raises(ConfigError):
            make_params(beta=0.0)
        with pytest.raises(ConfigError):
            make_params(beta=1.0)

    def test_threshold_positive(self):
        with pytest.raises(ConfigError):
            make_params(threshold=0.0)

    def test_reset_mode_validated(self):
        with pytest.raises(ConfigError):
            make_params(reset_mode="bogus")
