"""Fused sequence kernels: parity with the per-step reference, gradient
checks, and dispatch/fallback behavior.

The fused kernels promise *bitwise* forward parity and *bitwise*
gradient parity with the per-step tape (see the bitwise-discipline note
in :mod:`repro.snn.kernels`) — the tests below assert exact equality in
float32 and gradcheck-level agreement (<= 1e-5) in float64.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.snn import (
    AdaptiveSpikeTimingThreshold,
    LeakyReadout,
    LIFParameters,
    PerNeuronAdaptiveThreshold,
    RecurrentLIFLayer,
    SpikingNetwork,
    StaticThreshold,
    cuba_lif_sequence,
    fused_enabled,
    leaky_readout_sequence,
    lif_sequence,
)
from repro.config import NetworkConfig
from repro.errors import ConfigError, ShapeError


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def make_layer(reset_mode="zero", recurrent=True, synapse_alpha=None, n_in=10, n_out=7):
    params = LIFParameters(beta=0.9, reset_mode=reset_mode)
    return RecurrentLIFLayer(
        n_in,
        n_out,
        params,
        recurrent=recurrent,
        rng=np.random.default_rng(5),
        synapse_alpha=synapse_alpha,
    )


def run_both_paths(layer, x, g_up):
    """Forward+backward on each path; return (out, grads) per path."""
    results = []
    for fused in (True, False):
        layer.use_fused = fused
        out = layer.forward(x)
        out.backward(g_up)
        grads = [p.grad.copy() for p in layer.parameters()]
        for p in layer.parameters():
            p.zero_grad()
        results.append((out.data.copy(), grads))
    return results


@pytest.mark.parametrize("reset_mode", ["zero", "subtract"])
@pytest.mark.parametrize("recurrent", [True, False])
class TestLIFParity:
    def test_forward_and_gradient_bitwise(self, rng, reset_mode, recurrent):
        layer = make_layer(reset_mode=reset_mode, recurrent=recurrent)
        x = (rng.random((18, 3, 10)) < 0.35).astype(np.float32)
        g_up = rng.standard_normal((18, 3, 7)).astype(np.float32)
        (out_f, grads_f), (out_s, grads_s) = run_both_paths(layer, x, g_up)
        assert np.array_equal(out_f, out_s)
        for gf, gs in zip(grads_f, grads_s):
            assert np.array_equal(gf, gs)

    def test_cuba_forward_and_gradient_bitwise(self, rng, reset_mode, recurrent):
        layer = make_layer(reset_mode=reset_mode, recurrent=recurrent, synapse_alpha=0.7)
        x = (rng.random((18, 3, 10)) < 0.35).astype(np.float32)
        g_up = rng.standard_normal((18, 3, 7)).astype(np.float32)
        (out_f, grads_f), (out_s, grads_s) = run_both_paths(layer, x, g_up)
        assert np.array_equal(out_f, out_s)
        for gf, gs in zip(grads_f, grads_s):
            assert np.array_equal(gf, gs)


@pytest.mark.parametrize("reset_mode", ["zero", "subtract"])
@pytest.mark.parametrize("recurrent", [True, False])
class TestGradientParityFloat64:
    """Fused gradients vs. the per-step reference at gradcheck tolerance.

    Finite differences cannot probe through the Heaviside forward, so
    the per-step tape (the gradcheck-certified composition of primitive
    ops) is the reference; in float64 both paths agree to ~1e-12,
    comfortably within the 1e-5 budget.
    """

    ATOL = 1e-5

    def _to_f64(self, layer):
        for p in layer.parameters():
            p.data = p.data.astype(np.float64)

    @pytest.mark.parametrize("alpha", [None, 0.7])
    def test_grads_within_tolerance(self, rng, reset_mode, recurrent, alpha):
        layer = make_layer(reset_mode=reset_mode, recurrent=recurrent, synapse_alpha=alpha)
        self._to_f64(layer)
        x = (rng.random((20, 3, 10)) < 0.35).astype(np.float64)
        g_up = rng.standard_normal((20, 3, 7))
        (_, grads_f), (_, grads_s) = run_both_paths(layer, x, g_up)
        for gf, gs in zip(grads_f, grads_s):
            assert np.allclose(gf, gs, atol=self.ATOL, rtol=0.0)


class TestReadoutParity:
    @pytest.mark.parametrize("mode", ["mean", "max", "last"])
    def test_forward_and_gradient_bitwise(self, rng, mode):
        readout = LeakyReadout(
            8, 5, beta=0.9, rng=np.random.default_rng(2), readout_mode=mode
        )
        x = (rng.random((16, 3, 8)) < 0.4).astype(np.float32)
        outputs, grads = [], []
        for fused in (True, False):
            readout.use_fused = fused
            out = readout.forward(x)
            g = np.ones(out.shape, dtype=np.float32)
            out.backward(g)
            outputs.append(out.data.copy())
            grads.append(readout.w_ff.grad.copy())
            readout.w_ff.zero_grad()
        assert np.array_equal(outputs[0], outputs[1])
        assert np.array_equal(grads[0], grads[1])

    def test_numerical_gradcheck(self, rng):
        # The readout has no Heaviside, so true finite-difference
        # verification applies to the fused kernel directly.
        x = rng.standard_normal((6, 2, 4))
        w = rng.standard_normal((4, 3))
        assert gradcheck(lambda a, b: leaky_readout_sequence(a, b, 0.9), [x, w])


class TestKernelAPI:
    def test_lif_sequence_shapes_and_binary(self, rng):
        x = (rng.random((12, 2, 6)) < 0.4).astype(np.float32)
        w = rng.standard_normal((6, 4)).astype(np.float32) * 0.8
        out = lif_sequence(x, w, LIFParameters(beta=0.9))
        assert out.shape == (12, 2, 4)
        assert set(np.unique(out.data)).issubset({0.0, 1.0})

    def test_per_neuron_threshold_array(self, rng):
        x = (rng.random((10, 2, 6)) < 0.5).astype(np.float32)
        w = rng.standard_normal((6, 4)).astype(np.float32)
        vthr = np.array([0.5, 1.0, 1.5, 2.0], dtype=np.float32)
        out = lif_sequence(x, w, LIFParameters(beta=0.9), threshold=vthr)
        assert out.shape == (10, 2, 4)

    def test_rejects_bad_shapes(self, rng):
        w = np.zeros((6, 4), dtype=np.float32)
        with pytest.raises(ShapeError):
            lif_sequence(np.zeros((5, 6), dtype=np.float32), w, LIFParameters())
        with pytest.raises(ShapeError):
            lif_sequence(
                np.zeros((5, 2, 3), dtype=np.float32), w, LIFParameters()
            )
        with pytest.raises(ShapeError):
            lif_sequence(
                np.zeros((5, 2, 6), dtype=np.float32),
                w,
                LIFParameters(),
                w_rec=np.zeros((3, 3), dtype=np.float32),
            )

    def test_rejects_nonpositive_threshold(self, rng):
        x = np.zeros((4, 1, 6), dtype=np.float32)
        w = np.zeros((6, 4), dtype=np.float32)
        with pytest.raises(ConfigError):
            lif_sequence(x, w, LIFParameters(), threshold=-1.0)

    def test_cuba_rejects_bad_alpha(self):
        x = np.zeros((4, 1, 6), dtype=np.float32)
        w = np.zeros((6, 4), dtype=np.float32)
        with pytest.raises(ConfigError):
            cuba_lif_sequence(x, w, LIFParameters(), alpha=1.5)

    def test_single_timestep_recurrent_gradient(self, rng):
        # T=1 means the recurrent weight never fires (S[-1] = 0); its
        # gradient must be zero, not missing (regression: the fused
        # backward used to return None for it).
        layer = make_layer()
        x = (rng.random((1, 2, 10)) < 0.8).astype(np.float32)
        g_up = np.ones((1, 2, 7), dtype=np.float32)
        (out_f, grads_f), (out_s, grads_s) = run_both_paths(layer, x, g_up)
        assert np.array_equal(out_f, out_s)
        for gf, gs in zip(grads_f, grads_s):
            assert np.array_equal(gf, gs)
        assert np.array_equal(grads_f[1], np.zeros_like(grads_f[1]))

    def test_frozen_weights_skip_weight_grad(self, rng):
        x = Tensor(
            (rng.random((8, 2, 6)) < 0.4).astype(np.float32), requires_grad=True
        )
        w = Tensor(rng.standard_normal((6, 4)).astype(np.float32))
        out = lif_sequence(x, w, LIFParameters(beta=0.9))
        out.backward(np.ones(out.shape, dtype=np.float32))
        assert x.grad is not None
        assert w.grad is None


class TestDispatch:
    def test_static_controller_uses_fused(self, rng):
        layer = make_layer()
        x = (rng.random((6, 2, 10)) < 0.3).astype(np.float32)
        layer.forward(x)
        assert layer.last_forward_path == "fused"
        layer.forward(x, StaticThreshold(1.2))
        assert layer.last_forward_path == "fused"

    def test_dynamic_controller_falls_back(self, rng):
        layer = make_layer()
        x = (rng.random((6, 2, 10)) < 0.3).astype(np.float32)
        layer.forward(x, AdaptiveSpikeTimingThreshold(timesteps=6))
        assert layer.last_forward_path == "steps"
        layer.forward(
            x, PerNeuronAdaptiveThreshold(num_neurons=7, timesteps=6)
        )
        assert layer.last_forward_path == "steps"

    def test_dynamic_controller_state_advances(self, rng):
        # The fallback must actually feed the controller every timestep.
        layer = make_layer()
        x = (rng.random((9, 2, 10)) < 0.5).astype(np.float32)
        controller = AdaptiveSpikeTimingThreshold(timesteps=9)
        layer.forward(x, controller)
        assert controller.mean_spike_time is not None

    def test_static_subclass_falls_back(self, rng):
        # Subclasses may override step(); only an exact StaticThreshold
        # is provably static over the sequence.
        class Probe(StaticThreshold):
            pass

        layer = make_layer()
        x = (rng.random((5, 2, 10)) < 0.3).astype(np.float32)
        layer.forward(x, Probe(1.0))
        assert layer.last_forward_path == "steps"

    def test_use_fused_flag(self, rng):
        layer = make_layer()
        x = (rng.random((5, 2, 10)) < 0.3).astype(np.float32)
        layer.use_fused = False
        layer.forward(x)
        assert layer.last_forward_path == "steps"

    def test_env_kill_switch(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_KERNELS", "0")
        assert not fused_enabled()
        layer = make_layer()
        x = (rng.random((5, 2, 10)) < 0.3).astype(np.float32)
        layer.forward(x)
        assert layer.last_forward_path == "steps"
        monkeypatch.setenv("REPRO_FUSED_KERNELS", "1")
        assert fused_enabled()

    def test_network_set_fused(self, rng):
        net = SpikingNetwork(NetworkConfig(layer_sizes=(12, 8, 6, 4)), seed=0)
        x = (rng.random((6, 2, 12)) < 0.3).astype(np.float32)
        net.set_fused(False)
        net.forward(x)
        assert all(layer.last_forward_path == "steps" for layer in net.hidden_layers)
        assert net.readout.last_forward_path == "steps"
        net.set_fused(True)
        net.forward(x)
        assert all(layer.last_forward_path == "fused" for layer in net.hidden_layers)
        assert net.readout.last_forward_path == "fused"

    def test_network_forward_bitwise_parity(self, rng):
        net = SpikingNetwork(
            NetworkConfig(layer_sizes=(12, 8, 6, 4), recurrent=True), seed=1
        )
        x = (rng.random((10, 3, 12)) < 0.3).astype(np.float32)
        net.set_fused(True)
        fused_logits = net.forward(x).logits.data.copy()
        net.set_fused(False)
        steps_logits = net.forward(x).logits.data.copy()
        assert np.array_equal(fused_logits, steps_logits)
