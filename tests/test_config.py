"""Validation tests for the configuration dataclasses."""

import pytest

from repro.config import (
    BACKEND_CHOICES,
    ENV_FLAGS,
    PAPER_LAYER_SIZES,
    ExperimentConfig,
    NCLConfig,
    NetworkConfig,
    PretrainConfig,
    backend_selection,
    env_flag,
    env_switch,
    trace_selection,
)
from repro.errors import ConfigError


class TestNetworkConfig:
    def test_paper_defaults(self):
        cfg = NetworkConfig()
        assert cfg.layer_sizes == PAPER_LAYER_SIZES == (700, 200, 100, 50, 20)
        assert cfg.num_weight_layers == 4  # L=4 as in the paper
        assert cfg.num_hidden_layers == 3
        assert cfg.num_classes == 20
        assert cfg.num_inputs == 700

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"layer_sizes": (10, 5)},
            {"layer_sizes": (10, 0, 5)},
            {"beta": 0.0},
            {"beta": 1.0},
            {"threshold": 0.0},
            {"reset_mode": "bogus"},
            {"readout_mode": "median"},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            NetworkConfig(**kwargs)

    def test_replace(self):
        cfg = NetworkConfig().replace(beta=0.9)
        assert cfg.beta == 0.9
        assert NetworkConfig().beta == 0.95  # original untouched


class TestPretrainConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"learning_rate": 0.0},
            {"timesteps": 0},
            {"batch_size": 0},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            PretrainConfig(**kwargs)

    def test_paper_defaults(self):
        cfg = PretrainConfig()
        assert cfg.learning_rate == pytest.approx(1e-3)  # Alg. 1 line 2
        assert cfg.timesteps == 100


class TestNCLConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timesteps": 0},
            {"learning_rate_divisor": 0.0},
            {"base_learning_rate": 0.0},
            {"insertion_layer": -1},
            {"replay_fraction": 0.0},
            {"replay_fraction": 1.5},
            {"adjust_interval": 0},
            {"compression_factor": 0},
            {"epochs": 0},
            {"batch_size": 0},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            NCLConfig(**kwargs)

    def test_paper_defaults(self):
        cfg = NCLConfig()
        assert cfg.timesteps == 40  # Fig. 8 Observation B
        assert cfg.learning_rate_divisor == 100.0  # Alg. 1 line 6
        assert cfg.adjust_interval == 5  # Alg. 1 inputs
        assert cfg.insertion_layer == 3  # the headline layer


class TestExperimentConfig:
    def test_defaults_are_paper(self):
        cfg = ExperimentConfig()
        assert cfg.num_pretrain_classes == 19  # 19+1 class-incremental

    def test_rejects_bad_class_count(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(num_pretrain_classes=0)
        with pytest.raises(ConfigError):
            ExperimentConfig(num_pretrain_classes=20)

    def test_rejects_insertion_beyond_network(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(ncl=NCLConfig(insertion_layer=4))

    def test_rejects_bad_sample_counts(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(samples_per_class=0)
        with pytest.raises(ConfigError):
            ExperimentConfig(test_samples_per_class=0)

    def test_replace_revalidates(self):
        cfg = ExperimentConfig()
        with pytest.raises(ConfigError):
            cfg.replace(num_pretrain_classes=25)


class TestEnvFlags:
    """The consolidated REPRO_* environment-variable registry."""

    def test_declared_flags_are_complete(self):
        names = [flag.name for flag in ENV_FLAGS]
        assert names == [
            "REPRO_BACKEND",
            "REPRO_FUSED_KERNELS",
            "REPRO_PREFETCH",
            "REPRO_BENCH_SCALE",
            "REPRO_CACHE",
            "REPRO_TRACE",
        ]
        assert len(set(names)) == len(names)

    def test_every_flag_documented(self):
        for flag in ENV_FLAGS:
            assert flag.name.startswith("REPRO_")
            assert flag.description and flag.values and flag.default is not None

    def test_env_flag_lookup(self):
        assert env_flag("REPRO_BACKEND").default == "auto"
        with pytest.raises(ConfigError, match="declared flags"):
            env_flag("REPRO_TURBO")

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("yes", True), ("on", True),
        ("0", False), ("false", False), ("OFF", False),
    ])
    def test_env_switch_parsing(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_FUSED_KERNELS", raw)
        assert env_switch("REPRO_FUSED_KERNELS") is expected

    def test_env_switch_defaults_on_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_PREFETCH", raising=False)
        assert env_switch("REPRO_PREFETCH") is True

    def test_backend_selection_default_and_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backend_selection() == "auto"
        monkeypatch.setenv("REPRO_BACKEND", "  C  ")
        assert backend_selection() == "c"
        monkeypatch.setenv("REPRO_BACKEND", "cuda")
        with pytest.raises(ConfigError, match="REPRO_BACKEND"):
            backend_selection()

    def test_trace_selection_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert trace_selection() == (False, None)

    @pytest.mark.parametrize("raw", ["0", "false", "OFF", ""])
    def test_trace_selection_off_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACE", raw)
        assert trace_selection() == (False, None)

    @pytest.mark.parametrize("raw", ["1", "true", "ON"])
    def test_trace_selection_on_without_path(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACE", raw)
        assert trace_selection() == (True, None)

    def test_trace_selection_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "  /tmp/run/trace.jsonl  ")
        assert trace_selection() == (True, "/tmp/run/trace.jsonl")

    def test_backend_choices_match_registry_names(self):
        from repro.snn import backends

        registered = {executor.name for executor in backends.all_backends()}
        assert registered == set(BACKEND_CHOICES) - {"auto"}
