"""Integration: every figure function runs end-to-end at ci scale.

These verify plumbing (series present, axes sane, scalars computed) and
*direction* of the cheap relationships; the quantitative shapes are
asserted at bench scale by the benchmark harness.
"""

import pytest

from repro.eval import experiments
from repro.eval.scale import get_scale


@pytest.fixture(scope="module")
def ci_epochs():
    return get_scale("ci").experiment.ncl.epochs


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return experiments.run("fig2", scale="ci")

    def test_overhead_series_cover_all_layers(self, result):
        latency = result.get_series("spikinglr-latency-vs-baseline")
        assert latency.x == (0, 1, 2, 3)

    def test_sota_has_overhead_somewhere(self, result):
        assert result.scalars["max_latency_overhead"] > 1.0
        assert result.scalars["max_energy_overhead"] > 1.0


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return experiments.run("fig8", scale="ci")

    def test_four_timestep_settings(self, result):
        assert len(result.get_series("latency-normalized").x) == 4

    def test_latency_monotone(self, result):
        latency = result.get_series("latency-normalized").y
        assert all(a >= b for a, b in zip(latency, latency[1:]))
        assert latency[0] == pytest.approx(1.0)

    def test_accuracy_curves_full_length(self, result, ci_epochs):
        curve = result.get_series("old-acc-T30").y
        assert len(curve) == ci_epochs


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return experiments.run("fig10", scale="ci")

    def test_all_eight_series(self, result):
        names = {s.name for s in result.series}
        assert {"spikinglr-old", "replay4ncl-old", "spikinglr-latency",
                "replay4ncl-latency", "spikinglr-energy",
                "replay4ncl-energy"} <= names

    def test_normalization_reference(self, result):
        assert result.get_series("spikinglr-latency").y[0] == pytest.approx(1.0)
        assert result.get_series("spikinglr-energy").y[0] == pytest.approx(1.0)

    def test_replay4ncl_cheaper_everywhere(self, result):
        sota = result.get_series("spikinglr-latency").y
        ours = result.get_series("replay4ncl-latency").y
        assert all(o < s for s, o in zip(sota, ours))


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return experiments.run("fig11", scale="ci")

    def test_checkpoints_are_increasing(self, result):
        checkpoints = result.get_series("spikinglr-cumulative-latency").x
        assert list(checkpoints) == sorted(checkpoints)

    def test_cumulative_latency_monotone(self, result):
        values = result.get_series("spikinglr-cumulative-latency").y
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_scalars_present(self, result):
        assert result.scalars["per_epoch_latency_speedup"] > 1.0
        assert "energy_saving" in result.scalars


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return experiments.run("fig13", scale="ci")

    def test_triple_epoch_budget(self, result, ci_epochs):
        curve = result.get_series("replay4ncl-new-acc").y
        assert len(curve) == 3 * ci_epochs

    def test_roughness_scalars(self, result):
        assert result.scalars["spikinglr_curve_roughness"] >= 0.0
        assert result.scalars["replay4ncl_curve_roughness"] >= 0.0
