"""Tests for result containers and ASCII plotting."""

import json

import pytest

from repro.errors import ConfigError
from repro.eval import ExperimentResult, Series, ascii_bars, ascii_curve


@pytest.fixture
def result():
    r = ExperimentResult(experiment_id="figx", title="Test figure", scale="ci")
    r.add_series(Series(
        name="curve-a", x=(0, 1, 2), y=(0.1, 0.5, 0.9),
        x_label="epoch", y_label="top1",
    ))
    r.add_series(Series(
        name="curve-b", x=(0, 1, 2), y=(0.2, 0.3, 0.4),
        x_label="epoch", y_label="top1",
    ))
    r.scalars["speedup"] = 2.5
    r.add_note("a note")
    return r


class TestSeries:
    def test_length_validation(self):
        with pytest.raises(ConfigError):
            Series(name="bad", x=(1, 2), y=(1.0,))

    def test_as_dict(self):
        s = Series(name="s", x=(1,), y=(2.0,), x_label="a", y_label="b")
        d = s.as_dict()
        assert d == {"name": "s", "x_label": "a", "y_label": "b", "x": [1], "y": [2.0]}


class TestExperimentResult:
    def test_get_series(self, result):
        assert result.get_series("curve-a").y == (0.1, 0.5, 0.9)
        with pytest.raises(KeyError):
            result.get_series("missing")

    def test_format_text_contains_everything(self, result):
        text = result.format_text()
        assert "figx" in text and "speedup" in text and "curve-a" in text
        assert "a note" in text

    def test_to_csv(self, result):
        csv = result.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "series,x,y"
        assert "curve-a,0,0.1" in lines

    def test_to_json_roundtrip(self, result):
        payload = json.loads(result.to_json())
        assert payload["experiment_id"] == "figx"
        assert payload["scalars"]["speedup"] == 2.5
        assert len(payload["series"]) == 2

    def test_save(self, result, tmp_path):
        json_path, csv_path = result.save(tmp_path)
        assert json_path.exists() and csv_path.exists()
        assert json.loads(json_path.read_text())["title"] == "Test figure"

    def test_categorical_series_render_as_bars(self):
        r = ExperimentResult(experiment_id="t", title="t", scale="ci")
        r.add_series(Series(name="bars", x=("a", "b"), y=(1.0, 2.0)))
        text = r.format_text()
        assert "#" in text  # bar characters


class TestAsciiCurve:
    def test_contains_marks_and_legend(self):
        text = ascii_curve({"acc": ((0, 1, 2, 3), (0.0, 0.3, 0.6, 1.0))})
        assert "*" in text and "*=acc" in text

    def test_two_series_different_marks(self):
        text = ascii_curve({
            "a": ((0, 1), (0.0, 1.0)),
            "b": ((0, 1), (1.0, 0.0)),
        })
        assert "*=a" in text and "o=b" in text

    def test_validation(self):
        with pytest.raises(ConfigError):
            ascii_curve({})
        with pytest.raises(ConfigError):
            ascii_curve({"a": ((), ())})
        with pytest.raises(ConfigError):
            ascii_curve({"a": ((0,), (1.0,))}, width=4)

    def test_constant_series_no_crash(self):
        text = ascii_curve({"flat": ((0, 1, 2), (0.5, 0.5, 0.5))})
        assert "*" in text


class TestAsciiBars:
    def test_bar_lengths_scale(self):
        text = ascii_bars({"m": {"a": 1.0, "b": 2.0}}, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_validation(self):
        with pytest.raises(ConfigError):
            ascii_bars({})
        with pytest.raises(ConfigError):
            ascii_bars({"a": {}})

    def test_zero_values(self):
        text = ascii_bars({"m": {"a": 0.0}})
        assert "a" in text
