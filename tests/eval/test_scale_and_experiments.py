"""Tests for scale presets and the experiment registry."""

import pytest

from repro.errors import ConfigError
from repro.eval import experiments, get_scale
from repro.eval.scale import SCALES


class TestScalePresets:
    @pytest.mark.parametrize("name", sorted(SCALES))
    def test_presets_construct(self, name):
        preset = get_scale(name)
        assert preset.name == name
        assert preset.shd.num_classes == preset.experiment.network.num_classes

    def test_unknown_scale(self):
        with pytest.raises(ConfigError):
            get_scale("galactic")

    def test_timestep_ratio_invariant(self):
        # DESIGN.md: ncl/pretrain timesteps = 0.4 at every scale, so the
        # 20% latent-memory relationship is scale-invariant.
        for name in SCALES:
            preset = get_scale(name)
            ratio = preset.experiment.ncl.timesteps / preset.experiment.pretrain.timesteps
            assert ratio == pytest.approx(0.4)

    def test_paper_scale_matches_paper(self):
        preset = get_scale("paper")
        assert preset.experiment.network.layer_sizes == (700, 200, 100, 50, 20)
        assert preset.experiment.pretrain.timesteps == 100
        assert preset.experiment.ncl.timesteps == 40
        assert preset.experiment.num_pretrain_classes == 19
        assert preset.experiment.pretrain.learning_rate == pytest.approx(1e-3)

    def test_description(self):
        assert "net=" in get_scale("ci").description


class TestExperimentRegistry:
    def test_registry_covers_every_figure(self):
        expected = {"fig1a", "fig2", "fig8", "fig10", "fig11", "fig12",
                    "fig13", "headline"}
        assert set(experiments.available_experiments()) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError):
            experiments.run("fig99", scale="ci")

    def test_context_cached(self):
        a = experiments.context("ci")
        b = experiments.context("ci")
        assert a is b

    def test_pretrain_disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        experiments._CONTEXTS.clear()
        ctx1 = experiments.context("ci")
        acc1 = ctx1.pretrained.test_accuracy
        # Second context build must load from disk (empty history marks
        # a cache hit) and agree on the accuracy.
        experiments._CONTEXTS.clear()
        ctx2 = experiments.context("ci")
        assert ctx2.pretrained.test_accuracy == pytest.approx(acc1)
        assert len(ctx2.pretrained.history) == 0
        experiments._CONTEXTS.clear()


class TestFigureRuns:
    """End-to-end runs at ci scale for the cheap figures."""

    def test_fig12_runs(self):
        result = experiments.run("fig12", scale="ci")
        savings = result.get_series("memory-saving").y
        assert all(0.0 < s < 0.5 for s in savings)

    def test_fig1a_runs(self):
        result = experiments.run("fig1a", scale="ci")
        assert result.scalars["accuracy_drop"] > 0.0
        assert len(result.get_series("old-tasks").y) == \
            get_scale("ci").experiment.ncl.epochs

    def test_headline_runs(self):
        result = experiments.run("headline", scale="ci")
        for key in ("latency_speedup", "memory_saving", "energy_saving"):
            assert key in result.scalars
        assert result.scalars["latency_speedup"] > 1.0
