"""Tests for scale presets and the experiment registry."""

import pytest

from repro.errors import ConfigError
from repro.eval import experiments, get_scale
from repro.eval.scale import SCALES


class TestScalePresets:
    @pytest.mark.parametrize("name", sorted(SCALES))
    def test_presets_construct(self, name):
        preset = get_scale(name)
        assert preset.name == name
        assert preset.shd.num_classes == preset.experiment.network.num_classes

    def test_unknown_scale(self):
        with pytest.raises(ConfigError):
            get_scale("galactic")

    def test_timestep_ratio_invariant(self):
        # DESIGN.md: ncl/pretrain timesteps = 0.4 at every scale, so the
        # 20% latent-memory relationship is scale-invariant.
        for name in SCALES:
            preset = get_scale(name)
            ratio = preset.experiment.ncl.timesteps / preset.experiment.pretrain.timesteps
            assert ratio == pytest.approx(0.4)

    def test_paper_scale_matches_paper(self):
        preset = get_scale("paper")
        assert preset.experiment.network.layer_sizes == (700, 200, 100, 50, 20)
        assert preset.experiment.pretrain.timesteps == 100
        assert preset.experiment.ncl.timesteps == 40
        assert preset.experiment.num_pretrain_classes == 19
        assert preset.experiment.pretrain.learning_rate == pytest.approx(1e-3)

    def test_description(self):
        assert "net=" in get_scale("ci").description


class TestExperimentRegistry:
    def test_registry_covers_every_figure(self):
        expected = {"fig1a", "fig2", "fig8", "fig10", "fig11", "fig12",
                    "fig13", "headline"}
        assert set(experiments.available_experiments()) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError):
            experiments.run("fig99", scale="ci")

    def test_context_cached(self):
        a = experiments.context("ci")
        b = experiments.context("ci")
        assert a is b

    def test_pretrain_disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        experiments._CONTEXTS.clear()
        ctx1 = experiments.context("ci")
        acc1 = ctx1.pretrained.test_accuracy
        # Second context build must load from disk (empty history marks
        # a cache hit) and agree on the accuracy.
        experiments._CONTEXTS.clear()
        ctx2 = experiments.context("ci")
        assert ctx2.pretrained.test_accuracy == pytest.approx(acc1)
        assert len(ctx2.pretrained.history) == 0
        experiments._CONTEXTS.clear()


class TestFigureRuns:
    """End-to-end runs at ci scale for the cheap figures."""

    def test_fig12_runs(self):
        result = experiments.run("fig12", scale="ci")
        savings = result.get_series("memory-saving").y
        assert all(0.0 < s < 0.5 for s in savings)

    def test_fig1a_runs(self):
        result = experiments.run("fig1a", scale="ci")
        assert result.scalars["accuracy_drop"] > 0.0
        assert len(result.get_series("old-tasks").y) == \
            get_scale("ci").experiment.ncl.epochs

    def test_headline_runs(self):
        result = experiments.run("headline", scale="ci")
        for key in ("latency_speedup", "memory_saving", "energy_saving"):
            assert key in result.scalars
        assert result.scalars["latency_speedup"] > 1.0


class TestScenarioRunCache:
    """Scenario-level result caching in experiments.run_scenario."""

    @pytest.fixture(autouse=True)
    def isolated_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        monkeypatch.setattr(experiments, "_SCENARIO_RUNS", {})

    @pytest.fixture
    def counting(self, monkeypatch):
        """Count pass-throughs to the real scenario runner."""
        from repro import scenario as scenario_pkg

        calls = []
        real = scenario_pkg.run_scenario

        def spy(*args, **kwargs):
            calls.append((args, kwargs))
            return real(*args, **kwargs)

        # experiments.run_scenario resolves the scenario package at call
        # time, so patching the package attribute intercepts every run.
        monkeypatch.setattr(scenario_pkg, "run_scenario", spy)
        return calls

    def test_repeat_call_is_a_cache_hit(self, counting):
        first = experiments.run_scenario("single-step", "naive", scale="ci")
        second = experiments.run_scenario("single-step", "naive", scale="ci")
        assert second is first
        assert len(counting) == 1

    def test_key_components_invalidate(self, counting):
        experiments.run_scenario("single-step", "naive", scale="ci")
        # A different method re-runs instead of serving the cached result.
        other = experiments.run_scenario("single-step", "replay4ncl", scale="ci")
        assert len(counting) == 2
        assert other.method == "replay4ncl"
        # ... and a different replay spec re-runs too (distinct artefact).
        from repro.core import ReplaySpec

        import tempfile

        with tempfile.TemporaryDirectory() as root:
            stored = experiments.run_scenario(
                "single-step",
                "naive",
                scale="ci",
                replay=ReplaySpec(store_dir=f"{root}/fed", shard_samples=4),
            )
            assert len(counting) == 3
            assert stored.store_root is not None
            # Same spec again: hit.
            again = experiments.run_scenario(
                "single-step",
                "naive",
                scale="ci",
                replay=ReplaySpec(store_dir=f"{root}/fed", shard_samples=4),
            )
            assert again is stored
            assert len(counting) == 3

    def test_overrides_bypass_the_cache(self, counting):
        preset = get_scale("ci")
        experiments.run_scenario(
            "single-step", "naive", scale="ci",
            experiment=preset.experiment,
        )
        experiments.run_scenario(
            "single-step", "naive", scale="ci",
            experiment=preset.experiment,
        )
        # Both calls ran: explicit overrides are never cached.
        assert len(counting) == 2
        assert experiments._SCENARIO_RUNS == {}

    def test_scenario_instances_bypass_the_cache(self, counting):
        from repro.scenario import get as get_scenario

        instance = get_scenario("single-step")
        experiments.run_scenario(instance, "naive", scale="ci")
        assert experiments._SCENARIO_RUNS == {}
        assert len(counting) == 1

    def test_reregistration_invalidates(self, counting):
        # `register` explicitly replaces; a cached run of the old
        # implementation must not be served for the new one.
        from repro.scenario import register
        from repro.scenario.builtin import SingleStepScenario

        experiments.run_scenario("single-step", "naive", scale="ci")
        assert len(counting) == 1

        class Variant(SingleStepScenario):
            pass

        register("single-step", Variant)
        try:
            experiments.run_scenario("single-step", "naive", scale="ci")
            assert len(counting) == 2
        finally:
            register("single-step", SingleStepScenario)

    def test_deleted_store_is_not_served_from_cache(self, counting, tmp_path):
        import shutil

        from repro.core import ReplaySpec

        root = tmp_path / "fed"
        spec = ReplaySpec(store_dir=root, shard_samples=4)
        stored = experiments.run_scenario(
            "single-step", "naive", scale="ci", replay=spec
        )
        assert stored.store_root is not None
        shutil.rmtree(root)
        again = experiments.run_scenario(
            "single-step", "naive", scale="ci", replay=spec
        )
        # Re-ran (rebuilding the federation) instead of serving a result
        # whose store_root no longer existed.
        assert len(counting) == 2
        assert (root / "federation.json").exists()
        assert again is not stored

    def test_overwrite_specs_never_cache(self, counting, tmp_path):
        from repro.core import ReplaySpec

        spec = ReplaySpec(
            store_dir=tmp_path / "fed", shard_samples=4, overwrite=True
        )
        experiments.run_scenario("single-step", "naive", scale="ci", replay=spec)
        experiments.run_scenario("single-step", "naive", scale="ci", replay=spec)
        assert len(counting) == 2  # an explicit rebuild request every time
