"""Tests for the paper-targets comparison machinery."""

import json

import pytest

from repro.errors import ConfigError
from repro.eval.paper_targets import (
    PAPER_TARGETS,
    PaperTarget,
    compare_to_paper,
    format_comparison,
)


class TestTargets:
    def test_targets_cover_headline_and_figures(self):
        experiments = {t.experiment_id for t in PAPER_TARGETS}
        assert {"headline", "fig10", "fig12", "fig1a", "fig8"} <= experiments

    def test_band_targets_have_band(self):
        for target in PAPER_TARGETS:
            if target.direction == "band":
                assert target.band > 0

    def test_direction_validated(self):
        with pytest.raises(ConfigError):
            PaperTarget("x", "d", 1.0, "s", direction="vibes")


class TestCompare:
    def test_missing_results_dir(self, tmp_path):
        rows = compare_to_paper(tmp_path)
        assert all(row["measured"] is None for row in rows)

    def test_reads_saved_scalars(self, tmp_path):
        (tmp_path / "headline.json").write_text(json.dumps({
            "scalars": {
                "replay4ncl_old_acc": 0.91,
                "spikinglr_old_acc": 0.87,
                "memory_saving": 0.195,
                "energy_saving": 0.40,
                "latency_speedup": 2.3,
            }
        }))
        rows = compare_to_paper(tmp_path)
        memory_row = next(r for r in rows if "latent memory saving" in r["description"])
        assert memory_row["measured"] == pytest.approx(0.195)
        assert memory_row["in_band"] is True

    def test_off_band_detection(self, tmp_path):
        (tmp_path / "headline.json").write_text(json.dumps({
            "scalars": {"memory_saving": 0.5}
        }))
        rows = compare_to_paper(tmp_path)
        memory_row = next(r for r in rows if "latent memory saving" in r["description"])
        assert memory_row["in_band"] is False

    def test_format(self, tmp_path):
        text = format_comparison(compare_to_paper(tmp_path))
        assert "paper" in text and "missing" in text
