"""Tests for SpikeDataset and the class-incremental split."""

import numpy as np
import pytest

from repro.data import (
    EventStream,
    SpikeDataset,
    SyntheticSHD,
    SyntheticSHDConfig,
    make_class_incremental,
)
from repro.errors import DataError


@pytest.fixture(scope="module")
def generator():
    return SyntheticSHD(
        SyntheticSHDConfig(num_channels=32, num_classes=4, grid_steps=50), seed=3
    )


@pytest.fixture(scope="module")
def dataset(generator):
    return generator.generate_dataset(5, split="train")


class TestSpikeDataset:
    def test_len_and_counts(self, dataset):
        assert len(dataset) == 20
        assert dataset.class_counts() == {0: 5, 1: 5, 2: 5, 3: 5}

    def test_label_validation(self):
        stream = EventStream(np.array([0.1]), np.array([0]), 4, 1.0)
        with pytest.raises(DataError):
            SpikeDataset(streams=[stream], labels=np.array([5]), num_classes=4)

    def test_length_mismatch(self):
        stream = EventStream(np.array([0.1]), np.array([0]), 4, 1.0)
        with pytest.raises(DataError):
            SpikeDataset(streams=[stream], labels=np.array([0, 1]), num_classes=4)

    def test_to_dense_shape(self, dataset):
        dense = dataset.to_dense(25)
        assert dense.shape == (25, 20, 32)

    def test_to_dense_cached(self, dataset):
        assert dataset.to_dense(25) is dataset.to_dense(25)

    def test_subset(self, dataset):
        sub = dataset.subset([0, 5, 10])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, dataset.labels[[0, 5, 10]])

    def test_filter_classes(self, dataset):
        sub = dataset.filter_classes([1, 2])
        assert sub.present_classes == [1, 2]
        assert len(sub) == 10

    def test_sample_fraction_stratified(self, dataset):
        rng = np.random.default_rng(0)
        sub = dataset.sample_fraction(0.4, rng)
        assert sub.class_counts() == {0: 2, 1: 2, 2: 2, 3: 2}

    def test_sample_fraction_keeps_every_class(self, dataset):
        rng = np.random.default_rng(0)
        sub = dataset.sample_fraction(0.01, rng)
        assert sub.present_classes == [0, 1, 2, 3]  # at least 1 each

    def test_sample_fraction_validation(self, dataset):
        with pytest.raises(DataError):
            dataset.sample_fraction(0.0, np.random.default_rng(0))

    def test_concat(self, dataset):
        merged = dataset.concat(dataset.subset([0]))
        assert len(merged) == 21

    def test_concat_class_mismatch(self, dataset):
        other = SpikeDataset(
            streams=dataset.streams[:1], labels=dataset.labels[:1], num_classes=9
        )
        with pytest.raises(DataError):
            dataset.concat(other)


class TestClassIncremental:
    def test_default_split_is_n_minus_one(self, generator):
        split = make_class_incremental(generator, 4, 2)
        assert split.old_classes == (0, 1, 2)
        assert split.new_classes == (3,)

    def test_sizes(self, generator):
        split = make_class_incremental(generator, 4, 2)
        assert len(split.pretrain_train) == 12
        assert len(split.pretrain_test) == 6
        assert len(split.new_train) == 4
        assert len(split.new_test) == 2

    def test_test_all_combines(self, generator):
        split = make_class_incremental(generator, 4, 2)
        assert len(split.test_all) == 8
        assert split.test_all.present_classes == [0, 1, 2, 3]

    def test_custom_pretrain_count(self, generator):
        split = make_class_incremental(generator, 2, 1, num_pretrain_classes=2)
        assert split.old_classes == (0, 1)
        assert split.new_classes == (2, 3)

    def test_label_space_preserved(self, generator):
        # Labels stay global; no remapping.
        split = make_class_incremental(generator, 2, 1)
        assert split.new_train.labels.min() == 3
        assert split.pretrain_train.num_classes == 4

    def test_invalid_pretrain_count(self, generator):
        with pytest.raises(DataError):
            make_class_incremental(generator, 2, 1, num_pretrain_classes=0)
        with pytest.raises(DataError):
            make_class_incremental(generator, 2, 1, num_pretrain_classes=4)

    def test_describe_mentions_counts(self, generator):
        split = make_class_incremental(generator, 4, 2)
        text = split.describe()
        assert "3 old classes" in text and "12 train" in text
