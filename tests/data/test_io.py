"""Tests for dataset save/load."""

import numpy as np
import pytest

from repro.data import (
    SpikeDataset,
    SyntheticSHD,
    SyntheticSHDConfig,
    load_dataset,
    save_dataset,
)
from repro.errors import DataError


@pytest.fixture(scope="module")
def dataset():
    gen = SyntheticSHD(
        SyntheticSHDConfig(num_channels=24, num_classes=3, grid_steps=40), seed=2
    )
    return gen.generate_dataset(4, split="train")


class TestRoundtrip:
    def test_exact_roundtrip(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "ds.npz")
        loaded = load_dataset(path)
        assert len(loaded) == len(dataset)
        assert loaded.num_classes == dataset.num_classes
        np.testing.assert_array_equal(loaded.labels, dataset.labels)
        for a, b in zip(dataset.streams, loaded.streams):
            np.testing.assert_allclose(a.times, b.times)
            np.testing.assert_array_equal(a.channels, b.channels)
            assert a.duration == b.duration
            assert a.num_channels == b.num_channels

    def test_dense_rasters_identical(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "ds")
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.to_dense(20), dataset.to_dense(20))

    def test_suffix_appended(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "noext")
        assert path.suffix == ".npz"

    def test_empty_streams_sample_ok(self, tmp_path):
        from repro.data import EventStream

        empty = EventStream(np.empty(0), np.empty(0, dtype=int), 8, 1.0)
        ds = SpikeDataset(streams=[empty], labels=np.array([0]), num_classes=2)
        loaded = load_dataset(save_dataset(ds, tmp_path / "empty"))
        assert loaded.streams[0].num_events == 0


class TestValidation:
    def test_refuses_empty_dataset(self, tmp_path):
        ds = SpikeDataset(streams=[], labels=np.empty(0, dtype=int), num_classes=2)
        with pytest.raises(DataError):
            save_dataset(ds, tmp_path / "x")

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_dataset(tmp_path / "nope.npz")

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(DataError):
            load_dataset(path)

    def test_version_check(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "v")
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["format_version"] = np.asarray(999)
        np.savez(path, **payload)
        with pytest.raises(DataError):
            load_dataset(path)
