"""Tests for the EventStream address-event representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import EventStream
from repro.errors import DataError


def make_stream(times, channels, num_channels=10, duration=1.0):
    return EventStream(
        times=np.asarray(times, dtype=float),
        channels=np.asarray(channels, dtype=int),
        num_channels=num_channels,
        duration=duration,
    )


class TestValidation:
    def test_basic_construction(self):
        s = make_stream([0.1, 0.5], [2, 7])
        assert s.num_events == 2

    def test_mismatched_lengths(self):
        with pytest.raises(DataError):
            make_stream([0.1, 0.2], [1])

    def test_time_out_of_range(self):
        with pytest.raises(DataError):
            make_stream([1.0], [0])  # duration is exclusive

    def test_negative_time(self):
        with pytest.raises(DataError):
            make_stream([-0.1], [0])

    def test_channel_out_of_range(self):
        with pytest.raises(DataError):
            make_stream([0.1], [10])

    def test_bad_duration(self):
        with pytest.raises(DataError):
            make_stream([0.1], [0], duration=0.0)

    def test_bad_num_channels(self):
        with pytest.raises(DataError):
            make_stream([], [], num_channels=0)

    def test_empty_stream_ok(self):
        s = make_stream([], [])
        assert s.num_events == 0
        assert s.mean_rate() == 0.0


class TestToDense:
    def test_shape(self):
        raster = make_stream([0.1], [3]).to_dense(20)
        assert raster.shape == (20, 10)

    def test_event_placement(self):
        raster = make_stream([0.55], [3]).to_dense(10)
        assert raster[5, 3] == 1.0
        assert raster.sum() == 1.0

    def test_multiple_events_same_cell_clip(self):
        raster = make_stream([0.51, 0.52], [3, 3]).to_dense(10)
        assert raster[5, 3] == 1.0
        assert raster.sum() == 1.0

    def test_coarser_binning_merges(self):
        s = make_stream([0.12, 0.18], [3, 3])
        assert s.to_dense(100).sum() == 2.0
        assert s.to_dense(10).sum() == 1.0  # both fall into bin 1

    def test_invalid_timesteps(self):
        with pytest.raises(DataError):
            make_stream([0.1], [0]).to_dense(0)

    @given(
        timesteps=st.integers(min_value=1, max_value=64),
        n_events=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_dense_spike_count_never_exceeds_events(self, timesteps, n_events):
        rng = np.random.default_rng(timesteps * 1000 + n_events)
        times = rng.random(n_events) * 0.999
        channels = rng.integers(0, 10, n_events)
        s = make_stream(times, channels)
        raster = s.to_dense(timesteps)
        assert raster.sum() <= n_events
        assert set(np.unique(raster)).issubset({0.0, 1.0})


class TestRoundTrip:
    def test_from_dense_roundtrip(self):
        rng = np.random.default_rng(0)
        raster = (rng.random((16, 10)) < 0.2).astype(np.float32)
        stream = EventStream.from_dense(raster)
        np.testing.assert_array_equal(stream.to_dense(16), raster)

    def test_from_dense_rejects_bad_rank(self):
        with pytest.raises(DataError):
            EventStream.from_dense(np.zeros(5))

    def test_time_scaled(self):
        s = make_stream([0.2, 0.4], [0, 1])
        scaled = s.time_scaled(2.0)
        np.testing.assert_allclose(scaled.times, [0.4, 0.8])
        assert scaled.duration == 2.0

    def test_time_scaled_rejects_nonpositive(self):
        with pytest.raises(DataError):
            make_stream([0.1], [0]).time_scaled(0.0)
