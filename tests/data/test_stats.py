"""Tests for spike-train statistics."""

import numpy as np
import pytest

from repro.data import (
    SyntheticSHD,
    SyntheticSHDConfig,
    class_confusability,
    dataset_stats,
    raster_stats,
)
from repro.errors import DataError


@pytest.fixture(scope="module")
def dataset():
    gen = SyntheticSHD(
        SyntheticSHDConfig(num_channels=32, num_classes=3, grid_steps=50), seed=1
    )
    return gen.generate_dataset(6, split="train")


class TestRasterStats:
    def test_uniform_raster(self):
        raster = np.ones((10, 4), dtype=np.float32)
        stats = raster_stats(raster)
        assert stats.density == 1.0
        assert stats.spikes_per_sample == 40.0
        assert stats.active_channel_fraction == 1.0
        assert stats.temporal_centroid == pytest.approx(0.5)
        assert stats.burstiness == pytest.approx(0.0)

    def test_empty_raster(self):
        stats = raster_stats(np.zeros((10, 4), dtype=np.float32))
        assert stats.density == 0.0
        assert stats.temporal_centroid == 0.5  # neutral default

    def test_early_spikes_pull_centroid_down(self):
        raster = np.zeros((10, 2), dtype=np.float32)
        raster[0, :] = 1.0
        assert raster_stats(raster).temporal_centroid == pytest.approx(0.0)

    def test_late_spikes_push_centroid_up(self):
        raster = np.zeros((10, 2), dtype=np.float32)
        raster[9, :] = 1.0
        assert raster_stats(raster).temporal_centroid == pytest.approx(1.0)

    def test_bursty_train_has_higher_cv(self):
        uniform = np.ones((10, 2), dtype=np.float32)
        bursty = np.zeros((10, 2), dtype=np.float32)
        bursty[3:5] = 1.0
        assert raster_stats(bursty).burstiness > raster_stats(uniform).burstiness

    def test_batched_input(self):
        raster = np.ones((5, 3, 4), dtype=np.float32)
        assert raster_stats(raster).spikes_per_sample == 20.0

    def test_rejects_bad_rank(self):
        with pytest.raises(DataError):
            raster_stats(np.zeros(4))


class TestDatasetStats:
    def test_per_class_keys(self, dataset):
        stats = dataset_stats(dataset, timesteps=25)
        assert sorted(stats) == [0, 1, 2]

    def test_synthetic_data_is_sparse_but_alive(self, dataset):
        for stats in dataset_stats(dataset, timesteps=25).values():
            assert 0.001 < stats.density < 0.5
            assert stats.active_channel_fraction > 0.2


class TestConfusability:
    def test_diagonal_is_one(self, dataset):
        matrix = class_confusability(dataset, timesteps=25)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_symmetric(self, dataset):
        matrix = class_confusability(dataset, timesteps=25)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-9)

    def test_coarser_binning_weakly_raises_confusability(self, dataset):
        fine = class_confusability(dataset, timesteps=50)
        coarse = class_confusability(dataset, timesteps=2)
        off = ~np.eye(3, dtype=bool)
        assert coarse[off].mean() >= fine[off].mean() - 0.05
