"""Tests for the synthetic SHD generator."""

import numpy as np
import pytest

from repro.data import SyntheticSHD, SyntheticSHDConfig
from repro.errors import ConfigError, DataError


@pytest.fixture(scope="module")
def generator():
    return SyntheticSHD(
        SyntheticSHDConfig(num_channels=64, num_classes=5, grid_steps=100), seed=7
    )


class TestConfigValidation:
    def test_defaults_valid(self):
        cfg = SyntheticSHDConfig()
        assert cfg.num_channels == 700 and cfg.num_classes == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_channels": 0},
            {"num_classes": 1},
            {"trajectories_per_class": 0},
            {"peak_rate": 0.0},
            {"background_rate": -1.0},
            {"duration": 0.0},
            {"channel_bandwidth": 0.6},
            {"num_anchors": 1},
            {"grid_steps": 5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            SyntheticSHDConfig(**kwargs)


class TestDeterminism:
    def test_same_seed_same_events(self, generator):
        other = SyntheticSHD(generator.config, seed=7)
        a = generator.generate(1, 3)
        b = other.generate(1, 3)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.channels, b.channels)

    def test_different_samples_differ(self, generator):
        a = generator.generate(1, 0)
        b = generator.generate(1, 1)
        assert a.num_events != b.num_events or not np.array_equal(a.times, b.times)

    def test_different_seeds_differ(self, generator):
        other = SyntheticSHD(generator.config, seed=8)
        a = generator.generate(0, 0)
        b = other.generate(0, 0)
        assert not np.array_equal(a.times, b.times)

    def test_prototypes_deterministic(self, generator):
        other = SyntheticSHD(generator.config, seed=7)
        assert generator.class_prototype(2) == other.class_prototype(2)

    def test_anchors_shared_across_classes(self, generator):
        anchors = set(np.round(generator.anchors, 6))
        for c in range(generator.config.num_classes):
            for traj in generator.class_prototype(c):
                assert round(traj.start_channel, 6) in anchors
                assert round(traj.end_channel, 6) in anchors


class TestStatistics:
    def test_stream_shape(self, generator):
        s = generator.generate(0, 0)
        assert s.num_channels == 64
        assert s.duration == generator.config.duration

    def test_sparse_but_active(self, generator):
        s = generator.generate(0, 0)
        density = s.to_dense(100).mean()
        assert 0.005 < density < 0.4  # sparse like SHD, but not silent

    def test_intensity_field_nonnegative(self, generator):
        field = generator.intensity_field(0)
        assert field.min() >= generator.config.background_rate
        assert field.shape == (100, 64)

    def test_intensity_fields_differ_between_classes(self, generator):
        a = generator.intensity_field(0)
        b = generator.intensity_field(1)
        assert not np.allclose(a, b)

    def test_sample_variability_changes_field(self, generator):
        clean = generator.intensity_field(0)
        jittered = generator.intensity_field(0, rng=np.random.default_rng(0))
        assert not np.allclose(clean, jittered)

    def test_classes_temporally_separable(self, generator):
        # Rasters of different classes must differ far more across classes
        # than within a class (a weak separability sanity check).
        def mean_raster(c):
            rasters = [generator.generate(c, i).to_dense(50) for i in range(8)]
            return np.mean(rasters, axis=0)

        m0, m1 = mean_raster(0), mean_raster(1)
        between = np.abs(m0 - m1).sum()
        m0b = np.mean([generator.generate(0, 100 + i).to_dense(50) for i in range(8)], axis=0)
        within = np.abs(m0 - m0b).sum()
        assert between > 1.5 * within


class TestDatasetGeneration:
    def test_shapes_and_labels(self, generator):
        ds = generator.generate_dataset(4, split="train")
        assert len(ds) == 20
        assert ds.class_counts() == {c: 4 for c in range(5)}

    def test_class_filter(self, generator):
        ds = generator.generate_dataset(3, split="train", classes=[1, 3])
        assert ds.present_classes == [1, 3]

    def test_train_test_disjoint(self, generator):
        train = generator.generate_dataset(2, split="train")
        test = generator.generate_dataset(2, split="test")
        assert not np.array_equal(train.streams[0].times, test.streams[0].times)

    def test_rejects_bad_split(self, generator):
        with pytest.raises(DataError):
            generator.generate_dataset(2, split="validation")

    def test_rejects_bad_counts(self, generator):
        with pytest.raises(DataError):
            generator.generate_dataset(0)

    def test_rejects_bad_class(self, generator):
        with pytest.raises(DataError):
            generator.generate(99, 0)
        with pytest.raises(DataError):
            generator.generate_dataset(1, classes=[99])
