"""Tests for DataLoader and raster transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DataLoader,
    channel_dropout,
    drift_dataset,
    merge_rasters,
    rebin_raster,
    time_jitter,
)
from repro.errors import DataError


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    inputs = (rng.random((10, 23, 6)) < 0.3).astype(np.float32)
    labels = rng.integers(0, 4, 23)
    return inputs, labels


class TestDataLoader:
    def test_batch_shapes(self, data):
        inputs, labels = data
        loader = DataLoader(inputs, labels, batch_size=8, shuffle=False)
        batches = list(loader)
        assert len(batches) == 3
        assert batches[0][0].shape == (10, 8, 6)
        assert batches[2][0].shape == (10, 7, 6)  # remainder batch

    def test_len(self, data):
        inputs, labels = data
        assert len(DataLoader(inputs, labels, batch_size=8)) == 3

    def test_covers_all_samples_once(self, data):
        inputs, labels = data
        loader = DataLoader(inputs, labels, batch_size=5, shuffle=True,
                            rng=np.random.default_rng(1))
        seen = np.concatenate([lbl for _, lbl in loader])
        assert sorted(seen.tolist()) == sorted(labels.tolist())

    def test_shuffle_changes_order(self, data):
        inputs, labels = np.arange(230).reshape(10, 23, 1).astype(np.float32), data[1]
        loader = DataLoader(inputs, labels, batch_size=23, shuffle=True,
                            rng=np.random.default_rng(2))
        first = next(iter(loader))[0]
        assert not np.array_equal(first, inputs)

    def test_no_shuffle_preserves_order(self, data):
        inputs, labels = data
        loader = DataLoader(inputs, labels, batch_size=23, shuffle=False)
        batch_inputs, batch_labels = next(iter(loader))
        np.testing.assert_array_equal(batch_inputs, inputs)
        np.testing.assert_array_equal(batch_labels, labels)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"inputs": np.zeros((10, 5)), "labels": np.zeros(5, dtype=int)},
            {"inputs": np.zeros((10, 5, 3)), "labels": np.zeros(4, dtype=int)},
            {"inputs": np.zeros((10, 5, 3)), "labels": np.zeros(5, dtype=int), "batch_size": 0},
        ],
    )
    def test_validation(self, kwargs):
        kwargs.setdefault("batch_size", 2)
        with pytest.raises(DataError):
            DataLoader(**kwargs)


class TestRebinRaster:
    def test_identity(self):
        raster = np.eye(4, dtype=np.float32)
        out = rebin_raster(raster, 4)
        np.testing.assert_array_equal(out, raster)
        assert out is not raster  # always a copy

    def test_downsample_or_merges(self):
        raster = np.zeros((4, 1), dtype=np.float32)
        raster[0] = raster[1] = 1.0
        out = rebin_raster(raster, 2)
        np.testing.assert_array_equal(out[:, 0], [1.0, 0.0])

    def test_paper_fig7_example(self):
        # Fig. 7: the compressed stream is the first frame of each pair.
        original = np.array([1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 1, 1, 0],
                            dtype=np.float32)[:, None]
        # OR-rebin differs from Fig. 7's keep-first subsampling; both
        # halve the length.
        out = rebin_raster(original, 7)
        assert out.shape == (7, 1)

    def test_upsample_zero_stuffs(self):
        raster = np.array([[1.0], [1.0]], dtype=np.float32)
        out = rebin_raster(raster, 4)
        np.testing.assert_array_equal(out[:, 0], [1.0, 0.0, 1.0, 0.0])

    def test_validation(self):
        with pytest.raises(DataError):
            rebin_raster(np.zeros((4, 2)), 0)

    @given(
        timesteps=st.integers(min_value=1, max_value=50),
        new_timesteps=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_rebin_preserves_binarity_and_bounds(self, timesteps, new_timesteps):
        rng = np.random.default_rng(timesteps * 100 + new_timesteps)
        raster = (rng.random((timesteps, 3)) < 0.4).astype(np.float32)
        out = rebin_raster(raster, new_timesteps)
        assert out.shape == (new_timesteps, 3)
        assert set(np.unique(out)).issubset({0.0, 1.0})
        # OR-merge can only lose spikes when downsampling, never invent:
        assert out.sum() <= raster.sum()
        if new_timesteps >= timesteps:
            assert out.sum() == raster.sum()

    @given(timesteps=st.integers(min_value=2, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_downsample_channel_marginal_monotone(self, timesteps):
        # A channel with at least one spike keeps at least one after rebin.
        rng = np.random.default_rng(timesteps)
        raster = (rng.random((timesteps, 5)) < 0.3).astype(np.float32)
        out = rebin_raster(raster, max(1, timesteps // 2))
        active_before = raster.sum(axis=0) > 0
        active_after = out.sum(axis=0) > 0
        np.testing.assert_array_equal(active_before, active_after)


class TestAugmentations:
    def test_time_jitter_preserves_count_modulo_edges(self):
        raster = np.zeros((10, 2), dtype=np.float32)
        raster[5, 0] = 1.0
        out = time_jitter(raster, 2, np.random.default_rng(0))
        assert out.sum() == 1.0

    def test_time_jitter_zero_shift(self):
        raster = np.ones((4, 2), dtype=np.float32)
        out = time_jitter(raster, 0, np.random.default_rng(0))
        np.testing.assert_array_equal(out, raster)

    def test_time_jitter_validation(self):
        with pytest.raises(DataError):
            time_jitter(np.zeros((4, 2)), -1, np.random.default_rng(0))

    def test_channel_dropout_silences_whole_channels(self):
        raster = np.ones((6, 50), dtype=np.float32)
        out = channel_dropout(raster, 0.5, np.random.default_rng(0))
        col_sums = out.sum(axis=0)
        assert set(np.unique(col_sums)).issubset({0.0, 6.0})
        assert 0.0 in col_sums  # with p=.5 over 50 channels, some dropped

    def test_channel_dropout_validation(self):
        with pytest.raises(DataError):
            channel_dropout(np.zeros((4, 2)), 1.0, np.random.default_rng(0))

    def test_merge_rasters(self):
        a = np.zeros((5, 3, 4), dtype=np.float32)
        b = np.ones((5, 2, 4), dtype=np.float32)
        merged = merge_rasters(a, b)
        assert merged.shape == (5, 5, 4)
        np.testing.assert_array_equal(merged[:, 3:], b)

    def test_merge_rasters_validation(self):
        with pytest.raises(DataError):
            merge_rasters(np.zeros((5, 3, 4)), np.zeros((6, 3, 4)))
        with pytest.raises(DataError):
            merge_rasters(np.zeros((5, 3, 4)), np.zeros((5, 3, 5)))
        with pytest.raises(DataError):
            merge_rasters(np.zeros((5, 3)), np.zeros((5, 3)))


class TestDriftDataset:
    @pytest.fixture
    def dataset(self):
        from repro.data import SyntheticSHD, SyntheticSHDConfig

        generator = SyntheticSHD(
            SyntheticSHDConfig(
                num_channels=16, num_classes=3, grid_steps=20, peak_rate=90.0
            ),
            seed=0,
        )
        return generator.generate_dataset(3, split="train")

    def test_labels_and_geometry_preserved(self, dataset):
        drifted = drift_dataset(
            dataset,
            np.random.default_rng(0),
            grid_steps=20,
            max_shift=2,
            dropout_p=0.2,
        )
        np.testing.assert_array_equal(drifted.labels, dataset.labels)
        assert len(drifted) == len(dataset)
        assert drifted.streams[0].num_channels == dataset.streams[0].num_channels
        assert drifted.num_classes == dataset.num_classes

    def test_identity_when_no_drift(self, dataset):
        # No jitter, no dropout, no blur: the raster round-trip through
        # EventStream.from_dense is exact at the grid resolution.
        same = drift_dataset(dataset, np.random.default_rng(0), grid_steps=20)
        np.testing.assert_array_equal(same.to_dense(20), dataset.to_dense(20))

    def test_drift_changes_rasters_deterministically(self, dataset):
        kwargs = dict(grid_steps=20, max_shift=3, dropout_p=0.3, blur_steps=10)
        a = drift_dataset(dataset, np.random.default_rng(7), **kwargs)
        b = drift_dataset(dataset, np.random.default_rng(7), **kwargs)
        c = drift_dataset(dataset, np.random.default_rng(8), **kwargs)
        np.testing.assert_array_equal(a.to_dense(20), b.to_dense(20))
        assert not np.array_equal(a.to_dense(20), dataset.to_dense(20))
        assert not np.array_equal(a.to_dense(20), c.to_dense(20))

    def test_blur_merges_events(self, dataset):
        blurred = drift_dataset(
            dataset, np.random.default_rng(0), grid_steps=20, blur_steps=5
        )
        # OR-reduced rebinning can only keep or merge spikes.
        assert blurred.to_dense(20).sum() <= dataset.to_dense(20).sum()

    def test_validation(self, dataset):
        rng = np.random.default_rng(0)
        with pytest.raises(DataError, match="grid_steps"):
            drift_dataset(dataset, rng, grid_steps=0)
        with pytest.raises(DataError, match="blur_steps"):
            drift_dataset(dataset, rng, grid_steps=20, blur_steps=21)
        with pytest.raises(DataError, match="max_shift"):
            drift_dataset(dataset, rng, grid_steps=20, max_shift=-1)
        with pytest.raises(DataError):
            drift_dataset(dataset, rng, grid_steps=20, dropout_p=1.0)
