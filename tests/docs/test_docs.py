"""Docs-vs-code conformance: the documentation cannot drift silently.

Three guarantees:

1. the environment-variable table in ``docs/env.md`` matches the
   authoritative registry ``repro.config.ENV_FLAGS`` field for field;
2. every runnable snippet under ``docs/snippets/`` executes cleanly
   (they are included verbatim into the rendered pages);
3. every page the ``mkdocs.yml`` nav references exists, and every
   declared flag is mentioned in both the docs reference and README;
4. every registered lint rule (id and name) is documented in
   ``docs/lint.md``, so the rule catalog cannot drift from the code.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.config import ENV_FLAGS

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs"
SNIPPETS = sorted((DOCS / "snippets").glob("*.py"))

_CELL_SPLIT = re.compile(r"(?<!\\)\|")


def _env_table_rows():
    """Parse the flag table in docs/env.md into dicts keyed by column."""
    rows = []
    for line in (DOCS / "env.md").read_text().splitlines():
        if not line.startswith("| `REPRO_"):
            continue
        cells = [cell.strip() for cell in _CELL_SPLIT.split(line)[1:-1]]
        assert len(cells) == 4, f"malformed table row: {line}"
        name, default, values, description = (
            cell.replace("\\|", "|").strip("`") for cell in cells
        )
        rows.append(
            {
                "name": name,
                "default": default,
                "values": values,
                "description": description,
            }
        )
    return rows


class TestEnvReference:
    def test_table_matches_declarations(self):
        rows = _env_table_rows()
        assert [row["name"] for row in rows] == [flag.name for flag in ENV_FLAGS]
        for row, flag in zip(rows, ENV_FLAGS):
            assert row["default"] == flag.default, flag.name
            assert row["values"] == flag.values, flag.name
            assert row["description"] == flag.description, flag.name

    def test_readme_mentions_every_flag(self):
        readme = (REPO / "README.md").read_text()
        for flag in ENV_FLAGS:
            assert flag.name in readme, f"{flag.name} missing from README.md"

    def test_docs_reference_mentions_every_flag(self):
        env_md = (DOCS / "env.md").read_text()
        for flag in ENV_FLAGS:
            assert flag.name in env_md, f"{flag.name} missing from docs/env.md"


class TestSnippets:
    def test_snippets_exist(self):
        assert SNIPPETS, "docs/snippets/ must hold at least one runnable example"

    @pytest.mark.parametrize("snippet", SNIPPETS, ids=lambda p: p.name)
    def test_snippet_runs(self, snippet):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(REPO / "src"), env.get("PYTHONPATH")])
        )
        completed = subprocess.run(
            [sys.executable, str(snippet)],
            capture_output=True,
            text=True,
            cwd=REPO,
            env=env,
            timeout=120,
        )
        assert completed.returncode == 0, (
            f"{snippet.name} failed:\n{completed.stdout}\n{completed.stderr}"
        )

    @pytest.mark.parametrize("snippet", SNIPPETS, ids=lambda p: p.name)
    def test_snippet_is_included_in_a_page(self, snippet):
        include = f'--8<-- "docs/snippets/{snippet.name}"'
        assert any(
            include in page.read_text() for page in DOCS.glob("*.md")
        ), f"{snippet.name} is not included by any docs page"


class TestLintReference:
    def test_every_rule_documented(self):
        from repro.lint import all_rules

        lint_md = (DOCS / "lint.md").read_text()
        for rule in all_rules():
            assert rule.id in lint_md, f"{rule.id} missing from docs/lint.md"
            assert rule.name in lint_md, (
                f"{rule.id} name {rule.name!r} missing from docs/lint.md"
            )

    def test_catalog_table_matches_registry(self):
        from repro.lint import rule_ids

        lint_md = (DOCS / "lint.md").read_text()
        table_ids = re.findall(r"^\| `(RPL\d{3})` \|", lint_md, flags=re.MULTILINE)
        assert table_ids == list(rule_ids()), (
            "docs/lint.md rule table out of sync with the registry"
        )

    def test_readme_mentions_linter(self):
        readme = (REPO / "README.md").read_text()
        assert "repro lint" in readme
        assert "docs/lint.md" in readme


class TestSitePages:
    def test_nav_pages_exist(self):
        nav_entries = re.findall(
            r"^\s+- [^:]+:\s+(\S+\.md)\s*$",
            (REPO / "mkdocs.yml").read_text(),
            flags=re.MULTILINE,
        )
        assert nav_entries, "mkdocs.yml nav is empty"
        for entry in nav_entries:
            assert (DOCS / entry).exists(), f"nav references missing page {entry}"

    def test_pages_cover_required_topics(self):
        required = {
            "architecture.md": ["repro.autograd", "repro.snn", "repro.eval"],
            "backends.md": ["SequenceExecutor", "REPRO_BACKEND", "parity"],
            "reproducibility.md": ["bitwise", "associat", "-ffp-contract=off"],
            "replay_service.md": [
                "flock",
                "tombstone",
                "generation",
                "ReplayService",
                "max_open_members",
                "return_inverse",
            ],
        }
        for page, needles in required.items():
            text = (DOCS / page).read_text()
            for needle in needles:
                assert needle in text, f"{page} must document {needle!r}"
