"""Tests for training callbacks."""

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.errors import ConfigError
from repro.snn import SpikingNetwork
from repro.training.callbacks import BestCheckpoint, CallbackList, EarlyStopping
from repro.training.metrics import EpochRecord


def record(epoch, loss=1.0, old=None):
    return EpochRecord(epoch=epoch, loss=loss, old_task_accuracy=old)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(metric="loss", patience=2)
        stopper(record(0, loss=1.0))
        stopper(record(1, loss=1.0))
        assert not stopper.should_stop
        stopper(record(2, loss=1.0))
        assert stopper.should_stop

    def test_improvement_resets_patience(self):
        stopper = EarlyStopping(metric="loss", patience=2)
        stopper(record(0, loss=1.0))
        stopper(record(1, loss=1.0))
        stopper(record(2, loss=0.5))  # improvement
        stopper(record(3, loss=0.5))
        assert not stopper.should_stop

    def test_max_mode(self):
        stopper = EarlyStopping(metric="old_task_accuracy", patience=1, mode="max")
        stopper(record(0, old=0.5))
        stopper(record(1, old=0.4))
        assert stopper.should_stop

    def test_min_delta(self):
        stopper = EarlyStopping(metric="loss", patience=1, min_delta=0.1)
        stopper(record(0, loss=1.0))
        stopper(record(1, loss=0.95))  # improvement below min_delta
        assert stopper.should_stop

    def test_missing_metric_ignored(self):
        stopper = EarlyStopping(metric="old_task_accuracy", patience=1)
        stopper(record(0, old=None))
        assert not stopper.should_stop

    def test_validation(self):
        with pytest.raises(ConfigError):
            EarlyStopping(patience=0)
        with pytest.raises(ConfigError):
            EarlyStopping(mode="sideways")
        with pytest.raises(ConfigError):
            EarlyStopping(min_delta=-1.0)

    def test_unknown_metric_rejected_at_construction(self):
        # A typo'd metric used to silently observe nothing forever.
        with pytest.raises(ConfigError, match="EpochRecord field"):
            EarlyStopping(metric="los")

    @pytest.mark.parametrize(
        "metric",
        ["loss", "old_task_accuracy", "new_task_accuracy", "overall_accuracy"],
    )
    def test_every_record_field_accepted(self, metric):
        assert EarlyStopping(metric=metric).metric == metric


class TestBestCheckpoint:
    @pytest.fixture
    def network(self):
        return SpikingNetwork(NetworkConfig(layer_sizes=(8, 6, 4, 3), beta=0.9), seed=0)

    def test_captures_best_and_restores(self, network):
        checkpoint = BestCheckpoint(network, metric="loss", mode="min")
        checkpoint(record(0, loss=1.0))
        best_weights = network.hidden_layers[0].w_ff.data.copy()
        # Worsen: mutate weights, report a worse loss -> not captured.
        network.hidden_layers[0].w_ff.data += 1.0
        checkpoint(record(1, loss=2.0))
        checkpoint.restore()
        np.testing.assert_array_equal(
            network.hidden_layers[0].w_ff.data, best_weights
        )
        assert checkpoint.best_epoch == 0

    def test_max_mode_tracks_accuracy(self, network):
        checkpoint = BestCheckpoint(network, metric="old_task_accuracy", mode="max")
        checkpoint(record(0, old=0.5))
        checkpoint(record(1, old=0.9))
        assert checkpoint.best == 0.9
        assert checkpoint.best_epoch == 1

    def test_restore_without_snapshot_raises(self, network):
        with pytest.raises(ConfigError):
            BestCheckpoint(network).restore()

    def test_validation(self, network):
        with pytest.raises(ConfigError):
            BestCheckpoint(network, mode="sideways")
        with pytest.raises(ConfigError, match="EpochRecord field"):
            BestCheckpoint(network, metric="accuracy")


class TestCallbackList:
    def test_fans_out(self):
        seen = []
        calls = CallbackList([lambda r: seen.append(("a", r.epoch)),
                              lambda r: seen.append(("b", r.epoch))])
        calls(record(3))
        assert seen == [("a", 3), ("b", 3)]
