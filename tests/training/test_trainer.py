"""Tests for the BPTT Trainer."""

import numpy as np
import pytest

from repro.autograd import tensor
from repro.config import NetworkConfig
from repro.errors import ConfigError
from repro.snn import SpikingNetwork
from repro.training import Adam, Trainer, TrainerConfig, top1_accuracy
from repro.training.losses import spike_count_regularizer


@pytest.fixture
def setup():
    cfg = NetworkConfig(layer_sizes=(16, 12, 8, 4), beta=0.9)
    net = SpikingNetwork(cfg, seed=0)
    rng = np.random.default_rng(0)
    inputs = (rng.random((10, 24, 16)) < 0.3).astype(np.float32)
    labels = rng.integers(0, 4, 24)
    return net, inputs, labels


class TestTrainerConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TrainerConfig(epochs=0, batch_size=4)
        with pytest.raises(ConfigError):
            TrainerConfig(epochs=1, batch_size=0)
        with pytest.raises(ConfigError):
            TrainerConfig(epochs=1, batch_size=4, start_layer=-1)
        with pytest.raises(ConfigError):
            TrainerConfig(epochs=1, batch_size=4, grad_clip=0.0)


class TestTrainEpoch:
    def test_loss_decreases(self, setup):
        net, inputs, labels = setup
        opt = Adam(net.trainable_parameters(), learning_rate=2e-3)
        trainer = Trainer(net, opt, TrainerConfig(epochs=1, batch_size=12),
                          rng=np.random.default_rng(1))
        first = trainer.train_epoch(inputs, labels)
        for _ in range(10):
            last = trainer.train_epoch(inputs, labels)
        assert last < first

    def test_weights_change(self, setup):
        net, inputs, labels = setup
        before = net.hidden_layers[0].w_ff.data.copy()
        opt = Adam(net.trainable_parameters(), learning_rate=1e-3)
        trainer = Trainer(net, opt, TrainerConfig(epochs=1, batch_size=12))
        trainer.train_epoch(inputs, labels)
        assert not np.array_equal(before, net.hidden_layers[0].w_ff.data)

    def test_traces_recorded_per_epoch(self, setup):
        net, inputs, labels = setup
        opt = Adam(net.trainable_parameters(), learning_rate=1e-3)
        trainer = Trainer(net, opt, TrainerConfig(epochs=1, batch_size=12))
        trainer.train_epoch(inputs, labels)
        trainer.train_epoch(inputs, labels)
        assert len(trainer.epoch_traces) == 2
        assert len(trainer.epoch_traces[0]) == 2  # two minibatches

    def test_start_layer_trains_tail_only(self, setup):
        net, inputs, labels = setup
        net.freeze_below(1)
        frozen_before = net.hidden_layers[0].w_ff.data.copy()
        acts = net.activations_at(1, inputs)
        opt = Adam(net.trainable_parameters(), learning_rate=1e-3)
        trainer = Trainer(net, opt, TrainerConfig(epochs=1, batch_size=12, start_layer=1))
        trainer.train_epoch(acts, labels)
        np.testing.assert_array_equal(frozen_before, net.hidden_layers[0].w_ff.data)

    def test_grad_clip_applied(self, setup):
        net, inputs, labels = setup
        opt = Adam(net.trainable_parameters(), learning_rate=1e-3)
        trainer = Trainer(
            net, opt, TrainerConfig(epochs=1, batch_size=24, grad_clip=1e-9)
        )

        clipped_norms = []
        original_step = opt.step

        def spy_step():
            total = sum(
                float((p.grad * p.grad).sum())
                for p in opt.parameters
                if p.grad is not None
            )
            clipped_norms.append(np.sqrt(total))
            original_step()

        opt.step = spy_step
        trainer.train_epoch(inputs, labels)
        assert all(norm <= 1.1e-9 for norm in clipped_norms)


class TestFit:
    def test_history_length(self, setup):
        net, inputs, labels = setup
        opt = Adam(net.trainable_parameters(), learning_rate=1e-3)
        trainer = Trainer(net, opt, TrainerConfig(epochs=3, batch_size=12))
        history = trainer.fit(inputs, labels)
        assert len(history) == 3
        assert [r.epoch for r in history] == [0, 1, 2]

    def test_evaluators_recorded(self, setup):
        net, inputs, labels = setup
        opt = Adam(net.trainable_parameters(), learning_rate=1e-3)
        trainer = Trainer(net, opt, TrainerConfig(epochs=2, batch_size=12))
        history = trainer.fit(
            inputs,
            labels,
            evaluators={
                "old_task_accuracy": lambda: top1_accuracy(net.predict(inputs), labels)
            },
        )
        assert all(r.old_task_accuracy is not None for r in history)

    def test_unknown_evaluator_rejected(self, setup):
        net, inputs, labels = setup
        opt = Adam(net.trainable_parameters(), learning_rate=1e-3)
        trainer = Trainer(net, opt, TrainerConfig(epochs=1, batch_size=12))
        with pytest.raises(ConfigError):
            trainer.fit(inputs, labels, evaluators={"bogus": lambda: 0.0})

    def test_epoch_callback_called(self, setup):
        net, inputs, labels = setup
        opt = Adam(net.trainable_parameters(), learning_rate=1e-3)
        trainer = Trainer(net, opt, TrainerConfig(epochs=2, batch_size=12))
        seen = []
        trainer.fit(inputs, labels, epoch_callback=lambda r: seen.append(r.epoch))
        assert seen == [0, 1]

    def test_learning_rate_recorded(self, setup):
        net, inputs, labels = setup
        opt = Adam(net.trainable_parameters(), learning_rate=5e-4)
        trainer = Trainer(net, opt, TrainerConfig(epochs=1, batch_size=12))
        history = trainer.fit(inputs, labels)
        assert history.final().learning_rate == 5e-4


class TestRegularizer:
    def test_penalty_zero_at_target(self):
        spikes = tensor(np.full((4, 2, 3), 0.25, dtype=np.float32))
        loss = spike_count_regularizer([spikes], target_rate=0.25)
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_penalty_positive_off_target(self):
        spikes = tensor(np.ones((4, 2, 3), dtype=np.float32))
        loss = spike_count_regularizer([spikes], target_rate=0.1)
        assert loss.item() > 0

    def test_validation(self):
        spikes = tensor(np.ones((2, 2, 2), dtype=np.float32))
        with pytest.raises(ConfigError):
            spike_count_regularizer([], target_rate=0.1)
        with pytest.raises(ConfigError):
            spike_count_regularizer([spikes], target_rate=1.5)
        with pytest.raises(ConfigError):
            spike_count_regularizer([spikes], target_rate=0.1, weight=-1.0)
