"""Failure-injection tests: the training loop must fail loudly, not drift."""

import numpy as np
import pytest

from repro.autograd import tensor
from repro.config import NetworkConfig
from repro.errors import TrainingError
from repro.snn import SpikingNetwork
from repro.training import Adam, Trainer, TrainerConfig


@pytest.fixture
def setup():
    net = SpikingNetwork(NetworkConfig(layer_sizes=(12, 8, 6, 3), beta=0.9), seed=0)
    rng = np.random.default_rng(0)
    inputs = (rng.random((8, 12, 12)) < 0.3).astype(np.float32)
    labels = rng.integers(0, 3, 12)
    return net, inputs, labels


class TestNonFiniteDetection:
    def test_nan_weights_raise_training_error(self, setup):
        net, inputs, labels = setup
        # Corrupt a weight so the forward pass produces non-finite logits.
        net.readout.w_ff.data[0, 0] = np.nan
        opt = Adam(net.trainable_parameters(), learning_rate=1e-3)
        trainer = Trainer(net, opt, TrainerConfig(epochs=1, batch_size=12))
        with pytest.raises(TrainingError):
            trainer.train_epoch(inputs, labels)

    def test_nan_gradient_raises_in_adam(self):
        p = tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        opt = Adam([p], learning_rate=0.1)
        p.grad = np.array([np.inf, 0.0], dtype=np.float32)
        with pytest.raises(TrainingError):
            opt.step()


class TestRecoveryPaths:
    def test_grad_clip_bounds_update_after_spike_storm(self, setup):
        """Even a dense all-ones input cannot blow past the clip norm."""
        net, _, labels = setup
        storm = np.ones((8, 12, 12), dtype=np.float32)
        opt = Adam(net.trainable_parameters(), learning_rate=1e-3)
        trainer = Trainer(net, opt, TrainerConfig(epochs=1, batch_size=12, grad_clip=1.0))
        trainer.train_epoch(storm, labels)
        for p in net.trainable_parameters():
            assert np.all(np.isfinite(p.data))

    def test_training_continues_after_caught_failure(self, setup):
        net, inputs, labels = setup
        opt = Adam(net.trainable_parameters(), learning_rate=1e-3)
        trainer = Trainer(net, opt, TrainerConfig(epochs=1, batch_size=12))
        snapshot = net.readout.w_ff.data.copy()
        net.readout.w_ff.data[0, 0] = np.nan
        with pytest.raises(TrainingError):
            trainer.train_epoch(inputs, labels)
        # Restore and confirm the loop runs clean again.
        net.readout.w_ff.data = snapshot
        loss = trainer.train_epoch(inputs, labels)
        assert np.isfinite(loss)
