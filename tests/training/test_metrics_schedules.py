"""Tests for metrics, history, and LR schedules."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.training import (
    ConstantSchedule,
    EpochRecord,
    ExponentialDecaySchedule,
    StepSchedule,
    TrainingHistory,
    forgetting,
    per_class_accuracy,
    top1_accuracy,
)


class TestAccuracy:
    def test_top1(self):
        assert top1_accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == pytest.approx(2 / 3)

    def test_top1_empty(self):
        assert top1_accuracy(np.array([]), np.array([])) == 0.0

    def test_top1_shape_mismatch(self):
        with pytest.raises(ShapeError):
            top1_accuracy(np.array([1]), np.array([1, 2]))

    def test_per_class(self):
        preds = np.array([0, 0, 1, 1])
        labels = np.array([0, 1, 1, 1])
        result = per_class_accuracy(preds, labels)
        assert result == {0: 1.0, 1: pytest.approx(2 / 3)}

    def test_per_class_shape_mismatch(self):
        with pytest.raises(ShapeError):
            per_class_accuracy(np.array([1]), np.array([1, 2]))

    def test_forgetting(self):
        assert forgetting(0.9, 0.6) == pytest.approx(0.3)
        assert forgetting(0.5, 0.7) == pytest.approx(-0.2)  # backward transfer


class TestHistory:
    def make_history(self):
        h = TrainingHistory()
        for i, (old, new) in enumerate([(0.2, 0.1), (0.5, 0.6), (0.8, 0.9)]):
            h.append(EpochRecord(epoch=i, loss=1.0 - 0.2 * i,
                                 old_task_accuracy=old, new_task_accuracy=new))
        return h

    def test_curves(self):
        h = self.make_history()
        assert h.old_task_curve == [0.2, 0.5, 0.8]
        assert h.new_task_curve == [0.1, 0.6, 0.9]
        assert h.losses == pytest.approx([1.0, 0.8, 0.6])

    def test_final_and_len(self):
        h = self.make_history()
        assert len(h) == 3
        assert h.final().epoch == 2

    def test_final_empty_raises(self):
        with pytest.raises(IndexError):
            TrainingHistory().final()

    def test_best_old_task(self):
        assert self.make_history().best_old_task_accuracy() == 0.8
        assert TrainingHistory().best_old_task_accuracy() == 0.0

    def test_epochs_to_reach(self):
        h = self.make_history()
        assert h.epochs_to_reach(0.5, task="old") == 1
        assert h.epochs_to_reach(0.9, task="new") == 2
        assert h.epochs_to_reach(0.99, task="old") is None

    def test_iteration(self):
        assert [r.epoch for r in self.make_history()] == [0, 1, 2]


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule(1e-3)
        assert s(0) == s(100) == 1e-3

    def test_exponential(self):
        s = ExponentialDecaySchedule(1.0, 0.5)
        assert s(0) == 1.0
        assert s(2) == 0.25

    def test_step(self):
        s = StepSchedule(1.0, step_every=10, factor=10.0)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == pytest.approx(0.1)
        assert s(25) == pytest.approx(0.01)

    @pytest.mark.parametrize(
        "make",
        [
            lambda: ConstantSchedule(0.0),
            lambda: ExponentialDecaySchedule(1.0, 0.0),
            lambda: ExponentialDecaySchedule(0.0, 0.5),
            lambda: StepSchedule(1.0, 0),
            lambda: StepSchedule(1.0, 5, factor=1.0),
        ],
    )
    def test_validation(self, make):
        with pytest.raises(ConfigError):
            make()
