"""Tests for SGD and Adam."""

import numpy as np
import pytest

from repro.autograd import tensor
from repro.errors import ConfigError, TrainingError
from repro.training import SGD, Adam


def quadratic_param(value=5.0):
    return tensor(np.array([value], dtype=np.float32), requires_grad=True)


def quadratic_step(p, optimizer):
    optimizer.zero_grad()
    loss = (p * p).sum()
    loss.backward()
    optimizer.step()
    return float(loss.data)


class TestSGD:
    def test_descends_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], learning_rate=0.1)
        losses = [quadratic_step(p, opt) for _ in range(20)]
        assert losses[-1] < losses[0] * 0.05

    def test_manual_update_rule(self):
        p = quadratic_param(2.0)
        opt = SGD([p], learning_rate=0.5)
        quadratic_step(p, opt)  # grad = 2*2 = 4; p <- 2 - 0.5*4 = 0
        assert p.data[0] == pytest.approx(0.0)

    def test_momentum_accelerates(self):
        p_plain, p_momentum = quadratic_param(), quadratic_param()
        plain = SGD([p_plain], learning_rate=0.01)
        momentum = SGD([p_momentum], learning_rate=0.01, momentum=0.9)
        for _ in range(30):
            quadratic_step(p_plain, plain)
            quadratic_step(p_momentum, momentum)
        assert abs(p_momentum.data[0]) < abs(p_plain.data[0])

    def test_skips_gradless_parameters(self):
        p, q = quadratic_param(), quadratic_param(3.0)
        opt = SGD([p, q], learning_rate=0.1)
        quadratic_step(p, opt)  # q never touched by the loss
        assert q.data[0] == 3.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            SGD([], learning_rate=0.1)
        with pytest.raises(ConfigError):
            SGD([quadratic_param()], learning_rate=0.0)
        with pytest.raises(ConfigError):
            SGD([quadratic_param()], learning_rate=0.1, momentum=1.0)

    def test_set_learning_rate(self):
        opt = SGD([quadratic_param()], learning_rate=0.1)
        opt.set_learning_rate(0.01)
        assert opt.learning_rate == 0.01
        with pytest.raises(ConfigError):
            opt.set_learning_rate(-1.0)


class TestAdam:
    def test_descends_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], learning_rate=0.3)
        losses = [quadratic_step(p, opt) for _ in range(50)]
        assert losses[-1] < losses[0] * 0.01

    def test_first_step_magnitude_is_lr(self):
        # Adam's bias correction makes the first update ~= lr * sign(grad).
        p = quadratic_param(2.0)
        opt = Adam([p], learning_rate=0.1)
        quadratic_step(p, opt)
        assert p.data[0] == pytest.approx(2.0 - 0.1, abs=1e-3)

    def test_state_keyed_by_parameter(self):
        p, q = quadratic_param(1.0), quadratic_param(2.0)
        opt = Adam([p, q], learning_rate=0.1)
        quadratic_step(p, opt)
        # Only p has state; stepping q later must not reuse p's moments.
        opt.zero_grad()
        (q * q).sum().backward()
        opt.step()
        assert opt._t[id(p)] == 1
        assert opt._t[id(q)] == 1

    def test_nonfinite_gradient_raises(self):
        p = quadratic_param()
        opt = Adam([p], learning_rate=0.1)
        p.grad = np.array([np.nan], dtype=np.float32)
        with pytest.raises(TrainingError):
            opt.step()

    def test_validation(self):
        with pytest.raises(ConfigError):
            Adam([quadratic_param()], learning_rate=0.1, beta1=1.0)
        with pytest.raises(ConfigError):
            Adam([quadratic_param()], learning_rate=0.1, beta2=-0.1)
        with pytest.raises(ConfigError):
            Adam([quadratic_param()], learning_rate=0.1, eps=0.0)

    def test_zero_grad(self):
        p = quadratic_param()
        opt = Adam([p], learning_rate=0.1)
        (p * p).sum().backward()
        assert p.grad is not None
        opt.zero_grad()
        assert p.grad is None
