"""Tests for SGD and Adam."""

import numpy as np
import pytest

from repro.autograd import tensor
from repro.errors import ConfigError, TrainingError
from repro.training import SGD, Adam


def quadratic_param(value=5.0):
    return tensor(np.array([value], dtype=np.float32), requires_grad=True)


def quadratic_step(p, optimizer):
    optimizer.zero_grad()
    loss = (p * p).sum()
    loss.backward()
    optimizer.step()
    return float(loss.data)


class TestSGD:
    def test_descends_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], learning_rate=0.1)
        losses = [quadratic_step(p, opt) for _ in range(20)]
        assert losses[-1] < losses[0] * 0.05

    def test_manual_update_rule(self):
        p = quadratic_param(2.0)
        opt = SGD([p], learning_rate=0.5)
        quadratic_step(p, opt)  # grad = 2*2 = 4; p <- 2 - 0.5*4 = 0
        assert p.data[0] == pytest.approx(0.0)

    def test_momentum_accelerates(self):
        p_plain, p_momentum = quadratic_param(), quadratic_param()
        plain = SGD([p_plain], learning_rate=0.01)
        momentum = SGD([p_momentum], learning_rate=0.01, momentum=0.9)
        for _ in range(30):
            quadratic_step(p_plain, plain)
            quadratic_step(p_momentum, momentum)
        assert abs(p_momentum.data[0]) < abs(p_plain.data[0])

    def test_skips_gradless_parameters(self):
        p, q = quadratic_param(), quadratic_param(3.0)
        opt = SGD([p, q], learning_rate=0.1)
        quadratic_step(p, opt)  # q never touched by the loss
        assert q.data[0] == 3.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            SGD([], learning_rate=0.1)
        with pytest.raises(ConfigError):
            SGD([quadratic_param()], learning_rate=0.0)
        with pytest.raises(ConfigError):
            SGD([quadratic_param()], learning_rate=0.1, momentum=1.0)

    def test_set_learning_rate(self):
        opt = SGD([quadratic_param()], learning_rate=0.1)
        opt.set_learning_rate(0.01)
        assert opt.learning_rate == 0.01
        with pytest.raises(ConfigError):
            opt.set_learning_rate(-1.0)


class TestAdam:
    def test_descends_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], learning_rate=0.3)
        losses = [quadratic_step(p, opt) for _ in range(50)]
        assert losses[-1] < losses[0] * 0.01

    def test_first_step_magnitude_is_lr(self):
        # Adam's bias correction makes the first update ~= lr * sign(grad).
        p = quadratic_param(2.0)
        opt = Adam([p], learning_rate=0.1)
        quadratic_step(p, opt)
        assert p.data[0] == pytest.approx(2.0 - 0.1, abs=1e-3)

    def test_state_keyed_by_parameter(self):
        p, q = quadratic_param(1.0), quadratic_param(2.0)
        opt = Adam([p, q], learning_rate=0.1)
        quadratic_step(p, opt)
        # Only p has state; stepping q later must not reuse p's moments.
        opt.zero_grad()
        (q * q).sum().backward()
        opt.step()
        assert opt._t[id(p)] == 1
        assert opt._t[id(q)] == 1

    def test_nonfinite_gradient_raises(self):
        p = quadratic_param()
        opt = Adam([p], learning_rate=0.1)
        p.grad = np.array([np.nan], dtype=np.float32)
        with pytest.raises(TrainingError):
            opt.step()

    def test_validation(self):
        with pytest.raises(ConfigError):
            Adam([quadratic_param()], learning_rate=0.1, beta1=1.0)
        with pytest.raises(ConfigError):
            Adam([quadratic_param()], learning_rate=0.1, beta2=-0.1)
        with pytest.raises(ConfigError):
            Adam([quadratic_param()], learning_rate=0.1, eps=0.0)

    def test_zero_grad(self):
        p = quadratic_param()
        opt = Adam([p], learning_rate=0.1)
        (p * p).sum().backward()
        assert p.grad is not None
        opt.zero_grad()
        assert p.grad is None


def two_params():
    return [quadratic_param(5.0), quadratic_param(-3.0)]


def assert_same_trajectory(make_optimizer, steps_before=3, steps_after=4):
    """Snapshot/restore mid-training must continue bitwise.

    Trains one optimizer straight through, and a second one that is
    snapshotted at ``steps_before`` and restored into a *fresh*
    optimizer over equal (position-matched) parameters — the
    cross-process restore path of :mod:`repro.scenario.checkpoint`.
    """
    reference_params = two_params()
    reference = make_optimizer(reference_params)
    for _ in range(steps_before + steps_after):
        for p in reference_params:
            quadratic_step(p, reference)

    first_params = two_params()
    first = make_optimizer(first_params)
    for _ in range(steps_before):
        for p in first_params:
            quadratic_step(p, first)
    snapshot = first.state_dict()

    resumed_params = [
        quadratic_param(float(p.data[0])) for p in first_params
    ]
    resumed = make_optimizer(resumed_params)
    resumed.load_state_dict(snapshot)
    for _ in range(steps_after):
        for p in resumed_params:
            quadratic_step(p, resumed)

    for a, b in zip(resumed_params, reference_params):
        np.testing.assert_array_equal(a.data, b.data)


class TestStateSnapshots:
    def test_sgd_momentum_round_trip(self):
        assert_same_trajectory(
            lambda ps: SGD(ps, learning_rate=0.05, momentum=0.9)
        )

    def test_adam_round_trip(self):
        assert_same_trajectory(lambda ps: Adam(ps, learning_rate=0.05))

    def test_snapshot_is_positional_not_identity_keyed(self):
        # id() means nothing across processes; the exported slots must
        # be integer *positions*.
        params = two_params()
        opt = Adam(params, learning_rate=0.1)
        for p in params:
            quadratic_step(p, opt)
        state = opt.state_dict()
        assert set(state["m"]) == {0, 1}
        assert set(state["t"].values()) == {1}

    def test_snapshot_is_a_copy(self):
        p = quadratic_param()
        opt = Adam([p], learning_rate=0.1)
        quadratic_step(p, opt)
        state = opt.state_dict()
        frozen = state["m"][0].copy()
        quadratic_step(p, opt)  # keeps mutating internal moments
        np.testing.assert_array_equal(state["m"][0], frozen)

    def test_restore_rejects_out_of_range_parameter_index(self):
        p = quadratic_param()
        opt = Adam([p], learning_rate=0.1)
        quadratic_step(p, opt)
        state = opt.state_dict()
        state["m"][7] = state["m"].pop(0)
        fresh = Adam([quadratic_param()], learning_rate=0.1)
        with pytest.raises(ConfigError, match="snapshot indexes parameter"):
            fresh.load_state_dict(state)

    def test_learning_rate_restored(self):
        p = quadratic_param()
        opt = SGD([p], learning_rate=0.05)
        opt.set_learning_rate(0.002)
        fresh = SGD([quadratic_param()], learning_rate=0.5)
        fresh.load_state_dict(opt.state_dict())
        assert fresh.learning_rate == 0.002
