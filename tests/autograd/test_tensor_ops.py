"""Gradient correctness of every Tensor primitive, checked numerically."""

import numpy as np
import pytest

from repro.autograd import Tensor, concat, gradcheck, maximum, stack, tensor, where, zeros
from repro.autograd.tensor import _unbroadcast
from repro.errors import GradientError, ShapeError


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


class TestElementwise:
    def test_add(self, rng):
        assert gradcheck(lambda a, b: a + b, [rng.standard_normal((3, 4)), rng.standard_normal((3, 4))])

    def test_add_broadcast(self, rng):
        assert gradcheck(lambda a, b: a + b, [rng.standard_normal((3, 1)), rng.standard_normal((1, 4))])

    def test_add_scalar_operand(self, rng):
        assert gradcheck(lambda a: a + 3.0, [rng.standard_normal((2, 3))])

    def test_radd(self, rng):
        assert gradcheck(lambda a: 3.0 + a, [rng.standard_normal((2, 3))])

    def test_sub(self, rng):
        assert gradcheck(lambda a, b: a - b, [rng.standard_normal((3, 4)), rng.standard_normal((3, 4))])

    def test_rsub(self, rng):
        assert gradcheck(lambda a: 1.0 - a, [rng.standard_normal((3, 4))])

    def test_mul(self, rng):
        assert gradcheck(lambda a, b: a * b, [rng.standard_normal((3, 4)), rng.standard_normal((3, 4))])

    def test_mul_broadcast_vector(self, rng):
        assert gradcheck(lambda a, b: a * b, [rng.standard_normal((4,)), rng.standard_normal((3, 4))])

    def test_div(self, rng):
        b = rng.standard_normal((3, 4))
        b = np.sign(b) * (np.abs(b) + 1.0)  # keep away from zero
        assert gradcheck(lambda a, b: a / b, [rng.standard_normal((3, 4)), b])

    def test_rdiv(self, rng):
        a = np.abs(rng.standard_normal((3, 4))) + 1.0
        assert gradcheck(lambda a: 2.0 / a, [a])

    def test_neg(self, rng):
        assert gradcheck(lambda a: -a, [rng.standard_normal((3, 4))])

    def test_pow(self, rng):
        a = np.abs(rng.standard_normal((3, 4))) + 0.5
        assert gradcheck(lambda a: a**3.0, [a])

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            tensor([1.0]) ** tensor([2.0])

    def test_exp(self, rng):
        assert gradcheck(lambda a: a.exp(), [rng.standard_normal((3, 4))])

    def test_log(self, rng):
        a = np.abs(rng.standard_normal((3, 4))) + 0.5
        assert gradcheck(lambda a: a.log(), [a])

    def test_sqrt(self, rng):
        a = np.abs(rng.standard_normal((3, 4))) + 0.5
        assert gradcheck(lambda a: a.sqrt(), [a])

    def test_abs(self, rng):
        a = rng.standard_normal((3, 4))
        a = np.sign(a) * (np.abs(a) + 0.3)  # keep away from the kink
        assert gradcheck(lambda a: a.abs(), [a])

    def test_clip(self, rng):
        a = rng.standard_normal((5, 5)) * 2.0
        # offset values away from the clip boundaries where the gradient is discontinuous
        a = a + 0.05 * np.sign(a)
        assert gradcheck(lambda a: a.clip(-1.0, 1.0), [a])


class TestMatmul:
    def test_matrix_matrix(self, rng):
        assert gradcheck(lambda a, b: a @ b, [rng.standard_normal((3, 4)), rng.standard_normal((4, 5))])

    def test_vector_matrix(self, rng):
        assert gradcheck(lambda a, b: a @ b, [rng.standard_normal((4,)), rng.standard_normal((4, 5))])

    def test_matrix_vector(self, rng):
        assert gradcheck(lambda a, b: a @ b, [rng.standard_normal((3, 4)), rng.standard_normal((4,))])

    def test_vector_vector(self, rng):
        assert gradcheck(lambda a, b: a @ b, [rng.standard_normal((4,)), rng.standard_normal((4,))])

    def test_batched(self, rng):
        assert gradcheck(
            lambda a, b: a @ b,
            [rng.standard_normal((2, 3, 4)), rng.standard_normal((2, 4, 5))],
        )


class TestReductions:
    def test_sum_all(self, rng):
        assert gradcheck(lambda a: a.sum(), [rng.standard_normal((3, 4))])

    def test_sum_axis(self, rng):
        assert gradcheck(lambda a: a.sum(axis=0), [rng.standard_normal((3, 4))])

    def test_sum_keepdims(self, rng):
        assert gradcheck(lambda a: a.sum(axis=1, keepdims=True), [rng.standard_normal((3, 4))])

    def test_mean_all(self, rng):
        assert gradcheck(lambda a: a.mean(), [rng.standard_normal((3, 4))])

    def test_mean_axis(self, rng):
        assert gradcheck(lambda a: a.mean(axis=1), [rng.standard_normal((3, 4))])

    def test_max_all(self, rng):
        a = rng.standard_normal((3, 4))
        assert gradcheck(lambda a: a.max(), [a])

    def test_max_axis(self, rng):
        a = rng.standard_normal((3, 4))
        assert gradcheck(lambda a: a.max(axis=1), [a])

    def test_max_tie_splits_gradient(self):
        x = tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        x.max(axis=1).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])

    def test_min(self, rng):
        a = rng.standard_normal((3, 4))
        assert gradcheck(lambda a: a.min(axis=0), [a])


class TestShapeOps:
    def test_reshape(self, rng):
        assert gradcheck(lambda a: a.reshape(2, 6), [rng.standard_normal((3, 4))])

    def test_reshape_tuple_arg(self, rng):
        assert gradcheck(lambda a: a.reshape((12,)), [rng.standard_normal((3, 4))])

    def test_transpose_default(self, rng):
        assert gradcheck(lambda a: a.transpose(), [rng.standard_normal((3, 4))])

    def test_transpose_axes(self, rng):
        assert gradcheck(lambda a: a.transpose(2, 0, 1), [rng.standard_normal((2, 3, 4))])

    def test_T_property(self, rng):
        a = tensor(rng.standard_normal((3, 4)))
        np.testing.assert_array_equal(a.T.data, a.data.T)

    def test_getitem_slice(self, rng):
        assert gradcheck(lambda a: a[1:, :2], [rng.standard_normal((3, 4))])

    def test_getitem_int_index(self, rng):
        assert gradcheck(lambda a: a[0], [rng.standard_normal((3, 4))])

    def test_getitem_fancy(self, rng):
        idx = np.array([0, 2, 2])
        assert gradcheck(lambda a: a[idx], [rng.standard_normal((3, 4))])

    def test_stack(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((3, 4))
        assert gradcheck(lambda a, b: stack([a, b], axis=1), [a, b])

    def test_concat(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((2, 4))
        assert gradcheck(lambda a, b: concat([a, b], axis=0), [a, b])

    def test_stack_empty_rejected(self):
        with pytest.raises(ShapeError):
            stack([])

    def test_concat_empty_rejected(self):
        with pytest.raises(ShapeError):
            concat([])


class TestSelectOps:
    def test_where(self, rng):
        cond = rng.standard_normal((3, 4)) > 0
        assert gradcheck(lambda a, b: where(cond, a, b), [rng.standard_normal((3, 4)), rng.standard_normal((3, 4))])

    def test_maximum(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((3, 4))
        assert gradcheck(lambda a, b: maximum(a, b), [a, b])

    def test_maximum_tie_splits(self):
        a = tensor(np.array([1.0]), requires_grad=True)
        b = tensor(np.array([1.0]), requires_grad=True)
        maximum(a, b).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [0.5])


class TestBackwardSemantics:
    def test_grad_accumulates_across_backward_calls(self):
        x = tensor([2.0], requires_grad=True)
        (x * 3.0).backward(np.array([1.0]))
        (x * 3.0).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [6.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        x = tensor([1.0], requires_grad=True)
        y = x * 2.0
        z = y + y  # two paths through y
        z.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [4.0])

    def test_backward_on_nongrad_tensor_raises(self):
        with pytest.raises(GradientError):
            tensor([1.0]).backward()

    def test_backward_nonscalar_without_grad_raises(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2.0).backward()

    def test_backward_shape_mismatch_raises(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ShapeError):
            (x * 2.0).backward(np.ones((3,)))

    def test_zero_grad(self):
        x = tensor([1.0], requires_grad=True)
        (x * 2.0).backward(np.array([1.0]))
        x.zero_grad()
        assert x.grad is None

    def test_detach_cuts_graph(self):
        x = tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_item(self):
        assert tensor([3.5]).item() == pytest.approx(3.5)

    def test_item_nonscalar_raises(self):
        with pytest.raises(ShapeError):
            tensor([1.0, 2.0]).item()

    def test_repr_contains_flag(self):
        assert "requires_grad" in repr(tensor([1.0], requires_grad=True))

    def test_len(self):
        assert len(tensor([[1.0], [2.0]])) == 2

    def test_comparison_returns_bool_array(self):
        x = tensor([1.0, -1.0])
        assert (x > 0).dtype == bool
        assert (x >= 0).tolist() == [True, False]
        assert (x < 0).tolist() == [False, True]
        assert (x <= -1).tolist() == [False, True]


class TestNoGrad:
    def test_no_grad_disables_recording(self):
        from repro.autograd import no_grad

        x = tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._parents == ()

    def test_no_grad_restores_state(self):
        from repro.autograd import is_grad_enabled, no_grad

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        from repro.autograd import is_grad_enabled, no_grad

        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert _unbroadcast(g, (3, 4)).shape == (3, 4)

    def test_sum_leading(self):
        g = np.ones((5, 3, 4))
        assert _unbroadcast(g, (3, 4)).shape == (3, 4)

    def test_sum_kept_dims(self):
        g = np.ones((3, 4))
        out = _unbroadcast(g, (3, 1))
        assert out.shape == (3, 1)
        np.testing.assert_allclose(out, 4.0 * np.ones((3, 1)))

    def test_scalar_target(self):
        g = np.ones((2, 2))
        out = _unbroadcast(g, ())
        assert out.shape == ()
        assert out == 4.0


class TestCreation:
    def test_zeros_ones(self):
        assert zeros((2, 3)).data.sum() == 0.0
        from repro.autograd import ones

        assert ones((2, 3)).data.sum() == 6.0

    def test_randn_seeded(self):
        from repro.autograd import randn

        a = randn((3, 3), rng=np.random.default_rng(7))
        b = randn((3, 3), rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.data, b.data)

    def test_default_dtype_is_float32(self):
        assert tensor([1, 2, 3]).dtype == np.float32

    def test_float64_preserved(self):
        assert tensor(np.zeros(3, dtype=np.float64)).dtype == np.float64

    def test_tensor_from_tensor(self):
        a = tensor([1.0, 2.0])
        b = Tensor(a)
        np.testing.assert_array_equal(a.data, b.data)

    def test_copy_preserves_flag(self):
        a = tensor([1.0], requires_grad=True)
        b = a.copy()
        assert b.requires_grad
        b.data[0] = 9.0
        assert a.data[0] == 1.0
