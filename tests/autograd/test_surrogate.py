"""Tests for the spike op and surrogate-gradient families."""

import numpy as np
import pytest

from repro.autograd import (
    atan_surrogate,
    boxcar_surrogate,
    fast_sigmoid_surrogate,
    spike,
    straight_through_surrogate,
    tensor,
)
from repro.errors import ConfigError


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestSpikeForward:
    def test_output_is_binary(self, rng):
        x = tensor(rng.standard_normal((4, 7)))
        s = spike(x, fast_sigmoid_surrogate())
        assert set(np.unique(s.data)).issubset({0.0, 1.0})

    def test_threshold_strict(self):
        s = spike(tensor([-0.1, 0.0, 0.1]), fast_sigmoid_surrogate())
        np.testing.assert_array_equal(s.data, [0.0, 0.0, 1.0])

    def test_forward_identical_across_surrogates(self, rng):
        x = tensor(rng.standard_normal((3, 3)))
        outs = [
            spike(x, fam).data
            for fam in (
                fast_sigmoid_surrogate(),
                atan_surrogate(),
                boxcar_surrogate(),
                straight_through_surrogate(),
            )
        ]
        for out in outs[1:]:
            np.testing.assert_array_equal(outs[0], out)


class TestSurrogateBackward:
    def test_fast_sigmoid_formula(self, rng):
        x = tensor(rng.standard_normal((2, 3)), requires_grad=True)
        spike(x, fast_sigmoid_surrogate(scale=25.0)).sum().backward()
        expected = 1.0 / (25.0 * np.abs(x.data) + 1.0) ** 2
        np.testing.assert_allclose(x.grad, expected, rtol=1e-6)

    def test_fast_sigmoid_peak_at_threshold(self):
        fam = fast_sigmoid_surrogate(scale=25.0)
        assert fam(np.array([0.0])) == pytest.approx(1.0)
        assert fam(np.array([1.0])) < 0.01

    def test_atan_symmetric(self):
        fam = atan_surrogate(alpha=2.0)
        x = np.array([-0.5, 0.5])
        d = fam(x)
        assert d[0] == pytest.approx(d[1])

    def test_boxcar_support(self):
        fam = boxcar_surrogate(width=0.5)
        d = fam(np.array([-0.3, -0.2, 0.0, 0.2, 0.3]))
        np.testing.assert_allclose(d, [0.0, 2.0, 2.0, 2.0, 0.0])

    def test_straight_through_passes_gradient(self, rng):
        x = tensor(rng.standard_normal((2, 2)), requires_grad=True)
        spike(x, straight_through_surrogate()).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 2)))

    def test_gradient_chains_through_spike(self):
        # d/dv [sum(spike(v - thr))] with surrogate should equal surrogate(v - thr)
        v = tensor([0.5, 1.5], requires_grad=True)
        thr = 1.0
        s = spike(v - thr, fast_sigmoid_surrogate(10.0))
        (s * 2.0).sum().backward()
        expected = 2.0 / (10.0 * np.abs(v.data - thr) + 1.0) ** 2
        np.testing.assert_allclose(v.grad, expected, rtol=1e-6)


class TestValidation:
    def test_bad_scale(self):
        with pytest.raises(ConfigError):
            fast_sigmoid_surrogate(scale=0.0)

    def test_bad_alpha(self):
        with pytest.raises(ConfigError):
            atan_surrogate(alpha=-1.0)

    def test_bad_width(self):
        with pytest.raises(ConfigError):
            boxcar_surrogate(width=0.0)

    def test_spec_names(self):
        assert "fast_sigmoid" in fast_sigmoid_surrogate().name
        assert "atan" in atan_surrogate().name
        assert "boxcar" in boxcar_surrogate().name
        assert straight_through_surrogate().name == "straight_through"
