"""Tests for the raw-kernel Function hook (multi-output tape nodes)."""

import numpy as np
import pytest

from repro.autograd import Function, Tensor, gradcheck, no_grad
from repro.errors import GradientError


class ScaledMatmul(Function):
    """y = (a @ b) * scale — scale is a non-differentiable python float."""

    @staticmethod
    def forward(ctx, a, b, scale):
        ctx.save_for_backward(a, b)
        ctx.scale = scale
        return (a @ b) * scale

    @staticmethod
    def backward(ctx, g):
        a, b = ctx.saved
        return g @ b.T * ctx.scale, a.T @ g * ctx.scale, None


class SumAndProduct(Function):
    """Multi-output: returns (a + b, a * b)."""

    @staticmethod
    def forward(ctx, a, b):
        ctx.save_for_backward(a, b)
        return a + b, a * b

    @staticmethod
    def backward(ctx, g_sum, g_prod):
        a, b = ctx.saved
        return g_sum + g_prod * b, g_sum + g_prod * a


class BadArity(Function):
    @staticmethod
    def forward(ctx, a):
        return a * 2.0

    @staticmethod
    def backward(ctx, g):
        return g * 2.0, None  # one gradient too many


class RefusesGrad(Function):
    @staticmethod
    def forward(ctx, a):
        return a * 2.0

    @staticmethod
    def backward(ctx, g):
        return None


class TestSingleOutput:
    def test_forward_value(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3, 4)), requires_grad=True)
        out = ScaledMatmul.apply(a, b, 0.5)
        assert np.allclose(out.data, 1.5)

    def test_gradcheck(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 2))
        assert gradcheck(lambda x, y: ScaledMatmul.apply(x, y, 0.7), [a, b])

    def test_matches_tensor_ops(self):
        rng = np.random.default_rng(1)
        a_data = rng.standard_normal((3, 4)).astype(np.float32)
        b_data = rng.standard_normal((4, 2)).astype(np.float32)
        g = rng.standard_normal((3, 2)).astype(np.float32)

        a1, b1 = Tensor(a_data, requires_grad=True), Tensor(b_data, requires_grad=True)
        ScaledMatmul.apply(a1, b1, 2.0).backward(g)
        a2, b2 = Tensor(a_data, requires_grad=True), Tensor(b_data, requires_grad=True)
        ((a2 @ b2) * 2.0).backward(g)
        assert np.allclose(a1.grad, a2.grad, atol=1e-6)
        assert np.allclose(b1.grad, b2.grad, atol=1e-6)

    def test_no_grad_builds_no_tape(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with no_grad():
            out = ScaledMatmul.apply(a, Tensor(np.ones((2, 2))), 1.0)
        assert not out.requires_grad
        assert out._parents == ()

    def test_untracked_inputs_build_no_tape(self):
        out = ScaledMatmul.apply(Tensor(np.ones((2, 2))), Tensor(np.ones((2, 2))), 1.0)
        assert not out.requires_grad

    def test_needs_input_grad_flags(self):
        captured = {}

        class Probe(Function):
            @staticmethod
            def forward(ctx, a, b, c):
                captured["needs"] = ctx.needs_input_grad
                return a + b

            @staticmethod
            def backward(ctx, g):
                return g, g, None

        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3))
        Probe.apply(a, b, "meta")
        assert captured["needs"] == (True, False, False)


class TestMultiOutput:
    def test_both_outputs_flow(self):
        rng = np.random.default_rng(2)
        a_data = rng.standard_normal(5)
        b_data = rng.standard_normal(5)

        def fn(a, b):
            s, p = SumAndProduct.apply(a, b)
            return s * 2.0 + p

        assert gradcheck(fn, [a_data, b_data])

    def test_single_output_use(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([4.0, 5.0]), requires_grad=True)
        _, p = SumAndProduct.apply(a, b)
        p.backward(np.ones(2))
        assert np.allclose(a.grad, b.data)
        assert np.allclose(b.grad, a.data)


class TestErrors:
    def test_wrong_arity_raises(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = BadArity.apply(a)
        with pytest.raises(GradientError):
            out.backward(np.ones(3))

    def test_none_for_differentiable_input_raises(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = RefusesGrad.apply(a)
        with pytest.raises(GradientError):
            out.backward(np.ones(3))
