"""Tests for repro.autograd.functional."""

import numpy as np
import pytest

from repro.autograd import (
    cross_entropy,
    gradcheck,
    log_softmax,
    mse_loss,
    one_hot,
    relu,
    sigmoid,
    softmax,
    tanh,
    tensor,
)
from repro.autograd.functional import dropout_mask
from repro.errors import ShapeError


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestActivations:
    def test_sigmoid_grad(self, rng):
        assert gradcheck(lambda a: sigmoid(a), [rng.standard_normal((3, 4))])

    def test_sigmoid_stable_at_extremes(self):
        out = sigmoid(tensor([-1e4, 0.0, 1e4]))
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-6)
        assert np.all(np.isfinite(out.data))

    def test_tanh_grad(self, rng):
        assert gradcheck(lambda a: tanh(a), [rng.standard_normal((3, 4))])

    def test_relu_grad(self, rng):
        a = rng.standard_normal((3, 4))
        a = np.sign(a) * (np.abs(a) + 0.2)  # avoid the kink at 0
        assert gradcheck(lambda a: relu(a), [a])

    def test_relu_values(self):
        out = relu(tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self, rng):
        out = softmax(tensor(rng.standard_normal((5, 7))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5), rtol=1e-5)

    def test_softmax_grad(self, rng):
        assert gradcheck(lambda a: softmax(a, axis=1), [rng.standard_normal((3, 4))])

    def test_softmax_shift_invariance(self, rng):
        a = rng.standard_normal((2, 5))
        np.testing.assert_allclose(
            softmax(tensor(a)).data, softmax(tensor(a + 1000.0)).data, atol=1e-6
        )

    def test_log_softmax_grad(self, rng):
        assert gradcheck(lambda a: log_softmax(a, axis=1), [rng.standard_normal((3, 4))])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        a = tensor(rng.standard_normal((4, 6)))
        np.testing.assert_allclose(
            log_softmax(a).data, np.log(softmax(a).data), atol=1e-5
        )


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.standard_normal((4, 5))
        labels = np.array([0, 1, 2, 4])
        loss = cross_entropy(tensor(logits), labels)
        probs = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        manual = -np.log(probs[np.arange(4), labels]).mean()
        assert loss.item() == pytest.approx(manual, rel=1e-5)

    def test_grad(self, rng):
        labels = np.array([0, 2, 1])
        assert gradcheck(lambda a: cross_entropy(a, labels), [rng.standard_normal((3, 5))])

    def test_perfect_prediction_small_loss(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = cross_entropy(tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-4

    def test_rejects_bad_logit_rank(self):
        with pytest.raises(ShapeError):
            cross_entropy(tensor(np.zeros(5)), np.array([0]))

    def test_rejects_mismatched_targets(self):
        with pytest.raises(ShapeError):
            cross_entropy(tensor(np.zeros((2, 5))), np.array([0, 1, 2]))

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ShapeError):
            cross_entropy(tensor(np.zeros((2, 3))), np.array([0, 3]))


class TestMse:
    def test_value(self):
        loss = mse_loss(tensor([1.0, 2.0]), tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_grad(self, rng):
        target = rng.standard_normal((3, 4))
        assert gradcheck(lambda a: mse_loss(a, target), [rng.standard_normal((3, 4))])


class TestOneHot:
    def test_shape_and_values(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([3]), 3)


class TestDropoutMask:
    def test_scaling_preserves_expectation(self, rng):
        mask = dropout_mask((10000,), p=0.3, rng=rng)
        assert mask.mean() == pytest.approx(1.0, abs=0.05)

    def test_zero_p_is_identity(self, rng):
        mask = dropout_mask((100,), p=0.0, rng=rng)
        np.testing.assert_array_equal(mask, np.ones(100, dtype=np.float32))

    def test_rejects_p_one(self, rng):
        with pytest.raises(ShapeError):
            dropout_mask((10,), p=1.0, rng=rng)
