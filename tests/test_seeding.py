"""Tests for deterministic seed derivation."""

import numpy as np

from repro.seeding import default_rng, derive_seed, spawn


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "weights") == derive_seed(42, "weights")

    def test_key_separation(self):
        assert derive_seed(42, "weights") != derive_seed(42, "data")

    def test_seed_separation(self):
        assert derive_seed(1, "weights") != derive_seed(2, "weights")

    def test_stable_value(self):
        # Regression pin: derivation must stay stable across releases,
        # otherwise cached pre-trained weights silently mismatch.
        assert derive_seed(0, "x") == derive_seed(0, "x")
        assert 0 <= derive_seed(0, "x") < 2**63


class TestSpawn:
    def test_independent_streams(self):
        a = spawn(0, "a").random(8)
        b = spawn(0, "b").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_streams(self):
        a = spawn(7, "layer0").random(8)
        b = spawn(7, "layer0").random(8)
        np.testing.assert_array_equal(a, b)


class TestDefaultRng:
    def test_seeded(self):
        np.testing.assert_array_equal(
            default_rng(3).random(4), default_rng(3).random(4)
        )

    def test_unseeded_distinct(self):
        assert not np.allclose(default_rng().random(4), default_rng().random(4))


class TestRngCapture:
    def test_round_trip_continues_bitwise(self):
        from repro.seeding import capture_rng, restore_rng

        rng = spawn(11, "stream")
        rng.random(100)  # advance mid-stream
        snapshot = capture_rng(rng)
        expected = rng.random(32)
        restored = restore_rng(snapshot)
        np.testing.assert_array_equal(restored.random(32), expected)

    def test_snapshot_is_a_copy(self):
        # Advancing the original after capture must not corrupt the
        # snapshot (it is plain data, not a live reference).
        from repro.seeding import capture_rng, restore_rng

        rng = spawn(3, "s")
        snapshot = capture_rng(rng)
        expected = rng.random(8)
        rng.random(1000)
        np.testing.assert_array_equal(restore_rng(snapshot).random(8), expected)

    def test_snapshot_is_json_serializable_after_int_coercion(self):
        # The state dict holds plain ints/strings — it survives a JSON
        # round trip, which is what checkpoint manifests need.
        import json

        from repro.seeding import capture_rng, restore_rng

        snapshot = capture_rng(spawn(5, "x"))
        round_tripped = json.loads(json.dumps(snapshot))
        np.testing.assert_array_equal(
            restore_rng(round_tripped).random(8),
            restore_rng(capture_rng(spawn(5, "x"))).random(8),
        )

    def test_unknown_bit_generator_rejected(self):
        import pytest

        from repro.errors import DataError
        from repro.seeding import restore_rng

        with pytest.raises(DataError, match="bit generator"):
            restore_rng({"bit_generator": "NoSuchGenerator", "state": {}})
