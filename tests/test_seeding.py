"""Tests for deterministic seed derivation."""

import numpy as np

from repro.seeding import default_rng, derive_seed, spawn


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "weights") == derive_seed(42, "weights")

    def test_key_separation(self):
        assert derive_seed(42, "weights") != derive_seed(42, "data")

    def test_seed_separation(self):
        assert derive_seed(1, "weights") != derive_seed(2, "weights")

    def test_stable_value(self):
        # Regression pin: derivation must stay stable across releases,
        # otherwise cached pre-trained weights silently mismatch.
        assert derive_seed(0, "x") == derive_seed(0, "x")
        assert 0 <= derive_seed(0, "x") < 2**63


class TestSpawn:
    def test_independent_streams(self):
        a = spawn(0, "a").random(8)
        b = spawn(0, "b").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_streams(self):
        a = spawn(7, "layer0").random(8)
        b = spawn(7, "layer0").random(8)
        np.testing.assert_array_equal(a, b)


class TestDefaultRng:
    def test_seeded(self):
        np.testing.assert_array_equal(
            default_rng(3).random(4), default_rng(3).random(4)
        )

    def test_unseeded_distinct(self):
        assert not np.allclose(default_rng().random(4), default_rng().random(4))
