"""Scenario combinators: golden bitwise identities + per-combinator behavior.

The ``blurry``, ``domain-incremental`` and ``task-incremental``
built-ins are now thin aliases over combinator chains.  Their bitwise
contract — same steps, same names, same data at the same seed as the
pre-combinator implementations — is pinned here against *inline legacy
reimplementations* (transcribed from the original built-ins, not
imported from the package), so a regression in either the combinators
or the alias wiring cannot hide behind "both sides changed together".

The second half covers behavior the aliases don't exercise: combinator
nesting, class repetition, label noise, and argument validation.
"""

import dataclasses
import itertools

import numpy as np
import pytest

from repro.core.sequential import iter_sequential_splits
from repro.data.synthetic_shd import SyntheticSHD
from repro.data.tasks import ClassIncrementalSplit
from repro.data.transforms import drift_dataset
from repro.errors import ConfigError
from repro.eval.scale import get_scale
from repro.scenario import (
    ContinualStep,
    SequentialScenario,
    StationaryScenario,
    get,
    with_blur,
    with_class_repetition,
    with_drift,
    with_label_noise,
    with_task_masks,
)
from repro.seeding import spawn

DENSE_T = 8
MAX_STEPS = 8


@pytest.fixture(scope="module")
def env():
    preset = get_scale("ci")
    experiment = preset.experiment.replace(
        samples_per_class=4, test_samples_per_class=2
    )
    return preset, experiment


def materialise(scenario, preset, experiment):
    generator = SyntheticSHD(preset.shd, seed=experiment.seed)
    return list(
        itertools.islice(scenario.steps(generator, experiment), MAX_STEPS)
    )


def assert_steps_identical(actual, expected):
    """Full bitwise step equality: labels, rasters, names, metadata."""
    assert len(actual) == len(expected)
    for a, b in zip(actual, expected):
        assert a.index == b.index
        assert a.name == b.name
        assert repr(dict(a.info)) == repr(dict(b.info))
        assert a.task_classes == b.task_classes
        assert a.split.old_classes == b.split.old_classes
        assert a.split.new_classes == b.split.new_classes
        for field in ("pretrain_train", "pretrain_test", "new_train", "new_test"):
            da, db = getattr(a.split, field), getattr(b.split, field)
            np.testing.assert_array_equal(da.labels, db.labels)
            np.testing.assert_array_equal(da.to_dense(DENSE_T), db.to_dense(DENSE_T))


# ---------------------------------------------------------------------------
# Inline legacy reimplementations (transcribed from the pre-combinator
# built-ins; the seed keys and name formats are the bitwise contract)
# ---------------------------------------------------------------------------


def legacy_blurry_steps(
    generator, experiment, *, steps_count=2, classes_per_step=1, blur_fraction=0.25
):
    base = generator.config.num_classes - steps_count * classes_per_step
    splits = iter_sequential_splits(
        generator,
        experiment.samples_per_class,
        experiment.test_samples_per_class,
        base_classes=base,
        steps=steps_count,
        classes_per_step=classes_per_step,
    )
    for k, split in enumerate(splits):
        rng = spawn(experiment.seed, f"scenario:blurry:{k}")
        minority = split.pretrain_train.sample_fraction(blur_fraction, rng)
        blurred = dataclasses.replace(
            split, new_train=split.new_train.concat(minority)
        )
        yield ContinualStep(
            index=k,
            split=blurred,
            name=(
                f"step-{k}: +classes {list(split.new_classes)} "
                f"(+{len(minority)} seen-class samples)"
            ),
            info={
                "new_classes": split.new_classes,
                "minority_samples": len(minority),
                "blur_fraction": blur_fraction,
            },
        )


def legacy_domain_steps(
    generator, experiment, *, steps_count=2, max_shift=2, dropout_p=0.05, blur=True
):
    clean_train = generator.generate_dataset(
        experiment.samples_per_class, split="train"
    )
    clean_test = generator.generate_dataset(
        experiment.test_samples_per_class, split="test"
    )
    all_classes = tuple(range(generator.config.num_classes))
    grid = generator.config.grid_steps
    for k in range(steps_count):
        severity = {
            "max_shift": (k + 1) * max_shift,
            "dropout_p": min((k + 1) * dropout_p, 0.45),
            "blur_steps": max(grid // (k + 2), 8) if blur else None,
        }
        rng = spawn(experiment.seed, f"scenario:domain:{k}")
        split = ClassIncrementalSplit(
            pretrain_train=clean_train,
            pretrain_test=clean_test,
            new_train=drift_dataset(clean_train, rng, grid_steps=grid, **severity),
            new_test=drift_dataset(clean_test, rng, grid_steps=grid, **severity),
            old_classes=all_classes,
            new_classes=all_classes,
        )
        yield ContinualStep(
            index=k,
            split=split,
            name=f"step-{k}: domain drift severity {k + 1}",
            info={"domain": k + 1, **severity},
        )


def legacy_task_incremental_steps(
    generator, experiment, *, steps_count=2, classes_per_step=1
):
    base = generator.config.num_classes - steps_count * classes_per_step
    splits = iter_sequential_splits(
        generator,
        experiment.samples_per_class,
        experiment.test_samples_per_class,
        base_classes=base,
        steps=steps_count,
        classes_per_step=classes_per_step,
    )
    groups = []
    for k, split in enumerate(splits):
        if not groups:
            groups.append(split.old_classes)
        groups.append(split.new_classes)
        yield ContinualStep(
            index=k,
            split=split,
            name=f"step-{k}: +task {list(split.new_classes)}",
            info={"new_classes": split.new_classes},
            task_classes=tuple(groups),
        )


class TestGoldenBitwiseIdentity:
    """Combinator-backed aliases reproduce the legacy built-ins bitwise."""

    def test_blurry_matches_legacy(self, env):
        preset, experiment = env
        generator = SyntheticSHD(preset.shd, seed=experiment.seed)
        golden = list(legacy_blurry_steps(generator, experiment))
        assert_steps_identical(
            materialise(get("blurry"), preset, experiment), golden
        )

    def test_domain_incremental_matches_legacy(self, env):
        preset, experiment = env
        generator = SyntheticSHD(preset.shd, seed=experiment.seed)
        golden = list(legacy_domain_steps(generator, experiment))
        assert_steps_identical(
            materialise(get("domain-incremental"), preset, experiment), golden
        )

    def test_task_incremental_matches_legacy(self, env):
        preset, experiment = env
        generator = SyntheticSHD(preset.shd, seed=experiment.seed)
        golden = list(legacy_task_incremental_steps(generator, experiment))
        assert_steps_identical(
            materialise(get("task-incremental"), preset, experiment), golden
        )

    def test_aliases_equal_explicit_combinator_chains(self, env):
        # The registered aliases and hand-built combinator chains are
        # the same stream — the aliases add no hidden behavior.
        preset, experiment = env
        pairs = [
            (get("blurry"), with_blur(SequentialScenario())),
            (get("domain-incremental"), with_drift(StationaryScenario())),
            (get("task-incremental"), with_task_masks(SequentialScenario())),
        ]
        for alias, chain in pairs:
            assert_steps_identical(
                materialise(alias, preset, experiment),
                materialise(chain, preset, experiment),
            )


class TestNesting:
    def test_blur_then_task_masks(self, env):
        preset, experiment = env
        chained = with_task_masks(with_blur(SequentialScenario()))
        assert chained.name == "sequential+blur+task-masks"
        steps = materialise(chained, preset, experiment)
        plain = materialise(SequentialScenario(), preset, experiment)
        for step, base in zip(steps, plain):
            # Blur's data effect survives under the outer wrapper...
            assert step.info["minority_samples"] > 0
            assert len(step.split.new_train.labels) > len(
                base.split.new_train.labels
            )
            # ...and task-masks decorates on top.
            assert step.task_classes is not None
            assert step.name.startswith(f"step-{step.index}: +task")

    def test_order_is_inside_out(self, env):
        # with_blur(with_task_masks(s)) renames blur-last; the reverse
        # renames task-masks-last — the chains are not interchangeable.
        preset, experiment = env
        blur_outer = materialise(
            with_blur(with_task_masks(SequentialScenario())), preset, experiment
        )
        masks_outer = materialise(
            with_task_masks(with_blur(SequentialScenario())), preset, experiment
        )
        assert "(+" in blur_outer[0].name  # blur's suffix survived
        assert masks_outer[0].name.startswith("step-0: +task")
        assert blur_outer[0].name != masks_outer[0].name
        # Data-wise both carry the same blended training stream.
        np.testing.assert_array_equal(
            blur_outer[0].split.new_train.labels,
            masks_outer[0].split.new_train.labels,
        )


class TestClassRepetition:
    def test_re_presents_classes_after_period(self, env):
        preset, experiment = env
        scenario = with_class_repetition(
            SequentialScenario(steps_count=3), period=1
        )
        steps = materialise(scenario, preset, experiment)
        plain = materialise(SequentialScenario(steps_count=3), preset, experiment)
        # Step 0 has nothing old enough to repeat.
        assert steps[0].info["repeated_classes"] == ()
        np.testing.assert_array_equal(
            steps[0].split.new_train.labels, plain[0].split.new_train.labels
        )
        # Step k >= 1 re-presents the classes that arrived at step k-1.
        for k in (1, 2):
            repeated = steps[k].info["repeated_classes"]
            assert repeated == plain[k - 1].split.new_classes
            extra = set(steps[k].split.new_train.labels.tolist()) - set(
                plain[k].split.new_train.labels.tolist()
            )
            assert extra == set(repeated)
            assert f"(repeat {list(repeated)})" in steps[k].name
            # Evaluation sets are untouched.
            np.testing.assert_array_equal(
                steps[k].split.new_test.labels, plain[k].split.new_test.labels
            )

    def test_period_beyond_stream_never_repeats(self, env):
        preset, experiment = env
        scenario = with_class_repetition(
            SequentialScenario(steps_count=2), period=5
        )
        for step in materialise(scenario, preset, experiment):
            assert step.info["repeated_classes"] == ()


class TestLabelNoise:
    def test_flips_exactly_the_requested_fraction(self, env):
        preset, experiment = env
        scenario = with_label_noise(SequentialScenario(), noise_fraction=0.5)
        steps = materialise(scenario, preset, experiment)
        plain = materialise(SequentialScenario(), preset, experiment)
        for noisy, base in zip(steps, plain):
            clean = base.split.new_train.labels
            flipped = noisy.split.new_train.labels
            expected = int(np.ceil(0.5 * len(clean)))
            changed = int((clean != flipped).sum())
            assert noisy.info["noisy_labels"] == expected
            # Every flip targets a *different* label, so the changed
            # count equals the flip count exactly.
            assert changed == expected
            seen = set(base.split.old_classes) | set(base.split.new_classes)
            assert set(flipped.tolist()) <= seen
            assert f"({expected} noisy labels)" in noisy.name
            # Spike streams and eval labels are untouched.
            np.testing.assert_array_equal(
                noisy.split.new_train.to_dense(DENSE_T),
                base.split.new_train.to_dense(DENSE_T),
            )
            np.testing.assert_array_equal(
                noisy.split.new_test.labels, base.split.new_test.labels
            )

    def test_deterministic_across_materialisations(self, env):
        preset, experiment = env
        scenario = with_label_noise(SequentialScenario(), noise_fraction=0.3)
        first = materialise(scenario, preset, experiment)
        second = materialise(scenario, preset, experiment)
        assert_steps_identical(first, second)


class TestValidation:
    def test_factory_argument_validation(self):
        base = SequentialScenario()
        with pytest.raises(ConfigError, match="max_shift"):
            with_drift(base, max_shift=-1)
        with pytest.raises(ConfigError, match="dropout_p"):
            with_drift(base, dropout_p=1.0)
        with pytest.raises(ConfigError, match="blur_fraction"):
            with_blur(base, blur_fraction=0.0)
        with pytest.raises(ConfigError, match="period"):
            with_class_repetition(base, period=0)
        with pytest.raises(ConfigError, match="noise_fraction"):
            with_label_noise(base, noise_fraction=1.5)

    def test_describe_composes(self):
        wrapped = with_blur(SequentialScenario())
        base_text = SequentialScenario().describe()
        assert wrapped.describe().startswith(base_text)
        assert "blend" in wrapped.describe()
