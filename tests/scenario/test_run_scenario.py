"""`run_scenario` end-to-end: all four built-ins, dense and store-backed.

The acceptance bar of the scenario-first redesign: every registered
scenario executes end-to-end at ci scale, the store-backed path
(one `ReplaySpec`, federated per-step stores) reproduces the dense
trajectory bitwise, and the accuracy matrix / CL metrics are coherent.
"""

import numpy as np
import pytest

from repro.core import ReplaySpec
from repro.core.pipeline import pretrain
from repro.data.synthetic_shd import SyntheticSHD
from repro.errors import ConfigError, DataError
from repro.eval.scale import get_scale
from repro.replaystore import FederatedReplayStore
from repro.scenario import (
    ScenarioResult,
    average_accuracy,
    backward_transfer,
    forgetting,
    get,
    run_scenario,
)

SCENARIOS = [
    "single-step",
    "sequential",
    "task-incremental",
    "domain-incremental",
    "blurry",
]


@pytest.fixture(scope="module")
def env():
    preset = get_scale("ci")
    # Short NCL phase: 8 scenario runs live in this module; the paths
    # exercised do not depend on the epoch count.
    experiment = preset.experiment.replace(
        ncl=preset.experiment.ncl.replace(epochs=4)
    )
    generator = SyntheticSHD(preset.shd, seed=experiment.seed)
    return generator, experiment


@pytest.fixture(scope="module")
def runs(env, tmp_path_factory):
    """Each scenario once dense and once store-backed, shared pretraining."""
    generator, experiment = env
    out = {}
    for name in SCENARIOS:
        scenario = get(name)
        first = next(iter(scenario.steps(generator, experiment)))
        pretrained = pretrain(experiment, first.split)
        shared = dict(
            generator=generator, experiment=experiment, pretrained=pretrained
        )
        dense = run_scenario(scenario, "replay4ncl", **shared)
        root = tmp_path_factory.mktemp(f"scenario-{name}") / "fed"
        stored = run_scenario(
            scenario,
            "replay4ncl",
            replay=ReplaySpec(store_dir=root, shard_samples=4),
            **shared,
        )
        out[name] = (dense, stored, pretrained)
    return out


class TestAllScenariosEndToEnd:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_executes_and_shapes(self, runs, name):
        dense, stored, _ = runs[name]
        for result in (dense, stored):
            assert isinstance(result, ScenarioResult)
            assert result.scenario == name
            assert result.method == "replay4ncl"
            steps = len(result.steps)
            assert steps >= 1
            assert len(result.step_names) == steps
            assert result.accuracy_matrix.shape == (steps + 1, steps + 1)

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_matrix_triangular_and_finite(self, runs, name):
        dense, _, _ = runs[name]
        matrix = dense.accuracy_matrix
        sessions = matrix.shape[0]
        for i in range(sessions):
            assert np.all(np.isfinite(matrix[i, : i + 1]))
            assert np.all(np.isnan(matrix[i, i + 1 :]))
        assert matrix[0, 0] == dense.pretrain_accuracy

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_metrics_derive_from_matrix(self, runs, name):
        dense, _, _ = runs[name]
        matrix = dense.accuracy_matrix
        assert dense.average_accuracy == average_accuracy(matrix)
        assert dense.forgetting == forgetting(matrix)
        assert dense.backward_transfer == backward_transfer(matrix)
        assert 0.0 <= dense.average_accuracy <= 1.0

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_store_backed_is_bitwise_identical(self, runs, name):
        dense, stored, _ = runs[name]
        assert len(dense.steps) == len(stored.steps)
        for mem, disk in zip(dense.steps, stored.steps):
            assert len(mem.history) == len(disk.history)
            for a, b in zip(mem.history, disk.history):
                assert a.loss == b.loss
                assert a.overall_accuracy == b.overall_accuracy
            for p_mem, p_disk in zip(
                mem.network.parameters(), disk.network.parameters()
            ):
                np.testing.assert_array_equal(p_mem.data, p_disk.data)
        np.testing.assert_array_equal(
            dense.accuracy_matrix, stored.accuracy_matrix
        )

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_store_artifacts(self, runs, name):
        dense, stored, _ = runs[name]
        assert dense.store_root is None
        assert stored.store_root is not None
        federation = FederatedReplayStore.open(stored.store_root)
        assert federation.member_names == [
            f"step-{k:03d}" for k in range(len(stored.steps))
        ]
        for step in stored.steps:
            assert step.replay_store_path is not None
            assert step.replay_peak_resident_bytes > 0

    def test_matrix_row0_uses_ncl_deployment_semantics(self, env, runs):
        # R[0, 0] must be measured exactly like every later row — NCL
        # timesteps + the method's threshold controller — or the
        # systematic pretrain-vs-NCL timestep gap would masquerade as
        # forgetting/negative BWT of the base task.
        from repro.core import Replay4NCL
        from repro.scenario.runner import _task_accuracy

        generator, experiment = env
        dense, _, pretrained = runs["single-step"]
        first = next(iter(get("single-step").steps(generator, experiment)))
        probe = Replay4NCL(experiment)
        expected = _task_accuracy(
            pretrained.network,
            first.split.pretrain_test,
            probe.ncl_timesteps(),
            probe,
        )
        assert dense.accuracy_matrix[0, 0] == expected
        assert dense.pretrain_accuracy == expected

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_sequential_result_views(self, runs, name):
        dense, _, _ = runs[name]
        seq = dense.as_sequential()
        assert seq.steps == dense.steps
        assert seq.old_accuracy_trajectory == dense.old_accuracy_trajectory
        assert dense.final_network is dense.steps[-1].network
        text = dense.describe()
        assert name in text and "forgetting" in text


class TestRunScenarioAPI:
    def test_accepts_registry_names_and_instances(self, env):
        generator, experiment = env
        scenario = get("single-step")
        by_name = run_scenario(
            "single-step", "naive", generator=generator, experiment=experiment
        )
        by_instance = run_scenario(
            scenario, "naive", generator=generator, experiment=experiment
        )
        # The registry name round-trips (not the instance's own
        # "naive-finetune" display name).
        assert by_name.method == by_instance.method == "naive"
        np.testing.assert_array_equal(
            by_name.accuracy_matrix, by_instance.accuracy_matrix
        )

    def test_unknown_scenario_and_method(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            run_scenario("task-free")
        with pytest.raises(ConfigError, match="unknown method"):
            run_scenario("single-step", "sgd")

    def test_rejects_method_instance(self, env):
        generator, experiment = env
        from repro.core import Replay4NCL

        with pytest.raises(ConfigError, match="fresh method"):
            run_scenario(
                "single-step",
                Replay4NCL(experiment),
                generator=generator,
                experiment=experiment,
            )

    def test_rejects_non_scenario(self):
        with pytest.raises(ConfigError, match="scenario must be"):
            run_scenario(42)

    def test_empty_scenario(self, env):
        generator, experiment = env

        class Empty:
            name = "empty"

            def describe(self):
                return "no steps"

            def steps(self, generator, experiment):
                return iter(())

        with pytest.raises(DataError, match="yielded no steps"):
            run_scenario(Empty(), generator=generator, experiment=experiment)

    def test_bare_network_as_pretrained(self, env, runs):
        # A bare SpikingNetwork works as the starting point; the base
        # accuracy is then measured inside run_scenario.
        generator, experiment = env
        dense, _, _ = runs["single-step"]
        result = run_scenario(
            "single-step",
            "naive",
            generator=generator,
            experiment=experiment,
            pretrained=dense.steps[-1].network,
        )
        assert 0.0 <= result.pretrain_accuracy <= 1.0


class TestExperimentsWiring:
    def test_eval_run_scenario_reuses_context(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        from repro.eval import experiments
        from repro.scenario import runner

        experiments.context("ci")  # warm the shared pre-training

        def no_pretrain(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("pre-training must be reused, not re-run")

        monkeypatch.setattr(runner, "pretrain", no_pretrain)
        result = experiments.run_scenario("single-step", "naive", scale="ci")
        assert result.scenario == "single-step"
        assert len(result.steps) == 1

    def test_eval_run_scenario_skips_cache_on_override(
        self, env, monkeypatch, tmp_path
    ):
        # A caller-supplied experiment changes the base split; the
        # cached network must NOT be injected silently — a fresh
        # pre-training run happens instead.
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        from repro.eval import experiments
        from repro.scenario import runner

        _, experiment = env
        custom = experiment.replace(num_pretrain_classes=3)
        calls = []
        real_pretrain = runner.pretrain

        def counting_pretrain(*args, **kwargs):
            calls.append(args)
            return real_pretrain(*args, **kwargs)

        monkeypatch.setattr(runner, "pretrain", counting_pretrain)
        result = experiments.run_scenario(
            "single-step", "naive", scale="ci", experiment=custom
        )
        assert len(calls) == 1
        # The scenario really used the overridden 3-class base.
        assert len(result.steps[0].history) > 0
        assert result.accuracy_matrix.shape == (2, 2)
