"""Registry-wide scenario conformance suite.

Parametrized over :func:`repro.scenario.available` **at collection
time**, so every registered scenario — the five built-ins and any
third-party scenario ``register()``'d before this module is collected —
inherits the same invariant coverage for free:

- protocol conformance (``name``/``describe()``/``steps()`` as the
  :class:`~repro.scenario.base.Scenario` protocol specifies, with the
  registry name round-tripping);
- lazy step construction (``steps()`` returns a lazy iterator and does
  not touch the generator before iteration);
- same-seed determinism (two materialisations from fresh same-seed
  generators are bitwise-identical, datasets included);
- disjoint eval sets, for every scenario that *promises* them via a
  ``disjoint_eval = True`` attribute (``domain-incremental``
  intentionally does not — its "new" task is the same label space
  under drift);
- ``as_sequential()`` interop of the scenario's
  :class:`~repro.scenario.runner.ScenarioResult`.

The same invariants are then re-applied to the full **(base scenario ×
combinator)** product (``TestCombinatorProductConformance``): every
registered base wrapped in every combinator from
:mod:`repro.scenario.combinators` must stay protocol-conformant, lazy,
and same-seed deterministic — combinators may transform steps but never
weaken the contract.

The check functions are module-level so they can also be aimed at
deliberately broken scenarios: the suite must *fail* for a non-lazy or
non-deterministic implementation, and those failures are demonstrated
below (``TestConformanceCatchesViolations``) — including a combinator
that eagerly materialises its base's stream.
"""

import itertools

import numpy as np
import pytest

from repro.data.synthetic_shd import SyntheticSHD
from repro.data.tasks import make_class_incremental
from repro.eval.scale import get_scale
from repro.scenario import (
    Scenario,
    available,
    get,
    register,
    run_scenario,
    with_blur,
    with_class_repetition,
    with_drift,
    with_label_noise,
    with_task_masks,
)
from repro.scenario import registry as registry_module

#: Snapshot at collection time: one parametrization per registered
#: scenario.  Register before import/collection to join the suite.
NAMES = available()

#: Every combinator, by the tag it appends to the base scenario's name.
#: The product suite wraps each registered base in each of these.
COMBINATORS = {
    "blur": with_blur,
    "class-repetition": with_class_repetition,
    "drift": with_drift,
    "label-noise": with_label_noise,
    "task-masks": with_task_masks,
}

#: The full (base × combinator) product, computed at collection time so
#: third-party registrations join it exactly like the plain suite.
PRODUCT = [
    (base, tag) for base in NAMES for tag in sorted(COMBINATORS)
]

#: Safety cap for the conformance walks — a registered scenario may
#: describe an arbitrarily long stream; conformance only needs a prefix.
MAX_STEPS = 16

#: Coarse raster used for bitwise dataset comparison (any fixed value
#: works: `to_dense` is deterministic per dataset).
DENSE_T = 8


@pytest.fixture(scope="module")
def env():
    preset = get_scale("ci")
    # Small sample counts: the structural checks never train anything.
    experiment = preset.experiment.replace(
        samples_per_class=4, test_samples_per_class=2
    )
    return preset, experiment


# ---------------------------------------------------------------------------
# Check functions (reused below against deliberately broken scenarios)
# ---------------------------------------------------------------------------


class _ForbiddenGenerator:
    """Explodes on any use: ``steps()`` must not do data work eagerly."""

    def __getattr__(self, attr):
        raise AssertionError(
            f"steps() touched generator.{attr} before the iterator was "
            "advanced — step construction must be lazy"
        )


def check_protocol(scenario, registered_name: str) -> None:
    """Structural Scenario conformance + registry-name round-trip."""
    assert isinstance(scenario, Scenario), (
        f"{type(scenario).__name__} does not satisfy the Scenario protocol"
    )
    assert scenario.name == registered_name, (
        f"scenario.name {scenario.name!r} != registry name {registered_name!r}"
    )
    description = scenario.describe()
    assert isinstance(description, str) and description.strip(), (
        "describe() must return a non-empty one-line summary"
    )


def check_lazy_steps(scenario, experiment) -> None:
    """``steps()`` returns a lazy iterator and defers all data work."""
    iterator = scenario.steps(_ForbiddenGenerator(), experiment)
    assert iter(iterator) is iterator, (
        "steps() must return a lazy iterator, not a materialised sequence"
    )


def _materialise(scenario, preset, experiment):
    """Steps from a fresh same-seed generator, flattened for comparison."""
    generator = SyntheticSHD(preset.shd, seed=experiment.seed)
    steps = list(
        itertools.islice(scenario.steps(generator, experiment), MAX_STEPS)
    )
    assert steps, f"scenario {scenario.name!r} yielded no steps"
    return steps


def check_deterministic(scenario, preset, experiment) -> None:
    """Two same-seed materialisations are bitwise-identical."""
    first = _materialise(scenario, preset, experiment)
    second = _materialise(scenario, preset, experiment)
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert a.index == b.index
        assert a.name == b.name, (
            f"step {a.index} name differs across same-seed runs: "
            f"{a.name!r} vs {b.name!r}"
        )
        assert repr(a.info) == repr(b.info)
        assert a.task_classes == b.task_classes
        for field in ("pretrain_train", "pretrain_test", "new_train", "new_test"):
            da, db = getattr(a.split, field), getattr(b.split, field)
            np.testing.assert_array_equal(da.labels, db.labels)
            np.testing.assert_array_equal(
                da.to_dense(DENSE_T), db.to_dense(DENSE_T)
            )


def check_disjoint_eval(scenario, preset, experiment) -> None:
    """Every step's eval sets honour a ``disjoint_eval = True`` promise."""
    for step in _materialise(scenario, preset, experiment):
        old = set(step.split.old_classes)
        new = set(step.split.new_classes)
        assert not old & new, (
            f"step {step.index}: old and new class sets overlap: {old & new}"
        )
        assert set(step.split.new_test.labels.tolist()) <= new, (
            f"step {step.index}: new_test carries labels outside new_classes"
        )
        assert set(step.split.pretrain_test.labels.tolist()) <= old, (
            f"step {step.index}: pretrain_test carries labels outside "
            "old_classes"
        )


# ---------------------------------------------------------------------------
# The registry-wide suite
# ---------------------------------------------------------------------------


class TestRegisteredScenarioConformance:
    @pytest.mark.parametrize("name", NAMES)
    def test_protocol(self, name):
        check_protocol(get(name), name)

    @pytest.mark.parametrize("name", NAMES)
    def test_lazy_step_construction(self, name, env):
        _, experiment = env
        check_lazy_steps(get(name), experiment)

    @pytest.mark.parametrize("name", NAMES)
    def test_same_seed_determinism(self, name, env):
        preset, experiment = env
        check_deterministic(get(name), preset, experiment)

    @pytest.mark.parametrize("name", NAMES)
    def test_disjoint_eval_where_promised(self, name, env):
        preset, experiment = env
        scenario = get(name)
        if getattr(scenario, "disjoint_eval", False) is not True:
            pytest.skip(f"{name} does not promise disjoint eval sets")
        check_disjoint_eval(scenario, preset, experiment)


# ---------------------------------------------------------------------------
# The (base × combinator) product inherits the same invariants
# ---------------------------------------------------------------------------


def _product_id(pair) -> str:
    base, tag = pair
    return f"{base}+{tag}"


class TestCombinatorProductConformance:
    """Every combinator over every registered base keeps the contract."""

    @pytest.mark.parametrize("pair", PRODUCT, ids=_product_id)
    def test_protocol(self, pair):
        base, tag = pair
        wrapped = COMBINATORS[tag](get(base))
        check_protocol(wrapped, f"{base}+{tag}")

    @pytest.mark.parametrize("pair", PRODUCT, ids=_product_id)
    def test_lazy_step_construction(self, pair, env):
        _, experiment = env
        base, tag = pair
        check_lazy_steps(COMBINATORS[tag](get(base)), experiment)

    @pytest.mark.parametrize("pair", PRODUCT, ids=_product_id)
    def test_same_seed_determinism(self, pair, env):
        preset, experiment = env
        base, tag = pair
        check_deterministic(COMBINATORS[tag](get(base)), preset, experiment)

    @pytest.mark.parametrize("pair", PRODUCT, ids=_product_id)
    def test_disjoint_eval_where_promised(self, pair, env):
        preset, experiment = env
        base, tag = pair
        wrapped = COMBINATORS[tag](get(base))
        if getattr(wrapped, "disjoint_eval", False) is not True:
            pytest.skip(f"{base}+{tag} does not promise disjoint eval sets")
        check_disjoint_eval(wrapped, preset, experiment)

    def test_nested_chain_keeps_contract(self, env):
        # Combinators compose: a three-deep chain is still a conforming,
        # lazy, deterministic scenario.
        preset, experiment = env
        chained = with_task_masks(with_label_noise(with_blur(get("sequential"))))
        check_protocol(chained, "sequential+blur+label-noise+task-masks")
        check_lazy_steps(chained, experiment)
        check_deterministic(chained, preset, experiment)


@pytest.fixture(scope="module")
def tiny_runs(env):
    """One ultra-short end-to-end run per scenario, computed on demand."""
    preset, base = env
    experiment = base.replace(
        pretrain=base.pretrain.replace(epochs=1),
        ncl=base.ncl.replace(epochs=1),
    )
    generator = SyntheticSHD(preset.shd, seed=experiment.seed)
    cache = {}

    def run(name):
        if name not in cache:
            cache[name] = run_scenario(
                name, "replay4ncl", generator=generator, experiment=experiment
            )
        return cache[name]

    return run


class TestAsSequentialInterop:
    @pytest.mark.parametrize("name", NAMES)
    def test_as_sequential(self, name, tiny_runs):
        result = tiny_runs(name)
        seq = result.as_sequential()
        assert seq.steps == result.steps
        assert seq.store_root == result.store_root
        assert seq.final_network is result.steps[-1].network
        assert seq.old_accuracy_trajectory == result.old_accuracy_trajectory
        assert seq.new_accuracy_trajectory == result.new_accuracy_trajectory


# ---------------------------------------------------------------------------
# The suite must fail for broken scenarios — demonstrated directly
# ---------------------------------------------------------------------------


class _EagerScenario:
    """Materialises its data inside ``steps()`` — the non-lazy offender."""

    name = "bad-eager"
    disjoint_eval = True

    def describe(self):
        return "touches the generator before iteration"

    def steps(self, generator, experiment):
        split = make_class_incremental(
            generator,
            experiment.samples_per_class,
            experiment.test_samples_per_class,
        )
        from repro.scenario import ContinualStep

        return [ContinualStep(index=0, split=split, name="step-0")]


class _ListScenario:
    """Lazy about data but returns a materialised list, not an iterator."""

    name = "bad-list"

    def describe(self):
        return "returns a list from steps()"

    def steps(self, generator, experiment):
        return []


class _FlakyScenario:
    """Step labels differ between same-seed materialisations."""

    _counter = itertools.count()
    name = "bad-flaky"

    def describe(self):
        return "non-deterministic step names"

    def steps(self, generator, experiment):
        split = make_class_incremental(
            generator,
            experiment.samples_per_class,
            experiment.test_samples_per_class,
        )
        from repro.scenario import ContinualStep

        yield ContinualStep(
            index=0, split=split, name=f"step-{next(self._counter)}"
        )


class _EagerCombinator:
    """A *broken* combinator: drains its base inside ``steps()``.

    Wrapping any real (lazy) base, this materialises the whole stream
    before returning — exactly the failure mode the laziness probe must
    catch for combinators, since a lazy base makes eagerness invisible
    to everything but the generator.
    """

    def __init__(self, base):
        self.base = base
        self.name = f"{base.name}+eager"

    def describe(self):
        return f"{self.base.describe()} [materialised eagerly]"

    def steps(self, generator, experiment):
        return iter(list(self.base.steps(generator, experiment)))


class TestConformanceCatchesViolations:
    def test_rejects_eager_scenario(self, env):
        _, experiment = env
        with pytest.raises(AssertionError, match="touched generator"):
            check_lazy_steps(_EagerScenario(), experiment)

    def test_rejects_eager_combinator(self, env):
        # The wrapped base is a perfectly lazy registered scenario; only
        # the combinator is at fault, and the probe still catches it.
        _, experiment = env
        with pytest.raises(AssertionError, match="touched generator"):
            check_lazy_steps(_EagerCombinator(get("sequential")), experiment)

    def test_rejects_materialised_sequence(self, env):
        _, experiment = env
        with pytest.raises(AssertionError, match="lazy iterator"):
            check_lazy_steps(_ListScenario(), experiment)

    def test_rejects_non_deterministic_scenario(self, env):
        preset, experiment = env
        with pytest.raises(AssertionError, match="differs across same-seed"):
            check_deterministic(_FlakyScenario(), preset, experiment)

    def test_checks_cover_third_party_registrations(self, env):
        # A well-formed third-party scenario passes the exact same check
        # functions the registry-wide suite applies — registering before
        # collection is all it takes to inherit them as tests.
        preset, experiment = env

        class ThirdParty:
            name = "third-party-ok"
            disjoint_eval = True

            def describe(self):
                return "a conforming external scenario"

            def steps(self, generator, experiment):
                split = make_class_incremental(
                    generator,
                    experiment.samples_per_class,
                    experiment.test_samples_per_class,
                )
                from repro.scenario import ContinualStep

                yield ContinualStep(index=0, split=split, name="step-0")

        register("third-party-ok", ThirdParty)
        try:
            scenario = get("third-party-ok")
            check_protocol(scenario, "third-party-ok")
            check_lazy_steps(scenario, experiment)
            check_deterministic(scenario, preset, experiment)
            check_disjoint_eval(scenario, preset, experiment)
        finally:
            registry_module._SCENARIOS.pop("third-party-ok", None)
