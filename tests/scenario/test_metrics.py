"""Continual-learning metrics vs hand-computed values (3-step toy run)."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.scenario import average_accuracy, backward_transfer, forgetting

NAN = float("nan")

#: Pre-train session + 3 continual steps over 4 tasks.  R[i, j] = top-1
#: on task j after session i; upper triangle = not yet seen.
TOY = [
    [0.9, NAN, NAN, NAN],
    [0.8, 0.7, NAN, NAN],
    [0.6, 0.6, 0.8, NAN],
    [0.5, 0.4, 0.7, 0.9],
]


class TestHandComputedToyTrajectory:
    def test_average_accuracy(self):
        # Final row mean: (0.5 + 0.4 + 0.7 + 0.9) / 4.
        assert average_accuracy(TOY) == pytest.approx(0.625)

    def test_forgetting(self):
        # task 0: best of {0.9, 0.8, 0.6} - 0.5 = 0.4
        # task 1: best of {0.7, 0.6}      - 0.4 = 0.3
        # task 2: best of {0.8}           - 0.7 = 0.1
        assert forgetting(TOY) == pytest.approx((0.4 + 0.3 + 0.1) / 3)

    def test_backward_transfer(self):
        # task 0: 0.5 - 0.9 = -0.4; task 1: 0.4 - 0.7 = -0.3;
        # task 2: 0.7 - 0.8 = -0.1.
        assert backward_transfer(TOY) == pytest.approx(-(0.4 + 0.3 + 0.1) / 3)

    def test_forgetting_and_bwt_sign_relation(self):
        # When the best historical accuracy sits on the diagonal (the
        # usual monotone-decay case), forgetting == -BWT exactly.
        assert forgetting(TOY) == pytest.approx(-backward_transfer(TOY))


class TestEdgeCases:
    def test_single_session(self):
        matrix = [[0.8]]
        assert average_accuracy(matrix) == pytest.approx(0.8)
        assert forgetting(matrix) == 0.0
        assert backward_transfer(matrix) == 0.0

    def test_positive_backward_transfer(self):
        # Later learning *improves* the first task: BWT > 0 while
        # forgetting clamps at the best-so-far convention.
        matrix = [[0.5, NAN], [0.7, 0.6]]
        assert backward_transfer(matrix) == pytest.approx(0.2)
        assert forgetting(matrix) == pytest.approx(-0.2)

    def test_no_forgetting_when_flat(self):
        matrix = [[0.8, NAN], [0.8, 0.9]]
        assert forgetting(matrix) == pytest.approx(0.0)
        assert backward_transfer(matrix) == pytest.approx(0.0)


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(DataError, match="square"):
            average_accuracy([[0.5, 0.5]])

    def test_rejects_nan_below_diagonal(self):
        with pytest.raises(DataError, match="non-finite"):
            forgetting([[0.5, NAN], [NAN, 0.5]])

    def test_rejects_out_of_range(self):
        with pytest.raises(DataError, match=r"\[0, 1\]"):
            backward_transfer([[1.5]])

    def test_accepts_numpy_input(self):
        matrix = np.asarray(TOY)
        assert average_accuracy(matrix) == pytest.approx(0.625)
