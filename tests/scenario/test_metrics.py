"""Continual-learning metrics vs hand-computed values (3-step toy run)."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.scenario import average_accuracy, backward_transfer, class_mask, forgetting

NAN = float("nan")

#: Pre-train session + 3 continual steps over 4 tasks.  R[i, j] = top-1
#: on task j after session i; upper triangle = not yet seen.
TOY = [
    [0.9, NAN, NAN, NAN],
    [0.8, 0.7, NAN, NAN],
    [0.6, 0.6, 0.8, NAN],
    [0.5, 0.4, 0.7, 0.9],
]


class TestHandComputedToyTrajectory:
    def test_average_accuracy(self):
        # Final row mean: (0.5 + 0.4 + 0.7 + 0.9) / 4.
        assert average_accuracy(TOY) == pytest.approx(0.625)

    def test_forgetting(self):
        # task 0: best of {0.9, 0.8, 0.6} - 0.5 = 0.4
        # task 1: best of {0.7, 0.6}      - 0.4 = 0.3
        # task 2: best of {0.8}           - 0.7 = 0.1
        assert forgetting(TOY) == pytest.approx((0.4 + 0.3 + 0.1) / 3)

    def test_backward_transfer(self):
        # task 0: 0.5 - 0.9 = -0.4; task 1: 0.4 - 0.7 = -0.3;
        # task 2: 0.7 - 0.8 = -0.1.
        assert backward_transfer(TOY) == pytest.approx(-(0.4 + 0.3 + 0.1) / 3)

    def test_forgetting_and_bwt_sign_relation(self):
        # When the best historical accuracy sits on the diagonal (the
        # usual monotone-decay case), forgetting == -BWT exactly.
        assert forgetting(TOY) == pytest.approx(-backward_transfer(TOY))


class TestEdgeCases:
    def test_single_session(self):
        matrix = [[0.8]]
        assert average_accuracy(matrix) == pytest.approx(0.8)
        assert forgetting(matrix) == 0.0
        assert backward_transfer(matrix) == 0.0

    def test_positive_backward_transfer(self):
        # Later learning *improves* the first task: BWT > 0 while
        # forgetting clamps at the best-so-far convention.
        matrix = [[0.5, NAN], [0.7, 0.6]]
        assert backward_transfer(matrix) == pytest.approx(0.2)
        assert forgetting(matrix) == pytest.approx(-0.2)

    def test_no_forgetting_when_flat(self):
        matrix = [[0.8, NAN], [0.8, 0.9]]
        assert forgetting(matrix) == pytest.approx(0.0)
        assert backward_transfer(matrix) == pytest.approx(0.0)


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(DataError, match="square"):
            average_accuracy([[0.5, 0.5]])

    def test_rejects_nan_below_diagonal(self):
        with pytest.raises(DataError, match="non-finite"):
            forgetting([[0.5, NAN], [NAN, 0.5]])

    def test_rejects_out_of_range(self):
        with pytest.raises(DataError, match=r"\[0, 1\]"):
            backward_transfer([[1.5]])

    def test_accepts_numpy_input(self):
        matrix = np.asarray(TOY)
        assert average_accuracy(matrix) == pytest.approx(0.625)


class TestClassMask:
    def test_selects_classes(self):
        mask = class_mask((1, 3), 5)
        np.testing.assert_array_equal(
            mask, [False, True, False, True, False]
        )
        assert mask.dtype == np.bool_

    def test_deduplicates_and_accepts_any_iterable(self):
        np.testing.assert_array_equal(
            class_mask([2, 2, 0], 4), class_mask((0, 2), 4)
        )

    def test_rejects_empty(self):
        with pytest.raises(DataError, match="at least one class"):
            class_mask((), 5)

    def test_rejects_out_of_range(self):
        with pytest.raises(DataError, match=r"\[0, 5\)"):
            class_mask((5,), 5)
        with pytest.raises(DataError, match=r"\[0, 5\)"):
            class_mask((-1,), 5)

    def test_rejects_bad_num_classes(self):
        with pytest.raises(DataError, match="positive"):
            class_mask((0,), 0)


# ---------------------------------------------------------------------------
# Hand-computed 3-step task-incremental trajectory.
#
# 8 classes in 4 two-class tasks: T0=(0,1) is the pre-training base,
# T1=(2,3), T2=(4,5), T3=(6,7) arrive at steps 0..2.  Logits are pushed
# through a real LeakyReadout with identity weights over one timestep,
# so the readout returns the hand-written logit vectors verbatim and
# every matrix entry is evaluated through the real masking path
# (class_mask -> LeakyReadout.forward -> argmax), not a re-derivation.
#
# Each entry holds two samples built from three primitives:
#   correct(t)        — global argmax already t: right with or without mask
#   rescued(t, c)     — global argmax c (outside the task), in-task argmax t:
#                       right ONLY under the task's mask
#   wrong(t, w)       — in-task argmax w != t: wrong either way
# ---------------------------------------------------------------------------

TASKS = ((0, 1), (2, 3), (4, 5), (6, 7))
NUM_CLASSES = 8


def _correct(t):
    v = np.zeros(NUM_CLASSES)
    v[t] = 5.0
    return v, t


def _rescued(t, outside):
    v = np.zeros(NUM_CLASSES)
    v[outside] = 9.0
    v[t] = 5.0
    return v, t


def _wrong(t, w):
    v = np.zeros(NUM_CLASSES)
    v[w] = 5.0
    return v, t


#: SAMPLES[(session, task)] -> two (logits, true_label) samples.
SAMPLES = {
    (0, 0): (_correct(0), _rescued(1, 6)),
    (1, 0): (_correct(0), _correct(1)),
    (1, 1): (_correct(2), _rescued(3, 0)),
    (2, 0): (_wrong(0, 1), _correct(1)),
    (2, 1): (_correct(2), _correct(3)),
    (2, 2): (_correct(4), _rescued(5, 1)),
    (3, 0): (_wrong(0, 1), _rescued(1, 7)),
    (3, 1): (_wrong(2, 3), _correct(3)),
    (3, 2): (_correct(4), _rescued(5, 0)),
    (3, 3): (_correct(6), _correct(7)),
}


def _accuracy_matrix(masked: bool) -> np.ndarray:
    from repro.snn.layers import LeakyReadout
    from repro.training.metrics import top1_accuracy

    readout = LeakyReadout(NUM_CLASSES, NUM_CLASSES, beta=0.5)
    readout.w_ff.data = np.eye(NUM_CLASSES)
    readout.set_trainable(False)
    matrix = np.full((4, 4), np.nan)
    for (session, task), samples in SAMPLES.items():
        x = np.stack([logits for logits, _ in samples])[None, :, :]
        labels = np.array([label for _, label in samples])
        mask = class_mask(TASKS[task], NUM_CLASSES) if masked else None
        out = readout.forward(x.astype(np.float64), class_mask=mask)
        matrix[session, task] = top1_accuracy(
            out.data.argmax(axis=1), labels
        )
    return matrix


class TestTaskIncrementalHandComputed:
    def test_masked_matrix_matches_hand_derivation(self):
        # Per entry: correct=1, rescued=1 (mask removes the outside
        # winner), wrong=0 -> mean of two samples.
        expected = [
            [1.0, NAN, NAN, NAN],
            [1.0, 1.0, NAN, NAN],
            [0.5, 1.0, 1.0, NAN],
            [0.5, 0.5, 1.0, 1.0],
        ]
        np.testing.assert_array_equal(
            _accuracy_matrix(masked=True), np.asarray(expected)
        )

    def test_unmasked_matrix_matches_hand_derivation(self):
        # Same logits without masks: every `rescued` sample flips wrong.
        expected = [
            [0.5, NAN, NAN, NAN],
            [1.0, 0.5, NAN, NAN],
            [0.5, 1.0, 0.5, NAN],
            [0.0, 0.5, 0.5, 1.0],
        ]
        np.testing.assert_array_equal(
            _accuracy_matrix(masked=False), np.asarray(expected)
        )

    def test_masking_provably_changes_accuracy(self):
        masked = _accuracy_matrix(masked=True)
        unmasked = _accuracy_matrix(masked=False)
        lower = np.tril_indices(4)
        # Entry-wise dominance, strict somewhere (the rescued samples).
        assert np.all(masked[lower] >= unmasked[lower])
        assert masked[0, 0] == 1.0 and unmasked[0, 0] == 0.5

    def test_masked_metrics_hand_computed(self):
        masked = _accuracy_matrix(masked=True)
        # average accuracy: final row (0.5 + 0.5 + 1.0 + 1.0) / 4.
        assert average_accuracy(masked) == pytest.approx(0.75)
        # forgetting: task 0: best{1.0, 1.0, 0.5} - 0.5 = 0.5;
        #             task 1: best{1.0, 1.0} - 0.5 = 0.5;
        #             task 2: best{1.0} - 1.0 = 0.0  -> mean = 1/3.
        assert forgetting(masked) == pytest.approx(1.0 / 3.0)
        # BWT: (0.5-1.0) + (0.5-1.0) + (1.0-1.0) over 3 -> -1/3.
        assert backward_transfer(masked) == pytest.approx(-1.0 / 3.0)

    def test_unmasked_metrics_hand_computed(self):
        unmasked = _accuracy_matrix(masked=False)
        # final row (0.0 + 0.5 + 0.5 + 1.0) / 4 — masking lifted the
        # average by 0.25 on identical logits.
        assert average_accuracy(unmasked) == pytest.approx(0.5)
        # task 0: best{0.5, 1.0, 0.5} - 0.0 = 1.0;
        # task 1: best{0.5, 1.0} - 0.5 = 0.5; task 2: 0.5 - 0.5 = 0.0.
        assert forgetting(unmasked) == pytest.approx(0.5)
        assert backward_transfer(unmasked) == pytest.approx(
            -(0.5 + 0.0 + 0.0) / 3.0
        )
