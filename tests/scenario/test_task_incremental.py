"""Task-incremental scenario: layout, masked evaluation, seed-sweep parity.

The defining properties under test, each across >= 3 seeds at ci scale:

- **store parity** — the store-backed run is bitwise-identical to the
  dense run (trajectories, networks, matrix), like every other scenario;
- **full-mask no-op** — masking the trained network's readout with the
  full class set reproduces the unmasked logits bitwise;
- **regime split** — training is bitwise-identical to the class-IL
  ``sequential`` run of the same seed (task ids are an *evaluation*
  device), while the task-IL accuracy matrix dominates the class-IL one
  entry-wise (the readout restricted to the true class's own group can
  only recover argmax errors, never create them).
"""

import numpy as np
import pytest

from repro.core import ReplaySpec
from repro.core.pipeline import pretrain
from repro.data.synthetic_shd import SyntheticSHD
from repro.errors import DataError
from repro.eval.scale import get_scale
from repro.scenario import ContinualStep, TaskIncrementalScenario, get, run_scenario

SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def base_experiment():
    preset = get_scale("ci")
    # Short NCL phase: 3 seeds x 3 runs live in this module; the masking
    # and parity properties do not depend on the epoch count.
    return preset, preset.experiment.replace(
        ncl=preset.experiment.ncl.replace(epochs=3)
    )


@pytest.fixture(scope="module")
def sweep(base_experiment, tmp_path_factory):
    """Per seed: shared pretraining, then task-IL dense/store + class-IL."""
    preset, base = base_experiment
    out = {}
    for seed in SEEDS:
        experiment = base.replace(seed=seed)
        generator = SyntheticSHD(preset.shd, seed=seed)
        scenario = get("task-incremental")
        first = next(iter(scenario.steps(generator, experiment)))
        pretrained = pretrain(experiment, first.split)
        shared = dict(
            generator=generator, experiment=experiment, pretrained=pretrained
        )
        dense = run_scenario(scenario, "replay4ncl", **shared)
        root = tmp_path_factory.mktemp(f"task-il-{seed}") / "fed"
        stored = run_scenario(
            scenario,
            "replay4ncl",
            replay=ReplaySpec(store_dir=root, shard_samples=4),
            **shared,
        )
        class_il = run_scenario(get("sequential"), "replay4ncl", **shared)
        out[seed] = (dense, stored, class_il)
    return out


class TestStepLayout:
    def test_steps_carry_cumulative_task_groups(self, base_experiment):
        preset, experiment = base_experiment
        generator = SyntheticSHD(preset.shd, seed=experiment.seed)
        steps = list(
            TaskIncrementalScenario(steps_count=2).steps(generator, experiment)
        )
        assert all(isinstance(s, ContinualStep) for s in steps)
        # Step k carries k + 2 groups: base task + one per step so far.
        assert steps[0].task_classes == ((0, 1, 2), (3,))
        assert steps[1].task_classes == ((0, 1, 2), (3,), (4,))
        for step in steps:
            # The groups partition the classes seen so far, in order.
            flat = [c for group in step.task_classes for c in group]
            assert flat == sorted(set(flat))
            assert step.task_classes[-1] == step.split.new_classes

    def test_splits_match_sequential_bitwise(self, base_experiment):
        preset, experiment = base_experiment
        generator = SyntheticSHD(preset.shd, seed=experiment.seed)
        til = list(
            TaskIncrementalScenario(steps_count=2).steps(generator, experiment)
        )
        cil = list(get("sequential").steps(generator, experiment))
        for a, b in zip(til, cil):
            assert a.split.old_classes == b.split.old_classes
            assert a.split.new_classes == b.split.new_classes
            np.testing.assert_array_equal(
                a.split.new_train.to_dense(8), b.split.new_train.to_dense(8)
            )


class TestSeedSweepParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_store_backed_is_bitwise_identical(self, sweep, seed):
        dense, stored, _ = sweep[seed]
        assert len(dense.steps) == len(stored.steps)
        for mem, disk in zip(dense.steps, stored.steps):
            for a, b in zip(mem.history, disk.history):
                assert a.loss == b.loss
                assert a.overall_accuracy == b.overall_accuracy
            for p_mem, p_disk in zip(
                mem.network.parameters(), disk.network.parameters()
            ):
                np.testing.assert_array_equal(p_mem.data, p_disk.data)
        np.testing.assert_array_equal(
            dense.accuracy_matrix, stored.accuracy_matrix
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_mask_logits_bitwise_equal_unmasked(self, sweep, seed):
        # Mask equivalence on the *trained* network of each seed: the
        # full mask must be skipped entirely, leaving logits bitwise
        # untouched on both readout dispatch paths.
        dense, _, _ = sweep[seed]
        network = dense.final_network
        num_classes = network.readout.n_out
        timesteps = dense.steps[-1].timesteps
        rng = np.random.default_rng(seed)
        channels = network.config.layer_sizes[0]
        inputs = (rng.random((timesteps, 6, channels)) < 0.2).astype(np.float32)
        full = np.ones(num_classes, dtype=bool)
        for fused in (True, False):
            network.set_fused(fused)
            unmasked = network.forward(inputs).logits.data
            masked = network.forward(inputs, class_mask=full).logits.data
            np.testing.assert_array_equal(unmasked, masked)
        network.set_fused(True)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_training_identical_to_class_incremental(self, sweep, seed):
        dense, _, class_il = sweep[seed]
        for til_step, cil_step in zip(dense.steps, class_il.steps):
            for a, b in zip(til_step.history, cil_step.history):
                assert a.loss == b.loss
            for p, q in zip(
                til_step.network.parameters(), cil_step.network.parameters()
            ):
                np.testing.assert_array_equal(p.data, q.data)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_masked_matrix_dominates_class_incremental(self, sweep, seed):
        dense, _, class_il = sweep[seed]
        til, cil = dense.accuracy_matrix, class_il.accuracy_matrix
        assert til.shape == cil.shape
        lower = np.tril_indices(til.shape[0])
        assert np.all(til[lower] >= cil[lower])
        assert dense.average_accuracy >= class_il.average_accuracy

    @pytest.mark.parametrize("seed", SEEDS)
    def test_result_surfaces_task_groups(self, sweep, seed):
        dense, stored, class_il = sweep[seed]
        for result in (dense, stored):
            assert result.task_incremental
            assert result.task_classes == ((0, 1, 2), (3,), (4,))
            assert "task-incremental eval" in result.describe()
        assert not class_il.task_incremental
        assert class_il.task_classes is None


class TestRunnerValidation:
    @pytest.fixture()
    def env(self, base_experiment):
        preset, experiment = base_experiment
        generator = SyntheticSHD(preset.shd, seed=experiment.seed)
        return generator, experiment

    def _steps_with(self, generator, experiment, mutate):
        scenario = TaskIncrementalScenario(steps_count=2)
        for step in scenario.steps(generator, experiment):
            yield mutate(step)

    def _scenario(self, mutate):
        outer = self

        class Mutated:
            name = "task-il-mutated"

            def describe(self):
                return "task-IL stream with corrupted task metadata"

            def steps(self, generator, experiment):
                return outer._steps_with(generator, experiment, mutate)

        return Mutated()

    def test_rejects_dropped_task_classes_mid_stream(self, env):
        import dataclasses

        generator, experiment = env

        def drop_later(step):
            if step.index == 0:
                return step
            return dataclasses.replace(step, task_classes=None)

        with pytest.raises(DataError, match="no task_classes"):
            run_scenario(
                self._scenario(drop_later),
                "naive",
                generator=generator,
                experiment=experiment,
            )

    def test_rejects_wrong_group_count(self, env):
        import dataclasses

        generator, experiment = env

        def truncate(step):
            return dataclasses.replace(
                step, task_classes=step.task_classes[:1]
            )

        with pytest.raises(DataError, match="task class groups"):
            run_scenario(
                self._scenario(truncate),
                "naive",
                generator=generator,
                experiment=experiment,
            )

    def test_rejects_task_classes_appearing_mid_stream(self, env):
        import dataclasses

        generator, experiment = env
        scenario = get("sequential")
        groups = ((0, 1, 2), (3,), (4,))

        def add_later(steps):
            for step in steps:
                if step.index == 0:
                    yield step
                else:
                    yield dataclasses.replace(
                        step, task_classes=groups[: step.index + 2]
                    )

        class LateDeclaration:
            name = "task-il-late"

            def describe(self):
                return "declares task membership only from step 1"

            def steps(self, generator, experiment):
                return add_later(scenario.steps(generator, experiment))

        with pytest.raises(DataError, match="first step did not"):
            run_scenario(
                LateDeclaration(),
                "naive",
                generator=generator,
                experiment=experiment,
            )
