"""Scenario registry, protocol conformance, and built-in step layouts."""

import numpy as np
import pytest

from repro.data.synthetic_shd import SyntheticSHD
from repro.errors import ConfigError, DataError
from repro.eval.scale import get_scale
from repro.scenario import (
    BlurryScenario,
    ContinualStep,
    DomainIncrementalScenario,
    Scenario,
    SequentialScenario,
    SingleStepScenario,
    available,
    get,
    register,
)


@pytest.fixture(scope="module")
def context():
    preset = get_scale("ci")
    # Small sample counts: layout tests never train anything.
    experiment = preset.experiment.replace(
        samples_per_class=4, test_samples_per_class=2
    )
    generator = SyntheticSHD(preset.shd, seed=experiment.seed)
    return generator, experiment


class TestRegistry:
    def test_builtins_registered(self):
        names = available()
        assert names == sorted(names)
        for name in ("single-step", "sequential", "domain-incremental", "blurry"):
            assert name in names

    def test_get_returns_protocol_instances(self):
        for name in available():
            scenario = get(name)
            assert isinstance(scenario, Scenario)
            assert scenario.name == name
            assert scenario.describe()

    def test_get_forwards_kwargs(self):
        scenario = get("sequential", steps_count=3, classes_per_step=1)
        assert scenario.steps_count == 3

    def test_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            get("task-free")

    def test_register_custom_and_replace(self):
        class Custom:
            name = "custom-test"

            def describe(self):
                return "a test scenario"

            def steps(self, generator, experiment):
                return iter(())

        register("custom-test", Custom)
        try:
            assert isinstance(get("custom-test"), Scenario)
        finally:
            from repro.scenario import registry

            registry._SCENARIOS.pop("custom-test", None)

    def test_register_rejects_bad_factory(self):
        with pytest.raises(ConfigError, match="callable"):
            register("bad", None)
        with pytest.raises(ConfigError, match="non-empty string"):
            register("", lambda: None)

    def test_get_rejects_non_conforming_product(self):
        register("broken-test", lambda: object())
        try:
            with pytest.raises(ConfigError, match="Scenario protocol"):
                get("broken-test")
        finally:
            from repro.scenario import registry

            registry._SCENARIOS.pop("broken-test", None)


class TestSingleStep:
    def test_yields_one_paper_step(self, context):
        generator, experiment = context
        steps = list(SingleStepScenario().steps(generator, experiment))
        assert len(steps) == 1
        step = steps[0]
        assert isinstance(step, ContinualStep)
        assert step.index == 0
        assert step.split.old_classes == (0, 1, 2, 3)
        assert step.split.new_classes == (4,)

    def test_override_base_classes(self, context):
        generator, experiment = context
        (step,) = SingleStepScenario(num_pretrain_classes=3).steps(
            generator, experiment
        )
        assert step.split.old_classes == (0, 1, 2)
        assert step.split.new_classes == (3, 4)


class TestSequential:
    def test_lazy_iterator(self, context):
        generator, experiment = context
        steps = SequentialScenario(steps_count=2).steps(generator, experiment)
        assert iter(steps) is steps  # a generator, not a list

    def test_layout_matches_make_sequential_splits(self, context):
        generator, experiment = context
        steps = list(SequentialScenario(steps_count=2).steps(generator, experiment))
        assert [s.split.new_classes for s in steps] == [(3,), (4,)]
        assert steps[1].split.old_classes == (0, 1, 2, 3)
        assert steps[0].index == 0 and steps[1].index == 1

    def test_default_base_uses_all_remaining_classes(self, context):
        generator, experiment = context
        steps = list(
            SequentialScenario(steps_count=1, classes_per_step=2).steps(
                generator, experiment
            )
        )
        assert steps[0].split.old_classes == (0, 1, 2)
        assert steps[0].split.new_classes == (3, 4)

    def test_too_many_steps(self, context):
        generator, experiment = context
        with pytest.raises(DataError):
            next(SequentialScenario(steps_count=9).steps(generator, experiment))

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            SequentialScenario(steps_count=0)


class TestDomainIncremental:
    def test_fixed_classes_drifting_inputs(self, context):
        generator, experiment = context
        all_classes = tuple(range(generator.config.num_classes))
        steps = list(
            DomainIncrementalScenario(steps_count=2).steps(generator, experiment)
        )
        assert len(steps) == 2
        for step in steps:
            assert step.split.old_classes == all_classes
            assert step.split.new_classes == all_classes
            np.testing.assert_array_equal(
                step.split.new_train.labels, step.split.pretrain_train.labels
            )

    def test_drift_actually_changes_data(self, context):
        generator, experiment = context
        (step, _) = DomainIncrementalScenario(steps_count=2).steps(
            generator, experiment
        )
        timesteps = generator.config.grid_steps
        clean = step.split.pretrain_train.to_dense(timesteps)
        drifted = step.split.new_train.to_dense(timesteps)
        assert not np.array_equal(clean, drifted)

    def test_severity_grows_per_step(self, context):
        generator, experiment = context
        steps = list(
            DomainIncrementalScenario(steps_count=3).steps(generator, experiment)
        )
        shifts = [s.info["max_shift"] for s in steps]
        dropouts = [s.info["dropout_p"] for s in steps]
        assert shifts == sorted(shifts) and shifts[0] < shifts[-1]
        assert dropouts == sorted(dropouts) and dropouts[0] < dropouts[-1]

    def test_deterministic(self, context):
        generator, experiment = context
        scenario = DomainIncrementalScenario(steps_count=1)
        (a,) = scenario.steps(generator, experiment)
        (b,) = scenario.steps(generator, experiment)
        t = generator.config.grid_steps
        np.testing.assert_array_equal(
            a.split.new_train.to_dense(t), b.split.new_train.to_dense(t)
        )

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            DomainIncrementalScenario(dropout_p=1.0)
        with pytest.raises(ConfigError):
            DomainIncrementalScenario(max_shift=-1)


class TestBlurry:
    def test_stream_blends_seen_classes(self, context):
        generator, experiment = context
        blurry = list(
            BlurryScenario(steps_count=2, blur_fraction=0.5).steps(
                generator, experiment
            )
        )
        crisp = list(SequentialScenario(steps_count=2).steps(generator, experiment))
        for b, c in zip(blurry, crisp):
            extra = len(b.split.new_train) - len(c.split.new_train)
            assert extra == b.info["minority_samples"] > 0
            # The blended samples keep their own (seen-class) labels.
            blended = set(b.split.new_train.labels.tolist())
            assert blended > set(c.split.new_train.labels.tolist())
            assert blended - set(c.split.new_train.labels.tolist()) <= set(
                b.split.old_classes
            )

    def test_eval_sets_stay_disjoint(self, context):
        generator, experiment = context
        for step in BlurryScenario(steps_count=2).steps(generator, experiment):
            assert set(step.split.new_test.labels.tolist()) <= set(
                step.split.new_classes
            )

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            BlurryScenario(blur_fraction=0.0)
        with pytest.raises(ConfigError):
            BlurryScenario(steps_count=-1)
