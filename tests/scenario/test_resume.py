"""Resume == straight-through: the checkpoint subsystem's contract.

The harness kills a real child process (``os._exit``, no cleanup, no
``atexit`` — the closest a test gets to a power cut) at **every step
boundary** of a ci-scale streaming run, resumes from the surviving
checkpoint, and asserts the resumed run's accuracy/forgetting/BWT
matrices and final network weights are bitwise-identical to a run that
was never interrupted.

Corrupted checkpoints are the other half of the contract: a truncated
archive, a garbage manifest, a foreign fingerprint, or an inconsistent
step count must raise a clear :class:`~repro.errors.DataError` — never
silently restart and discard completed work.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import ReplaySpec
from repro.errors import ConfigError, DataError
from repro.eval.scale import get_scale
from repro.scenario import ScenarioCheckpoint, run_scenario
from repro.scenario.checkpoint import MANIFEST_NAME, run_fingerprint

SRC = Path(__file__).resolve().parents[2] / "src"

#: The streaming scenario at ci scale yields exactly this many steps
#: (2 tasks x 2 chunks); the kill matrix covers every boundary.
TOTAL_STEPS = 4

KILL_EXIT_CODE = 42

#: Driver the harness runs in a real child process: complete steps
#: 0..K, commit each, then die hard at the step-K boundary.
_CRASHING_DRIVER = """
import os, sys
from repro.eval.scale import get_scale
from repro.scenario import run_scenario

kill_after, checkpoint_dir = int(sys.argv[1]), sys.argv[2]
preset = get_scale("ci")
experiment = preset.experiment.replace(
    samples_per_class=4,
    test_samples_per_class=2,
    pretrain=preset.experiment.pretrain.replace(epochs=1),
    ncl=preset.experiment.ncl.replace(epochs=1),
)


def kill_at_boundary(index, result):
    if index == kill_after:
        os._exit(42)  # a power cut, not an exception


run_scenario(
    "streaming",
    "replay4ncl",
    experiment=experiment,
    checkpoint=checkpoint_dir,
    on_step=kill_at_boundary,
)
sys.exit(1)  # unreachable when the kill fired
"""


def make_experiment():
    preset = get_scale("ci")
    return preset.experiment.replace(
        samples_per_class=4,
        test_samples_per_class=2,
        pretrain=preset.experiment.pretrain.replace(epochs=1),
        ncl=preset.experiment.ncl.replace(epochs=1),
    )


def crash_at_step(kill_after: int, checkpoint_dir: Path) -> None:
    """Run the driver in a subprocess; assert it died at the boundary."""
    proc = subprocess.run(
        [sys.executable, "-c", _CRASHING_DRIVER, str(kill_after), str(checkpoint_dir)],
        env={**os.environ, "PYTHONPATH": str(SRC)},
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == KILL_EXIT_CODE, (
        f"driver should have died at step {kill_after} with exit "
        f"{KILL_EXIT_CODE}, got {proc.returncode}:\n{proc.stderr}"
    )


@pytest.fixture(scope="module")
def straight_through():
    """The reference: the same run, never interrupted, no checkpoint."""
    return run_scenario("streaming", "replay4ncl", experiment=make_experiment())


def assert_results_identical(resumed, reference):
    """Bitwise equality of everything the checkpoint promises to preserve."""
    assert resumed.scenario == reference.scenario
    assert resumed.method == reference.method
    assert resumed.step_names == reference.step_names
    assert resumed.pretrain_accuracy == reference.pretrain_accuracy
    # NaN-aware elementwise equality over the full matrix.
    np.testing.assert_array_equal(
        resumed.accuracy_matrix, reference.accuracy_matrix
    )
    assert len(resumed.steps) == len(reference.steps)
    for a, b in zip(resumed.steps, reference.steps):
        assert a.final_old_accuracy == b.final_old_accuracy
        assert a.final_new_accuracy == b.final_new_accuracy
        assert a.final_overall_accuracy == b.final_overall_accuracy
        assert a.history.records == b.history.records
    state_a = resumed.final_network.state_dict()
    state_b = reference.final_network.state_dict()
    assert state_a.keys() == state_b.keys()
    for layer in state_a:
        assert state_a[layer].keys() == state_b[layer].keys()
        for param in state_a[layer]:
            np.testing.assert_array_equal(state_a[layer][param], state_b[layer][param])


class TestKillAtEveryBoundary:
    @pytest.mark.parametrize("kill_after", range(TOTAL_STEPS))
    def test_resume_is_bitwise_identical(
        self, kill_after, tmp_path, straight_through
    ):
        checkpoint_dir = tmp_path / "ckpt"
        crash_at_step(kill_after, checkpoint_dir)
        # The surviving checkpoint holds exactly the killed run's
        # committed prefix...
        manifest = json.loads((checkpoint_dir / MANIFEST_NAME).read_text())
        assert manifest["steps_completed"] == kill_after + 1
        # ...and the resumed second half reproduces the never-interrupted
        # run bit for bit.
        resumed = run_scenario(
            "streaming",
            "replay4ncl",
            experiment=make_experiment(),
            checkpoint=checkpoint_dir,
            resume=True,
        )
        assert_results_identical(resumed, straight_through)


class TestCleanInterruption:
    def test_stop_after_then_resume(self, tmp_path, straight_through):
        # max_steps is the cooperative interruption (the CLI's
        # --stop-after): same contract as the hard kill.
        checkpoint_dir = tmp_path / "ckpt"
        partial = run_scenario(
            "streaming",
            "replay4ncl",
            experiment=make_experiment(),
            checkpoint=checkpoint_dir,
            max_steps=2,
        )
        assert len(partial.steps) == 2
        resumed = run_scenario(
            "streaming",
            "replay4ncl",
            experiment=make_experiment(),
            checkpoint=checkpoint_dir,
            resume=True,
        )
        assert_results_identical(resumed, straight_through)

    def test_checkpointing_does_not_perturb_the_run(
        self, tmp_path, straight_through
    ):
        checkpointed = run_scenario(
            "streaming",
            "replay4ncl",
            experiment=make_experiment(),
            checkpoint=tmp_path / "ckpt",
        )
        assert_results_identical(checkpointed, straight_through)

    def test_resume_of_a_finished_run_is_a_no_op_replay(
        self, tmp_path, straight_through
    ):
        checkpoint_dir = tmp_path / "ckpt"
        run_scenario(
            "streaming",
            "replay4ncl",
            experiment=make_experiment(),
            checkpoint=checkpoint_dir,
        )
        resumed = run_scenario(
            "streaming",
            "replay4ncl",
            experiment=make_experiment(),
            checkpoint=checkpoint_dir,
            resume=True,
        )
        assert_results_identical(resumed, straight_through)

    def test_resume_from_empty_directory_is_a_fresh_start(
        self, tmp_path, straight_through
    ):
        # Absent is not corrupt: first launch with --resume just runs.
        resumed = run_scenario(
            "streaming",
            "replay4ncl",
            experiment=make_experiment(),
            checkpoint=tmp_path / "never-written",
            resume=True,
        )
        assert_results_identical(resumed, straight_through)


@pytest.fixture()
def committed_checkpoint(tmp_path):
    """A valid one-step checkpoint to damage in the corruption tests."""
    checkpoint_dir = tmp_path / "ckpt"
    run_scenario(
        "streaming",
        "replay4ncl",
        experiment=make_experiment(),
        checkpoint=checkpoint_dir,
        max_steps=1,
    )
    return checkpoint_dir


def resume(checkpoint_dir, experiment=None):
    return run_scenario(
        "streaming",
        "replay4ncl",
        experiment=experiment or make_experiment(),
        checkpoint=checkpoint_dir,
        resume=True,
    )


class TestCorruptionIsNeverSilent:
    def test_truncated_archive(self, committed_checkpoint):
        archive = next(committed_checkpoint.glob("network-step-*.npz"))
        archive.write_bytes(archive.read_bytes()[:100])
        with pytest.raises(DataError, match="sha256 mismatch"):
            resume(committed_checkpoint)

    def test_garbage_manifest(self, committed_checkpoint):
        (committed_checkpoint / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(DataError, match="unreadable"):
            resume(committed_checkpoint)

    def test_manifest_not_an_object(self, committed_checkpoint):
        (committed_checkpoint / MANIFEST_NAME).write_text("[1, 2, 3]\n")
        with pytest.raises(DataError, match="not a JSON object"):
            resume(committed_checkpoint)

    def test_unknown_schema_version(self, committed_checkpoint):
        path = committed_checkpoint / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["version"] = 999
        path.write_text(json.dumps(manifest))
        with pytest.raises(DataError, match="schema version"):
            resume(committed_checkpoint)

    def test_foreign_fingerprint(self, committed_checkpoint):
        # A different seed is a different run; its checkpoint must not
        # be continued.
        other = make_experiment().replace(seed=1234)
        with pytest.raises(DataError, match="different run"):
            resume(committed_checkpoint, experiment=other)

    def test_inconsistent_step_count(self, committed_checkpoint):
        path = committed_checkpoint / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["steps_completed"] = 3
        path.write_text(json.dumps(manifest))
        with pytest.raises(DataError, match="inconsistent"):
            resume(committed_checkpoint)

    def test_missing_archive(self, committed_checkpoint):
        next(committed_checkpoint.glob("network-step-*.npz")).unlink()
        with pytest.raises(DataError, match="missing network archive"):
            resume(committed_checkpoint)

    def test_malformed_step_payload(self, committed_checkpoint):
        path = committed_checkpoint / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        del manifest["steps"][0]["final_overall_accuracy"]
        path.write_text(json.dumps(manifest))
        with pytest.raises(DataError, match="malformed"):
            resume(committed_checkpoint)

    def test_incomplete_manifest(self, committed_checkpoint):
        path = committed_checkpoint / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        del manifest["network_file"]
        path.write_text(json.dumps(manifest))
        with pytest.raises(DataError, match="incomplete"):
            resume(committed_checkpoint)

    def test_drifted_stream_rejected(self, committed_checkpoint):
        # Same fingerprint inputs but a stream whose step names changed
        # (here: recorded names tampered) cannot be fast-forwarded.
        path = committed_checkpoint / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["step_names"][0] = "step-0: something else entirely"
        path.write_text(json.dumps(manifest))
        with pytest.raises(DataError, match="stream changed"):
            resume(committed_checkpoint)


class TestArgumentValidation:
    def test_resume_without_checkpoint(self):
        with pytest.raises(ConfigError, match="requires a checkpoint"):
            run_scenario(
                "streaming",
                "replay4ncl",
                experiment=make_experiment(),
                resume=True,
            )

    def test_non_positive_max_steps(self, tmp_path):
        with pytest.raises(ConfigError, match="max_steps"):
            run_scenario(
                "streaming",
                "replay4ncl",
                experiment=make_experiment(),
                checkpoint=tmp_path / "ckpt",
                max_steps=0,
            )

    def test_fingerprint_covers_the_whole_address(self):
        experiment = make_experiment()
        base = run_fingerprint(
            scenario="s", method="m", experiment=experiment, replay=None
        )
        assert base != run_fingerprint(
            scenario="s2", method="m", experiment=experiment, replay=None
        )
        assert base != run_fingerprint(
            scenario="s", method="m2", experiment=experiment, replay=None
        )
        assert base != run_fingerprint(
            scenario="s",
            method="m",
            experiment=experiment.replace(seed=7),
            replay=None,
        )
        assert base != run_fingerprint(
            scenario="s",
            method="m",
            experiment=experiment,
            replay=ReplaySpec(store_dir="/x"),
        )


class TestStoreBackedResume:
    def test_interrupted_store_backed_run_resumes_bitwise(self, tmp_path):
        experiment = make_experiment()
        spec = ReplaySpec(store_dir=tmp_path / "fed-ref", shard_samples=4)
        reference = run_scenario(
            "streaming", "replay4ncl", experiment=experiment, replay=spec
        )
        resumed_spec = ReplaySpec(store_dir=tmp_path / "fed", shard_samples=4)
        checkpoint_dir = tmp_path / "ckpt"
        run_scenario(
            "streaming",
            "replay4ncl",
            experiment=experiment,
            replay=resumed_spec,
            checkpoint=checkpoint_dir,
            max_steps=2,
        )
        resumed = run_scenario(
            "streaming",
            "replay4ncl",
            experiment=experiment,
            replay=resumed_spec,
            checkpoint=checkpoint_dir,
            resume=True,
        )
        assert resumed.store_root == str(tmp_path / "fed")
        assert resumed.step_names == reference.step_names
        np.testing.assert_array_equal(
            resumed.accuracy_matrix, reference.accuracy_matrix
        )
        state_a = resumed.final_network.state_dict()
        state_b = reference.final_network.state_dict()
        for layer in state_a:
            for param in state_a[layer]:
                np.testing.assert_array_equal(
                    state_a[layer][param], state_b[layer][param]
                )

    def test_diverged_federation_rejected(self, tmp_path):
        experiment = make_experiment()
        spec = ReplaySpec(store_dir=tmp_path / "fed", shard_samples=4)
        checkpoint_dir = tmp_path / "ckpt"
        run_scenario(
            "streaming",
            "replay4ncl",
            experiment=experiment,
            replay=spec,
            checkpoint=checkpoint_dir,
            max_steps=1,
        )
        # The federation moves on behind the checkpoint's back (an extra
        # rebalance pass would shift its rng stream): resuming would fork
        # the trajectory, so it must refuse.
        from repro.replaystore.federation import FEDERATION_INDEX_NAME

        index_path = tmp_path / "fed" / FEDERATION_INDEX_NAME
        index = json.loads(index_path.read_text())
        index["rebalances"] = index.get("rebalances", 0) + 1
        index_path.write_text(json.dumps(index))
        with pytest.raises(DataError, match="diverged"):
            run_scenario(
                "streaming",
                "replay4ncl",
                experiment=experiment,
                replay=spec,
                checkpoint=checkpoint_dir,
                resume=True,
            )


class TestCheckpointHygiene:
    def test_stale_archives_are_garbage_collected(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        run_scenario(
            "streaming",
            "replay4ncl",
            experiment=make_experiment(),
            checkpoint=checkpoint_dir,
        )
        archives = sorted(p.name for p in checkpoint_dir.glob("*.npz"))
        assert archives == [f"network-step-{TOTAL_STEPS}.npz"]
        assert not list(checkpoint_dir.glob("*.tmp"))

    def test_checkpoint_repr_names_its_root(self, tmp_path):
        assert str(tmp_path) in repr(ScenarioCheckpoint(tmp_path))
