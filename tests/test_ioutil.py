"""Tests for the atomic write-then-rename helpers (repro.ioutil)."""

import json

import pytest

from repro import ioutil
from repro.errors import ConfigError
from repro.ioutil import (
    TMP_SUFFIX,
    atomic_open,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)


class TestAtomicOpen:
    def test_text_round_trip(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_open(target, "w") as handle:
            handle.write("hello")
        assert target.read_text() == "hello"

    def test_binary_round_trip(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_open(target, "wb") as handle:
            handle.write(b"\x00\x01\x02")
        assert target.read_bytes() == b"\x00\x01\x02"

    def test_rejects_non_write_modes(self, tmp_path):
        for mode in ("r", "a", "r+", "w+", "x"):
            with pytest.raises(ConfigError, match="atomic_open supports"):
                with atomic_open(tmp_path / "out", mode):
                    pass  # pragma: no cover

    def test_staging_file_removed_on_success(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_open(target, "w") as handle:
            handle.write("x")
        assert list(tmp_path.iterdir()) == [target]

    def test_exception_preserves_previous_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("previous")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_open(target, "w") as handle:
                handle.write("partial garbage")
                raise RuntimeError("boom")
        assert target.read_text() == "previous"
        assert not target.with_name(target.name + TMP_SUFFIX).exists()

    def test_crash_in_rename_window_preserves_previous_content(
        self, tmp_path, monkeypatch
    ):
        """Process death between write and rename must not corrupt the file.

        Simulates a crash at the worst possible instant — the staging
        file is fully written but ``os.replace`` never runs — and checks
        the reader-visible file still holds the previous complete
        content, with the staging file left behind as inert debris.
        """
        target = tmp_path / "state.json"
        target.write_text('{"step": 1}\n')

        def crash(src, dst):
            raise KeyboardInterrupt("simulated process death")

        monkeypatch.setattr(ioutil.os, "replace", crash)
        with pytest.raises(KeyboardInterrupt):
            atomic_write_text(target, '{"step": 2}\n')
        assert json.loads(target.read_text()) == {"step": 1}

    def test_commit_is_a_single_rename(self, tmp_path, monkeypatch):
        """The only mutation of the final path is one os.replace call."""
        target = tmp_path / "out.txt"
        target.write_text("old")
        calls = []
        real_replace = ioutil.os.replace

        def spy(src, dst):
            calls.append((str(src), str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(ioutil.os, "replace", spy)
        atomic_write_text(target, "new")
        assert calls == [(str(target) + TMP_SUFFIX, str(target))]
        assert target.read_text() == "new"


class TestWriteHelpers:
    def test_atomic_write_bytes(self, tmp_path):
        target = tmp_path / "blob"
        atomic_write_bytes(target, b"abc")
        assert target.read_bytes() == b"abc"

    def test_atomic_write_json_format(self, tmp_path):
        """indent=1 + trailing newline — the shared on-disk JSON format."""
        target = tmp_path / "index.json"
        payload = {"version": 1, "items": [1, 2]}
        atomic_write_json(target, payload)
        assert target.read_text() == json.dumps(payload, indent=1) + "\n"

    def test_atomic_write_json_overwrites(self, tmp_path):
        target = tmp_path / "index.json"
        atomic_write_json(target, {"a": 1})
        atomic_write_json(target, {"a": 2})
        assert json.loads(target.read_text()) == {"a": 2}


class TestFileLock:
    def test_exclusion_between_instances(self, tmp_path):
        path = tmp_path / "x.lock"
        first = ioutil.FileLock(path)
        second = ioutil.FileLock(path)
        assert first.acquire()
        assert second.acquire(blocking=False) is False
        first.release()
        assert second.acquire(blocking=False)
        second.release()

    def test_not_reentrant(self, tmp_path):
        lock = ioutil.FileLock(tmp_path / "x.lock")
        lock.acquire()
        with pytest.raises(ConfigError):
            lock.acquire()
        lock.release()

    def test_release_idempotent_and_keeps_file(self, tmp_path):
        path = tmp_path / "x.lock"
        lock = ioutil.FileLock(path)
        lock.acquire()
        lock.release()
        lock.release()
        assert path.exists()  # unlinking would split future exclusion

    def test_context_manager(self, tmp_path):
        path = tmp_path / "x.lock"
        with ioutil.FileLock(path) as lock:
            assert lock.held
            assert ioutil.FileLock(path).acquire(blocking=False) is False
        assert not lock.held

    def test_locked_helper(self, tmp_path):
        path = tmp_path / "x.lock"
        with ioutil.locked(path):
            assert ioutil.FileLock(path).acquire(blocking=False) is False
        assert ioutil.FileLock(path).acquire(blocking=False)


class TestPins:
    def test_live_pin_is_reported_not_reaped(self, tmp_path):
        pin = ioutil.acquire_pin(tmp_path, {"generation": 3})
        assert pin.active
        assert ioutil.live_pin_payloads(tmp_path) == [{"generation": 3}]
        assert pin.path.exists()
        pin.release()

    def test_released_pin_vanishes(self, tmp_path):
        pin = ioutil.acquire_pin(tmp_path, {"generation": 1})
        pin.release()
        assert not pin.active
        assert ioutil.live_pin_payloads(tmp_path) == []
        assert list(tmp_path.glob(f"*{ioutil.PIN_SUFFIX}")) == []

    def test_release_idempotent(self, tmp_path):
        pin = ioutil.acquire_pin(tmp_path, {})
        pin.release()
        pin.release()

    def test_stale_pin_from_dead_process_is_reaped(self, tmp_path):
        import subprocess
        import sys

        # A real subprocess registers a pin and dies without releasing:
        # the kernel drops its flock, so the scanner reaps the file.
        code = (
            "import os, sys; sys.path.insert(0, sys.argv[2]); "
            "from repro import ioutil; "
            "pin = ioutil.acquire_pin(sys.argv[1], {'generation': 9}); "
            "os._exit(0)"
        )
        src = str(ioutil.Path(__file__).resolve().parents[1] / "src")
        subprocess.run(
            [sys.executable, "-c", code, str(tmp_path), src], check=True
        )
        assert list(tmp_path.glob(f"*{ioutil.PIN_SUFFIX}"))
        assert ioutil.live_pin_payloads(tmp_path) == []
        assert list(tmp_path.glob(f"*{ioutil.PIN_SUFFIX}")) == []

    def test_reap_false_leaves_stale_files(self, tmp_path):
        (tmp_path / f"reader-0-000000{ioutil.PIN_SUFFIX}").write_text("{}")
        assert ioutil.live_pin_payloads(tmp_path, reap=False) == []
        assert list(tmp_path.glob(f"*{ioutil.PIN_SUFFIX}"))

    def test_missing_directory_is_empty(self, tmp_path):
        assert ioutil.live_pin_payloads(tmp_path / "absent") == []

    def test_many_pins_from_one_process(self, tmp_path):
        pins = [ioutil.acquire_pin(tmp_path, {"generation": i}) for i in range(4)]
        payloads = ioutil.live_pin_payloads(tmp_path)
        assert sorted(p["generation"] for p in payloads) == [0, 1, 2, 3]
        for pin in pins:
            pin.release()
