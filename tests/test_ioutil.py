"""Tests for the atomic write-then-rename helpers (repro.ioutil)."""

import json

import pytest

from repro import ioutil
from repro.errors import ConfigError
from repro.ioutil import (
    TMP_SUFFIX,
    atomic_open,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)


class TestAtomicOpen:
    def test_text_round_trip(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_open(target, "w") as handle:
            handle.write("hello")
        assert target.read_text() == "hello"

    def test_binary_round_trip(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_open(target, "wb") as handle:
            handle.write(b"\x00\x01\x02")
        assert target.read_bytes() == b"\x00\x01\x02"

    def test_rejects_non_write_modes(self, tmp_path):
        for mode in ("r", "a", "r+", "w+", "x"):
            with pytest.raises(ConfigError, match="atomic_open supports"):
                with atomic_open(tmp_path / "out", mode):
                    pass  # pragma: no cover

    def test_staging_file_removed_on_success(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_open(target, "w") as handle:
            handle.write("x")
        assert list(tmp_path.iterdir()) == [target]

    def test_exception_preserves_previous_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("previous")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_open(target, "w") as handle:
                handle.write("partial garbage")
                raise RuntimeError("boom")
        assert target.read_text() == "previous"
        assert not target.with_name(target.name + TMP_SUFFIX).exists()

    def test_crash_in_rename_window_preserves_previous_content(
        self, tmp_path, monkeypatch
    ):
        """Process death between write and rename must not corrupt the file.

        Simulates a crash at the worst possible instant — the staging
        file is fully written but ``os.replace`` never runs — and checks
        the reader-visible file still holds the previous complete
        content, with the staging file left behind as inert debris.
        """
        target = tmp_path / "state.json"
        target.write_text('{"step": 1}\n')

        def crash(src, dst):
            raise KeyboardInterrupt("simulated process death")

        monkeypatch.setattr(ioutil.os, "replace", crash)
        with pytest.raises(KeyboardInterrupt):
            atomic_write_text(target, '{"step": 2}\n')
        assert json.loads(target.read_text()) == {"step": 1}

    def test_commit_is_a_single_rename(self, tmp_path, monkeypatch):
        """The only mutation of the final path is one os.replace call."""
        target = tmp_path / "out.txt"
        target.write_text("old")
        calls = []
        real_replace = ioutil.os.replace

        def spy(src, dst):
            calls.append((str(src), str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(ioutil.os, "replace", spy)
        atomic_write_text(target, "new")
        assert calls == [(str(target) + TMP_SUFFIX, str(target))]
        assert target.read_text() == "new"


class TestWriteHelpers:
    def test_atomic_write_bytes(self, tmp_path):
        target = tmp_path / "blob"
        atomic_write_bytes(target, b"abc")
        assert target.read_bytes() == b"abc"

    def test_atomic_write_json_format(self, tmp_path):
        """indent=1 + trailing newline — the shared on-disk JSON format."""
        target = tmp_path / "index.json"
        payload = {"version": 1, "items": [1, 2]}
        atomic_write_json(target, payload)
        assert target.read_text() == json.dumps(payload, indent=1) + "\n"

    def test_atomic_write_json_overwrites(self, tmp_path):
        target = tmp_path / "index.json"
        atomic_write_json(target, {"a": 1})
        atomic_write_json(target, {"a": 2})
        assert json.loads(target.read_text()) == {"a": 2}
