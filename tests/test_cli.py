"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig12"])
        assert args.experiment == "fig12"
        assert args.scale == "bench"
        assert args.save_dir is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "headline" in out
        assert "ci" in out and "paper" in out
        # The registries surface here too, not just figures/scales.
        assert "scenarios:" in out and "domain-incremental" in out
        assert "methods:" in out and "replay4ncl" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Replay4NCL" in out

    def test_backends_table(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "REPRO_BACKEND=numpy" in out
        for name in ("numpy", "c", "torch"):
            assert name in out
        assert "* numpy" in out  # the selected row is starred

    def test_backends_unsatisfiable_selection(self, capsys, monkeypatch):
        from repro.snn import backends

        monkeypatch.setattr(
            backends.get_backend("torch"),
            "availability",
            lambda: (False, "the torch package is not importable"),
        )
        monkeypatch.setenv("REPRO_BACKEND", "torch")
        assert main(["backends"]) == 2
        captured = capsys.readouterr()
        # The table still prints (diagnostic), the error goes to stderr.
        assert "unavailable" in captured.out
        assert "torch" in captured.err

    def test_run_fig12_ci(self, capsys, tmp_path):
        code = main(["run", "fig12", "--scale", "ci", "--save-dir", str(tmp_path),
                     "--no-plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig12" in out
        assert (tmp_path / "fig12.json").exists()
        assert (tmp_path / "fig12.csv").exists()

    def test_unknown_experiment_is_clean_error(self, capsys):
        assert main(["run", "fig99", "--scale", "ci"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_scale_is_clean_error(self, capsys):
        assert main(["run", "fig12", "--scale", "galactic"]) == 2
        assert "error:" in capsys.readouterr().err


class TestScenarioCommands:
    def test_scenario_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "single-step",
            "sequential",
            "task-incremental",
            "domain-incremental",
            "blurry",
        ):
            assert name in out
        assert "methods:" in out and "spikinglr" in out

    def test_scenario_run_ci(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        assert main(["scenario", "run", "single-step", "--scale", "ci"]) == 0
        out = capsys.readouterr().out
        assert "scenario 'single-step'" in out
        assert "average accuracy" in out and "backward transfer" in out

    def test_scenario_run_store_backed(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        root = tmp_path / "fed"
        assert main([
            "scenario", "run", "single-step", "--scale", "ci",
            "--store-dir", str(root), "--shard-samples", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert f"replay federation: {root}" in out
        assert (root / "federation.json").exists()

    def test_scenario_run_task_incremental(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        assert main(["scenario", "run", "task-incremental", "--scale", "ci"]) == 0
        out = capsys.readouterr().out
        assert "scenario 'task-incremental'" in out
        assert "task-incremental eval: readout masked" in out

    def test_steps_override(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        assert main([
            "scenario", "run", "sequential", "--scale", "ci", "--steps", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "1 step(s)" in out

    def test_steps_rejected_for_single_step(self, capsys):
        assert main([
            "scenario", "run", "single-step", "--scale", "ci", "--steps", "3",
        ]) == 2
        assert "does not take --steps" in capsys.readouterr().err

    def test_unknown_scenario_is_clean_error(self, capsys):
        assert main(["scenario", "run", "task-free", "--scale", "ci"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_store_flags_require_store_dir(self, capsys):
        assert main([
            "scenario", "run", "single-step", "--scale", "ci",
            "--shard-samples", "4",
        ]) == 2
        assert "require --store-dir" in capsys.readouterr().err


class TestTraceCommands:
    @pytest.fixture
    def trace_file(self, tmp_path):
        from repro.obs import ManualClock, Recorder, write_jsonl

        clock = ManualClock()
        recorder = Recorder(clock=clock)
        with recorder.span("scenario.run", category="scenario"):
            clock.advance(0.5)
            with recorder.span("train.epoch", category="train", epoch=0):
                clock.advance(0.25)
        recorder.count("kernel.calls", backend="numpy", kernel="lif_forward")
        return str(
            write_jsonl(tmp_path / "trace.jsonl", recorder.spans(), recorder.metrics())
        )

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_summary(self, capsys, trace_file):
        assert main(["trace", "summary", trace_file]) == 0
        out = capsys.readouterr().out
        assert "2 spans, 1 metric series" in out
        assert "scenario.run" in out and "train.epoch" in out
        assert "kernel.calls{backend=numpy,kernel=lif_forward}" in out

    def test_summary_top_limits_rows(self, capsys, trace_file):
        assert main(["trace", "summary", trace_file, "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "scenario.run" in out  # the longer span wins the one slot
        assert "train.epoch" not in out.split("metric")[0]

    def test_summary_tree(self, capsys, trace_file):
        assert main(["trace", "summary", trace_file, "--tree"]) == 0
        out = capsys.readouterr().out
        assert "  train.epoch" in out  # indented under scenario.run

    def test_export_default_output(self, capsys, trace_file, tmp_path):
        import json

        assert main(["trace", "export", trace_file]) == 0
        out = capsys.readouterr().out
        assert "wrote 2 spans" in out
        converted = tmp_path / "trace.chrome.json"
        assert converted.exists()
        payload = json.loads(converted.read_text())
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert names == {"scenario.run", "train.epoch"}

    def test_export_explicit_output(self, capsys, trace_file, tmp_path):
        target = tmp_path / "custom.json"
        assert main(["trace", "export", trace_file, "-o", str(target)]) == 0
        assert target.exists()

    def test_missing_trace_is_clean_error(self, capsys, tmp_path):
        assert main(["trace", "summary", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


@pytest.fixture
def store_dir(tmp_path):
    from repro.replaystore import ReplayStore

    rng = np.random.default_rng(0)
    store = ReplayStore.create(
        tmp_path / "store",
        stored_frames=10,
        num_channels=8,
        generated_timesteps=10,
        shard_samples=4,
    )
    store.append(
        (rng.random((10, 11, 8)) < 0.2).astype(np.float32),
        rng.integers(0, 3, 11),
    )
    return str(store.root)


class TestStoreCommands:
    def test_store_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])

    def test_inspect(self, capsys, store_dir):
        assert main(["store", "inspect", store_dir]) == 0
        out = capsys.readouterr().out
        assert "shard-00000.bin" in out
        assert "shard-00002.bin" in out

    def test_stats(self, capsys, store_dir):
        assert main(["store", "stats", store_dir]) == 0
        out = capsys.readouterr().out
        assert "samples:" in out and "11 in 3 shards" in out
        assert "model bytes:" in out

    def test_compact(self, capsys, store_dir):
        assert main(["store", "compact", store_dir, "--shard-samples", "11"]) == 0
        assert "3 -> 1 shards" in capsys.readouterr().out

    def test_missing_store_is_clean_error(self, capsys, tmp_path):
        assert main(["store", "stats", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err


class TestStoreFederate:
    @pytest.fixture
    def federation_root(self, tmp_path):
        from repro.replaystore import ReplayStore

        rng = np.random.default_rng(0)
        root = tmp_path / "fed"
        for k in range(2):
            store = ReplayStore.create(
                root / f"task-{k}",
                stored_frames=10,
                num_channels=8,
                generated_timesteps=10,
                shard_samples=4,
            )
            store.append(
                (rng.random((10, 9, 8)) < 0.2).astype(np.float32),
                np.full(9, k),
            )
        return str(root)

    def test_federate_discovers_and_adopts(self, capsys, federation_root):
        assert main(["store", "federate", federation_root]) == 0
        out = capsys.readouterr().out
        assert "adopted task-0 (9 samples)" in out
        assert "adopted task-1 (9 samples)" in out
        assert "samples:        18" in out

    def test_federate_with_budget_rebalances(self, capsys, federation_root):
        assert main(
            ["store", "federate", federation_root, "--budget-bytes", "280"]
        ) == 0
        out = capsys.readouterr().out
        assert "budget:" in out and "evicted this pass" in out

    def test_federate_is_rerunnable(self, capsys, federation_root):
        assert main(["store", "federate", federation_root]) == 0
        capsys.readouterr()
        # Second invocation reopens the index and finds nothing new.
        assert main(["store", "federate", federation_root]) == 0
        out = capsys.readouterr().out
        assert "adopted" not in out
        assert "members=2" in out

    def test_explicit_member_list(self, capsys, federation_root):
        assert main(
            ["store", "federate", federation_root, "--members", "task-1"]
        ) == 0
        assert "adopted task-1" in capsys.readouterr().out

    def test_unknown_policy_is_clean_error(self, capsys, federation_root):
        assert main(
            ["store", "federate", federation_root, "--policy", "lru"]
        ) == 2
        assert "unknown eviction policy" in capsys.readouterr().err

    def test_budget_retrofits_onto_existing_federation(
        self, capsys, federation_root
    ):
        # Regression: flags passed on a re-run must update the stored
        # ledger, not be silently discarded in favour of the old one.
        assert main(["store", "federate", federation_root]) == 0
        capsys.readouterr()
        assert main(
            ["store", "federate", federation_root, "--budget-bytes", "280"]
        ) == 0
        out = capsys.readouterr().out
        assert "budget:" in out
        assert "0 evicted this pass" not in out  # the new cap forced eviction
        from repro.replaystore import FederatedReplayStore

        federation = FederatedReplayStore.open(federation_root)
        assert federation.budget_bytes == 280
        assert not federation.over_budget()
