"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig12"])
        assert args.experiment == "fig12"
        assert args.scale == "bench"
        assert args.save_dir is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "headline" in out
        assert "ci" in out and "paper" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Replay4NCL" in out

    def test_run_fig12_ci(self, capsys, tmp_path):
        code = main(["run", "fig12", "--scale", "ci", "--save-dir", str(tmp_path),
                     "--no-plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig12" in out
        assert (tmp_path / "fig12.json").exists()
        assert (tmp_path / "fig12.csv").exists()

    def test_unknown_experiment_is_clean_error(self, capsys):
        assert main(["run", "fig99", "--scale", "ci"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_scale_is_clean_error(self, capsys):
        assert main(["run", "fig12", "--scale", "galactic"]) == 2
        assert "error:" in capsys.readouterr().err
