"""Runner, CLI surface, JSON schema, and the self-lint meta-test."""

import json
import subprocess
import sys
from pathlib import Path
from textwrap import dedent

import pytest

from repro.errors import ConfigError
from repro.lint import (
    format_json,
    format_text,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.runner import JSON_SCHEMA_VERSION

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"

FIRING_MODULE = dedent(
    """
    import numpy as np

    def sample():
        return np.random.default_rng().random()
    """
)

CLEAN_MODULE = dedent(
    """
    from repro.seeding import default_rng

    def sample(rng=None):
        return (rng or default_rng()).random()
    """
)


def repro_tree(tmp_path):
    """A throwaway `repro/` package root so scoping globs engage."""
    pkg = tmp_path / "repro"
    pkg.mkdir()
    return pkg


class TestLintPaths:
    def test_directory_is_recursed_sorted(self, tmp_path):
        pkg = repro_tree(tmp_path)
        (pkg / "b.py").write_text(FIRING_MODULE)
        sub = pkg / "core"
        sub.mkdir()
        (sub / "a.py").write_text(FIRING_MODULE)
        findings = lint_paths([pkg])
        assert [f.rule for f in findings] == ["RPL001", "RPL001"]
        assert findings[0].path < findings[1].path

    def test_explicit_file(self, tmp_path):
        pkg = repro_tree(tmp_path)
        target = pkg / "mod.py"
        target.write_text(CLEAN_MODULE)
        assert lint_paths([target]) == []

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="no such file"):
            lint_paths([tmp_path / "nope"])

    def test_unreadable_file_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            lint_file(tmp_path / "missing.py")


class TestFormatters:
    def test_text_clean(self):
        assert format_text([]) == "no findings"

    def test_text_report_blocks(self, tmp_path):
        pkg = repro_tree(tmp_path)
        (pkg / "mod.py").write_text(FIRING_MODULE)
        findings = lint_paths([pkg])
        text = format_text(findings)
        assert "RPL001" in text
        assert text.endswith("1 finding(s)")
        assert "fix:" in text

    def test_json_schema(self, tmp_path):
        pkg = repro_tree(tmp_path)
        (pkg / "mod.py").write_text(FIRING_MODULE)
        document = json.loads(format_json(lint_paths([pkg])))
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["count"] == 1
        (finding,) = document["findings"]
        assert set(finding) == {
            "path",
            "line",
            "col",
            "rule",
            "message",
            "suggestion",
        }
        assert finding["rule"] == "RPL001"
        assert finding["line"] >= 1 and finding["col"] >= 1

    def test_json_clean_document(self):
        document = json.loads(format_json([]))
        assert document == {
            "version": JSON_SCHEMA_VERSION,
            "count": 0,
            "findings": [],
        }


class TestCli:
    def run_cli(self, *argv, cwd):
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *argv],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )

    def test_exit_zero_and_text_on_clean_tree(self, tmp_path):
        pkg = repro_tree(tmp_path)
        (pkg / "mod.py").write_text(CLEAN_MODULE)
        result = self.run_cli(str(pkg), cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "no findings"

    def test_exit_two_on_findings(self, tmp_path):
        pkg = repro_tree(tmp_path)
        (pkg / "mod.py").write_text(FIRING_MODULE)
        result = self.run_cli(str(pkg), cwd=tmp_path)
        assert result.returncode == 2
        assert "RPL001" in result.stdout

    def test_json_format_flag(self, tmp_path):
        pkg = repro_tree(tmp_path)
        (pkg / "mod.py").write_text(FIRING_MODULE)
        result = self.run_cli(str(pkg), "--format", "json", cwd=tmp_path)
        assert result.returncode == 2
        document = json.loads(result.stdout)
        assert document["count"] == 1

    def test_missing_path_is_cli_error(self, tmp_path):
        result = self.run_cli(str(tmp_path / "nope"), cwd=tmp_path)
        assert result.returncode == 2
        assert "no such file" in result.stderr


class TestSelfLint:
    def test_src_repro_is_clean(self):
        """The linter's own acceptance bar: src/repro lints clean.

        Every pre-existing violation was either fixed or carries a
        reasoned inline suppression, and this meta-test keeps it that
        way — a new violation anywhere in src/repro fails tier-1.
        """
        findings = lint_paths([SRC / "repro"])
        assert findings == [], format_text(findings)

    def test_suppressions_in_tree_all_carry_reasons(self):
        """Redundant belt: RPL000 would already fail the self-lint."""
        for path in sorted((SRC / "repro").rglob("*.py")):
            for finding in lint_file(path):
                assert finding.rule != "RPL000", finding.format()

    def test_linter_lints_itself(self):
        """repro/lint's own sources stay in scope of every global rule."""
        source = (SRC / "repro" / "lint" / "framework.py").read_text()
        assert lint_source(source, path="src/repro/lint/framework.py") == []
