"""Fixture corpus: one firing and one passing fixture per rule.

Each fixture is an inline module linted via ``lint_source`` with a
virtual ``relpath`` that places it inside (or outside) the rule's scope.
"""

from textwrap import dedent

from repro.lint import lint_source


def rule_ids_of(source, relpath):
    return [f.rule for f in lint_source(dedent(source), relpath=relpath)]


class TestGlobalRngRule:
    def test_fires_on_numpy_global_rng(self):
        src = """
        import numpy as np

        def sample():
            return np.random.default_rng().random()
        """
        assert rule_ids_of(src, "repro/snn/foo.py") == ["RPL001"]

    def test_fires_on_stdlib_random(self):
        src = """
        import random

        def sample():
            return random.random()
        """
        assert rule_ids_of(src, "repro/core/foo.py") == ["RPL001"]

    def test_fires_through_import_alias(self):
        src = """
        from numpy import random as nr

        def sample():
            return nr.shuffle([1, 2])
        """
        assert rule_ids_of(src, "repro/core/foo.py") == ["RPL001"]

    def test_passes_explicit_state_constructors(self):
        src = """
        import numpy as np
        import random

        def build(seed):
            keyed = random.Random(seed)
            return np.random.Generator(np.random.PCG64(seed)), keyed
        """
        assert rule_ids_of(src, "repro/snn/foo.py") == []

    def test_passes_threaded_generator_and_seeding_helpers(self):
        src = """
        from repro.seeding import default_rng, spawn

        def sample(rng=None):
            rng = rng or default_rng()
            return rng.random() + spawn(1, "x").random()
        """
        assert rule_ids_of(src, "repro/training/foo.py") == []

    def test_excluded_inside_seeding_module(self):
        src = """
        import numpy as np

        def default_rng(seed=None):
            return np.random.default_rng(seed)
        """
        assert rule_ids_of(src, "repro/seeding.py") == []

    def test_excluded_inside_data_package(self):
        src = """
        import numpy as np

        def synthesize(seed):
            return np.random.default_rng(seed)
        """
        assert rule_ids_of(src, "repro/data/synthetic.py") == []

    def test_local_variable_named_random_is_not_resolved(self):
        src = """
        def run(random):
            return random.random()
        """
        assert rule_ids_of(src, "repro/core/foo.py") == []


class TestWallClockRule:
    def test_fires_on_time_reads(self):
        src = """
        import time

        def stamp():
            return time.time(), time.perf_counter()
        """
        assert rule_ids_of(src, "repro/obs/recorder.py") == ["RPL002", "RPL002"]

    def test_fires_on_datetime_now(self):
        src = """
        import datetime

        def stamp():
            return datetime.datetime.now()
        """
        assert rule_ids_of(src, "repro/eval/foo.py") == ["RPL002"]

    def test_passes_injected_clock(self):
        src = """
        def stamp(clock):
            return clock.now()
        """
        assert rule_ids_of(src, "repro/obs/recorder.py") == []

    def test_excluded_inside_clock_modules(self):
        src = """
        import time

        def now():
            return time.monotonic()
        """
        assert rule_ids_of(src, "repro/obs/clock.py") == []
        assert rule_ids_of(src, "repro/hw/wallclock.py") == []


class TestEnvAccessRule:
    def test_fires_on_environ_read(self):
        src = """
        import os

        def cache_root():
            return os.environ.get("REPRO_CACHE", "")
        """
        assert rule_ids_of(src, "repro/eval/foo.py") == ["RPL003"]

    def test_fires_once_per_use(self):
        src = """
        import os

        def flag():
            return os.environ["REPRO_TRACE"]
        """
        findings = lint_source(dedent(src), relpath="repro/obs/foo.py")
        assert [f.rule for f in findings] == ["RPL003"]

    def test_fires_on_getenv_and_from_import(self):
        src = """
        import os
        from os import environ

        def read():
            return os.getenv("X"), environ["Y"]
        """
        assert rule_ids_of(src, "repro/hw/foo.py") == ["RPL003", "RPL003"]

    def test_passes_env_value_helper(self):
        src = """
        from repro.config import env_value

        def cache_root():
            return env_value("REPRO_CACHE")
        """
        assert rule_ids_of(src, "repro/eval/foo.py") == []

    def test_excluded_inside_config_module(self):
        src = """
        import os

        def env_value(name):
            return os.environ.get(name, "")
        """
        assert rule_ids_of(src, "repro/config.py") == []


class TestAtomicWriteRule:
    def test_fires_on_bare_truncating_open(self):
        src = """
        def commit(path, text):
            with open(path, "w") as handle:
                handle.write(text)
        """
        assert rule_ids_of(src, "repro/replaystore/store.py") == ["RPL004"]

    def test_fires_on_json_dump_and_write_text(self):
        src = """
        import json

        def commit(path, payload):
            path.write_text("x")
            with open(path) as handle:
                json.dump(payload, handle)
        """
        assert rule_ids_of(src, "repro/scenario/checkpoint.py") == [
            "RPL004",
            "RPL004",
        ]

    def test_passes_atomic_helpers_and_reads(self):
        src = """
        from repro.ioutil import atomic_write_json

        def commit(path, payload):
            with open(path) as handle:
                handle.read()
            atomic_write_json(path, payload)
        """
        assert rule_ids_of(src, "repro/replaystore/store.py") == []

    def test_passes_write_bytes_for_immutable_shards(self):
        src = """
        def append_shard(path, payload):
            path.write_bytes(payload)
        """
        assert rule_ids_of(src, "repro/replaystore/store.py") == []

    def test_only_applies_to_persistence_modules(self):
        src = """
        def dump(path, text):
            with open(path, "w") as handle:
                handle.write(text)
        """
        assert rule_ids_of(src, "repro/eval/foo.py") == []


class TestErrorTaxonomyRule:
    def test_fires_on_bare_builtin_raises(self):
        src = """
        def check(x):
            if x < 0:
                raise ValueError(f"bad {x}")
            raise RuntimeError
        """
        assert rule_ids_of(src, "repro/core/foo.py") == ["RPL005", "RPL005"]

    def test_passes_taxonomy_and_legitimate_builtins(self):
        src = """
        from repro.errors import ConfigError

        def check(x):
            if x < 0:
                raise ConfigError(f"bad {x}")
            raise NotImplementedError
        """
        assert rule_ids_of(src, "repro/core/foo.py") == []

    def test_passes_bare_reraise(self):
        src = """
        def check(x):
            try:
                x()
            except KeyError:
                raise
        """
        assert rule_ids_of(src, "repro/core/foo.py") == []


class TestLazyStepsRule:
    def test_fires_on_eager_list_return(self):
        src = """
        class Scenario:
            def steps(self):
                return [self._build(i) for i in range(10)]
        """
        assert rule_ids_of(src, "repro/scenario/foo.py") == ["RPL006"]

    def test_fires_on_list_call_return(self):
        src = """
        class Scenario:
            def steps(self):
                return list(self._iter())
        """
        assert rule_ids_of(src, "repro/scenario/foo.py") == ["RPL006"]

    def test_passes_generator_function(self):
        src = """
        class Scenario:
            def steps(self):
                for i in range(10):
                    yield self._build(i)
        """
        assert rule_ids_of(src, "repro/scenario/foo.py") == []

    def test_passes_lazy_iterator_return(self):
        src = """
        class Scenario:
            def steps(self):
                return iter(self._lazy())
        """
        assert rule_ids_of(src, "repro/scenario/foo.py") == []

    def test_nested_defs_do_not_mask_eager_return(self):
        src = """
        class Scenario:
            def steps(self):
                def inner():
                    yield 1
                return [step for step in inner()]
        """
        assert rule_ids_of(src, "repro/scenario/foo.py") == ["RPL006"]

    def test_only_applies_inside_scenario_package(self):
        src = """
        class NotAScenario:
            def steps(self):
                return [1, 2, 3]
        """
        assert rule_ids_of(src, "repro/eval/foo.py") == []


class TestFrozenSpecRule:
    def test_fires_on_unfrozen_dataclass(self):
        src = """
        from dataclasses import dataclass

        @dataclass
        class StepSpec:
            name: str
        """
        assert rule_ids_of(src, "repro/scenario/foo.py") == ["RPL007"]

    def test_fires_on_explicit_frozen_false(self):
        src = """
        from dataclasses import dataclass

        @dataclass(frozen=False)
        class StepSpec:
            name: str
        """
        assert rule_ids_of(src, "repro/scenario/foo.py") == ["RPL007"]

    def test_passes_frozen_dataclass(self):
        src = """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class StepSpec:
            name: str
        """
        assert rule_ids_of(src, "repro/scenario/foo.py") == []

    def test_passes_plain_class(self):
        src = """
        class Helper:
            pass
        """
        assert rule_ids_of(src, "repro/scenario/foo.py") == []

    def test_only_applies_to_spec_modules(self):
        src = """
        from dataclasses import dataclass

        @dataclass
        class MutableAccumulator:
            total: float = 0.0
        """
        assert rule_ids_of(src, "repro/training/foo.py") == []


class TestNoPrintRule:
    def test_fires_on_print_in_library_code(self):
        src = """
        def report(x):
            print(x)
        """
        assert rule_ids_of(src, "repro/core/foo.py") == ["RPL008"]

    def test_passes_shadowed_print(self):
        src = """
        from repro.lint.runner import format_text as print

        def report(findings):
            return print(findings)
        """
        assert rule_ids_of(src, "repro/core/foo.py") == []

    def test_excluded_inside_cli_modules(self):
        src = """
        def main():
            print("hello")
        """
        assert rule_ids_of(src, "repro/cli.py") == []
        assert rule_ids_of(src, "repro/__main__.py") == []


class TestNumpySaveRule:
    def test_fires_on_path_destination(self):
        src = """
        import numpy as np

        def store(path, arr):
            np.savez(path, data=arr)
        """
        assert rule_ids_of(src, "repro/eval/foo.py") == ["RPL009"]

    def test_fires_on_savez_compressed_and_save(self):
        src = """
        import numpy as np

        def store(path, arr):
            np.save(path, arr)
            np.savez_compressed(path, data=arr)
        """
        assert rule_ids_of(src, "repro/data/foo.py") == ["RPL009", "RPL009"]

    def test_fires_through_file_keyword(self):
        src = """
        import numpy as np

        def store(path, arr):
            np.savez(file=path, data=arr)
        """
        assert rule_ids_of(src, "repro/eval/foo.py") == ["RPL009"]

    def test_passes_atomic_open_handle(self):
        src = """
        import numpy as np
        from repro.ioutil import atomic_open

        def store(path, arr):
            with atomic_open(path, "wb") as handle:
                np.savez(handle, data=arr)
        """
        assert rule_ids_of(src, "repro/scenario/foo.py") == []

    def test_fires_on_non_atomic_handle_name(self):
        src = """
        import numpy as np

        def store(path, arr):
            with open(path, "wb") as handle:
                np.savez(handle, data=arr)
        """
        # The bare open is RPL004 territory; the handle it yields is
        # not atomic, so RPL009 still fires on the save call.
        assert "RPL009" in rule_ids_of(src, "repro/eval/foo.py")

    def test_passes_unrelated_savez_attribute(self):
        src = """
        class Archiver:
            def savez(self, path):
                return path

        def store(archiver, path):
            archiver.savez(path)
        """
        assert rule_ids_of(src, "repro/eval/foo.py") == []
