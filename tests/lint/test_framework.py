"""Framework mechanics: registry, scoping, suppressions, findings."""

from textwrap import dedent

import pytest

from repro.lint import Finding, all_rules, get_rule, lint_source, rule_ids
from repro.lint.framework import META_RULE_ID, module_relpath


def lint(source, relpath):
    return lint_source(dedent(source), relpath=relpath)


class TestRegistry:
    def test_all_rules_sorted_and_unique(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_expected_catalog(self):
        assert list(rule_ids()) == [
            "RPL000",
            "RPL001",
            "RPL002",
            "RPL003",
            "RPL004",
            "RPL005",
            "RPL006",
            "RPL007",
            "RPL008",
            "RPL009",
        ]

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.name, rule.id
            assert rule.rationale, rule.id

    def test_get_rule(self):
        assert get_rule("RPL001").name == "no-global-rng"
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown lint rule"):
            get_rule("RPL999")


class TestScoping:
    def test_module_relpath_anchors_at_repro(self):
        assert module_relpath("src/repro/snn/layers.py") == "repro/snn/layers.py"
        assert module_relpath("/abs/src/repro/config.py") == "repro/config.py"

    def test_module_relpath_falls_back_to_basename(self):
        assert module_relpath("scratch/tool.py") == "tool.py"

    def test_include_glob_crosses_directories(self):
        rule = get_rule("RPL006")
        assert rule.applies_to("repro/scenario/stream.py")
        assert not rule.applies_to("repro/core/pipeline.py")

    def test_exclude_glob_wins(self):
        rule = get_rule("RPL001")
        assert rule.applies_to("repro/core/pipeline.py")
        assert not rule.applies_to("repro/seeding.py")
        assert not rule.applies_to("repro/data/synthetic.py")

    def test_out_of_scope_rules_never_dispatch(self):
        src = """
        class Scenario:
            def steps(self):
                return [1]
        """
        assert lint(src, "repro/core/foo.py") == []


class TestSuppressions:
    FIRING = """
    import numpy as np

    def sample():
        return np.random.default_rng().random(){comment}
    """

    def test_reasoned_suppression_silences_finding(self):
        src = self.FIRING.format(
            comment="  # repro-lint: disable=RPL001 -- fixture exercising suppression"
        )
        assert lint(src, "repro/core/foo.py") == []

    def test_suppression_without_reason_is_rejected_and_not_honored(self):
        src = self.FIRING.format(comment="  # repro-lint: disable=RPL001")
        findings = lint(src, "repro/core/foo.py")
        assert sorted(f.rule for f in findings) == [META_RULE_ID, "RPL001"]
        meta = next(f for f in findings if f.rule == META_RULE_ID)
        assert "missing the mandatory reason" in meta.message

    def test_unknown_rule_id_is_rejected(self):
        src = self.FIRING.format(
            comment="  # repro-lint: disable=RPL999 -- wrong id"
        )
        findings = lint(src, "repro/core/foo.py")
        assert sorted(f.rule for f in findings) == [META_RULE_ID, "RPL001"]
        meta = next(f for f in findings if f.rule == META_RULE_ID)
        assert "unknown rule id" in meta.message

    def test_empty_id_list_is_rejected(self):
        src = self.FIRING.format(comment="  # repro-lint: disable= -- nothing")
        findings = lint(src, "repro/core/foo.py")
        assert sorted(f.rule for f in findings) == [META_RULE_ID, "RPL001"]

    def test_meta_rule_is_not_suppressible(self):
        src = self.FIRING.format(
            comment="  # repro-lint: disable=RPL000,RPL001 -- trying to gag the meta rule"
        )
        findings = lint(src, "repro/core/foo.py")
        meta = next(f for f in findings if f.rule == META_RULE_ID)
        assert "not suppressible" in meta.message

    def test_suppression_only_covers_its_own_line(self):
        src = """
        import numpy as np

        # repro-lint: disable=RPL001 -- wrong line, does nothing
        def sample():
            return np.random.default_rng().random()
        """
        findings = lint(src, "repro/core/foo.py")
        assert [f.rule for f in findings] == ["RPL001"]

    def test_multiple_ids_on_one_line(self):
        src = """
        import numpy as np

        def sample():
            print(np.random.default_rng().random())  # repro-lint: disable=RPL001, RPL008 -- fixture: one comment, two rules
        """
        assert lint(src, "repro/core/foo.py") == []

    def test_docstring_mentioning_syntax_is_not_a_suppression(self):
        src = '''
        def helper():
            """Explains `# repro-lint: disable=RPL001` without using it."""
            return 1
        '''
        assert lint(src, "repro/core/foo.py") == []


class TestFindings:
    def test_syntax_error_becomes_meta_finding(self):
        findings = lint_source("def broken(:\n", path="src/repro/core/foo.py")
        assert len(findings) == 1
        assert findings[0].rule == META_RULE_ID
        assert "does not parse" in findings[0].message

    def test_findings_sorted_and_positioned(self):
        src = """
        import numpy as np

        def late():
            print("x")

        def early():
            return np.random.default_rng()
        """
        findings = lint(src, "repro/core/foo.py")
        assert [(f.rule, f.line) for f in findings] == [
            ("RPL008", 5),
            ("RPL001", 8),
        ]
        assert all(f.col >= 1 for f in findings)

    def test_finding_format_and_dict(self):
        finding = Finding(
            path="src/repro/core/foo.py",
            line=3,
            col=5,
            rule="RPL008",
            message="print() in library code",
            suggestion="return the text instead",
        )
        text = finding.format()
        assert "src/repro/core/foo.py:3:5: RPL008" in text
        assert "fix: return the text instead" in text
        assert finding.to_dict() == {
            "path": "src/repro/core/foo.py",
            "line": 3,
            "col": 5,
            "rule": "RPL008",
            "message": "print() in library code",
            "suggestion": "return the text instead",
        }
