"""Public-API surface checks: __all__ consistency and doc coverage.

These keep the library honest as it grows: everything exported must
exist, and every public item must carry a docstring (deliverable (e) of
the reproduction: doc comments on every public item).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.autograd",
    "repro.snn",
    "repro.snn.backends",
    "repro.data",
    "repro.compression",
    "repro.replaystore",
    "repro.training",
    "repro.core",
    "repro.scenario",
    "repro.hw",
    "repro.eval",
    "repro.obs",
    "repro.lint",
]


def iter_modules():
    seen = set(PACKAGES)
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                seen.add(f"{package_name}.{info.name}")
    return sorted(seen)


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    assert exported, f"{package_name} must declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", iter_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_items_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", []):
        item = getattr(package, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(f"{package_name}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_version_matches_pyproject():
    from pathlib import Path

    pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
    if not pyproject.exists():
        pytest.skip("source tree layout not available")
    text = pyproject.read_text()
    assert f'version = "{repro.__version__}"' in text


def test_error_hierarchy_rooted():
    from repro import errors

    for name in dir(errors):
        item = getattr(errors, name)
        if inspect.isclass(item) and issubclass(item, Exception):
            if item is not errors.ReproError:
                assert issubclass(item, errors.ReproError), name
