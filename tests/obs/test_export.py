"""Exporter tests: JSONL round-trips, Chrome trace_event, maybe_export."""

import json

import pytest

from repro import obs
from repro.errors import ConfigError
from repro.obs import (
    ManualClock,
    Recorder,
    from_chrome,
    read_jsonl,
    to_chrome,
    use_recorder,
    write_chrome,
    write_jsonl,
)


@pytest.fixture
def recorder():
    """A recorder holding a small two-thread-shaped trace + metrics."""
    clock = ManualClock()
    recorder = Recorder(clock=clock)
    with recorder.span("scenario.run", category="scenario", scenario="single-step"):
        clock.advance(0.5)
        with recorder.span("train.epoch", category="train", epoch=0) as span:
            clock.advance(0.25)
            span.set(loss=1.25)
    recorder.count("kernel.calls", backend="numpy", kernel="lif_forward")
    recorder.gauge("prefetch.queue_depth", 2.0)
    recorder.observe("prefetch.wait_seconds", 0.001)
    return recorder


class TestJsonl:
    def test_round_trip_is_exact(self, recorder, tmp_path):
        path = write_jsonl(
            tmp_path / "trace.jsonl", recorder.spans(), recorder.metrics()
        )
        spans, metrics = read_jsonl(path)
        assert spans == recorder.spans()
        assert metrics == recorder.metrics()

    def test_meta_line_first(self, recorder, tmp_path):
        path = write_jsonl(tmp_path / "t.jsonl", recorder.spans())
        first = json.loads(path.read_text().splitlines()[0])
        assert first["type"] == "meta"
        assert first["spans"] == len(recorder.spans())

    def test_creates_parent_dirs_and_overwrites(self, recorder, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        write_jsonl(path, recorder.spans())
        write_jsonl(path, ())  # snapshot semantics: last write wins
        spans, _ = read_jsonl(path)
        assert spans == ()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            read_jsonl(tmp_path / "nope.jsonl")

    def test_bad_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta", "version": 1}\n{oops\n')
        with pytest.raises(ConfigError, match="bad.jsonl:2"):
            read_jsonl(path)

    def test_unknown_record_type_raises(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text('{"type": "frobnicate"}\n')
        with pytest.raises(ConfigError, match="unknown record type"):
            read_jsonl(path)


class TestChrome:
    def test_complete_events_and_thread_metadata(self, recorder):
        payload = to_chrome(recorder.spans())
        assert payload["displayTimeUnit"] == "ms"
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert len(complete) == len(recorder.spans())
        assert metadata and metadata[0]["name"] == "thread_name"
        outer = next(e for e in complete if e["name"] == "scenario.run")
        assert outer["ts"] == 0.0
        assert outer["dur"] == pytest.approx(0.75e6)  # microseconds
        assert outer["args"]["scenario"] == "single-step"

    def test_round_trip_reconstructs_tree(self, recorder):
        spans = from_chrome(to_chrome(recorder.spans()))
        originals = sorted(recorder.spans(), key=lambda s: s.span_id)
        assert len(spans) == len(originals)
        for restored, original in zip(spans, originals):
            assert restored.span_id == original.span_id
            assert restored.parent_id == original.parent_id
            assert restored.name == original.name
            assert restored.category == original.category
            assert restored.thread == original.thread
            assert restored.attrs == original.attrs
            assert restored.start == pytest.approx(original.start)
            assert restored.end == pytest.approx(original.end)

    def test_empty_category_maps_to_repro_and_back(self):
        clock = ManualClock()
        recorder = Recorder(clock=clock)
        with recorder.span("bare"):
            clock.advance(0.1)
        (event,) = [e for e in to_chrome(recorder.spans())["traceEvents"] if e["ph"] == "X"]
        assert event["cat"] == "repro"
        (restored,) = from_chrome(to_chrome(recorder.spans()))
        assert restored.category == ""

    def test_write_chrome_is_loadable_json(self, recorder, tmp_path):
        path = write_chrome(tmp_path / "trace.chrome.json", recorder.spans())
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]


class TestMaybeExport:
    def test_noop_when_tracing_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert obs.maybe_export() is None

    def test_noop_when_enabled_without_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert obs.maybe_export() is None

    def test_noop_when_path_set_but_recorder_disabled(self, monkeypatch, tmp_path):
        from repro.obs import NullRecorder

        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "trace.jsonl"))
        with use_recorder(NullRecorder()):
            assert obs.maybe_export() is None
        assert not (tmp_path / "trace.jsonl").exists()

    def test_exports_env_selected_recorder(self, monkeypatch, tmp_path):
        target = tmp_path / "run" / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(target))
        obs.count("demo.counter")
        with obs.span("demo.span"):
            pass
        path = obs.maybe_export()
        assert path == target and target.exists()
        spans, metrics = read_jsonl(target)
        assert [s.name for s in spans] == ["demo.span"]
        assert [m.name for m in metrics] == ["demo.counter"]
