"""End-to-end tracing: parity, full span tree, env-driven export.

The acceptance bar of the observability PR: tracing must never touch the
numeric path (traced and untraced ``run_scenario`` runs are bitwise
identical), and a traced ci-scale run must record the full hierarchy —
scenario steps over epochs over kernel sweeps over shard decodes.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import ReplaySpec
from repro.core.pipeline import pretrain
from repro.data.synthetic_shd import SyntheticSHD
from repro.eval.scale import get_scale
from repro.obs import Recorder, TraceReport, read_jsonl, to_chrome, use_recorder
from repro.scenario import get, run_scenario


@pytest.fixture(scope="module")
def env():
    preset = get_scale("ci")
    experiment = preset.experiment.replace(
        ncl=preset.experiment.ncl.replace(epochs=3)
    )
    generator = SyntheticSHD(preset.shd, seed=experiment.seed)
    return generator, experiment


@pytest.fixture(scope="module")
def shared(env):
    """Scenario + pretraining shared by every run in this module."""
    generator, experiment = env
    scenario = get("single-step")
    first = next(iter(scenario.steps(generator, experiment)))
    pretrained = pretrain(experiment, first.split)
    return dict(
        generator=generator, experiment=experiment, pretrained=pretrained
    )


class TestParity:
    def test_traced_run_is_bitwise_identical(self, shared, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        untraced = run_scenario(get("single-step"), "replay4ncl", **shared)
        assert untraced.trace is None
        with use_recorder(Recorder()):
            traced = run_scenario(get("single-step"), "replay4ncl", **shared)
        assert isinstance(traced.trace, TraceReport)
        np.testing.assert_array_equal(
            traced.accuracy_matrix, untraced.accuracy_matrix
        )
        for a, b in zip(traced.steps, untraced.steps):
            assert a.final_new_accuracy == b.final_new_accuracy
            assert a.final_old_accuracy == b.final_old_accuracy
            assert a.history.losses == b.history.losses


class TestFullTree:
    @pytest.fixture(scope="class")
    def traced(self, shared, tmp_path_factory):
        root = tmp_path_factory.mktemp("obs-integration") / "fed"
        with use_recorder(Recorder()) as recorder:
            result = run_scenario(
                get("single-step"),
                "replay4ncl",
                replay=ReplaySpec(store_dir=root, shard_samples=4),
                **shared,
            )
        return result, recorder

    def test_all_layers_recorded(self, traced):
        result, _ = traced
        names = {s.name for s in result.trace.spans}
        assert {
            "scenario.run",
            "scenario.pretrain",
            "scenario.step",
            "scenario.eval",
            "ncl.prepare",
            "ncl.train",
            "train.epoch",
            "train.eval",
            "kernel.lif_forward",
            "kernel.readout_forward",
            # NCL trains above the insertion layer only, so the backward
            # sweep reaches the readout kernel (frozen layers skip BPTT).
            "kernel.readout_backward",
            "store.encode_shard",
            "store.decode_shard",
            "store.gather",
        } <= names

    def test_kernel_spans_nest_under_epochs_under_steps(self, traced):
        result, _ = traced
        report = result.trace
        by_id = {s.span_id: s for s in report.spans}

        def ancestors(span):
            seen = []
            while span.parent_id is not None and span.parent_id in by_id:
                span = by_id[span.parent_id]
                seen.append(span.name)
            return seen

        kernel = next(
            s for s in report.spans if s.name == "kernel.lif_forward"
            and "train.epoch" in ancestors(s)
        )
        chain = ancestors(kernel)
        assert "train.epoch" in chain
        assert "ncl.train" in chain
        assert "scenario.step" in chain
        assert chain[-1] == "scenario.run"

    def test_epoch_spans_carry_loss(self, traced):
        result, _ = traced
        epochs = [s for s in result.trace.spans if s.name == "train.epoch"]
        assert epochs
        assert all("loss" in s.attrs for s in epochs)

    def test_store_metrics_recorded(self, traced):
        result, _ = traced
        names = {m.name for m in result.trace.metrics}
        assert {
            "kernel.calls",
            "store.bytes_encoded",
            "store.bytes_decoded",
            "store.shards_decoded",
        } <= names

    def test_ncl_results_carry_their_own_trace(self, traced):
        result, _ = traced
        step = result.steps[0]
        assert isinstance(step.trace, TraceReport)
        assert "ncl.train" in {s.name for s in step.trace.spans}

    def test_chrome_export_covers_every_span(self, traced):
        result, _ = traced
        payload = to_chrome(result.trace.spans)
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == result.trace.num_spans


class TestEnvExport:
    def test_trace_path_writes_jsonl_on_completion(
        self, shared, monkeypatch, tmp_path
    ):
        target = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(target))
        result = run_scenario(get("single-step"), "replay4ncl", **shared)
        assert result.trace is not None
        assert target.exists()
        spans, metrics = read_jsonl(target)
        names = {s.name for s in spans}
        assert "scenario.run" in names and "kernel.lif_forward" in names
        assert any(m.name == "kernel.calls" for m in metrics)
