"""Recorder/span unit tests: timing, nesting, threads, selection."""

import threading

import numpy as np
import pytest

from repro import obs
from repro.obs import (
    NULL_SPAN,
    ManualClock,
    NullRecorder,
    Recorder,
    use_recorder,
)


class TestSpans:
    def test_manual_clock_timing(self):
        clock = ManualClock()
        recorder = Recorder(clock=clock)
        with recorder.span("outer"):
            clock.advance(1.5)
        (span,) = recorder.spans()
        assert span.name == "outer"
        assert span.start == 0.0
        assert span.end == 1.5
        assert span.duration == 1.5

    def test_nesting_assigns_parent_ids(self):
        recorder = Recorder(clock=ManualClock())
        with recorder.span("a") as a:
            with recorder.span("b") as b:
                with recorder.span("c") as c:
                    pass
            with recorder.span("d") as d:
                pass
        by_name = {s.name: s for s in recorder.spans()}
        assert by_name["a"].parent_id is None
        assert by_name["b"].parent_id == by_name["a"].span_id
        assert by_name["c"].parent_id == by_name["b"].span_id
        assert by_name["d"].parent_id == by_name["a"].span_id
        # Handles saw the same ids the records kept.
        assert (a.span_id, b.span_id, c.span_id, d.span_id) == (1, 2, 3, 4)

    def test_spans_finish_in_exit_order(self):
        recorder = Recorder(clock=ManualClock())
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        assert [s.name for s in recorder.spans()] == ["inner", "outer"]

    def test_attrs_at_creation_and_mid_flight(self):
        recorder = Recorder(clock=ManualClock())
        with recorder.span("k", category="kernel", backend="numpy") as span:
            span.set(loss=0.5)
        (record,) = recorder.spans()
        assert record.category == "kernel"
        assert record.attrs == {"backend": "numpy", "loss": 0.5}

    def test_mark_and_partial_snapshot(self):
        recorder = Recorder(clock=ManualClock())
        with recorder.span("before"):
            pass
        mark = recorder.mark()
        with recorder.span("after"):
            pass
        assert [s.name for s in recorder.spans(mark)] == ["after"]
        assert len(recorder.spans()) == 2

    def test_clear(self):
        recorder = Recorder(clock=ManualClock())
        with recorder.span("x"):
            pass
        recorder.count("n")
        recorder.clear()
        assert recorder.spans() == ()
        assert recorder.metrics() == ()

    def test_sibling_threads_root_their_own_trees(self):
        recorder = Recorder()
        done = threading.Event()

        def worker():
            with recorder.span("worker.outer"):
                with recorder.span("worker.inner"):
                    pass
            done.set()

        with recorder.span("main.outer"):
            thread = threading.Thread(target=worker, name="helper")
            thread.start()
            thread.join()
        assert done.wait(1.0)
        by_name = {s.name: s for s in recorder.spans()}
        # The worker's stack is thread-local: its outer span is a root,
        # NOT a child of the main thread's open span.
        assert by_name["worker.outer"].parent_id is None
        assert by_name["worker.outer"].thread == "helper"
        assert (
            by_name["worker.inner"].parent_id == by_name["worker.outer"].span_id
        )
        assert by_name["main.outer"].parent_id is None


class TestMetrics:
    def test_counter_aggregation(self):
        recorder = Recorder()
        recorder.count("hits")
        recorder.count("hits", 2.0)
        (entry,) = recorder.metrics()
        assert entry.kind == "counter"
        assert (entry.events, entry.total, entry.last) == (2, 3.0, 2.0)

    def test_gauge_tracks_extremes(self):
        recorder = Recorder()
        for value in (3.0, 1.0, 2.0):
            recorder.gauge("depth", value)
        (entry,) = recorder.metrics()
        assert entry.kind == "gauge"
        assert (entry.last, entry.low, entry.high) == (2.0, 1.0, 3.0)

    def test_histogram_mean(self):
        recorder = Recorder()
        for value in (0.1, 0.2, 0.3):
            recorder.observe("wait", value)
        (entry,) = recorder.metrics()
        assert entry.kind == "histogram"
        assert entry.events == 3
        assert entry.mean == pytest.approx(0.2)

    def test_tags_split_series(self):
        recorder = Recorder()
        recorder.count("kernel.calls", backend="numpy")
        recorder.count("kernel.calls", backend="c")
        recorder.count("kernel.calls", backend="c")
        entries = {e.tag_dict()["backend"]: e for e in recorder.metrics()}
        assert entries["numpy"].total == 1.0
        assert entries["c"].total == 2.0

    def test_tag_values_stringified_and_sorted(self):
        recorder = Recorder()
        recorder.count("x", b=2, a=1)
        (entry,) = recorder.metrics()
        assert entry.tags == (("a", "1"), ("b", "2"))


class TestSelection:
    def test_null_recorder_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert isinstance(obs.current(), NullRecorder)
        assert not obs.enabled()

    def test_env_flip_swaps_recorder_mid_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        first = obs.current()
        assert isinstance(first, Recorder)
        assert obs.current() is first  # memoized on the raw string
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert isinstance(obs.current(), NullRecorder)
        monkeypatch.setenv("REPRO_TRACE", "1")
        second = obs.current()
        assert isinstance(second, Recorder)
        assert second is not first  # a fresh recorder per flip

    def test_use_recorder_beats_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        recorder = Recorder(clock=ManualClock())
        with use_recorder(recorder):
            assert obs.current() is recorder
            assert obs.enabled()
        assert isinstance(obs.current(), NullRecorder)

    def test_overrides_nest_innermost_wins(self):
        outer, inner = Recorder(), Recorder()
        with use_recorder(outer):
            with use_recorder(inner):
                assert obs.current() is inner
            assert obs.current() is outer

    def test_module_helpers_route_to_override(self):
        recorder = Recorder(clock=ManualClock())
        with use_recorder(recorder):
            obs.count("c", backend="numpy")
            obs.gauge("g", 4.0)
            obs.observe("h", 0.5)
            with obs.span("s", category="kernel"):
                recorder.clock.advance(0.25)
            assert obs.now() == recorder.clock.now()
        (span,) = recorder.spans()
        assert span.name == "s" and span.duration == 0.25
        assert {e.name for e in recorder.metrics()} == {"c", "g", "h"}


class TestNullRecorder:
    def test_everything_is_a_no_op(self):
        recorder = NullRecorder()
        assert recorder.span("x") is NULL_SPAN
        with recorder.span("x") as span:
            assert span.set(a=1) is span
        recorder.count("c")
        recorder.gauge("g", 1.0)
        recorder.observe("h", 1.0)
        assert recorder.mark() == 0
        assert recorder.spans() == ()
        assert recorder.metrics() == ()
        assert not recorder.enabled
        assert recorder.clock.now() >= 0.0


class TestWorkerThreadSpans:
    @pytest.fixture
    def store(self, tmp_path):
        from repro.replaystore import ReplayStore

        rng = np.random.default_rng(0)
        store = ReplayStore.create(
            tmp_path / "store",
            stored_frames=8,
            num_channels=12,
            generated_timesteps=8,
            shard_samples=4,
        )
        store.append(
            (rng.random((8, 16, 12)) < 0.2).astype(np.float32),
            rng.integers(0, 4, 16),
        )
        return store

    def test_prefetch_decode_spans_root_on_worker_thread(self, store):
        import time

        from repro.replaystore import PrefetchingStream, ReplayStream

        recorder = Recorder()
        with use_recorder(recorder):
            with PrefetchingStream(ReplayStream(store), enabled=True) as view:
                with obs.span("train.epoch", category="train"):
                    view.prefetch(np.arange(store.num_samples))
                    deadline = time.monotonic() + 5.0
                    while (
                        view.prefetched_shards == 0
                        and time.monotonic() < deadline
                    ):
                        time.sleep(0.005)
                    view.gather(np.arange(store.num_samples))
        decodes = [
            s for s in recorder.spans() if s.name == "prefetch.decode"
        ]
        assert decodes, "worker never recorded a decode span"
        for span in decodes:
            assert span.thread == "replay-prefetch"
            # Worker spans root their own per-thread tree; the training
            # thread's open train.epoch span must NOT become the parent.
            assert span.parent_id is None
        metric_names = {e.name for e in recorder.metrics()}
        assert "prefetch.wait_seconds" in metric_names
        assert "prefetch.queue_depth" in metric_names
