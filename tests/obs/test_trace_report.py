"""TraceReport tests: capture, tree navigation, aggregates, rendering."""

import pytest

from repro.obs import ManualClock, NullRecorder, Recorder, TraceReport


@pytest.fixture
def recorder():
    clock = ManualClock()
    recorder = Recorder(clock=clock)
    with recorder.span("scenario.run", category="scenario"):
        for epoch in range(2):
            with recorder.span("train.epoch", category="train", epoch=epoch):
                with recorder.span("kernel.lif_forward", category="kernel"):
                    clock.advance(0.010)
                clock.advance(0.040)
        clock.advance(0.100)
    recorder.count("kernel.calls", backend="numpy")
    recorder.gauge("prefetch.queue_depth", 2.0)
    return recorder


class TestCapture:
    def test_disabled_recorder_captures_none(self):
        assert TraceReport.capture(NullRecorder()) is None

    def test_capture_from_mark(self, recorder):
        mark = recorder.mark()
        with recorder.span("later"):
            pass
        report = TraceReport.capture(recorder, mark)
        assert [s.name for s in report.spans] == ["later"]
        # Metrics are a whole-recorder snapshot regardless of the mark.
        assert len(report.metrics) == 2

    def test_full_capture(self, recorder):
        report = TraceReport.capture(recorder)
        assert report.num_spans == 5


class TestTreeNavigation:
    def test_roots_and_children(self, recorder):
        report = TraceReport.capture(recorder)
        (root,) = report.roots()
        assert root.name == "scenario.run"
        epochs = report.children(root.span_id)
        assert [s.name for s in epochs] == ["train.epoch", "train.epoch"]
        assert [s.attrs["epoch"] for s in epochs] == [0, 1]  # start order
        (kernel,) = report.children(epochs[0].span_id)
        assert kernel.name == "kernel.lif_forward"

    def test_orphans_promote_to_roots(self, recorder):
        # A mark-bounded capture can exclude a span's parent; the child
        # must then surface as a root, not vanish.
        report = TraceReport.capture(recorder)
        no_root = TraceReport(
            spans=tuple(s for s in report.spans if s.name != "scenario.run"),
            metrics=(),
        )
        assert {s.name for s in no_root.roots()} == {"train.epoch"}


class TestAggregates:
    def test_sorted_by_total_duration(self, recorder):
        report = TraceReport.capture(recorder)
        aggregates = report.aggregate()
        assert [a.name for a in aggregates] == [
            "scenario.run",  # 0.200s
            "train.epoch",  # 2 x 0.050s
            "kernel.lif_forward",  # 2 x 0.010s
        ]
        run, epoch, kernel = aggregates
        assert run.calls == 1 and run.total_seconds == pytest.approx(0.200)
        assert epoch.calls == 2 and epoch.mean_seconds == pytest.approx(0.050)
        assert kernel.max_seconds == pytest.approx(0.010)

    def test_top_spans_limits(self, recorder):
        report = TraceReport.capture(recorder)
        assert len(report.top_spans(2)) == 2
        assert report.top_spans(0) == ()


class TestRendering:
    def test_describe_lists_spans_and_metrics(self, recorder):
        text = TraceReport.capture(recorder).describe()
        assert "5 spans, 2 metric series" in text
        assert "scenario.run" in text
        assert "kernel.calls{backend=numpy}" in text
        assert "prefetch.queue_depth" in text

    def test_tree_indents_by_depth(self, recorder):
        tree = TraceReport.capture(recorder).tree()
        lines = tree.splitlines()
        assert lines[0].startswith("scenario.run")
        assert lines[1].startswith("  train.epoch")
        assert lines[2].startswith("    kernel.lif_forward")

    def test_tree_depth_cap(self, recorder):
        tree = TraceReport.capture(recorder).tree(max_depth=1)
        assert "scenario.run" in tree
        assert "train.epoch" not in tree
