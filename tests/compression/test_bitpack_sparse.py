"""Tests for the lossless bitpack and address-event codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import AddressEventCodec, BitpackCodec, compare_codecs
from repro.errors import CodecError


@pytest.fixture
def raster():
    rng = np.random.default_rng(0)
    return (rng.random((20, 4, 6)) < 0.3).astype(np.float32)


class TestBitpack:
    def test_roundtrip_exact(self, raster):
        codec = BitpackCodec()
        packed, shape = codec.compress(raster)
        np.testing.assert_array_equal(codec.decompress(packed, shape), raster)

    def test_packed_bytes(self):
        codec = BitpackCodec()
        assert codec.packed_bytes((8, 1)) == 1
        assert codec.packed_bytes((9, 1)) == 2
        assert codec.packed_bytes((50, 40)) == 250

    def test_rejects_nonbinary(self):
        with pytest.raises(CodecError):
            BitpackCodec().compress(np.full((4, 4), 0.5))

    def test_rejects_empty(self):
        with pytest.raises(CodecError):
            BitpackCodec().compress(np.zeros((0, 4)))

    def test_decompress_validation(self):
        codec = BitpackCodec()
        with pytest.raises(CodecError):
            codec.decompress(np.zeros(1, dtype=np.float32), (8,))
        with pytest.raises(CodecError):
            codec.decompress(np.zeros(1, dtype=np.uint8), (100,))

    @given(st.integers(min_value=1, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, n):
        rng = np.random.default_rng(n)
        raster = (rng.random((n, 7)) < 0.5).astype(np.float32)
        codec = BitpackCodec()
        packed, shape = codec.compress(raster)
        assert packed.size == codec.packed_bytes(shape)
        np.testing.assert_array_equal(codec.decompress(packed, shape), raster)


class TestAddressEvent:
    def test_roundtrip_exact(self, raster):
        codec = AddressEventCodec()
        times, channels, shape = codec.compress(raster)
        np.testing.assert_array_equal(codec.decompress(times, channels, shape), raster)

    def test_compressed_bytes(self):
        codec = AddressEventCodec(time_bytes=2, channel_bytes=2)
        assert codec.bytes_per_event == 4
        assert codec.compressed_bytes(100) == 400

    def test_empty_raster(self):
        codec = AddressEventCodec()
        raster = np.zeros((5, 4), dtype=np.float32)
        times, channels, shape = codec.compress(raster)
        assert times.size == 0
        np.testing.assert_array_equal(codec.decompress(times, channels, shape), raster)

    def test_rejects_nonbinary(self):
        with pytest.raises(CodecError):
            AddressEventCodec().compress(np.full((4, 4), 2.0))

    def test_rejects_1d(self):
        with pytest.raises(CodecError):
            AddressEventCodec().compress(np.zeros(4))

    def test_rejects_coordinate_overflow(self):
        codec = AddressEventCodec(time_bytes=1)
        with pytest.raises(CodecError):
            codec.compress(np.zeros((300, 4), dtype=np.float32))

    def test_decompress_validation(self):
        codec = AddressEventCodec()
        with pytest.raises(CodecError):
            codec.decompress(np.array([0]), np.array([0, 1]), (5, 4))
        with pytest.raises(CodecError):
            codec.decompress(np.array([9]), np.array([0]), (5, 4))

    def test_validation_of_widths(self):
        with pytest.raises(CodecError):
            AddressEventCodec(time_bytes=0)

    def test_negative_event_count(self):
        with pytest.raises(CodecError):
            AddressEventCodec().compressed_bytes(-1)


class TestCodecEdgeCases:
    """Degenerate rasters both lossless codecs must handle exactly."""

    def test_all_zeros_bitpack(self):
        raster = np.zeros((6, 5), dtype=np.float32)
        codec = BitpackCodec()
        packed, shape = codec.compress(raster)
        assert packed.size == codec.packed_bytes(shape)
        np.testing.assert_array_equal(codec.decompress(packed, shape), raster)

    def test_all_zeros_aer_stores_nothing(self):
        codec = AddressEventCodec()
        raster = np.zeros((6, 5), dtype=np.float32)
        times, channels, shape = codec.compress(raster)
        assert codec.compressed_bytes(times.size) == 0
        np.testing.assert_array_equal(
            codec.decompress(times, channels, shape), raster
        )

    def test_all_ones_bitpack(self):
        raster = np.ones((7, 9), dtype=np.float32)
        codec = BitpackCodec()
        packed, shape = codec.compress(raster)
        np.testing.assert_array_equal(codec.decompress(packed, shape), raster)

    def test_all_ones_aer(self):
        codec = AddressEventCodec()
        raster = np.ones((7, 9), dtype=np.float32)
        times, channels, shape = codec.compress(raster)
        assert times.size == 63  # one event per cell
        np.testing.assert_array_equal(
            codec.decompress(times, channels, shape), raster
        )

    def test_single_timestep_bitpack(self):
        raster = np.array([[1.0, 0.0, 1.0, 1.0]], dtype=np.float32)
        codec = BitpackCodec()
        packed, shape = codec.compress(raster)
        assert packed.size == 1  # 4 cells -> 1 byte
        np.testing.assert_array_equal(codec.decompress(packed, shape), raster)

    def test_single_timestep_aer(self):
        raster = np.array([[1.0, 0.0, 1.0, 1.0]], dtype=np.float32)
        codec = AddressEventCodec()
        times, channels, shape = codec.compress(raster)
        assert times.tolist() == [0, 0, 0]
        assert channels.tolist() == [0, 2, 3]
        np.testing.assert_array_equal(
            codec.decompress(times, channels, shape), raster
        )

    @given(
        timesteps=st.integers(min_value=1, max_value=40),
        channels=st.integers(min_value=1, max_value=20),
        density=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_byte_accounting_matches_stats(self, timesteps, channels, density):
        # The codecs' own size claims must agree with the comparison
        # table in compression/stats.py — that table is what the codec
        # ablation and the replay-store density choice trust.
        rng = np.random.default_rng(timesteps * 1000 + channels)
        raster = (rng.random((timesteps, channels)) < density).astype(np.float32)
        bp_stats, aer_stats, _ = compare_codecs(raster)

        bitpack = BitpackCodec()
        packed, shape = bitpack.compress(raster)
        assert bp_stats.stored_bytes == packed.size == bitpack.packed_bytes(shape)

        aer = AddressEventCodec()
        times, _, _ = aer.compress(raster)
        assert aer_stats.stored_bytes == aer.compressed_bytes(times.size)
        assert aer_stats.stored_bytes == aer.bytes_per_event * int(raster.sum())
        # Both report against the same bit-packed raw baseline.
        assert bp_stats.raw_bytes == aer_stats.raw_bytes == (raster.size + 7) // 8


class TestCompareCodecs:
    def test_returns_three(self, raster):
        stats = compare_codecs(raster)
        assert len(stats) == 3

    def test_lossless_codecs_retain_spikes(self, raster):
        stats = compare_codecs(raster)
        assert stats[0].spike_retention == 1.0  # bitpack
        assert stats[1].spike_retention == 1.0  # AER

    def test_subsample_is_lossy(self, raster):
        stats = compare_codecs(raster, subsample_factor=2)
        assert stats[2].spike_retention < 1.0
        assert not stats[2].lossless

    def test_subsample_halves_storage(self, raster):
        stats = compare_codecs(raster, subsample_factor=2)
        assert stats[2].stored_bytes == pytest.approx(stats[0].stored_bytes / 2, rel=0.1)

    def test_aer_wins_on_sparse_data(self):
        raster = np.zeros((100, 100), dtype=np.float32)
        raster[0, 0] = 1.0  # single spike
        stats = compare_codecs(raster)
        aer = stats[1]
        bitpack = stats[0]
        assert aer.stored_bytes < bitpack.stored_bytes

    def test_bitpack_wins_on_dense_data(self):
        raster = np.ones((100, 100), dtype=np.float32)
        stats = compare_codecs(raster)
        assert stats[0].stored_bytes < stats[1].stored_bytes

    def test_compression_ratio(self, raster):
        stats = compare_codecs(raster)
        assert stats[0].compression_ratio == 1.0  # baseline is bitpacked
