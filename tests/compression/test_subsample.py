"""Tests for the Fig. 7 temporal-subsampling codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import TemporalSubsampleCodec
from repro.errors import CodecError


class TestFig7Example:
    """The exact worked example from paper Fig. 7 (factor 2)."""

    ORIGINAL = np.array([1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 1, 1, 0], dtype=np.float32)
    COMPRESSED = np.array([1, 0, 0, 0, 1, 1, 1], dtype=np.float32)
    DECOMPRESSED = np.array([1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0, 1, 0], dtype=np.float32)

    def test_compress_matches_paper(self):
        codec = TemporalSubsampleCodec(2)
        out = codec.compress(self.ORIGINAL[:, None])
        np.testing.assert_array_equal(out[:, 0], self.COMPRESSED)

    def test_decompress_matches_paper(self):
        codec = TemporalSubsampleCodec(2)
        out = codec.decompress(self.COMPRESSED[:, None], 14)
        np.testing.assert_array_equal(out[:, 0], self.DECOMPRESSED)

    def test_roundtrip_matches_paper(self):
        codec = TemporalSubsampleCodec(2)
        out = codec.roundtrip(self.ORIGINAL[:, None])
        np.testing.assert_array_equal(out[:, 0], self.DECOMPRESSED)


class TestMechanics:
    def test_factor_one_is_identity(self):
        codec = TemporalSubsampleCodec(1)
        raster = np.eye(5, dtype=np.float32)
        np.testing.assert_array_equal(codec.roundtrip(raster), raster)

    def test_compressed_length(self):
        codec = TemporalSubsampleCodec(2)
        assert codec.compressed_length(14) == 7
        assert codec.compressed_length(15) == 8
        assert TemporalSubsampleCodec(4).compressed_length(100) == 25

    def test_decompress_length_mismatch(self):
        codec = TemporalSubsampleCodec(2)
        with pytest.raises(CodecError):
            codec.decompress(np.zeros((3, 1)), 14)  # needs 7 frames

    def test_validation(self):
        with pytest.raises(CodecError):
            TemporalSubsampleCodec(0)
        with pytest.raises(CodecError):
            TemporalSubsampleCodec(1.5)
        with pytest.raises(CodecError):
            TemporalSubsampleCodec(2).compressed_length(0)
        with pytest.raises(CodecError):
            TemporalSubsampleCodec(2).compress(np.zeros((0, 3)))

    def test_multidimensional_rasters(self):
        rng = np.random.default_rng(0)
        raster = (rng.random((20, 4, 6)) < 0.3).astype(np.float32)
        codec = TemporalSubsampleCodec(4)
        out = codec.roundtrip(raster)
        assert out.shape == raster.shape

    @given(
        factor=st.integers(min_value=1, max_value=6),
        timesteps=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_properties(self, factor, timesteps):
        rng = np.random.default_rng(factor * 100 + timesteps)
        raster = (rng.random((timesteps, 3)) < 0.4).astype(np.float32)
        codec = TemporalSubsampleCodec(factor)
        compressed = codec.compress(raster)
        assert compressed.shape[0] == codec.compressed_length(timesteps)
        restored = codec.decompress(compressed, timesteps)
        assert restored.shape == raster.shape
        # Kept frames are exact; dropped frames are zero.
        np.testing.assert_array_equal(restored[::factor], raster[::factor])
        mask = np.ones(timesteps, dtype=bool)
        mask[::factor] = False
        assert restored[mask].sum() == 0.0
        # Lossy only downward.
        assert restored.sum() <= raster.sum()

    @given(factor=st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_idempotent(self, factor):
        rng = np.random.default_rng(factor)
        raster = (rng.random((30, 2)) < 0.5).astype(np.float32)
        codec = TemporalSubsampleCodec(factor)
        once = codec.roundtrip(raster)
        twice = codec.roundtrip(once)
        np.testing.assert_array_equal(once, twice)
