"""Tests for the raw-input rehearsal baseline."""

import pytest

from repro.core import RawInputReplay, Replay4NCL, run_method


@pytest.fixture(scope="module")
def raw_result(ci_preset, ci_pretrained, ci_split):
    return run_method(RawInputReplay(ci_preset.experiment), ci_pretrained, ci_split)


class TestRawInputReplay:
    def test_trains_whole_network(self, raw_result):
        assert raw_result.insertion_layer == 0

    def test_preserves_old_knowledge(self, raw_result, ci_pretrained):
        # Rehearsal with raw inputs must beat catastrophic forgetting.
        assert raw_result.final_old_accuracy > 0.4

    def test_learns_new_task(self, raw_result):
        assert raw_result.final_new_accuracy >= 0.5

    def test_stores_more_than_latent_replay(
        self, raw_result, ci_preset, ci_pretrained, ci_split
    ):
        # The memory motivation for *latent* replay: raw inputs at the
        # full channel count and timestep dwarf layer-3 activations at
        # the reduced timestep.
        latent = run_method(Replay4NCL(ci_preset.experiment), ci_pretrained, ci_split)
        assert raw_result.latent_storage_bytes > latent.latent_storage_bytes

    def test_no_decompression(self, raw_result):
        assert all(c.decompressed_cells == 0 for c in raw_result.epoch_costs)

    def test_runs_at_pretrain_timesteps(self, raw_result, ci_preset):
        assert raw_result.timesteps == ci_preset.experiment.pretrain.timesteps
