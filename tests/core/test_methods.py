"""Integration tests of the NCL methods at ci scale.

These assert the paper's *qualitative* relationships — the quantitative
shapes live in the benchmark harness at bench scale.
"""

import numpy as np
import pytest

from repro.core import NaiveFinetune, Replay4NCL, SpikingLR, run_method
from repro.core.spikinglr import SPIKINGLR_COMPRESSION_FACTOR


@pytest.fixture(scope="module")
def naive_result(ci_preset, ci_pretrained, ci_split):
    return run_method(NaiveFinetune(ci_preset.experiment), ci_pretrained, ci_split)


@pytest.fixture(scope="module")
def sota_result(ci_preset, ci_pretrained, ci_split):
    return run_method(SpikingLR(ci_preset.experiment), ci_pretrained, ci_split)


@pytest.fixture(scope="module")
def ours_result(ci_preset, ci_pretrained, ci_split):
    return run_method(Replay4NCL(ci_preset.experiment), ci_pretrained, ci_split)


class TestPretraining:
    def test_pretrain_learns(self, ci_pretrained):
        # 4-class problem: random is 0.25.
        assert ci_pretrained.test_accuracy > 0.6

    def test_history_recorded(self, ci_pretrained, ci_preset):
        assert len(ci_pretrained.history) == ci_preset.experiment.pretrain.epochs


class TestNaiveFinetune:
    def test_learns_new_task(self, naive_result):
        assert naive_result.final_new_accuracy >= 0.75

    def test_catastrophic_forgetting(self, naive_result, ci_pretrained):
        # Fig. 1a: old-task accuracy collapses without replay.
        assert naive_result.final_old_accuracy < ci_pretrained.test_accuracy - 0.1

    def test_no_latent_storage(self, naive_result):
        assert naive_result.latent_storage_bytes == 0
        assert naive_result.latent_stored_frames == 0

    def test_runs_at_pretrain_timesteps(self, naive_result, ci_preset):
        assert naive_result.timesteps == ci_preset.experiment.pretrain.timesteps


class TestSpikingLR:
    def test_preserves_old_knowledge(self, sota_result, naive_result):
        assert sota_result.final_old_accuracy > naive_result.final_old_accuracy

    def test_learns_new_task(self, sota_result):
        assert sota_result.final_new_accuracy >= 0.75

    def test_full_timesteps(self, sota_result, ci_preset):
        assert sota_result.timesteps == ci_preset.experiment.pretrain.timesteps

    def test_stores_compressed_frames(self, sota_result, ci_preset):
        t = ci_preset.experiment.pretrain.timesteps
        assert sota_result.latent_stored_frames == (
            t + SPIKINGLR_COMPRESSION_FACTOR - 1
        ) // SPIKINGLR_COMPRESSION_FACTOR

    def test_charges_decompression(self, sota_result):
        assert all(c.decompressed_cells > 0 for c in sota_result.epoch_costs)


class TestReplay4NCL:
    def test_preserves_old_knowledge(self, ours_result, naive_result):
        assert ours_result.final_old_accuracy > naive_result.final_old_accuracy

    def test_old_accuracy_comparable_to_sota(self, ours_result, sota_result):
        assert ours_result.final_old_accuracy >= sota_result.final_old_accuracy - 0.15

    def test_learns_new_task(self, ours_result):
        assert ours_result.final_new_accuracy >= 0.5

    def test_reduced_timesteps(self, ours_result, ci_preset):
        assert ours_result.timesteps == ci_preset.experiment.ncl.timesteps
        assert ours_result.timesteps < ci_preset.experiment.pretrain.timesteps

    def test_saves_latent_memory(self, ours_result, sota_result):
        # The paper's headline: fewer stored frames than the SOTA.
        assert ours_result.latent_stored_frames < sota_result.latent_stored_frames
        assert ours_result.latent_storage_bytes < sota_result.latent_storage_bytes

    def test_no_decompression(self, ours_result):
        assert all(c.decompressed_cells == 0 for c in ours_result.epoch_costs)

    def test_lower_learning_rate_than_sota(self, ci_preset):
        ours = Replay4NCL(ci_preset.experiment)
        sota = SpikingLR(ci_preset.experiment)
        assert ours.learning_rate() < sota.learning_rate()
        assert ours.learning_rate() == pytest.approx(
            ours.base_eta() / ci_preset.experiment.ncl.learning_rate_divisor
        )

    def test_timestep_override(self, ci_preset, ci_pretrained, ci_split):
        method = Replay4NCL(ci_preset.experiment, timesteps=6)
        result = run_method(method, ci_pretrained, ci_split)
        assert result.timesteps == 6

    def test_adaptive_flag_changes_training(self, ci_preset, ci_pretrained, ci_split):
        on = Replay4NCL(ci_preset.experiment, adaptive_threshold=True)
        off = Replay4NCL(ci_preset.experiment, adaptive_threshold=False)
        r_on = run_method(on, ci_pretrained, ci_split)
        r_off = run_method(off, ci_pretrained, ci_split)
        # Latent buffers are generated under different thresholds, so the
        # stored activations must differ in spike counts.
        on_spikes = sum(
            e.output_spike_count
            for e in r_on.prepare_cost.frozen_traces[0].entries
        )
        off_spikes = sum(
            e.output_spike_count
            for e in r_off.prepare_cost.frozen_traces[0].entries
        )
        assert on_spikes != off_spikes


class TestResultContracts:
    def test_history_lengths(self, sota_result, ours_result, ci_preset):
        assert len(sota_result.history) == ci_preset.experiment.ncl.epochs
        assert len(ours_result.history) == ci_preset.experiment.ncl.epochs

    def test_epoch_costs_per_epoch(self, sota_result, ci_preset):
        assert len(sota_result.epoch_costs) == ci_preset.experiment.ncl.epochs

    def test_pretrained_not_mutated(self, ci_pretrained, ci_split, ci_preset):
        before = {
            name: {k: v.copy() for k, v in params.items()}
            for name, params in ci_pretrained.network.state_dict().items()
        }
        run_method(SpikingLR(ci_preset.experiment), ci_pretrained, ci_split)
        after = ci_pretrained.network.state_dict()
        for name in before:
            for key in before[name]:
                np.testing.assert_array_equal(before[name][key], after[name][key])

    def test_summary_text(self, ours_result):
        text = ours_result.summary()
        assert "replay4ncl" in text and "old=" in text

    def test_insertion_layer_recorded(self, ours_result, ci_preset):
        assert ours_result.insertion_layer == ci_preset.experiment.ncl.insertion_layer
