"""ReplaySpec: validation and promotion into every run entry point.

One frozen, validated object for all replay/store configuration.  The
legacy per-entry-point kwargs (``replay_store_dir``, ``store_root``,
``store_shard_samples``, ...) shipped one deprecation cycle as warning
shims and are now gone: passing them is a ``TypeError``, and the specs
below are the only spelling.
"""

import pytest

from repro.core import NaiveFinetune, Replay4NCL, ReplaySpec, run_method
from repro.errors import ConfigError


class TestReplaySpecValidation:
    def test_default_is_dense(self):
        spec = ReplaySpec()
        assert not spec.store_backed
        assert spec.describe() == "dense in-memory replay"

    def test_store_dir_normalised_to_path(self, tmp_path):
        from pathlib import Path

        spec = ReplaySpec(store_dir=str(tmp_path / "store"))
        assert isinstance(spec.store_dir, Path)
        assert spec.store_backed

    def test_store_options_require_store_dir(self):
        with pytest.raises(ConfigError, match="require store_dir"):
            ReplaySpec(shard_samples=4)
        with pytest.raises(ConfigError, match="require store_dir"):
            ReplaySpec(prefetch=True)
        with pytest.raises(ConfigError, match="require store_dir"):
            ReplaySpec(overwrite=True)
        with pytest.raises(ConfigError, match="require store_dir"):
            ReplaySpec(federation_budget_bytes=1024)

    def test_invalid_values_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="shard_samples"):
            ReplaySpec(store_dir=tmp_path, shard_samples=0)
        with pytest.raises(ConfigError, match="federation_budget_bytes"):
            ReplaySpec(store_dir=tmp_path, federation_budget_bytes=-1)
        with pytest.raises(ConfigError, match="federation_policy"):
            ReplaySpec(store_dir=tmp_path, federation_policy="lru")

    def test_member_view(self, tmp_path):
        spec = ReplaySpec(
            store_dir=tmp_path,
            shard_samples=8,
            prefetch=False,
            federation_budget_bytes=4096,
            federation_seed=3,
        )
        member = spec.member("step-001")
        assert member.store_dir == tmp_path / "step-001"
        assert member.shard_samples == 8
        assert member.prefetch is False
        # Federation-level fields are stripped: the runner owns them.
        assert member.federation_budget_bytes is None
        assert member.federation_seed == 0

    def test_member_requires_store(self):
        with pytest.raises(ConfigError, match="store-backed"):
            ReplaySpec().member("step-000")

    def test_federation_options_rejected_on_single_run(
        self, ci_pretrained, ci_split, ci_preset, tmp_path
    ):
        method = Replay4NCL(ci_preset.experiment)
        spec = ReplaySpec(store_dir=tmp_path, federation_budget_bytes=4096)
        with pytest.raises(ConfigError, match="multi-step"):
            method.run(ci_pretrained.network, ci_split, replay=spec)

    def test_bare_path_promoted_to_spec(
        self, ci_pretrained, ci_split, ci_preset, tmp_path
    ):
        result = run_method(
            Replay4NCL(ci_preset.experiment),
            ci_pretrained,
            ci_split,
            replay=tmp_path / "store",
        )
        assert result.replay_store_path == str(tmp_path / "store")


class TestLegacyKwargsRemoved:
    """The deprecated kwargs are gone, not silently accepted."""

    def test_method_run_rejects_legacy_kwargs(
        self, ci_pretrained, ci_split, ci_preset, tmp_path
    ):
        method = NaiveFinetune(ci_preset.experiment)
        with pytest.raises(TypeError):
            method.run(
                ci_pretrained.network,
                ci_split,
                replay_store_dir=tmp_path / "store",
            )

    def test_run_method_rejects_non_spec_replay(
        self, ci_pretrained, ci_split, ci_preset
    ):
        with pytest.raises(ConfigError, match="ReplaySpec or a store path"):
            run_method(
                Replay4NCL(ci_preset.experiment),
                ci_pretrained,
                ci_split,
                replay=42,
            )
