"""ReplaySpec: validation, and the legacy-kwarg deprecation shims.

The API contract of the redesign: every legacy replay kwarg still
works, emits a ``DeprecationWarning``, and produces a **bitwise
identical** ``NCLResult``/``SequentialResult`` to the equivalent
``ReplaySpec`` at the same seed.
"""

import warnings

import numpy as np
import pytest

from repro.core import (
    NaiveFinetune,
    Replay4NCL,
    ReplaySpec,
    make_sequential_splits,
    run_method,
    run_sequential,
)
from repro.data.synthetic_shd import SyntheticSHD
from repro.errors import ConfigError


class TestReplaySpecValidation:
    def test_default_is_dense(self):
        spec = ReplaySpec()
        assert not spec.store_backed
        assert spec.describe() == "dense in-memory replay"

    def test_store_dir_normalised_to_path(self, tmp_path):
        from pathlib import Path

        spec = ReplaySpec(store_dir=str(tmp_path / "store"))
        assert isinstance(spec.store_dir, Path)
        assert spec.store_backed

    def test_store_options_require_store_dir(self):
        with pytest.raises(ConfigError, match="require store_dir"):
            ReplaySpec(shard_samples=4)
        with pytest.raises(ConfigError, match="require store_dir"):
            ReplaySpec(prefetch=True)
        with pytest.raises(ConfigError, match="require store_dir"):
            ReplaySpec(overwrite=True)
        with pytest.raises(ConfigError, match="require store_dir"):
            ReplaySpec(federation_budget_bytes=1024)

    def test_invalid_values_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="shard_samples"):
            ReplaySpec(store_dir=tmp_path, shard_samples=0)
        with pytest.raises(ConfigError, match="federation_budget_bytes"):
            ReplaySpec(store_dir=tmp_path, federation_budget_bytes=-1)
        with pytest.raises(ConfigError, match="federation_policy"):
            ReplaySpec(store_dir=tmp_path, federation_policy="lru")

    def test_member_view(self, tmp_path):
        spec = ReplaySpec(
            store_dir=tmp_path,
            shard_samples=8,
            prefetch=False,
            federation_budget_bytes=4096,
            federation_seed=3,
        )
        member = spec.member("step-001")
        assert member.store_dir == tmp_path / "step-001"
        assert member.shard_samples == 8
        assert member.prefetch is False
        # Federation-level fields are stripped: the runner owns them.
        assert member.federation_budget_bytes is None
        assert member.federation_seed == 0

    def test_member_requires_store(self):
        with pytest.raises(ConfigError, match="store-backed"):
            ReplaySpec().member("step-000")

    def test_federation_options_rejected_on_single_run(
        self, ci_pretrained, ci_split, ci_preset, tmp_path
    ):
        method = Replay4NCL(ci_preset.experiment)
        spec = ReplaySpec(store_dir=tmp_path, federation_budget_bytes=4096)
        with pytest.raises(ConfigError, match="multi-step"):
            method.run(ci_pretrained.network, ci_split, replay=spec)

    def test_mixing_spec_and_legacy_rejected(
        self, ci_pretrained, ci_split, ci_preset, tmp_path
    ):
        method = Replay4NCL(ci_preset.experiment)
        with pytest.raises(ConfigError, match="not both"):
            method.run(
                ci_pretrained.network,
                ci_split,
                replay=ReplaySpec(store_dir=tmp_path / "a"),
                replay_store_dir=tmp_path / "b",
            )

    def test_bare_path_promoted_to_spec(
        self, ci_pretrained, ci_split, ci_preset, tmp_path
    ):
        result = run_method(
            Replay4NCL(ci_preset.experiment),
            ci_pretrained,
            ci_split,
            replay=tmp_path / "store",
        )
        assert result.replay_store_path == str(tmp_path / "store")


@pytest.fixture()
def fast_experiment(ci_preset):
    """One-epoch NCL config: warnings fire before training matters."""
    exp = ci_preset.experiment
    return exp.replace(ncl=exp.ncl.replace(epochs=1))


class TestDeprecationWarnings:
    """Each legacy kwarg, passed alone, emits a DeprecationWarning."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replay_store_dir": None},
            {"store_shard_samples": 4},
            {"store_overwrite": True},
            {"prefetch": None},
        ],
        ids=lambda kw: next(iter(kw)),
    )
    def test_method_run_kwargs_warn(
        self, ci_pretrained, ci_split, fast_experiment, kwargs
    ):
        # Dir-less store kwargs were historically ignored (dense run);
        # the shim must warn either way.  NaiveFinetune keeps it cheap.
        method = NaiveFinetune(fast_experiment)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            method.run(ci_pretrained.network, ci_split, **kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"store_root": None},
            {"store_shard_samples": 4, "store_root": None},
            {"federation_budget_bytes": None, "store_root": None},
            {"federation_policy": "fifo", "store_root": None},
            {"federation_seed": 1, "store_root": None},
        ],
        ids=lambda kw: next(iter(kw)),
    )
    def test_run_sequential_kwargs_warn(
        self, ci_pretrained, ci_split, fast_experiment, ci_preset, kwargs
    ):
        generator = SyntheticSHD(ci_preset.shd, seed=ci_preset.experiment.seed)
        splits = make_sequential_splits(
            generator,
            fast_experiment.samples_per_class,
            fast_experiment.test_samples_per_class,
            base_classes=4,
            steps=1,
        )
        with pytest.warns(DeprecationWarning, match="deprecated"):
            run_sequential(
                lambda k: NaiveFinetune(fast_experiment),
                ci_pretrained.network,
                splits,
                **kwargs,
            )

    def test_spec_path_emits_no_warning(
        self, ci_pretrained, ci_split, fast_experiment, tmp_path
    ):
        method = NaiveFinetune(fast_experiment)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            method.run(ci_pretrained.network, ci_split, replay=ReplaySpec())


def _assert_identical(a, b):
    assert len(a.history) == len(b.history)
    for mem, disk in zip(a.history, b.history):
        assert mem.loss == disk.loss
        assert mem.old_task_accuracy == disk.old_task_accuracy
        assert mem.new_task_accuracy == disk.new_task_accuracy
        assert mem.overall_accuracy == disk.overall_accuracy
    assert a.latent_storage_bytes == b.latent_storage_bytes
    for p_a, p_b in zip(a.network.parameters(), b.network.parameters()):
        np.testing.assert_array_equal(p_a.data, p_b.data)


class TestBitwiseShimParity:
    def test_run_method_legacy_matches_spec(
        self, ci_pretrained, ci_split, ci_preset, tmp_path
    ):
        spec_result = run_method(
            Replay4NCL(ci_preset.experiment),
            ci_pretrained,
            ci_split,
            replay=ReplaySpec(
                store_dir=tmp_path / "spec", shard_samples=4, prefetch=False
            ),
        )
        with pytest.warns(DeprecationWarning):
            legacy_result = run_method(
                Replay4NCL(ci_preset.experiment),
                ci_pretrained,
                ci_split,
                replay_store_dir=tmp_path / "legacy",
                store_shard_samples=4,
                prefetch=False,
            )
        _assert_identical(spec_result, legacy_result)

    def test_run_sequential_legacy_matches_spec(
        self, ci_pretrained, ci_preset, tmp_path
    ):
        exp = ci_preset.experiment
        generator = SyntheticSHD(ci_preset.shd, seed=exp.seed)
        splits = make_sequential_splits(
            generator,
            exp.samples_per_class,
            exp.test_samples_per_class,
            base_classes=4,
            steps=1,
        )
        spec_result = run_sequential(
            lambda k: Replay4NCL(exp),
            ci_pretrained.network,
            splits,
            replay=ReplaySpec(
                store_dir=tmp_path / "spec",
                shard_samples=4,
                prefetch=False,
                federation_budget_bytes=1 << 20,
                federation_policy="fifo",
                federation_seed=1,
            ),
        )
        with pytest.warns(DeprecationWarning):
            legacy_result = run_sequential(
                lambda k: Replay4NCL(exp),
                ci_pretrained.network,
                splits,
                store_root=tmp_path / "legacy",
                store_shard_samples=4,
                prefetch=False,
                federation_budget_bytes=1 << 20,
                federation_policy="fifo",
                federation_seed=1,
            )
        assert len(spec_result.steps) == len(legacy_result.steps) == 1
        for a, b in zip(spec_result.steps, legacy_result.steps):
            _assert_identical(a, b)
        # Both persisted a federation at their respective roots.
        from repro.replaystore import FederatedReplayStore

        for result in (spec_result, legacy_result):
            federation = FederatedReplayStore.open(result.store_root)
            assert federation.member_names == ["step-000"]
            assert federation.budget_bytes == 1 << 20
