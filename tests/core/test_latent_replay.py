"""Tests for LatentReplayBuffer."""

import numpy as np
import pytest

from repro.core.latent_replay import HEADER_BYTES_PER_SAMPLE, LatentReplayBuffer
from repro.compression import TemporalSubsampleCodec
from repro.errors import CodecError, ConfigError


@pytest.fixture(scope="module")
def buffer_and_inputs(ci_pretrained, ci_split, ci_preset):
    exp = ci_preset.experiment
    replay = ci_split.pretrain_train.sample_fraction(
        0.5, np.random.default_rng(0)
    )
    buffer = LatentReplayBuffer.generate(
        ci_pretrained.network,
        replay,
        insertion_layer=2,
        timesteps=exp.pretrain.timesteps,
        compression_factor=2,
    )
    return buffer, replay


class TestGeneration:
    def test_geometry(self, buffer_and_inputs, ci_pretrained, ci_preset):
        buffer, replay = buffer_and_inputs
        t = ci_preset.experiment.pretrain.timesteps
        assert buffer.stored_frames == (t + 1) // 2
        assert buffer.num_samples == len(replay)
        assert buffer.num_channels == ci_pretrained.network.layer_input_size(2)

    def test_labels_preserved(self, buffer_and_inputs):
        buffer, replay = buffer_and_inputs
        np.testing.assert_array_equal(buffer.labels, replay.labels)

    def test_binary_content(self, buffer_and_inputs):
        buffer, _ = buffer_and_inputs
        assert set(np.unique(buffer.compressed)).issubset({0.0, 1.0})

    def test_layer0_stores_raw_input(self, ci_pretrained, ci_split, ci_preset):
        replay = ci_split.pretrain_train.subset([0, 1])
        t = ci_preset.experiment.pretrain.timesteps
        buffer = LatentReplayBuffer.generate(
            ci_pretrained.network, replay, insertion_layer=0,
            timesteps=t, compression_factor=1,
        )
        np.testing.assert_array_equal(
            buffer.compressed, replay.to_dense(t)
        )

    def test_empty_replay_rejected(self, ci_pretrained, ci_split):
        empty = ci_split.pretrain_train.subset([])
        with pytest.raises(ConfigError):
            LatentReplayBuffer.generate(
                ci_pretrained.network, empty, insertion_layer=1, timesteps=10
            )

    def test_deterministic(self, ci_pretrained, ci_split, ci_preset):
        replay = ci_split.pretrain_train.subset([0, 1, 2])
        kwargs = dict(insertion_layer=1, timesteps=20, compression_factor=2)
        a = LatentReplayBuffer.generate(ci_pretrained.network, replay, **kwargs)
        b = LatentReplayBuffer.generate(ci_pretrained.network, replay, **kwargs)
        np.testing.assert_array_equal(a.compressed, b.compressed)


class TestGenerateIntoStore:
    def test_matches_dense_generation(self, ci_pretrained, ci_split, tmp_path):
        replay = ci_split.pretrain_train.sample_fraction(
            0.5, np.random.default_rng(0)
        )
        dense = LatentReplayBuffer.generate(
            ci_pretrained.network, replay, insertion_layer=2, timesteps=12
        )
        store, trace = LatentReplayBuffer.generate_into_store(
            ci_pretrained.network,
            replay,
            tmp_path / "store",
            insertion_layer=2,
            timesteps=12,
            shard_samples=3,
        )
        streamed = LatentReplayBuffer.from_store(store)
        np.testing.assert_array_equal(streamed.compressed, dense.compressed)
        np.testing.assert_array_equal(streamed.labels, dense.labels)
        # Per-chunk trace accumulation covers the whole subset.
        assert len(trace.entries) == 2
        assert all(e.batch == len(replay) for e in trace.entries)

    def test_out_of_range_insertion_rejected(
        self, ci_pretrained, ci_split, tmp_path
    ):
        # Regression: the streaming branch must validate insertion_layer
        # like the dense path instead of silently truncating the slice.
        from repro.errors import SplitError

        replay = ci_split.pretrain_train.sample_fraction(
            0.5, np.random.default_rng(0)
        )
        with pytest.raises(SplitError, match="out of range"):
            LatentReplayBuffer.generate_into_store(
                ci_pretrained.network,
                replay,
                tmp_path / "store",
                insertion_layer=99,
                timesteps=12,
            )
        assert not (tmp_path / "store").exists()  # nothing half-written

    def test_empty_replay_rejected(self, ci_pretrained, ci_split, tmp_path):
        empty = ci_split.pretrain_train.subset([])
        with pytest.raises(ConfigError, match="empty"):
            LatentReplayBuffer.generate_into_store(
                ci_pretrained.network,
                empty,
                tmp_path / "store",
                insertion_layer=2,
                timesteps=12,
            )


class TestMaterialize:
    def test_decompress_restores_timesteps(self, buffer_and_inputs, ci_preset):
        buffer, _ = buffer_and_inputs
        raster = buffer.materialize(decompress=True)
        assert raster.shape[0] == ci_preset.experiment.pretrain.timesteps

    def test_decompress_zero_stuffs(self, buffer_and_inputs):
        buffer, _ = buffer_and_inputs
        raster = buffer.materialize(decompress=True)
        # Odd frames were dropped by the factor-2 codec.
        assert raster[1::2].sum() == 0.0

    def test_native_replay_needs_factor_one(self, buffer_and_inputs):
        buffer, _ = buffer_and_inputs
        with pytest.raises(CodecError):
            buffer.materialize(decompress=False)

    def test_native_replay_returns_copy(self, ci_pretrained, ci_split):
        replay = ci_split.pretrain_train.subset([0])
        buffer = LatentReplayBuffer.generate(
            ci_pretrained.network, replay, insertion_layer=1,
            timesteps=12, compression_factor=1,
        )
        raster = buffer.materialize(decompress=False)
        raster[0, 0, 0] = 99.0
        assert buffer.compressed[0, 0, 0] != 99.0


class TestStorage:
    def test_storage_bytes_formula(self, buffer_and_inputs):
        buffer, _ = buffer_and_inputs
        cells = buffer.stored_frames * buffer.num_samples * buffer.num_channels
        expected = (cells + 7) // 8 + HEADER_BYTES_PER_SAMPLE * buffer.num_samples
        assert buffer.storage_bytes() == expected

    def test_reduced_timestep_saves_memory(self, ci_pretrained, ci_split):
        replay = ci_split.pretrain_train.subset([0, 1, 2, 3])
        sota = LatentReplayBuffer.generate(
            ci_pretrained.network, replay, insertion_layer=1,
            timesteps=30, compression_factor=2,  # stores 15 frames
        )
        ours = LatentReplayBuffer.generate(
            ci_pretrained.network, replay, insertion_layer=1,
            timesteps=12, compression_factor=1,  # stores 12 frames
        )
        assert ours.storage_bytes() < sota.storage_bytes()

    def test_decompressed_cells_accounting(self, buffer_and_inputs):
        buffer, _ = buffer_and_inputs
        cells = buffer.decompressed_cells_per_replay(decompress=True)
        assert cells == (
            buffer.generated_timesteps * buffer.num_samples * buffer.num_channels
        )
        assert buffer.decompressed_cells_per_replay(decompress=False) == 0

    def test_shape_validation(self):
        with pytest.raises(CodecError):
            LatentReplayBuffer(
                compressed=np.zeros((4, 2)), labels=np.zeros(2),
                insertion_layer=1, generated_timesteps=4,
                codec=TemporalSubsampleCodec(1),
            )
        with pytest.raises(CodecError):
            LatentReplayBuffer(
                compressed=np.zeros((4, 2, 3)), labels=np.zeros(5),
                insertion_layer=1, generated_timesteps=4,
                codec=TemporalSubsampleCodec(1),
            )
