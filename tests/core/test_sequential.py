"""Tests for sequential (multi-step) class-incremental learning."""

import numpy as np
import pytest

from repro.core import Replay4NCL, make_sequential_splits, run_sequential
from repro.core.pipeline import pretrain
from repro.core.sequential import SequentialResult
from repro.core.strategies import EpochCost, NCLResult
from repro.data.synthetic_shd import SyntheticSHD
from repro.data.tasks import make_class_incremental
from repro.errors import DataError
from repro.eval.scale import get_scale
from repro.training.metrics import TrainingHistory


def _result_without_network() -> NCLResult:
    """A syntactically complete NCLResult whose network was dropped."""
    return NCLResult(
        method="stub",
        insertion_layer=0,
        timesteps=4,
        history=TrainingHistory(),
        final_old_accuracy=0.0,
        final_new_accuracy=0.0,
        final_overall_accuracy=0.0,
        latent_storage_bytes=0,
        latent_stored_frames=0,
        epoch_costs=[],
        prepare_cost=EpochCost(),
        network=None,
    )


@pytest.fixture(scope="module")
def scenario():
    preset = get_scale("ci")
    generator = SyntheticSHD(preset.shd, seed=preset.experiment.seed)
    # ci has 5 classes: pre-train on 3, learn classes 3 and 4 in two steps.
    exp = preset.experiment.replace(num_pretrain_classes=3)
    base_split = make_class_incremental(
        generator,
        exp.samples_per_class,
        exp.test_samples_per_class,
        num_pretrain_classes=3,
    )
    pretrained = pretrain(exp, base_split)
    splits = make_sequential_splits(
        generator,
        exp.samples_per_class,
        exp.test_samples_per_class,
        base_classes=3,
        steps=2,
    )
    return preset, exp, generator, pretrained, splits


class TestMakeSequentialSplits:
    def test_step_class_layout(self, scenario):
        _, _, _, _, splits = scenario
        assert splits[0].old_classes == (0, 1, 2)
        assert splits[0].new_classes == (3,)
        assert splits[1].old_classes == (0, 1, 2, 3)
        assert splits[1].new_classes == (4,)

    def test_old_pool_grows(self, scenario):
        _, _, _, _, splits = scenario
        assert len(splits[1].pretrain_train) > len(splits[0].pretrain_train)

    def test_validation(self, scenario):
        _, _, generator, _, _ = scenario
        with pytest.raises(DataError):
            make_sequential_splits(generator, 4, 2, base_classes=3, steps=5)
        with pytest.raises(DataError):
            make_sequential_splits(generator, 4, 2, base_classes=0, steps=1)

    def test_boundary_validation(self, scenario):
        # Every non-positive extent must fail loudly, and the scenario
        # that uses *exactly* the generator's class count must pass.
        _, _, generator, _, _ = scenario
        num_classes = generator.config.num_classes
        with pytest.raises(DataError, match="must be positive"):
            make_sequential_splits(generator, 4, 2, base_classes=3, steps=0)
        with pytest.raises(DataError, match="must be positive"):
            make_sequential_splits(
                generator, 4, 2, base_classes=3, steps=1, classes_per_step=0
            )
        with pytest.raises(DataError, match=f"needs {num_classes + 1} classes"):
            make_sequential_splits(
                generator, 4, 2, base_classes=num_classes - 1, steps=2
            )
        exact = make_sequential_splits(
            generator, 4, 2, base_classes=num_classes - 2, steps=2
        )
        assert exact[-1].new_classes == (num_classes - 1,)

    def test_multi_class_steps_layout(self, scenario):
        _, _, generator, _, _ = scenario
        splits = make_sequential_splits(
            generator, 4, 2, base_classes=1, steps=2, classes_per_step=2
        )
        assert splits[0].old_classes == (0,)
        assert splits[0].new_classes == (1, 2)
        assert splits[1].old_classes == (0, 1, 2)
        assert splits[1].new_classes == (3, 4)


class TestRunSequential:
    @pytest.fixture(scope="class")
    def result(self, scenario):
        _, exp, _, pretrained, splits = scenario
        return run_sequential(
            lambda k: Replay4NCL(exp), pretrained.network, splits
        )

    def test_two_steps(self, result):
        assert len(result.steps) == 2
        assert len(result.old_accuracy_trajectory) == 2

    def test_each_step_learns_its_class(self, result):
        # The ci budget is small; require progress, not perfection.
        assert result.new_accuracy_trajectory[0] >= 0.5

    def test_old_knowledge_survives_both_steps(self, result):
        assert result.old_accuracy_trajectory[-1] >= 0.4

    def test_networks_chain(self, result, scenario):
        _, _, _, pretrained, _ = scenario
        # Step 2's network must differ from both the pre-trained one and
        # step 1's (training happened at each step).
        w_pre = pretrained.network.readout.w_ff.data
        w_one = result.steps[0].network.readout.w_ff.data
        w_two = result.steps[1].network.readout.w_ff.data
        assert not np.array_equal(w_pre, w_one)
        assert not np.array_equal(w_one, w_two)

    def test_final_network_exposed(self, result):
        assert result.final_network is result.steps[-1].network

    def test_describe(self, result):
        text = result.describe()
        assert "2 steps" in text and "step 1" in text

    def test_empty_splits_rejected(self, scenario):
        _, exp, _, pretrained, _ = scenario
        with pytest.raises(DataError):
            run_sequential(lambda k: Replay4NCL(exp), pretrained.network, [])


class TestErrorPaths:
    def test_final_network_raises_when_network_missing(self):
        # Regression: SequentialResult.final_network must refuse to hand
        # back None when the last step carries no trained network.
        result = SequentialResult(steps=(_result_without_network(),))
        with pytest.raises(DataError, match="carries no network"):
            result.final_network

    def test_run_sequential_rejects_networkless_method(self, scenario):
        _, _, _, pretrained, splits = scenario

        class NetworklessMethod:
            def run(self, network, split, **kwargs):
                return _result_without_network()

        with pytest.raises(DataError, match="did not return"):
            run_sequential(
                lambda k: NetworklessMethod(), pretrained.network, splits[:1]
            )

    def test_accepts_pretrain_result(self, scenario):
        # Regression: run_sequential must unwrap a PretrainResult the
        # way run_method does (the README workflow passes one).
        _, _, _, pretrained, splits = scenario
        received = []

        class Recorder:
            def run(self, network, split, **kwargs):
                received.append(network)
                result = _result_without_network()
                result.network = network
                return result

        run_sequential(lambda k: Recorder(), pretrained, splits[:1])
        assert received == [pretrained.network]

    def test_trajectories_still_exposed_without_network(self):
        # The accuracy trajectories are index-only: they must survive a
        # networkless step even though final_network raises.
        result = SequentialResult(steps=(_result_without_network(),))
        assert result.old_accuracy_trajectory == (0.0,)
        assert result.new_accuracy_trajectory == (0.0,)
        assert result.store_root is None
