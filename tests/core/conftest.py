"""Shared fixtures for core-method tests: one tiny pre-trained network.

Pre-training is the expensive step, so it runs once per session at the
``ci`` scale and every test clones from it (methods never mutate the
pre-trained network).
"""

import pytest

from repro.core.pipeline import pretrain
from repro.data.synthetic_shd import SyntheticSHD
from repro.data.tasks import make_class_incremental
from repro.eval.scale import get_scale


@pytest.fixture(scope="session")
def ci_preset():
    return get_scale("ci")


@pytest.fixture(scope="session")
def ci_split(ci_preset):
    generator = SyntheticSHD(ci_preset.shd, seed=ci_preset.experiment.seed)
    return make_class_incremental(
        generator,
        ci_preset.experiment.samples_per_class,
        ci_preset.experiment.test_samples_per_class,
        num_pretrain_classes=ci_preset.experiment.num_pretrain_classes,
    )


@pytest.fixture(scope="session")
def ci_pretrained(ci_preset, ci_split):
    return pretrain(ci_preset.experiment, ci_split)
