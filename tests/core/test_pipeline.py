"""Tests for the Alg. 1 pipeline orchestration."""

import numpy as np
import pytest

from repro.core import SpikingLR, run_method
from repro.core.pipeline import PretrainResult, pretrain


class TestPretrain:
    def test_returns_trained_network(self, ci_pretrained, ci_preset):
        assert isinstance(ci_pretrained, PretrainResult)
        assert ci_pretrained.network.config == ci_preset.experiment.network

    def test_losses_decrease(self, ci_pretrained):
        losses = ci_pretrained.history.losses
        assert losses[-1] < losses[0]

    def test_traces_collected(self, ci_pretrained, ci_preset):
        assert len(ci_pretrained.epoch_traces) == ci_preset.experiment.pretrain.epochs

    def test_deterministic_given_seed(self, ci_preset, ci_split, ci_pretrained):
        again = pretrain(ci_preset.experiment, ci_split)
        assert again.test_accuracy == pytest.approx(ci_pretrained.test_accuracy)
        for a, b in zip(
            again.network.parameters(), ci_pretrained.network.parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data)


class TestRunMethod:
    def test_accepts_pretrain_result(self, ci_preset, ci_pretrained, ci_split):
        result = run_method(SpikingLR(ci_preset.experiment), ci_pretrained, ci_split)
        assert result.method == "spikinglr"

    def test_accepts_bare_network(self, ci_preset, ci_pretrained, ci_split):
        result = run_method(
            SpikingLR(ci_preset.experiment), ci_pretrained.network, ci_split
        )
        assert result.method == "spikinglr"

    def test_repeatable(self, ci_preset, ci_pretrained, ci_split):
        a = run_method(SpikingLR(ci_preset.experiment), ci_pretrained, ci_split)
        b = run_method(SpikingLR(ci_preset.experiment), ci_pretrained, ci_split)
        assert a.final_old_accuracy == pytest.approx(b.final_old_accuracy)
        assert a.final_new_accuracy == pytest.approx(b.final_new_accuracy)
