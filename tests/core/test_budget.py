"""Tests for latent-buffer budget fitting."""

import numpy as np
import pytest

from repro.core.latent_replay import LatentReplayBuffer
from repro.compression import TemporalSubsampleCodec
from repro.errors import ConfigError


def make_buffer(num_samples=12, frames=10, channels=16, num_classes=3):
    rng = np.random.default_rng(0)
    compressed = (rng.random((frames, num_samples, channels)) < 0.2).astype(np.float32)
    labels = np.arange(num_samples) % num_classes
    return LatentReplayBuffer(
        compressed=compressed,
        labels=labels,
        insertion_layer=1,
        generated_timesteps=frames,
        codec=TemporalSubsampleCodec(1),
    )


class TestFitBudget:
    def test_noop_when_within_budget(self):
        buffer = make_buffer()
        fitted = buffer.fit_budget(10**9, np.random.default_rng(0))
        assert fitted is buffer

    def test_shrinks_to_budget(self):
        buffer = make_buffer()
        budget = buffer.storage_bytes() // 2
        fitted = buffer.fit_budget(budget, np.random.default_rng(0))
        assert fitted.storage_bytes() <= budget
        assert fitted.num_samples < buffer.num_samples

    def test_keeps_every_class(self):
        buffer = make_buffer(num_samples=12, num_classes=3)
        budget = buffer.storage_bytes() // 3
        fitted = buffer.fit_budget(budget, np.random.default_rng(0))
        assert sorted(set(fitted.labels.tolist())) == [0, 1, 2]

    def test_balanced_selection(self):
        buffer = make_buffer(num_samples=12, num_classes=3)
        # Keep 6 samples -> expect 2 per class from round-robin.
        bytes_per_sample = buffer.storage_bytes() // 12 + 1
        fitted = buffer.fit_budget(bytes_per_sample * 6, np.random.default_rng(0))
        counts = np.bincount(fitted.labels, minlength=3)
        assert counts.max() - counts.min() <= 1

    def test_impossible_budget_raises(self):
        buffer = make_buffer()
        with pytest.raises(ConfigError):
            buffer.fit_budget(1, np.random.default_rng(0))
        with pytest.raises(ConfigError):
            buffer.fit_budget(0, np.random.default_rng(0))

    def test_fitted_buffer_is_independent_copy(self):
        buffer = make_buffer()
        fitted = buffer.fit_budget(buffer.storage_bytes() // 2, np.random.default_rng(0))
        fitted.compressed[0, 0, 0] = 99.0
        assert not np.any(buffer.compressed == 99.0)
