"""Store-backed NCL runs: disk-resident replay, bitwise-identical training.

The acceptance bar for the replaystore subsystem: running a full NCL
phase with the replay buffer on disk (``ReplaySpec(store_dir=...)``) must
reproduce the in-memory path **exactly** — same losses, same accuracy
curve, same final weights — because the shard codecs are lossless and
the minibatch schedule is unchanged.  Peak resident replay memory is
bounded by the shard size (asserted via the stream's decode cache).
"""

import numpy as np
import pytest

from repro.core import Replay4NCL, ReplaySpec, SpikingLR, run_method
from repro.core.latent_replay import LatentReplayBuffer
from repro.hw.memory import audit_store
from repro.replaystore import ReplayStore, ReplayStream


def _assert_identical(in_memory, store_backed):
    assert len(in_memory.history) == len(store_backed.history)
    for mem, disk in zip(in_memory.history, store_backed.history):
        assert mem.loss == disk.loss
        assert mem.old_task_accuracy == disk.old_task_accuracy
        assert mem.new_task_accuracy == disk.new_task_accuracy
        assert mem.overall_accuracy == disk.overall_accuracy
    assert in_memory.final_overall_accuracy == store_backed.final_overall_accuracy
    for p_mem, p_disk in zip(
        in_memory.network.parameters(), store_backed.network.parameters()
    ):
        np.testing.assert_array_equal(p_mem.data, p_disk.data)


class TestBitwiseParity:
    def test_replay4ncl(self, ci_pretrained, ci_split, ci_preset, tmp_path):
        method = Replay4NCL(ci_preset.experiment)
        in_memory = run_method(method, ci_pretrained, ci_split)
        store_backed = run_method(
            Replay4NCL(ci_preset.experiment),
            ci_pretrained,
            ci_split,
            replay=ReplaySpec(store_dir=tmp_path / "store", shard_samples=4),
        )
        _assert_identical(in_memory, store_backed)
        assert store_backed.replay_store_path == str(tmp_path / "store")
        assert in_memory.replay_store_path is None
        # The storage model is path-independent.
        assert store_backed.latent_storage_bytes == in_memory.latent_storage_bytes
        assert store_backed.latent_stored_frames == in_memory.latent_stored_frames

    def test_spikinglr_decompress_path(
        self, ci_pretrained, ci_split, ci_preset, tmp_path
    ):
        # SpikingLR stores factor-2 subsampled frames and zero-stuffs on
        # replay — the stream must reproduce that cycle exactly too.
        in_memory = run_method(
            SpikingLR(ci_preset.experiment), ci_pretrained, ci_split
        )
        store_backed = run_method(
            SpikingLR(ci_preset.experiment),
            ci_pretrained,
            ci_split,
            replay=ReplaySpec(store_dir=tmp_path / "store"),
        )
        _assert_identical(in_memory, store_backed)

    def test_epoch_costs_preserved(
        self, ci_pretrained, ci_split, ci_preset, tmp_path
    ):
        # The cost model must charge the same decompression work whether
        # the buffer is resident or store-backed.
        mem = run_method(SpikingLR(ci_preset.experiment), ci_pretrained, ci_split)
        disk = run_method(
            SpikingLR(ci_preset.experiment),
            ci_pretrained,
            ci_split,
            replay=ReplaySpec(store_dir=tmp_path / "store"),
        )
        assert [c.decompressed_cells for c in mem.epoch_costs] == [
            c.decompressed_cells for c in disk.epoch_costs
        ]


class TestStoreArtifacts:
    @pytest.fixture(scope="class")
    def store_run(self, ci_pretrained, ci_split, ci_preset, tmp_path_factory):
        root = tmp_path_factory.mktemp("ncl-store") / "store"
        result = run_method(
            Replay4NCL(ci_preset.experiment),
            ci_pretrained,
            ci_split,
            replay=ReplaySpec(store_dir=root, shard_samples=4),
        )
        return result, ReplayStore.open(root)

    def test_store_persisted(self, store_run):
        result, store = store_run
        assert store.num_samples > 0
        assert store.meta.shard_samples == 4
        assert all(s.num_samples <= 4 for s in store.shards)

    def test_memory_model_crosschecks_disk(self, store_run):
        result, store = store_run
        audit = audit_store(store)
        # Per-shard codec choice can only undercut the bitmap model;
        # per-shard bit padding costs at most one byte per shard.
        assert audit.payload_bytes <= (
            result.latent_storage_bytes + audit.num_shards
        )
        assert audit.payload_saving >= 0.0
        assert audit.disk_bytes > audit.payload_bytes
        assert audit.modelled_bytes == result.latent_storage_bytes

    def test_buffer_roundtrips_through_store(self, store_run):
        _, store = store_run
        buffer = LatentReplayBuffer.from_store(store)
        assert buffer.num_samples == store.num_samples
        np.testing.assert_array_equal(buffer.labels, store.labels)
        store_view = ReplayStream(store).materialize()
        np.testing.assert_array_equal(buffer.compressed, store_view)

    def test_resident_memory_bounded_by_shard(self, store_run):
        _, store = store_run
        stream = ReplayStream(store, cache_shards=1)
        stream.materialize()
        # One decoded shard resident at a time, every shard visited.
        assert len(stream._cache) == 1
        assert stream.shard_decodes == store.num_shards
