"""Store-federated sequential runs: the long-task-sequence harness.

Scenario-level acceptance tests for `run_sequential(..., replay=ReplaySpec(...))`:
a 3-step class-incremental stream whose replay memory lives in a
per-step federation of on-disk stores must

- reproduce the dense in-memory trajectory **bitwise** at the same seed,
  with async shard prefetch both on and off;
- keep every step's peak resident replay memory bounded by the decode
  granularity (``shard_samples`` worth of decoded shards), audited
  against the `hw.memory` model;
- never let the federation exceed a global byte budget, no matter how
  many steps the stream runs.
"""

import numpy as np
import pytest

from repro.core import (
    Replay4NCL,
    ReplaySpec,
    make_sequential_splits,
    run_sequential,
)
from repro.core.pipeline import pretrain
from repro.data.synthetic_shd import SyntheticSHD
from repro.eval.scale import get_scale
from repro.hw.memory import audit_federation, latent_memory_bytes
from repro.replaystore import FederatedReplayStore

SHARD_SAMPLES = 4
CACHE_SHARDS = 2  # ReplayStream default in the store-backed NCL path


@pytest.fixture(scope="module")
def scenario():
    preset = get_scale("ci")
    generator = SyntheticSHD(preset.shd, seed=preset.experiment.seed)
    # ci has 5 classes: pre-train on 2, learn classes 2, 3, 4 in three steps.
    exp = preset.experiment.replace(num_pretrain_classes=2)
    from repro.data.tasks import make_class_incremental

    base_split = make_class_incremental(
        generator,
        exp.samples_per_class,
        exp.test_samples_per_class,
        num_pretrain_classes=2,
    )
    pretrained = pretrain(exp, base_split)
    splits = make_sequential_splits(
        generator,
        exp.samples_per_class,
        exp.test_samples_per_class,
        base_classes=2,
        steps=3,
    )
    return exp, pretrained, splits


@pytest.fixture(scope="module")
def dense_result(scenario):
    exp, pretrained, splits = scenario
    return run_sequential(lambda k: Replay4NCL(exp), pretrained.network, splits)


@pytest.fixture(scope="module")
def store_results(scenario, tmp_path_factory):
    """Store-backed runs with prefetch forced on and forced off."""
    exp, pretrained, splits = scenario
    results = {}
    for mode in (True, False):
        root = tmp_path_factory.mktemp("seq-fed") / f"prefetch-{mode}"
        results[mode] = run_sequential(
            lambda k: Replay4NCL(exp),
            pretrained.network,
            splits,
            replay=ReplaySpec(
                store_dir=root, shard_samples=SHARD_SAMPLES, prefetch=mode
            ),
        )
    return results


def assert_trajectory_identical(dense, stored):
    assert len(dense.steps) == len(stored.steps)
    for mem, disk in zip(dense.steps, stored.steps):
        assert len(mem.history) == len(disk.history)
        for m, d in zip(mem.history, disk.history):
            assert m.loss == d.loss
            assert m.old_task_accuracy == d.old_task_accuracy
            assert m.new_task_accuracy == d.new_task_accuracy
            assert m.overall_accuracy == d.overall_accuracy
        for p_mem, p_disk in zip(
            mem.network.parameters(), disk.network.parameters()
        ):
            np.testing.assert_array_equal(p_mem.data, p_disk.data)


class TestBitwiseParity:
    @pytest.mark.parametrize("prefetch", [True, False])
    def test_matches_dense_trajectory(self, dense_result, store_results, prefetch):
        assert_trajectory_identical(dense_result, store_results[prefetch])

    def test_storage_model_is_path_independent(self, dense_result, store_results):
        for mem, disk in zip(dense_result.steps, store_results[True].steps):
            assert mem.latent_storage_bytes == disk.latent_storage_bytes
            assert mem.latent_stored_frames == disk.latent_stored_frames


class TestBoundedReplayMemory:
    def test_peak_replay_bytes_within_shard_bound(self, store_results):
        """Per-step peak replay residency <= cache_shards decoded shards."""
        federation = FederatedReplayStore.open(store_results[True].store_root)
        for k, step in enumerate(store_results[True].steps):
            meta = federation.member(f"step-{k:03d}").meta
            assert meta.shard_samples == SHARD_SAMPLES
            # A decoded shard is float32-dense: the analytic bound is
            # the dense bytes of cache_shards shards (4 bytes/cell —
            # 32x the bit-packed storage model for the same geometry).
            shard_dense_bytes = 32 * latent_memory_bytes(
                meta.stored_frames, SHARD_SAMPLES, meta.num_channels,
                header_bytes=0,
            )
            assert 0 < step.replay_peak_resident_bytes
            assert step.replay_peak_resident_bytes <= (
                CACHE_SHARDS * shard_dense_bytes
            )

    def test_peak_is_a_fraction_of_the_full_buffer(self, store_results):
        # The point of the exercise: resident replay stays far below the
        # dense buffer a long stream would otherwise accumulate.
        federation = FederatedReplayStore.open(store_results[True].store_root)
        last = store_results[True].steps[-1]
        meta = federation.member("step-002").meta
        samples = federation.member("step-002").num_samples
        dense_bytes = 4 * meta.stored_frames * samples * meta.num_channels
        assert last.replay_peak_resident_bytes < dense_bytes

    def test_dense_runs_report_zero(self, dense_result):
        assert all(
            step.replay_peak_resident_bytes == 0 for step in dense_result.steps
        )


class TestFederationArtifacts:
    def test_one_member_per_step(self, store_results):
        result = store_results[True]
        federation = FederatedReplayStore.open(result.store_root)
        assert federation.member_names == ["step-000", "step-001", "step-002"]
        for k, step in enumerate(result.steps):
            member = federation.member(f"step-{k:03d}")
            assert step.replay_store_path == str(member.root)
            assert member.num_samples > 0

    def test_replay_pool_grows_with_seen_classes(self, store_results):
        federation = FederatedReplayStore.open(store_results[True].store_root)
        per_step = [
            set(np.unique(federation.member(name).labels))
            for name in federation.member_names
        ]
        assert per_step[0] < per_step[1] < per_step[2]

    def test_federated_audit_crosschecks(self, store_results):
        federation = FederatedReplayStore.open(store_results[True].store_root)
        audit = audit_federation(federation)
        assert audit.num_members == 3
        assert audit.within_budget  # unbudgeted: vacuously true
        assert audit.payload_bytes <= audit.modelled_bytes
        assert audit.disk_bytes > audit.payload_bytes

    def test_dense_result_has_no_store(self, dense_result):
        assert dense_result.store_root is None
        assert all(s.replay_store_path is None for s in dense_result.steps)


class TestRerun:
    def test_existing_root_refused_without_overwrite(self, scenario, tmp_path):
        exp, pretrained, splits = scenario
        from repro.errors import StoreError

        spec = ReplaySpec(
            store_dir=tmp_path / "fed", shard_samples=SHARD_SAMPLES
        )
        first = run_sequential(
            lambda k: Replay4NCL(exp), pretrained.network, splits[:1], replay=spec
        )
        with pytest.raises(StoreError, match="already exists"):
            run_sequential(
                lambda k: Replay4NCL(exp), pretrained.network, splits[:1], replay=spec
            )
        rerun = run_sequential(
            lambda k: Replay4NCL(exp),
            pretrained.network,
            splits[:1],
            replay=ReplaySpec(
                store_dir=tmp_path / "fed",
                shard_samples=SHARD_SAMPLES,
                overwrite=True,
            ),
        )
        assert_trajectory_identical(first, rerun)
        federation = FederatedReplayStore.open(rerun.store_root)
        assert federation.member_names == ["step-000"]


class TestGlobalBudget:
    def test_budget_holds_across_the_stream(self, scenario, tmp_path):
        exp, pretrained, splits = scenario
        # Tight budget: roughly one step's worth of replay for a
        # three-step stream, so rebalancing must evict across members.
        probe = FederatedReplayStore.open
        result = run_sequential(
            lambda k: Replay4NCL(exp),
            pretrained.network,
            splits,
            replay=ReplaySpec(
                store_dir=tmp_path / "budgeted", shard_samples=SHARD_SAMPLES
            ),
        )
        unbudgeted = probe(result.store_root).num_samples
        budget = 10 * probe(result.store_root).sample_bytes
        budgeted = run_sequential(
            lambda k: Replay4NCL(exp),
            pretrained.network,
            splits,
            replay=ReplaySpec(
                store_dir=tmp_path / "budgeted-tight",
                shard_samples=SHARD_SAMPLES,
                federation_budget_bytes=budget,
            ),
        )
        federation = probe(budgeted.store_root)
        assert federation.model_bytes() <= budget
        assert not federation.over_budget()
        assert federation.num_samples == 10 < unbudgeted
        assert audit_federation(federation).within_budget
        # The budget caps the archive *after* training: trajectories are
        # still the dense ones (training replay is the step's own set).
        assert_trajectory_identical(result, budgeted)
