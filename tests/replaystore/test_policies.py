"""Deterministic unit tests for the admission/eviction policies."""

import numpy as np
import pytest

from repro.errors import StoreError
from repro.replaystore import (
    ClassBalancedPolicy,
    FIFOPolicy,
    ReservoirPolicy,
    get_policy,
)


def _drive(policy, labels, capacity, seed=0):
    """Feed a label stream through a policy; return the kept labels."""
    rng = np.random.default_rng(seed)
    policy.reset()
    kept: list[int] = []
    for label in labels:
        slot = policy.admit(int(label), kept, capacity, rng)
        if slot is None:
            continue
        if slot == len(kept):
            kept.append(int(label))
        else:
            kept[slot] = int(label)
    return kept


class TestFIFO:
    def test_fills_then_evicts_oldest(self):
        kept = _drive(FIFOPolicy(), range(10), capacity=4)
        # Slots wrap: 8 replaced slot 0 (holding 0, the oldest), etc.
        assert kept == [8, 9, 6, 7]

    def test_under_capacity_keeps_everything(self):
        assert _drive(FIFOPolicy(), [3, 1, 2], capacity=5) == [3, 1, 2]

    def test_reset_restarts_pointer(self):
        policy = FIFOPolicy()
        _drive(policy, range(10), capacity=4)
        assert _drive(policy, range(4), capacity=4) == [0, 1, 2, 3]


class TestReservoir:
    def test_uniform_over_stream(self):
        # Every stream position should land in the reservoir with
        # probability capacity/n; check the empirical rate over repeats.
        hits = np.zeros(100)
        for seed in range(300):
            kept = _drive(ReservoirPolicy(), range(100), capacity=10, seed=seed)
            hits[kept] += 1
        rates = hits / 300
        assert abs(rates.mean() - 0.1) < 0.01
        # Early positions must not dominate late ones.
        assert abs(rates[:50].mean() - rates[50:].mean()) < 0.04

    def test_deterministic_given_seed(self):
        a = _drive(ReservoirPolicy(), range(50), capacity=8, seed=7)
        b = _drive(ReservoirPolicy(), range(50), capacity=8, seed=7)
        assert a == b

    def test_under_capacity_admits_all(self):
        assert _drive(ReservoirPolicy(), [5, 6], capacity=4) == [5, 6]


class TestClassBalanced:
    def test_rebalances_skewed_stream(self):
        # 30 samples of class 0 then 6 of class 1: a balanced buffer
        # should end close to 50/50, not 90/10.
        labels = [0] * 30 + [1] * 6
        kept = _drive(ClassBalancedPolicy(), labels, capacity=8, seed=3)
        counts = {c: kept.count(c) for c in set(kept)}
        assert counts[1] >= 3
        assert len(kept) == 8

    def test_minority_class_never_evicted_by_majority(self):
        # Once a rare class is in, further majority arrivals cannot push
        # it out (they only ever displace the largest class).
        labels = [0] * 4 + [1] + [0] * 40
        kept = _drive(ClassBalancedPolicy(), labels, capacity=4, seed=0)
        assert 1 in kept

    def test_within_class_reservoir(self):
        # Single class: behaves as a reservoir, stays at capacity.
        kept = _drive(ClassBalancedPolicy(), [2] * 50, capacity=6, seed=1)
        assert len(kept) == 6
        assert set(kept) == {2}

    def test_deterministic_given_seed(self):
        labels = list(range(4)) * 10
        a = _drive(ClassBalancedPolicy(), labels, capacity=6, seed=9)
        b = _drive(ClassBalancedPolicy(), labels, capacity=6, seed=9)
        assert a == b


class TestSeedSweep:
    """Policy invariants must hold for *every* seed, not the lucky one.

    The deterministic tests above pin one RNG draw each; these sweep a
    handful of seeds so reservoir/class-balanced guarantees are
    properties of the algorithm, not artefacts of a particular stream
    of random numbers.
    """

    SEEDS = [0, 1, 7, 13, 101]

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", ["fifo", "reservoir", "class-balanced"])
    def test_capacity_respected_and_labels_from_stream(self, name, seed):
        labels = np.random.default_rng(seed).integers(0, 6, 80).tolist()
        kept = _drive(get_policy(name), labels, capacity=12, seed=seed)
        assert len(kept) == 12
        stream_counts = {c: labels.count(c) for c in set(labels)}
        for c in set(kept):
            assert kept.count(c) <= stream_counts[c]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_under_capacity_keeps_everything(self, seed):
        labels = np.random.default_rng(seed).integers(0, 3, 9).tolist()
        for name in ("fifo", "reservoir", "class-balanced"):
            assert _drive(get_policy(name), labels, capacity=20, seed=seed) == labels

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reservoir_deterministic_and_reset_clean(self, seed):
        policy = ReservoirPolicy()
        first = _drive(policy, range(60), capacity=9, seed=seed)
        again = _drive(policy, range(60), capacity=9, seed=seed)  # reset() path
        fresh = _drive(ReservoirPolicy(), range(60), capacity=9, seed=seed)
        assert first == again == fresh

    @pytest.mark.parametrize("seed", SEEDS)
    def test_class_balanced_spread_on_round_robin(self, seed):
        # Equal interleaved arrivals: per-class counts may never drift
        # further than one apart, whatever the eviction draws do.
        labels = list(range(4)) * 15
        kept = _drive(ClassBalancedPolicy(), labels, capacity=10, seed=seed)
        counts = [kept.count(c) for c in range(4)]
        assert sum(counts) == 10
        assert max(counts) - min(counts) <= 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_class_balanced_minority_floor(self, seed):
        # A class with >= capacity//num_classes arrivals keeps at least
        # that many slots under skewed pressure (no starvation).
        labels = [0] * 40 + [1] * 4 + [0] * 40
        kept = _drive(ClassBalancedPolicy(), labels, capacity=8, seed=seed)
        assert kept.count(1) == 4
        assert len(kept) == 8

    @pytest.mark.parametrize("seed", SEEDS)
    def test_class_balanced_never_goes_extinct(self, seed):
        rng = np.random.default_rng(seed)
        labels = rng.permutation([0] * 50 + [1] * 8 + [2] * 8).tolist()
        kept = _drive(ClassBalancedPolicy(), labels, capacity=9, seed=seed)
        assert set(kept) == {0, 1, 2}


class TestRegistry:
    @pytest.mark.parametrize("name", ["fifo", "reservoir", "class-balanced"])
    def test_get_policy(self, name):
        assert get_policy(name).name == name

    def test_unknown_name(self):
        with pytest.raises(StoreError, match="unknown eviction policy"):
            get_policy("lru")
