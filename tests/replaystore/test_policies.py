"""Deterministic unit tests for the admission/eviction policies."""

import numpy as np
import pytest

from repro.errors import StoreError
from repro.replaystore import (
    ClassBalancedPolicy,
    FIFOPolicy,
    ReservoirPolicy,
    get_policy,
)


def _drive(policy, labels, capacity, seed=0):
    """Feed a label stream through a policy; return the kept labels."""
    rng = np.random.default_rng(seed)
    policy.reset()
    kept: list[int] = []
    for label in labels:
        slot = policy.admit(int(label), kept, capacity, rng)
        if slot is None:
            continue
        if slot == len(kept):
            kept.append(int(label))
        else:
            kept[slot] = int(label)
    return kept


class TestFIFO:
    def test_fills_then_evicts_oldest(self):
        kept = _drive(FIFOPolicy(), range(10), capacity=4)
        # Slots wrap: 8 replaced slot 0 (holding 0, the oldest), etc.
        assert kept == [8, 9, 6, 7]

    def test_under_capacity_keeps_everything(self):
        assert _drive(FIFOPolicy(), [3, 1, 2], capacity=5) == [3, 1, 2]

    def test_reset_restarts_pointer(self):
        policy = FIFOPolicy()
        _drive(policy, range(10), capacity=4)
        assert _drive(policy, range(4), capacity=4) == [0, 1, 2, 3]


class TestReservoir:
    def test_uniform_over_stream(self):
        # Every stream position should land in the reservoir with
        # probability capacity/n; check the empirical rate over repeats.
        hits = np.zeros(100)
        for seed in range(300):
            kept = _drive(ReservoirPolicy(), range(100), capacity=10, seed=seed)
            hits[kept] += 1
        rates = hits / 300
        assert abs(rates.mean() - 0.1) < 0.01
        # Early positions must not dominate late ones.
        assert abs(rates[:50].mean() - rates[50:].mean()) < 0.04

    def test_deterministic_given_seed(self):
        a = _drive(ReservoirPolicy(), range(50), capacity=8, seed=7)
        b = _drive(ReservoirPolicy(), range(50), capacity=8, seed=7)
        assert a == b

    def test_under_capacity_admits_all(self):
        assert _drive(ReservoirPolicy(), [5, 6], capacity=4) == [5, 6]


class TestClassBalanced:
    def test_rebalances_skewed_stream(self):
        # 30 samples of class 0 then 6 of class 1: a balanced buffer
        # should end close to 50/50, not 90/10.
        labels = [0] * 30 + [1] * 6
        kept = _drive(ClassBalancedPolicy(), labels, capacity=8, seed=3)
        counts = {c: kept.count(c) for c in set(kept)}
        assert counts[1] >= 3
        assert len(kept) == 8

    def test_minority_class_never_evicted_by_majority(self):
        # Once a rare class is in, further majority arrivals cannot push
        # it out (they only ever displace the largest class).
        labels = [0] * 4 + [1] + [0] * 40
        kept = _drive(ClassBalancedPolicy(), labels, capacity=4, seed=0)
        assert 1 in kept

    def test_within_class_reservoir(self):
        # Single class: behaves as a reservoir, stays at capacity.
        kept = _drive(ClassBalancedPolicy(), [2] * 50, capacity=6, seed=1)
        assert len(kept) == 6
        assert set(kept) == {2}

    def test_deterministic_given_seed(self):
        labels = list(range(4)) * 10
        a = _drive(ClassBalancedPolicy(), labels, capacity=6, seed=9)
        b = _drive(ClassBalancedPolicy(), labels, capacity=6, seed=9)
        assert a == b


class TestRegistry:
    @pytest.mark.parametrize("name", ["fifo", "reservoir", "class-balanced"])
    def test_get_policy(self, name):
        assert get_policy(name).name == name

    def test_unknown_name(self):
        with pytest.raises(StoreError, match="unknown eviction policy"):
            get_policy("lru")
