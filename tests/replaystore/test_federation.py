"""Tests for FederatedReplayStore: budgets, balance, composed views."""

import numpy as np
import pytest

from repro.errors import StoreError
from repro.hw.memory import audit_federation
from repro.replaystore import (
    FederatedReplayStore,
    FederatedReplayStream,
    ReplayStore,
    ReplayStream,
)

FRAMES, CHANNELS = 8, 12


def make_member(root, labels, *, seed=0, shard_samples=4, frames=FRAMES):
    """Write one member store holding ``len(labels)`` random samples."""
    labels = np.asarray(labels, dtype=np.int64)
    rng = np.random.default_rng(seed)
    raster = (rng.random((frames, labels.size, CHANNELS)) < 0.2).astype(np.float32)
    store = ReplayStore.create(
        root,
        stored_frames=frames,
        num_channels=CHANNELS,
        generated_timesteps=frames,
        shard_samples=shard_samples,
    )
    store.append(raster, labels)
    return store


@pytest.fixture
def federation(tmp_path):
    fed = FederatedReplayStore.create(tmp_path / "fed", seed=3)
    make_member(tmp_path / "fed" / "task-0", [0] * 6 + [1] * 6, seed=1)
    make_member(tmp_path / "fed" / "task-1", [2] * 6, seed=2)
    fed.adopt("task-0")
    fed.adopt("task-1")
    return fed


class TestLifecycle:
    def test_open_roundtrips_index(self, federation):
        twin = FederatedReplayStore.open(federation.root)
        assert twin.member_names == ["task-0", "task-1"]
        assert twin.budget_bytes is None
        assert twin.num_samples == 18
        np.testing.assert_array_equal(twin.labels, federation.labels)

    def test_refuses_to_clobber(self, federation):
        with pytest.raises(StoreError, match="already exists"):
            FederatedReplayStore.create(federation.root)

    def test_open_missing_is_clean_error(self, tmp_path):
        with pytest.raises(StoreError, match="no federation"):
            FederatedReplayStore.open(tmp_path / "nope")

    def test_adopt_validates(self, federation, tmp_path):
        with pytest.raises(StoreError, match="already a member"):
            federation.adopt("task-0")
        with pytest.raises(StoreError, match="no replay store"):
            federation.adopt("task-9")
        make_member(
            federation.root / "task-bad", [0, 1], seed=9, frames=FRAMES + 1
        )
        with pytest.raises(StoreError, match="geometry"):
            federation.adopt("task-bad")

    def test_adopt_rejects_different_insertion_point(self, federation):
        # Same frame/channel counts but a different insertion layer is a
        # different feature space — federating them would silently mix
        # semantically incompatible latents.
        other = ReplayStore.create(
            federation.root / "task-lins",
            stored_frames=FRAMES,
            num_channels=CHANNELS,
            generated_timesteps=FRAMES,
            insertion_layer=2,
            shard_samples=4,
        )
        raster = np.zeros((FRAMES, 2, CHANNELS), dtype=np.float32)
        raster[0, :, 0] = 1.0
        other.append(raster, np.asarray([0, 1]))
        with pytest.raises(StoreError, match="Lins"):
            federation.adopt("task-lins")

    def test_unknown_member_access(self, federation):
        with pytest.raises(StoreError, match="not a member"):
            federation.member("task-9")

    def test_labels_follow_arrival_order(self, federation):
        np.testing.assert_array_equal(
            federation.labels, np.asarray([0] * 6 + [1] * 6 + [2] * 6)
        )

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="budget_bytes"):
            FederatedReplayStore.create(tmp_path / "f", budget_bytes=0)

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="unknown eviction policy"):
            FederatedReplayStore.create(tmp_path / "f", policy="lru")

    def test_member_names_must_be_plain(self, federation):
        for bad in ("", ".", "..", "a/b", "a\\b"):
            with pytest.raises(StoreError, match="plain directory name"):
                federation.adopt(bad)

    def test_overwrite_removes_stale_members(self, federation):
        # Regression: replacing a federation must take the old run's
        # member stores with it — otherwise a later auto-discovering
        # adopt would mix stale latents into the fresh archive.
        root = federation.root
        fresh = FederatedReplayStore.create(root, overwrite=True)
        assert fresh.member_names == []
        assert not (root / "task-0").exists()
        assert not (root / "task-1").exists()

    def test_configure_updates_and_persists(self, federation):
        federation.configure(budget_bytes=1234, policy="fifo", seed=9)
        twin = FederatedReplayStore.open(federation.root)
        assert twin.budget_bytes == 1234
        assert twin.policy == "fifo"
        assert twin.seed == 9
        with pytest.raises(StoreError, match="budget_bytes"):
            federation.configure(budget_bytes=0)
        with pytest.raises(StoreError, match="unknown eviction policy"):
            federation.configure(policy="lru")


class TestGlobalBudget:
    """The core invariant: modelled bytes never exceed the budget."""

    @pytest.mark.parametrize("policy", ["fifo", "reservoir", "class-balanced"])
    def test_budget_holds_across_arrivals(self, tmp_path, policy):
        fed = FederatedReplayStore.create(tmp_path / "fed", seed=5, policy=policy)
        rng = np.random.default_rng(0)
        budget = None
        for step in range(5):
            make_member(
                fed.root / f"task-{step}",
                rng.integers(0, step + 2, 8),
                seed=step,
            )
            fed.adopt(f"task-{step}")
            if budget is None:  # budget admits 10 samples total
                budget = 10 * fed.sample_bytes
                fed.configure(budget_bytes=budget)
            fed.rebalance()
            assert fed.model_bytes() <= budget
            assert not fed.over_budget()
        assert fed.num_samples == 10  # budget binds after enough arrivals

    def test_rebalance_is_noop_without_budget(self, federation):
        assert federation.rebalance() == 0
        assert federation.num_samples == 18

    def test_rebalance_deterministic_given_seed(self, tmp_path):
        kept = []
        for run in range(2):
            fed = FederatedReplayStore.create(tmp_path / f"fed-{run}", seed=11)
            make_member(fed.root / "a", [0] * 20, seed=1)
            make_member(fed.root / "b", [1] * 8, seed=2)
            fed.adopt("a")
            fed.adopt("b")
            fed.configure(budget_bytes=12 * fed.sample_bytes)
            fed.rebalance()
            kept.append(fed.labels.tolist())
        assert kept[0] == kept[1]

    def test_rebalance_counter_persists(self, tmp_path):
        fed = FederatedReplayStore.create(tmp_path / "fed", seed=0)
        make_member(fed.root / "a", [0] * 20, seed=1)
        fed.adopt("a")
        fed.configure(budget_bytes=4 * fed.sample_bytes)
        fed.rebalance()
        assert FederatedReplayStore.open(fed.root).rebalances == 1

    def test_eviction_flows_across_members(self, tmp_path):
        # Class-balanced pressure must shrink the over-represented OLD
        # member when a new class arrives, not just trim the newcomer.
        fed = FederatedReplayStore.create(tmp_path / "fed", seed=7)
        make_member(fed.root / "old", [0] * 16, seed=1)
        fed.adopt("old")
        fed.configure(budget_bytes=16 * fed.sample_bytes)
        make_member(fed.root / "new", [1] * 16, seed=2)
        fed.adopt("new")
        fed.rebalance()
        samples = fed.stats().member_samples
        assert samples["old"] < 16
        assert samples["new"] > 0
        assert fed.num_samples == 16


class TestClassBalance:
    def test_balanced_across_skewed_members(self, tmp_path):
        fed = FederatedReplayStore.create(
            tmp_path / "fed", seed=13, policy="class-balanced"
        )
        make_member(fed.root / "t0", [0] * 30, seed=1)
        fed.adopt("t0")
        make_member(fed.root / "t1", [1] * 30, seed=2)
        fed.adopt("t1")
        make_member(fed.root / "t2", [2] * 6, seed=3)
        fed.adopt("t2")
        fed.configure(budget_bytes=12 * fed.sample_bytes)
        fed.rebalance()
        counts = fed.class_counts()
        assert set(counts) == {0, 1, 2}  # no class extinct
        assert max(counts.values()) - min(counts.values()) <= 2
        assert fed.num_samples == 12

    def test_minority_class_survives_majority_pressure(self, tmp_path):
        fed = FederatedReplayStore.create(
            tmp_path / "fed", seed=17, policy="class-balanced"
        )
        make_member(fed.root / "rare", [5] * 2, seed=1)
        fed.adopt("rare")
        fed.configure(budget_bytes=8 * fed.sample_bytes)
        for step in range(3):
            make_member(fed.root / f"flood-{step}", [0] * 20, seed=2 + step)
            fed.adopt(f"flood-{step}")
            fed.rebalance()
            assert 5 in fed.class_counts()


class TestComposedView:
    def test_stream_matches_dense_concat(self, federation):
        view = federation.stream()
        dense = np.concatenate(
            [
                ReplayStream(store).materialize()
                for _, store in federation.members()
            ],
            axis=1,
        )
        np.testing.assert_array_equal(view.materialize(), dense)
        indices = np.random.default_rng(4).integers(0, view.num_samples, 25)
        np.testing.assert_array_equal(view.gather(indices), dense[:, indices, :])
        np.testing.assert_array_equal(view.labels, federation.labels)

    def test_iteration_spans_members_in_order(self, federation):
        shards = list(federation.stream())
        labels = np.concatenate([lab for _, lab in shards])
        np.testing.assert_array_equal(labels, federation.labels)

    def test_gather_validates_indices(self, federation):
        view = federation.stream()
        with pytest.raises(StoreError, match="out of range"):
            view.gather(np.asarray([view.num_samples]))
        with pytest.raises(StoreError, match="1-D"):
            view.gather(np.zeros((2, 2), dtype=np.int64))

    def test_geometry_mismatch_rejected(self, tmp_path):
        a = make_member(tmp_path / "a", [0, 1], seed=1)
        b = make_member(tmp_path / "b", [0, 1], seed=2, frames=FRAMES * 2)
        with pytest.raises(StoreError, match="geometry"):
            FederatedReplayStream([ReplayStream(a), ReplayStream(b)])

    def test_empty_stream_rejected(self, tmp_path):
        fed = FederatedReplayStore.create(tmp_path / "fed")
        with pytest.raises(StoreError, match="no samples"):
            fed.stream()
        with pytest.raises(StoreError, match="at least one"):
            FederatedReplayStream([])


class TestAudit:
    def test_audit_aggregates_members(self, federation):
        audit = audit_federation(federation)
        assert audit.num_members == 2
        assert audit.num_samples == 18
        assert set(audit.member_audits) == {"task-0", "task-1"}
        assert audit.modelled_bytes == sum(
            a.modelled_bytes for a in audit.member_audits.values()
        )
        assert audit.payload_bytes <= audit.modelled_bytes + audit.num_members * 3
        assert audit.disk_bytes > audit.payload_bytes
        assert audit.budget_utilization is None
        assert audit.within_budget

    def test_audit_tracks_budget(self, tmp_path):
        fed = FederatedReplayStore.create(tmp_path / "fed", seed=1)
        make_member(fed.root / "a", [0] * 10, seed=1)
        fed.adopt("a")
        fed.configure(budget_bytes=20 * fed.sample_bytes)
        audit = audit_federation(fed)
        assert audit.within_budget
        assert audit.budget_utilization == pytest.approx(0.5)

    def test_empty_federation_rejected(self, tmp_path):
        from repro.errors import ConfigError

        fed = FederatedReplayStore.create(tmp_path / "fed")
        with pytest.raises(ConfigError, match="no members"):
            audit_federation(fed)
