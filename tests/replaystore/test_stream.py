"""Tests for ReplayStream, ConcatReplaySource, and lazy DataLoader use."""

import numpy as np
import pytest

from repro.data.loaders import DataLoader
from repro.errors import DataError, StoreError
from repro.replaystore import ConcatReplaySource, ReplayStore, ReplayStream


@pytest.fixture
def raster():
    rng = np.random.default_rng(42)
    return (rng.random((12, 30, 9)) < 0.15).astype(np.float32)


@pytest.fixture
def store(tmp_path, raster):
    store = ReplayStore.create(
        tmp_path / "store",
        stored_frames=12,
        num_channels=9,
        generated_timesteps=12,
        shard_samples=7,
    )
    store.append(raster, np.arange(30) % 5)
    return store


@pytest.fixture
def subsampled_store(tmp_path, raster):
    # Factor-2 store: 12 stored frames expand to 24 on replay.
    store = ReplayStore.create(
        tmp_path / "sub",
        stored_frames=12,
        num_channels=9,
        generated_timesteps=24,
        codec_factor=2,
        shard_samples=7,
    )
    store.append(raster, np.arange(30) % 5)
    return store


class TestReplayStream:
    def test_gather_matches_dense_indexing(self, store, raster):
        stream = ReplayStream(store)
        idx = np.array([29, 0, 13, 13, 6])  # unsorted, duplicated
        np.testing.assert_array_equal(stream.gather(idx), raster[:, idx, :])

    def test_materialize(self, store, raster):
        np.testing.assert_array_equal(ReplayStream(store).materialize(), raster)

    def test_shape_and_labels(self, store):
        stream = ReplayStream(store)
        assert stream.shape == (12, 30, 9)
        np.testing.assert_array_equal(stream.labels, np.arange(30) % 5)

    def test_iter_yields_shards(self, store, raster):
        chunks = list(ReplayStream(store))
        assert [r.shape[1] for r, _ in chunks] == [7, 7, 7, 7, 2]
        np.testing.assert_array_equal(
            np.concatenate([r for r, _ in chunks], axis=1), raster
        )

    def test_cache_bounds_decodes(self, store):
        stream = ReplayStream(store, cache_shards=2)
        # Repeatedly hit the same two shards: decoded once each.
        for _ in range(5):
            stream.gather(np.arange(14))
        assert stream.shard_decodes == 2
        # Touch a third shard: one more decode, cache evicts LRU.
        stream.gather(np.array([15]))
        assert stream.shard_decodes == 3
        assert len(stream._cache) == 2

    def test_decompress_zero_stuffs(self, subsampled_store, raster):
        from repro.compression import TemporalSubsampleCodec

        stream = ReplayStream(subsampled_store, decompress=True)
        assert stream.shape == (24, 30, 9)
        expected = TemporalSubsampleCodec(2).decompress(raster, 24)
        np.testing.assert_array_equal(stream.materialize(), expected)

    def test_factor_requires_decompress(self, subsampled_store):
        with pytest.raises(StoreError, match="without decompression"):
            ReplayStream(subsampled_store, decompress=False)

    def test_gather_validation(self, store):
        stream = ReplayStream(store)
        with pytest.raises(StoreError, match="out of range"):
            stream.gather(np.array([30]))
        with pytest.raises(StoreError, match="1-D"):
            stream.gather(np.zeros((2, 2), dtype=np.int64))

    def test_cache_shards_validated(self, store):
        with pytest.raises(StoreError):
            ReplayStream(store, cache_shards=0)

    def test_stale_after_compact(self, store, raster):
        stream = ReplayStream(store)
        stream.gather(np.arange(5))
        store.compact(shard_samples=30)
        with pytest.raises(StoreError, match="mutated"):
            stream.gather(np.arange(5))
        # A fresh stream over the compacted store serves correctly.
        np.testing.assert_array_equal(ReplayStream(store).materialize(), raster)

    def test_stale_after_append(self, store, raster):
        stream = ReplayStream(store)
        store.append(raster[:, :2, :], np.zeros(2))
        with pytest.raises(StoreError, match="mutated"):
            stream.gather(np.array([0]))
        with pytest.raises(StoreError, match="mutated"):
            stream.labels
        with pytest.raises(StoreError, match="mutated"):
            list(stream)


class TestConcatReplaySource:
    def test_parity_with_concatenate(self, store, raster):
        rng = np.random.default_rng(3)
        dense = (rng.random((12, 11, 9)) < 0.2).astype(np.float32)
        source = ConcatReplaySource(dense, ReplayStream(store))
        reference = np.concatenate([dense, raster], axis=1)
        assert source.shape == reference.shape
        order = rng.permutation(41)
        np.testing.assert_array_equal(
            source.gather(order), reference[:, order, :]
        )

    def test_rejects_out_of_range_indices(self, store):
        # Negative indices must NOT silently wrap into the dense half —
        # that would break the np.concatenate fancy-indexing identity.
        source = ConcatReplaySource(np.zeros((12, 10, 9)), ReplayStream(store))
        with pytest.raises(StoreError, match="out of range"):
            source.gather(np.array([-1]))
        with pytest.raises(StoreError, match="out of range"):
            source.gather(np.array([40]))

    def test_geometry_validated(self, store):
        with pytest.raises(StoreError, match="frames"):
            ConcatReplaySource(np.zeros((5, 3, 9)), ReplayStream(store))
        with pytest.raises(StoreError, match="channels"):
            ConcatReplaySource(np.zeros((12, 3, 4)), ReplayStream(store))
        with pytest.raises(StoreError):
            ConcatReplaySource(np.zeros((12, 3)), ReplayStream(store))


class TestLazyDataLoader:
    def test_batches_identical_to_dense(self, store, raster):
        rng = np.random.default_rng(5)
        dense = (rng.random((12, 11, 9)) < 0.2).astype(np.float32)
        labels = np.arange(41)
        reference = np.concatenate([dense, raster], axis=1)

        lazy = DataLoader(
            ConcatReplaySource(dense, ReplayStream(store)),
            labels,
            batch_size=8,
            shuffle=True,
            rng=np.random.default_rng(99),
        )
        dense_loader = DataLoader(
            reference, labels, batch_size=8, shuffle=True,
            rng=np.random.default_rng(99),
        )
        lazy_batches = list(lazy)
        dense_batches = list(dense_loader)
        assert len(lazy_batches) == len(dense_batches) == len(lazy)
        for (li, ll), (di, dl) in zip(lazy_batches, dense_batches):
            np.testing.assert_array_equal(li, di)
            np.testing.assert_array_equal(ll, dl)

    def test_lazy_source_validation(self, store):
        source = ConcatReplaySource(np.zeros((12, 1, 9)), ReplayStream(store))
        with pytest.raises(DataError, match="labels"):
            DataLoader(source, np.zeros(7), batch_size=4)
        with pytest.raises(DataError, match="batch_size"):
            DataLoader(source, np.zeros(31), batch_size=0)
