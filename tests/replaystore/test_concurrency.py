"""Concurrency suite: locks, pinned readers, lazy members, crash windows.

The two-handle contract under test everywhere here: a reader that
overlaps a mutation either finishes against its pinned snapshot or gets
a clean ``StoreError("store was mutated ...")`` at its next access —
**never** a vanished-file ``OSError`` and never silently wrong bytes.
"""

import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.errors import StoreError
from repro.ioutil import FileLock
from repro.obs import Recorder, use_recorder
from repro.replaystore import (
    FederatedReplayStore,
    ReplayStore,
    ReplayStream,
)
from repro.replaystore.store import LOCK_NAME

FRAMES, CHANNELS = 8, 12

SRC = str(Path(__file__).resolve().parents[2] / "src")


def make_store(root, labels, *, seed=0, shard_samples=4):
    labels = np.asarray(labels, dtype=np.int64)
    rng = np.random.default_rng(seed)
    raster = (rng.random((FRAMES, labels.size, CHANNELS)) < 0.2).astype(
        np.float32
    )
    store = ReplayStore.create(
        root,
        stored_frames=FRAMES,
        num_channels=CHANNELS,
        generated_timesteps=FRAMES,
        shard_samples=shard_samples,
    )
    store.append(raster, labels)
    return store


def make_federation(root, members=3, samples=8, seed=0):
    fed = FederatedReplayStore.create(root, seed=seed)
    for k in range(members):
        make_store(
            root / f"task-{k}",
            np.arange(samples) % 4,
            seed=seed + k,
        )
        fed.adopt(f"task-{k}")
    return fed


class TestTwoHandleCompaction:
    """The PR's acceptance test: compact through one handle, read the other."""

    def test_reader_survives_filter_then_fails_cleanly(self, tmp_path):
        store = make_store(tmp_path / "s", np.arange(12) % 3)
        reader = ReplayStream(store)
        expected = reader.gather(np.arange(12))

        writer = ReplayStore.open(tmp_path / "s")
        writer.filter(np.arange(0, 12, 2))

        # The reader's shard files are tombstoned, not deleted: every
        # file its snapshot references is still on disk.
        snapshot_files = {info.file for info in store.shards}
        on_disk = {p.name for p in (tmp_path / "s").glob("shard-*.bin")}
        assert snapshot_files <= on_disk

        # The next access through the stale handle is a taxonomy error,
        # never an OSError from a vanished file.
        with pytest.raises(StoreError, match="store was mutated"):
            reader.gather(np.arange(4))
        reader.close()
        # The gather it completed before the mutation was untouched.
        assert expected.shape == (FRAMES, 12, CHANNELS)

    def test_compaction_waits_for_pinned_reader(self, tmp_path):
        store = make_store(tmp_path / "s", np.arange(12) % 3)
        reader = ReplayStream(store)
        pinned = {info.file for info in store.shards}

        writer = ReplayStore.open(tmp_path / "s")
        writer.filter(np.arange(6))
        writer.compact()
        # Two mutations later the pinned generation's files still exist.
        on_disk = {p.name for p in (tmp_path / "s").glob("shard-*.bin")}
        assert pinned <= on_disk

        reader.close()
        assert writer.sweep_tombstones() > 0
        on_disk = {p.name for p in (tmp_path / "s").glob("shard-*.bin")}
        assert not (pinned & on_disk), "unpinned tombstones must be swept"

    def test_reader_from_dead_process_does_not_pin_forever(self, tmp_path):
        store = make_store(tmp_path / "s", np.arange(8) % 2)
        code = (
            "import sys; sys.path.insert(0, sys.argv[2]); "
            "import os; "
            "from repro.replaystore import ReplayStore, ReplayStream; "
            "stream = ReplayStream(ReplayStore.open(sys.argv[1])); "
            "os._exit(0)"
        )
        subprocess.run(
            [sys.executable, "-c", code, str(tmp_path / "s"), SRC],
            check=True,
        )
        writer = ReplayStore.open(tmp_path / "s")
        before = {p.name for p in (tmp_path / "s").glob("shard-*.bin")}
        writer.filter(np.arange(4))
        # The dead reader's pin was reaped, so its files are sweepable
        # (the filter's own commit already swept them).
        on_disk = {p.name for p in (tmp_path / "s").glob("shard-*.bin")}
        assert not (before & on_disk)

    def test_stale_handle_reads_shard_as_store_error(self, tmp_path):
        store = make_store(tmp_path / "s", np.arange(8) % 2)
        stale = ReplayStore.open(tmp_path / "s")
        store.filter(np.arange(4))
        store.compact()
        store.sweep_tombstones()
        # The stale handle's shard list references swept files; the read
        # wraps the OSError into the taxonomy.
        try:
            stale.read_shard(0)
        except StoreError:
            pass
        except OSError as error:  # pragma: no cover - the bug under test
            raise AssertionError(f"leaked OSError: {error!r}")


class TestLockedMutations:
    def test_threaded_appends_through_separate_handles(self, tmp_path):
        make_store(tmp_path / "s", np.arange(4) % 2)
        threads, errors = [], []

        def append(worker):
            try:
                rng = np.random.default_rng(worker)
                handle = ReplayStore.open(tmp_path / "s")
                raster = (rng.random((FRAMES, 5, CHANNELS)) < 0.2).astype(
                    np.float32
                )
                handle.append(raster, np.full(5, worker))
            except Exception as error:  # pragma: no cover - must not happen
                errors.append(error)

        for worker in range(6):
            threads.append(threading.Thread(target=append, args=(worker,)))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        merged = ReplayStore.open(tmp_path / "s")
        # Every append survived the read-modify-write race: the lock
        # serialized them, so no commit was lost.
        assert merged.num_samples == 4 + 6 * 5
        counts = {
            int(label): int(count)
            for label, count in zip(*np.unique(merged.labels, return_counts=True))
        }
        for worker in range(2, 6):
            assert counts[worker] == 5

    def test_mutation_blocks_until_lock_released(self, tmp_path):
        store = make_store(tmp_path / "s", np.arange(4) % 2)
        gate = FileLock(tmp_path / "s" / LOCK_NAME)
        gate.acquire()
        done = threading.Event()

        def append():
            rng = np.random.default_rng(0)
            raster = (rng.random((FRAMES, 2, CHANNELS)) < 0.2).astype(
                np.float32
            )
            ReplayStore.open(tmp_path / "s").append(raster, np.zeros(2))
            done.set()

        thread = threading.Thread(target=append)
        thread.start()
        assert not done.wait(0.3), "append must block while the lock is held"
        gate.release()
        thread.join(timeout=10)
        assert done.is_set()
        assert ReplayStore.open(tmp_path / "s").num_samples == 6
        # The gate handle observed none of the append's changes, but the
        # store's own handle reloads under the lock and stays coherent.
        assert store.num_samples == 4

    def test_threaded_federation_adopts_and_readers(self, tmp_path):
        fed = make_federation(tmp_path / "fed", members=2, samples=8)
        for k in range(4):
            make_store(
                tmp_path / "fed" / f"late-{k}",
                np.arange(8) % 4,
                seed=50 + k,
            )
        errors = []

        def adopt(k):
            try:
                FederatedReplayStore.open(tmp_path / "fed").adopt(f"late-{k}")
            except Exception as error:  # pragma: no cover - must not happen
                errors.append(error)

        def read():
            try:
                for _ in range(6):
                    view = FederatedReplayStore.open(tmp_path / "fed").stream()
                    try:
                        total = view.num_samples
                        data = view.gather(np.arange(min(total, 8)))
                        assert data.shape[0] == FRAMES
                    except StoreError:
                        pass  # mutated mid-read: clean, expected
                    finally:
                        view.close()
            except Exception as error:  # pragma: no cover - must not happen
                errors.append(error)

        threads = [
            threading.Thread(target=adopt, args=(k,)) for k in range(4)
        ] + [threading.Thread(target=read) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        merged = FederatedReplayStore.open(tmp_path / "fed")
        assert sorted(merged.member_names) == sorted(
            ["task-0", "task-1"] + [f"late-{k}" for k in range(4)]
        )
        assert merged.num_samples == 6 * 8
        # The persisted ledger agrees with the stores on disk.
        for name in merged.member_names:
            assert merged.member_samples[name] == merged.member(name).num_samples


class TestAdoptCrashWindow:
    def _crash_create_overwrite(self, root):
        """Re-create the federation, dying inside the removal window."""
        code = (
            "import sys; sys.path.insert(0, sys.argv[2]); "
            "import os; "
            "import repro.replaystore.federation as fedmod; "
            "fedmod.shutil.rmtree = lambda *a, **k: os._exit(0); "
            "fedmod.FederatedReplayStore.create(sys.argv[1], overwrite=True)"
        )
        completed = subprocess.run(
            [sys.executable, "-c", code, str(root), SRC],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stderr

    def test_adopt_refuses_orphan_member_dir(self, tmp_path):
        root = tmp_path / "fed"
        make_federation(root, members=1, samples=8)
        self._crash_create_overwrite(root)

        # The interrupted overwrite committed a ledger naming the old
        # member dir before touching it: the dir survived the crash and
        # the fresh federation knows it is an orphan.
        fed = FederatedReplayStore.open(root)
        assert fed.member_names == []
        assert fed.pending_removal == ["task-0"]
        assert (root / "task-0").is_dir()
        with pytest.raises(StoreError, match="predates this federation"):
            fed.adopt("task-0")

    def test_allow_orphan_claims_and_clears_ledger(self, tmp_path):
        root = tmp_path / "fed"
        make_federation(root, members=1, samples=8)
        self._crash_create_overwrite(root)

        fed = FederatedReplayStore.open(root)
        store = fed.adopt("task-0", allow_orphan=True)
        assert store.num_samples == 8
        reopened = FederatedReplayStore.open(root)
        assert reopened.pending_removal == []
        assert reopened.member_names == ["task-0"]

    def test_rerunning_create_clears_the_orphans(self, tmp_path):
        root = tmp_path / "fed"
        make_federation(root, members=1, samples=8)
        self._crash_create_overwrite(root)

        FederatedReplayStore.create(root, overwrite=True)
        assert not (root / "task-0").exists()
        assert FederatedReplayStore.open(root).pending_removal == []


class TestLazyMembers:
    def test_stream_opens_no_members_up_front(self, tmp_path):
        fed = make_federation(tmp_path / "fed", members=4, samples=8)
        view = FederatedReplayStore.open(tmp_path / "fed").stream()
        assert view.member_opens == 0
        assert view.open_streams == 0
        assert view.num_samples == fed.num_samples  # layout from the ledger
        view.close()

    def test_open_handles_capped_by_lru(self, tmp_path):
        fed = make_federation(tmp_path / "fed", members=6, samples=8)
        view = fed.stream(max_open_streams=2)
        data = view.gather(np.arange(view.num_samples))
        assert data.shape == (FRAMES, 48, CHANNELS)
        assert view.open_streams <= 2
        assert view.member_opens >= 6  # every member was touched
        view.close()

    def test_eviction_reopens_transparently_and_bitwise(self, tmp_path):
        fed = make_federation(tmp_path / "fed", members=5, samples=8)
        dense = fed.stream().materialize()
        view = fed.stream(max_open_streams=1)
        rng = np.random.default_rng(0)
        for _ in range(4):  # revisit members to force evict/reopen cycles
            indices = np.sort(rng.integers(0, dense.shape[1], 16))
            np.testing.assert_array_equal(
                view.gather(indices), dense[:, indices, :]
            )
        assert view.open_streams == 1
        assert view.member_opens > 5
        view.close()

    def test_member_count_drift_is_loud(self, tmp_path):
        fed = make_federation(tmp_path / "fed", members=2, samples=8)
        view = fed.stream()
        # Mutating a member behind the federation's back desyncs the
        # persisted ledger; opening that member must fail, not misroute.
        ReplayStore.open(tmp_path / "fed" / "task-1").filter(np.arange(4))
        with pytest.raises(StoreError, match="store was mutated"):
            view.gather(np.arange(view.num_samples))
        view.close()


class TestPrefetchUnderRebalance:
    def test_parity_then_clean_error(self, tmp_path):
        fed = make_federation(tmp_path / "fed", members=3, samples=8)
        dense = fed.stream().materialize()

        recorder = Recorder()
        with use_recorder(recorder):
            view = fed.stream(prefetch=True)
            indices = np.arange(0, dense.shape[1], 3)
            view.prefetch(indices)
            # Bogus advice (out of the composed range) is dropped and
            # counted, never crashes the worker.
            view.prefetch(np.asarray([-3, dense.shape[1] + 7]))
            np.testing.assert_array_equal(
                view.gather(indices), dense[:, indices, :]
            )

            writer = FederatedReplayStore.open(tmp_path / "fed")
            writer.configure(
                budget_bytes=(writer.num_samples // 2) * writer.sample_bytes
            )
            assert writer.rebalance() > 0

            with pytest.raises(StoreError, match="store was mutated"):
                view.gather(np.arange(dense.shape[1]))
            view.close()

        bogus = [
            metric
            for metric in recorder.metrics()
            if metric.name == "prefetch.bogus_advice"
        ]
        assert bogus and bogus[0].total == 2

    def test_fresh_view_after_rebalance_is_bitwise(self, tmp_path):
        fed = make_federation(tmp_path / "fed", members=3, samples=8)
        writer = FederatedReplayStore.open(tmp_path / "fed")
        writer.configure(
            budget_bytes=(writer.num_samples // 2) * writer.sample_bytes
        )
        writer.rebalance()

        fresh = FederatedReplayStore.open(tmp_path / "fed")
        dense = fresh.stream().materialize()
        view = fresh.stream(prefetch=True)
        view.prefetch(np.arange(dense.shape[1]))
        np.testing.assert_array_equal(
            view.gather(np.arange(dense.shape[1])), dense
        )
        view.close()
