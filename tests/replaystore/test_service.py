"""Tests for ReplayService: batching, parity, refresh, lifecycle."""

import asyncio

import numpy as np
import pytest

from repro.errors import StoreError
from repro.replaystore import FederatedReplayStore, ReplayService, ReplayStore

FRAMES, CHANNELS = 8, 12


def make_federation(root, members=3, samples=8, seed=0):
    fed = FederatedReplayStore.create(root, seed=seed)
    rng = np.random.default_rng(seed)
    for k in range(members):
        store = ReplayStore.create(
            root / f"task-{k}",
            stored_frames=FRAMES,
            num_channels=CHANNELS,
            generated_timesteps=FRAMES,
            shard_samples=4,
        )
        store.append(
            (rng.random((FRAMES, samples, CHANNELS)) < 0.2).astype(np.float32),
            rng.integers(0, 4, samples),
        )
        fed.adopt(f"task-{k}")
    return fed


def run(coro):
    return asyncio.run(coro)


class TestLifecycle:
    def test_requests_require_start(self, tmp_path):
        make_federation(tmp_path / "fed")
        service = ReplayService(tmp_path / "fed")

        async def premature():
            await service.gather(np.arange(2))

        with pytest.raises(StoreError, match="not started"):
            run(premature())

    def test_double_start_is_an_error(self, tmp_path):
        make_federation(tmp_path / "fed")

        async def scenario():
            async with ReplayService(tmp_path / "fed") as service:
                with pytest.raises(StoreError, match="already started"):
                    await service.start()

        run(scenario())

    def test_close_is_clean_and_repeatable(self, tmp_path):
        make_federation(tmp_path / "fed")

        async def scenario():
            service = ReplayService(tmp_path / "fed")
            await service.start()
            out = await service.gather(np.arange(4))
            await service.close()
            await service.close()
            return out

        assert run(scenario()).shape == (FRAMES, 4, CHANNELS)

    def test_rejects_bad_batch_cap(self, tmp_path):
        with pytest.raises(StoreError, match="max_batch_requests"):
            ReplayService(tmp_path / "fed", max_batch_requests=0)

    def test_num_samples_requires_view(self, tmp_path):
        with pytest.raises(StoreError, match="not started"):
            ReplayService(tmp_path / "fed").num_samples


class TestParityAndBatching:
    def test_gather_matches_dense_bitwise(self, tmp_path):
        fed = make_federation(tmp_path / "fed")
        dense = fed.stream().materialize()

        async def scenario():
            async with ReplayService(tmp_path / "fed") as service:
                indices = np.asarray([0, 3, 9, 9, 17])
                return await service.gather(indices), indices

        out, indices = run(scenario())
        np.testing.assert_array_equal(out, dense[:, indices, :])

    def test_gather_many_coalesces_overlap(self, tmp_path):
        fed = make_federation(tmp_path / "fed")
        dense = fed.stream().materialize()
        requests = [
            ("a", np.arange(0, 10)),
            ("b", np.arange(5, 15)),
            ("c", np.arange(0, 15)),
        ]

        async def scenario():
            async with ReplayService(
                tmp_path / "fed", max_batch_requests=8
            ) as service:
                outputs = await service.gather_many(requests)
                return outputs, service.stats()

        outputs, stats = run(scenario())
        for (_tenant, indices), out in zip(requests, outputs):
            np.testing.assert_array_equal(out, dense[:, indices, :])
        # One batch, one union decode of 15 samples serving 35.
        assert stats.batches == 1
        assert stats.requests == 3
        assert stats.samples_served == 35
        assert stats.samples_decoded == 15
        assert stats.coalescing_ratio == pytest.approx(35 / 15)
        assert stats.mean_batch_requests == pytest.approx(3.0)
        assert stats.tenant_requests == {"a": 1, "b": 1, "c": 1}

    def test_batch_cap_splits_batches(self, tmp_path):
        make_federation(tmp_path / "fed")
        requests = [(f"t{i}", np.arange(4)) for i in range(5)]

        async def scenario():
            async with ReplayService(
                tmp_path / "fed", max_batch_requests=2
            ) as service:
                await service.gather_many(requests)
                return service.stats()

        stats = run(scenario())
        assert stats.requests == 5
        assert stats.batches >= 3  # ceil(5 / 2)

    def test_rejects_non_1d_indices(self, tmp_path):
        make_federation(tmp_path / "fed")

        async def scenario():
            async with ReplayService(tmp_path / "fed") as service:
                await service.gather(np.zeros((2, 2), dtype=np.int64))

        with pytest.raises(StoreError, match="1-D"):
            run(scenario())


class TestBoundsAndRefresh:
    def test_out_of_range_fails_only_that_request(self, tmp_path):
        fed = make_federation(tmp_path / "fed")
        dense = fed.stream().materialize()
        total = dense.shape[1]

        async def scenario():
            async with ReplayService(
                tmp_path / "fed", max_batch_requests=4
            ) as service:
                good = asyncio.ensure_future(
                    service.gather(np.arange(4), tenant="good")
                )
                bad = asyncio.ensure_future(
                    service.gather(np.asarray([total + 5]), tenant="bad")
                )
                done = await asyncio.gather(good, bad, return_exceptions=True)
                return done, service.stats()

        (good_out, bad_out), stats = run(scenario())
        np.testing.assert_array_equal(good_out, dense[:, :4, :])
        assert isinstance(bad_out, StoreError)
        assert "out of range" in str(bad_out)
        # The poisoned request never reached the union gather.
        assert stats.tenant_requests == {"good": 1}

    def test_negative_indices_rejected(self, tmp_path):
        make_federation(tmp_path / "fed")

        async def scenario():
            async with ReplayService(tmp_path / "fed") as service:
                await service.gather(np.asarray([-1, 2]))

        with pytest.raises(StoreError, match="out of range"):
            run(scenario())

    def test_mutation_triggers_transparent_refresh(self, tmp_path):
        fed = make_federation(tmp_path / "fed", members=2, samples=8)

        async def scenario():
            async with ReplayService(tmp_path / "fed") as service:
                first = await service.gather(np.arange(4))
                # A writer mutates the federation between batches.
                writer = FederatedReplayStore.open(tmp_path / "fed")
                writer.configure(
                    budget_bytes=(writer.num_samples // 2)
                    * writer.sample_bytes
                )
                writer.rebalance()
                second = await service.gather(np.arange(4))
                return first, second, service.stats()

        first, second, stats = run(scenario())
        assert first.shape == second.shape == (FRAMES, 4, CHANNELS)
        assert stats.refreshes == 1
        # Parity against the post-rebalance snapshot.
        fresh = FederatedReplayStore.open(tmp_path / "fed")
        dense = fresh.stream().materialize()
        np.testing.assert_array_equal(second, dense[:, :4, :])

    def test_indices_beyond_refreshed_store_error_cleanly(self, tmp_path):
        fed = make_federation(tmp_path / "fed", members=2, samples=8)
        total = fed.num_samples

        async def scenario():
            async with ReplayService(tmp_path / "fed") as service:
                writer = FederatedReplayStore.open(tmp_path / "fed")
                writer.configure(budget_bytes=4 * writer.sample_bytes)
                writer.rebalance()
                # Valid against the stale view, out of range after the
                # refresh: the tenant gets a bounds error, not bad data.
                await service.gather(np.asarray([total - 1]))

        with pytest.raises(StoreError, match="out of range"):
            run(scenario())
