"""Tests for PrefetchingStream: parity, shutdown, error propagation."""

import time

import numpy as np
import pytest

from repro.data.loaders import DataLoader
from repro.errors import StoreError
from repro.replaystore import (
    ConcatReplaySource,
    PrefetchingStream,
    ReplayStore,
    ReplayStream,
    prefetch_enabled,
)


@pytest.fixture
def store(tmp_path):
    rng = np.random.default_rng(0)
    raster = (rng.random((10, 30, 14)) < 0.2).astype(np.float32)
    labels = rng.integers(0, 5, 30)
    store = ReplayStore.create(
        tmp_path / "store",
        stored_frames=10,
        num_channels=14,
        generated_timesteps=10,
        shard_samples=6,
    )
    store.append(raster, labels)
    return store


def wait_until(predicate, timeout=5.0):
    """Poll ``predicate`` until true (threaded tests need slack, not sleep)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestKillSwitch:
    def test_env_disables(self, monkeypatch):
        for value in ("0", "false", "OFF"):
            monkeypatch.setenv("REPRO_PREFETCH", value)
            assert not prefetch_enabled()
        monkeypatch.setenv("REPRO_PREFETCH", "1")
        assert prefetch_enabled()
        monkeypatch.delenv("REPRO_PREFETCH")
        assert prefetch_enabled()

    def test_disabled_instance_spawns_no_thread(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_PREFETCH", "0")
        with PrefetchingStream(ReplayStream(store)) as view:
            assert not view.enabled
            assert view._worker is None
            assert view.prefetch(np.arange(5)) == 0
            assert view.gather(np.arange(5)).shape == (10, 5, 14)


class TestParity:
    def test_bitwise_parity_on_vs_off(self, store):
        on = PrefetchingStream(ReplayStream(store), enabled=True)
        off = PrefetchingStream(ReplayStream(store), enabled=False)
        rng = np.random.default_rng(7)
        with on, off:
            for _ in range(12):
                batch = rng.integers(0, store.num_samples, 8)
                on.prefetch(batch)
                np.testing.assert_array_equal(on.gather(batch), off.gather(batch))
            np.testing.assert_array_equal(on.labels, off.labels)
            np.testing.assert_array_equal(on.materialize(), off.materialize())

    def test_iteration_matches_plain_stream(self, store):
        plain = list(ReplayStream(store))
        with PrefetchingStream(ReplayStream(store), enabled=True) as view:
            for (raster, labels), (p_raster, p_labels) in zip(view, plain):
                np.testing.assert_array_equal(raster, p_raster)
                np.testing.assert_array_equal(labels, p_labels)

    def test_passthrough_protocol(self, store):
        stream = ReplayStream(store)
        with PrefetchingStream(stream, enabled=True) as view:
            assert view.shape == stream.shape
            assert view.num_samples == stream.num_samples
            assert view.timesteps == stream.timesteps
            assert view.num_channels == stream.num_channels
            view.gather(np.arange(7))
            assert view.peak_cache_bytes == stream.peak_cache_bytes > 0


class TestWarmup:
    def test_prefetch_warms_the_cache(self, store):
        with PrefetchingStream(ReplayStream(store), enabled=True) as view:
            queued = view.prefetch(np.asarray([0]))
            assert queued == 1
            assert wait_until(lambda: view.prefetched_shards == 1)
            decodes_before = view.stream.shard_decodes
            view.gather(np.asarray([0, 1, 2]))  # all shard 0: already warm
            assert view.stream.shard_decodes == decodes_before

    def test_cached_shards_not_requeued(self, store):
        with PrefetchingStream(ReplayStream(store), enabled=True) as view:
            view.gather(np.asarray([0]))  # shard 0 now cached
            assert view.prefetch(np.asarray([0])) == 0

    def test_queue_bound_drops_excess(self, store):
        # 5 shards, queue bound 1: at most 1 request queued per call.
        with PrefetchingStream(
            ReplayStream(store, cache_shards=1), queue_shards=1, enabled=True
        ) as view:
            queued = view.prefetch(np.arange(store.num_samples))
            assert queued <= 1

    def test_bad_queue_bound_rejected(self, store):
        with pytest.raises(StoreError, match="queue_shards"):
            PrefetchingStream(ReplayStream(store), queue_shards=0)


class TestShutdown:
    def test_close_is_idempotent_and_keeps_serving(self, store):
        view = PrefetchingStream(ReplayStream(store), enabled=True)
        view.close()
        view.close()
        assert view.gather(np.arange(4)).shape == (10, 4, 14)
        assert view.prefetch(np.arange(4)) == 0  # advisory no-op after close

    def test_context_manager_joins_worker(self, store):
        with PrefetchingStream(ReplayStream(store), enabled=True) as view:
            view.prefetch(np.arange(store.num_samples))
        assert not view._worker.is_alive()

    def test_worker_exception_propagates(self, store):
        view = PrefetchingStream(ReplayStream(store), enabled=True)
        # Sabotage the backing file of an uncached shard, then ask the
        # worker to decode it: the failure must surface on the caller's
        # side, not vanish into the background thread.
        (store.root / store.shards[4].file).unlink()
        view.prefetch(np.asarray([store.num_samples - 1]))  # inside shard 4
        assert wait_until(lambda: view._error is not None)
        with pytest.raises(StoreError, match="prefetch worker failed"):
            view.gather(np.asarray([0]))
        with pytest.raises(StoreError, match="prefetch worker failed"):
            view.prefetch(np.asarray([0]))
        view.close()  # shutdown after a worker death must not hang


class TestLoaderIntegration:
    def test_loader_prefetches_and_matches_dense(self, store):
        dense_new = (
            np.random.default_rng(3).random((10, 9, 14)) < 0.3
        ).astype(np.float32)
        new_labels = np.arange(9)
        reference = np.concatenate(
            [dense_new, ReplayStream(store).materialize()], axis=1
        )
        all_labels = np.concatenate([new_labels, store.labels])

        def batches(view):
            loader = DataLoader(
                view,
                all_labels,
                batch_size=8,
                shuffle=True,
                rng=np.random.default_rng(11),
            )
            return list(loader)

        with PrefetchingStream(ReplayStream(store), enabled=True) as replay:
            lazy = batches(ConcatReplaySource(dense_new, replay))
        dense = batches(reference)
        for (lx, ly), (dx, dy) in zip(lazy, dense):
            np.testing.assert_array_equal(lx, dx)
            np.testing.assert_array_equal(ly, dy)

    def test_concat_source_forwards_prefetch(self, store):
        dense_new = np.zeros((10, 4, 14), dtype=np.float32)
        with PrefetchingStream(ReplayStream(store), enabled=True) as replay:
            source = ConcatReplaySource(dense_new, replay)
            # Dense-only indices: nothing to warm.
            assert source.prefetch(np.arange(4)) == 0
            # Replay indices route through to the worker queue.
            assert source.prefetch(np.asarray([4])) == 1
            assert wait_until(lambda: replay.prefetched_shards == 1)

    def test_plain_stream_has_no_prefetch_hook(self, store):
        source = ConcatReplaySource(
            np.zeros((10, 2, 14), dtype=np.float32), ReplayStream(store)
        )
        assert source.prefetch(np.asarray([2, 5])) == 0
