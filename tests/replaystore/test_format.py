"""Tests for the binary shard format (encode/decode/codec choice)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.replaystore import (
    CODEC_AER,
    CODEC_BITPACK,
    choose_codec,
    codec_payload_bytes,
    decode_shard,
    encode_shard,
    peek_header,
)
from repro.replaystore.format import SHARD_MAGIC, payload_offset


def _raster(density, shape=(20, 5, 8), seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random(shape) < density).astype(np.float32)


class TestRoundtrip:
    @pytest.mark.parametrize("density", [0.0, 0.01, 0.3, 1.0])
    def test_exact(self, density):
        raster = _raster(density)
        labels = np.arange(5, dtype=np.int64)
        decoded, out_labels = decode_shard(encode_shard(raster, labels))
        np.testing.assert_array_equal(decoded, raster)
        np.testing.assert_array_equal(out_labels, labels)
        assert decoded.dtype == np.float32

    def test_single_frame_shard(self):
        raster = _raster(0.5, shape=(1, 3, 4))
        decoded, _ = decode_shard(encode_shard(raster, np.zeros(3)))
        np.testing.assert_array_equal(decoded, raster)

    def test_single_sample_shard(self):
        raster = _raster(0.5, shape=(10, 1, 4))
        decoded, labels = decode_shard(encode_shard(raster, np.array([7])))
        np.testing.assert_array_equal(decoded, raster)
        assert labels.tolist() == [7]

    @given(
        density=st.floats(min_value=0.0, max_value=1.0),
        frames=st.integers(min_value=1, max_value=30),
        samples=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, density, frames, samples):
        rng = np.random.default_rng(int(density * 1000) + frames * 10 + samples)
        raster = (rng.random((frames, samples, 6)) < density).astype(np.float32)
        labels = rng.integers(0, 20, samples)
        blob = encode_shard(raster, labels)
        header = peek_header(blob)
        assert header.payload_bytes == codec_payload_bytes(raster)[header.codec]
        assert len(blob) == payload_offset(samples) + header.payload_bytes
        decoded, out_labels = decode_shard(blob)
        np.testing.assert_array_equal(decoded, raster)
        np.testing.assert_array_equal(out_labels, labels)


class TestCodecChoice:
    def test_sparse_picks_aer(self):
        raster = np.zeros((50, 4, 50), dtype=np.float32)
        raster[0, 0, 0] = 1.0
        assert choose_codec(raster) == CODEC_AER

    def test_dense_picks_bitpack(self):
        assert choose_codec(np.ones((50, 4, 50), dtype=np.float32)) == CODEC_BITPACK

    def test_crossover_density(self):
        # AER costs 6 B/event, bitpack 1 bit/cell: crossover at 1/48.
        cells = 48 * 100
        raster = np.zeros((48, 1, 100), dtype=np.float32)
        flat = raster.reshape(-1)
        flat[: cells // 49] = 1.0  # below crossover -> AER
        assert choose_codec(raster) == CODEC_AER
        flat[: cells // 40] = 1.0  # above crossover -> bitpack
        assert choose_codec(raster) == CODEC_BITPACK

    def test_payload_accounting_matches_choice(self):
        raster = _raster(0.02)
        sizes = codec_payload_bytes(raster)
        blob = encode_shard(raster, np.zeros(raster.shape[1]))
        assert peek_header(blob).payload_bytes == min(sizes.values())


class TestValidation:
    def test_rejects_wrong_ndim(self):
        with pytest.raises(StoreError):
            encode_shard(np.zeros((4, 4)), np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(StoreError):
            encode_shard(np.zeros((4, 0, 4)), np.zeros(0))

    def test_rejects_label_mismatch(self):
        with pytest.raises(StoreError):
            encode_shard(_raster(0.1), np.zeros(3))

    def test_rejects_bad_magic(self):
        blob = encode_shard(_raster(0.1), np.zeros(5))
        with pytest.raises(StoreError, match="magic"):
            decode_shard(b"XXXX" + blob[4:])
        assert blob[:4] == SHARD_MAGIC

    def test_rejects_bad_version(self):
        blob = bytearray(encode_shard(_raster(0.1), np.zeros(5)))
        blob[4] = 99
        with pytest.raises(StoreError, match="version"):
            decode_shard(bytes(blob))

    def test_rejects_truncation(self):
        blob = encode_shard(_raster(0.3), np.zeros(5))
        with pytest.raises(StoreError, match="truncated"):
            decode_shard(blob[:-1])

    def test_rejects_short_header(self):
        with pytest.raises(StoreError):
            peek_header(b"RS")
