"""Tests for the byte-budgeted streaming store builder."""

import numpy as np
import pytest

from repro.errors import StoreError
from repro.replaystore import (
    ClassBalancedPolicy,
    FIFOPolicy,
    ReservoirPolicy,
    ReplayStream,
    StreamingStoreBuilder,
)
from repro.replaystore.builder import SAMPLE_HEADER_BYTES


def _chunk(rng, n, frames=16, channels=10, num_classes=4):
    raster = (rng.random((frames, n, channels)) < 0.2).astype(np.float32)
    return raster, rng.integers(0, num_classes, n)


def _builder(budget, policy, seed=0, **kwargs):
    defaults = dict(
        stored_frames=16, num_channels=10, generated_timesteps=16,
        rng=np.random.default_rng(seed),
    )
    defaults.update(kwargs)
    return StreamingStoreBuilder(budget, policy, **defaults)


class TestBudget:
    def test_capacity_from_budget(self):
        builder = _builder(1000, FIFOPolicy())
        # ceil(16*10/8) = 20 payload + 8 header = 28 B/sample.
        assert builder.sample_bytes == 20 + SAMPLE_HEADER_BYTES
        assert builder.capacity == 1000 // 28

    def test_budget_never_exceeded(self):
        builder = _builder(500, ReservoirPolicy())
        rng = np.random.default_rng(1)
        for _ in range(20):
            builder.offer(*_chunk(rng, 13))
        assert builder.kept_bytes <= 500
        assert len(builder.kept_labels) == builder.capacity

    def test_rejects_unusable_budget(self):
        with pytest.raises(StoreError, match="holds no sample"):
            _builder(10, FIFOPolicy())
        with pytest.raises(StoreError, match="positive"):
            _builder(0, FIFOPolicy())

    def test_counters(self):
        builder = _builder(500, FIFOPolicy())
        rng = np.random.default_rng(2)
        builder.offer(*_chunk(rng, 40))
        assert builder.seen == 40
        assert builder.rejected == 0  # FIFO admits everything
        assert builder.evicted == 40 - builder.capacity


class TestValidation:
    def test_offer_geometry(self):
        builder = _builder(1000, FIFOPolicy())
        with pytest.raises(StoreError, match="frames"):
            builder.offer(np.zeros((8, 2, 10), dtype=np.float32), np.zeros(2))
        with pytest.raises(StoreError, match="channels"):
            builder.offer(np.zeros((16, 2, 7), dtype=np.float32), np.zeros(2))
        with pytest.raises(StoreError, match="labels"):
            builder.offer(np.zeros((16, 2, 10), dtype=np.float32), np.zeros(5))

    def test_finalize_empty(self, tmp_path):
        with pytest.raises(StoreError, match="no samples"):
            _builder(1000, FIFOPolicy()).finalize(tmp_path / "s")


class TestFinalize:
    def test_samples_roundtrip_to_store(self, tmp_path):
        builder = _builder(10_000, FIFOPolicy())
        rng = np.random.default_rng(3)
        raster, labels = _chunk(rng, 30)
        builder.offer(raster, labels)
        store = builder.finalize(tmp_path / "s", shard_samples=8)
        assert store.num_samples == 30
        np.testing.assert_array_equal(store.labels, labels)
        np.testing.assert_array_equal(ReplayStream(store).materialize(), raster)

    def test_eviction_order_reflected(self, tmp_path):
        builder = _builder(200, FIFOPolicy())  # capacity 7
        rng = np.random.default_rng(4)
        raster, _ = _chunk(rng, 12)
        builder.offer(raster, np.arange(12))
        store = builder.finalize(tmp_path / "s")
        # FIFO wrapped: slots hold the 7 newest arrivals.
        assert sorted(store.labels.tolist()) == list(range(5, 12))

    def test_class_balanced_end_to_end(self, tmp_path):
        builder = _builder(400, ClassBalancedPolicy(), seed=5)  # capacity 14
        rng = np.random.default_rng(5)
        frames, channels = 16, 10
        skewed = (rng.random((frames, 60, channels)) < 0.2).astype(np.float32)
        labels = np.array([0] * 50 + [1] * 10)
        for start in range(0, 60, 15):
            builder.offer(
                skewed[:, start : start + 15, :], labels[start : start + 15]
            )
        store = builder.finalize(tmp_path / "s")
        counts = store.stats().class_counts
        assert counts[1] >= 5  # minority class held despite 5:1 skew
        assert sum(counts.values()) == builder.capacity
