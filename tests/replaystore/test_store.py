"""Tests for ReplayStore create/open/append/read/stats/compact."""

import json

import numpy as np
import pytest

from repro.errors import StoreError
from repro.replaystore import ReplayStore
from repro.replaystore.store import INDEX_NAME, LOCK_NAME


@pytest.fixture
def raster():
    rng = np.random.default_rng(0)
    return (rng.random((16, 23, 12)) < 0.2).astype(np.float32)


@pytest.fixture
def labels():
    return np.random.default_rng(1).integers(0, 4, 23)


@pytest.fixture
def store(tmp_path, raster, labels):
    store = ReplayStore.create(
        tmp_path / "store",
        stored_frames=16,
        num_channels=12,
        generated_timesteps=16,
        shard_samples=8,
    )
    store.append(raster, labels)
    return store


class TestLifecycle:
    def test_append_chunks_into_shards(self, store):
        assert store.num_shards == 3  # 8 + 8 + 7
        assert store.num_samples == 23
        assert [s.num_samples for s in store.shards] == [8, 8, 7]

    def test_refuses_to_clobber(self, store):
        with pytest.raises(StoreError, match="already exists"):
            ReplayStore.create(
                store.root, stored_frames=16, num_channels=12, generated_timesteps=16
            )

    def test_overwrite_clears_old_shards(self, store, raster, labels):
        fresh = ReplayStore.create(
            store.root,
            stored_frames=16,
            num_channels=12,
            generated_timesteps=16,
            overwrite=True,
        )
        assert fresh.num_samples == 0
        assert not list(fresh.root.glob("shard-*.bin"))

    def test_open_roundtrips_index(self, store, raster, labels):
        reopened = ReplayStore.open(store.root)
        assert reopened.num_samples == 23
        assert reopened.meta == store.meta
        np.testing.assert_array_equal(reopened.labels, labels)
        decoded, shard_labels = reopened.read_shard(2)
        np.testing.assert_array_equal(decoded, raster[:, 16:, :])
        np.testing.assert_array_equal(shard_labels, labels[16:])

    def test_open_missing_is_clean_error(self, tmp_path):
        with pytest.raises(StoreError, match="no replay store"):
            ReplayStore.open(tmp_path / "nope")

    def test_open_corrupt_index(self, store):
        (store.root / INDEX_NAME).write_text("{not json")
        with pytest.raises(StoreError, match="corrupt"):
            ReplayStore.open(store.root)

    def test_open_bad_version(self, store):
        payload = json.loads((store.root / INDEX_NAME).read_text())
        payload["version"] = 99
        (store.root / INDEX_NAME).write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="version"):
            ReplayStore.open(store.root)

    def test_open_malformed_index_keys(self, store):
        payload = json.loads((store.root / INDEX_NAME).read_text())
        del payload["meta"]["stored_frames"]
        payload["meta"]["surprise"] = 1
        (store.root / INDEX_NAME).write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="malformed"):
            ReplayStore.open(store.root)


class TestValidation:
    def test_append_geometry_checked(self, store):
        with pytest.raises(StoreError, match="frames"):
            store.append(np.zeros((8, 2, 12), dtype=np.float32), np.zeros(2))
        with pytest.raises(StoreError, match="channels"):
            store.append(np.zeros((16, 2, 5), dtype=np.float32), np.zeros(2))
        with pytest.raises(StoreError, match="labels"):
            store.append(np.zeros((16, 2, 12), dtype=np.float32), np.zeros(3))

    def test_read_shard_range(self, store):
        with pytest.raises(StoreError, match="out of range"):
            store.read_shard(5)

    def test_read_missing_file(self, store):
        (store.root / store.shards[0].file).unlink()
        with pytest.raises(StoreError, match="missing"):
            store.read_shard(0)

    def test_index_disagreement_detected(self, store):
        store.shards[0].labels[0] += 1
        with pytest.raises(StoreError, match="disagrees"):
            store.read_shard(0)


class TestAccounting:
    def test_payload_matches_shard_files(self, store):
        # Index accounting vs the real files: payload + header + labels.
        for shard in store.shards:
            size = (store.root / shard.file).stat().st_size
            assert size == shard.payload_offset + shard.payload_bytes

    def test_disk_bytes_counts_everything(self, store):
        shard_bytes = sum(
            (store.root / s.file).stat().st_size for s in store.shards
        )
        index_bytes = (store.root / INDEX_NAME).stat().st_size
        assert store.disk_bytes() == shard_bytes + index_bytes

    def test_stats(self, store, labels):
        stats = store.stats()
        assert stats.num_samples == 23
        assert stats.num_shards == 3
        assert sum(stats.codec_shards.values()) == 3
        values, counts = np.unique(labels, return_counts=True)
        assert stats.class_counts == dict(
            zip(values.tolist(), counts.tolist())
        )
        assert stats.bytes_per_sample > 0


class TestCompact:
    def test_retargets_occupancy(self, store, raster, labels):
        assert store.compact(shard_samples=10) == 3  # 10 + 10 + 3
        assert [s.num_samples for s in store.shards] == [10, 10, 3]
        assert store.meta.shard_samples == 10
        np.testing.assert_array_equal(store.labels, labels)

    def test_content_preserved(self, store, raster, tmp_path):
        store.compact(shard_samples=5)
        decoded = np.concatenate(
            [store.read_shard(i)[0] for i in range(store.num_shards)], axis=1
        )
        np.testing.assert_array_equal(decoded, raster)

    def test_persists_across_reopen(self, store, raster):
        store.compact(shard_samples=23)
        reopened = ReplayStore.open(store.root)
        assert reopened.num_shards == 1
        np.testing.assert_array_equal(reopened.read_shard(0)[0], raster)

    def test_no_stale_files(self, store):
        store.compact(shard_samples=23)
        files = sorted(p.name for p in store.root.glob("*") if p.is_file())
        # New generation's files replace the old ones; no tmp leftovers.
        # (The lock file is permanent store infrastructure, not residue.)
        assert files == [INDEX_NAME, LOCK_NAME, "shard-g001-00000.bin"]
        assert store.generation == 1

    def test_generations_never_collide(self, store, raster, labels):
        # compact -> append -> compact again: every rewrite lands under
        # fresh names, so an interrupted swap can never clobber files
        # the live index still references.
        store.compact(shard_samples=10)
        store.append(raster[:, :3, :], labels[:3])
        assert store.compact(shard_samples=13) == 2
        reopened = ReplayStore.open(store.root)
        assert reopened.generation == 2
        assert reopened.num_samples == 26
        np.testing.assert_array_equal(
            reopened.labels, np.concatenate([labels, labels[:3]])
        )

    def test_rejects_bad_target(self, store):
        with pytest.raises(StoreError):
            store.compact(shard_samples=0)


class TestFilter:
    def test_keeps_exactly_the_requested_samples(self, store, raster, labels):
        keep = np.asarray([0, 3, 7, 8, 15, 22])
        assert store.filter(keep) == 23 - 6
        assert store.num_samples == 6
        np.testing.assert_array_equal(store.labels, labels[keep])
        decoded = np.concatenate(
            [store.read_shard(i)[0] for i in range(store.num_shards)], axis=1
        )
        np.testing.assert_array_equal(decoded, raster[:, keep, :])

    def test_keep_all_is_a_noop(self, store):
        generation = store.generation
        assert store.filter(np.arange(23)) == 0
        assert store.generation == generation  # no rewrite happened

    def test_filter_to_empty(self, store):
        assert store.filter(np.asarray([], dtype=np.int64)) == 23
        assert store.num_samples == 0
        assert not list(store.root.glob("shard-*.bin"))
        assert ReplayStore.open(store.root).num_samples == 0

    def test_persists_and_repacks_shards(self, store, labels):
        keep = np.arange(0, 23, 2)  # 12 survivors at shard_samples=8
        store.filter(keep)
        reopened = ReplayStore.open(store.root)
        assert [s.num_samples for s in reopened.shards] == [8, 4]
        np.testing.assert_array_equal(reopened.labels, labels[keep])
        assert reopened.generation == 1

    def test_validates_indices(self, store):
        with pytest.raises(StoreError, match="out of range"):
            store.filter(np.asarray([23]))
        with pytest.raises(StoreError, match="strictly increasing"):
            store.filter(np.asarray([3, 3]))
        with pytest.raises(StoreError, match="strictly increasing"):
            store.filter(np.asarray([5, 2]))
        with pytest.raises(StoreError, match="1-D"):
            store.filter(np.zeros((2, 2), dtype=np.int64))
