"""Tests for the latency, energy, and memory models."""

import pytest

from repro.core.strategies import EpochCost
from repro.errors import ConfigError
from repro.hw import (
    EnergyModel,
    LatencyModel,
    LatentMemoryModel,
    OpCounts,
    edge_gpu_like,
    embedded_neuromorphic,
    latent_memory_bytes,
    loihi_like,
)
from repro.hw.profiles import HardwareProfile
from repro.snn.state import LayerTraceEntry, SpikeTrace


def make_trace(timesteps, spikes_per_step=10.0, batch=2):
    trace = SpikeTrace()
    trace.add(
        LayerTraceEntry(
            name="hidden0", n_in=16, n_out=8, recurrent=True,
            input_spike_count=spikes_per_step * timesteps,
            output_spike_count=spikes_per_step * timesteps / 2,
            timesteps=timesteps, batch=batch,
        )
    )
    return trace


def make_cost(timesteps, decompressed=0):
    return EpochCost(
        train_traces=[make_trace(timesteps)],
        frozen_traces=[make_trace(timesteps)],
        decompressed_cells=decompressed,
        timesteps=timesteps,
    )


class TestProfiles:
    @pytest.mark.parametrize("factory", [embedded_neuromorphic, loihi_like, edge_gpu_like])
    def test_presets_valid(self, factory):
        profile = factory()
        assert profile.name

    def test_modes(self):
        assert embedded_neuromorphic().mode == "event"
        assert edge_gpu_like().mode == "dense"

    def test_validation(self):
        with pytest.raises(ConfigError):
            HardwareProfile(
                name="bad", mode="quantum", energy_per_sop=1, energy_per_mac=1,
                energy_per_neuron_update=1, energy_per_byte=1, sop_throughput=1,
                mac_throughput=1, update_throughput=1, codec_cell_throughput=1,
                energy_per_codec_cell=1, barrier_step_time=1, static_power=0,
            )
        with pytest.raises(ConfigError):
            HardwareProfile(
                name="bad", mode="event", energy_per_sop=0, energy_per_mac=1,
                energy_per_neuron_update=1, energy_per_byte=1, sop_throughput=1,
                mac_throughput=1, update_throughput=1, codec_cell_throughput=1,
                energy_per_codec_cell=1, barrier_step_time=1, static_power=0,
            )

    def test_barrier_time_adds_latency(self):
        model = LatencyModel(embedded_neuromorphic())
        with_barriers = model.counts_latency(OpCounts(barrier_steps=1000))
        assert with_barriers == pytest.approx(
            1000 * embedded_neuromorphic().barrier_step_time
        )


class TestLatencyModel:
    def test_latency_scales_with_timesteps(self):
        model = LatencyModel(embedded_neuromorphic())
        t100 = model.epoch_latency(make_cost(100))
        t40 = model.epoch_latency(make_cost(40))
        assert t100 / t40 == pytest.approx(2.5, rel=0.05)

    def test_codec_adds_latency(self):
        model = LatencyModel(embedded_neuromorphic())
        plain = model.epoch_latency(make_cost(40))
        with_codec = model.epoch_latency(make_cost(40, decompressed=10_000_000))
        assert with_codec > plain

    def test_dense_mode_uses_macs(self):
        event = LatencyModel(embedded_neuromorphic())
        dense = LatencyModel(edge_gpu_like())
        sparse_cost = make_cost(40)
        silent = EpochCost(
            train_traces=[make_trace(40, spikes_per_step=0.0)],
            frozen_traces=[], decompressed_cells=0, timesteps=40,
        )
        # In event mode silence is nearly free (only neuron updates);
        # in dense mode the MACs dominate and do not shrink.
        assert event.epoch_latency(silent) < event.epoch_latency(sparse_cost)
        assert dense.counts_latency(OpCounts(macs=1e9)) == pytest.approx(
            1e9 / edge_gpu_like().mac_throughput
        )

    def test_run_and_cumulative(self):
        model = LatencyModel(embedded_neuromorphic())

        class FakeResult:
            epoch_costs = [make_cost(40)] * 5
            prepare_cost = make_cost(40)

        result = FakeResult()
        per_epoch = model.run_epoch_latencies(result)
        assert len(per_epoch) == 5
        assert model.cumulative_latency(result, 3) == pytest.approx(sum(per_epoch[:3]))
        assert model.run_latency(result) == pytest.approx(
            sum(per_epoch) + model.epoch_latency(result.prepare_cost)
        )
        assert model.run_latency(result, include_prepare=False) == pytest.approx(
            sum(per_epoch)
        )


class TestEnergyModel:
    def test_energy_scales_with_timesteps(self):
        model = EnergyModel(embedded_neuromorphic())
        e100 = model.epoch_energy(make_cost(100))
        e40 = model.epoch_energy(make_cost(40))
        assert e100 > e40

    def test_static_term_tracks_latency(self):
        base = embedded_neuromorphic()
        hot = HardwareProfile(**{**base.__dict__, "static_power": 100.0})
        cold = HardwareProfile(**{**base.__dict__, "static_power": 0.0})
        cost = make_cost(40)
        assert EnergyModel(hot).epoch_energy(cost) > EnergyModel(cold).epoch_energy(cost)

    def test_more_spikes_more_energy_in_event_mode(self):
        model = EnergyModel(embedded_neuromorphic())
        quiet = EpochCost(train_traces=[make_trace(40, spikes_per_step=1.0)], timesteps=40)
        busy = EpochCost(train_traces=[make_trace(40, spikes_per_step=50.0)], timesteps=40)
        assert model.epoch_energy(busy) > model.epoch_energy(quiet)


class TestMemoryModel:
    def test_paper_headline_geometry(self):
        # SpikingLR: 50 stored frames; Replay4NCL: 40 -> ~20% saving.
        sota = latent_memory_bytes(50, 64, 32, header_bytes=0)
        ours = latent_memory_bytes(40, 64, 32, header_bytes=0)
        assert 1.0 - ours / sota == pytest.approx(0.20, abs=0.01)

    def test_headers_increase_saving_slightly(self):
        model = LatentMemoryModel(header_bytes=8)
        sota = model.geometry_bytes(50, 64, 32)
        ours = model.geometry_bytes(40, 64, 32)
        saving = model.saving(sota, ours)
        assert 0.19 < saving < 0.22

    def test_validation(self):
        with pytest.raises(ConfigError):
            latent_memory_bytes(0, 1, 1)
        with pytest.raises(ConfigError):
            latent_memory_bytes(1, 1, 1, header_bytes=-1)
        with pytest.raises(ConfigError):
            LatentMemoryModel().saving(0, 10)

    def test_bitpacked_payload(self):
        # 16 frames x 1 sample x 8 channels = 128 bits = 16 bytes (+header)
        assert latent_memory_bytes(16, 1, 8, header_bytes=0) == 16
