"""Tests for wall-clock measurement utilities."""

import time

import pytest

from repro.errors import ConfigError
from repro.hw import measure, measure_ratio


class TestMeasure:
    def test_basic_timing(self):
        sample = measure(lambda: time.sleep(0.002), "sleep", repeats=3, warmup=0)
        assert sample.best_s >= 0.002
        assert sample.mean_s >= sample.best_s
        assert sample.repeats == 3

    def test_warmup_runs_before_timing(self):
        calls = []
        measure(lambda: calls.append(1), repeats=2, warmup=3)
        assert len(calls) == 5

    def test_str(self):
        sample = measure(lambda: None, "noop", repeats=1, warmup=0)
        assert "noop" in str(sample)

    def test_validation(self):
        with pytest.raises(ConfigError):
            measure(lambda: None, repeats=0)
        with pytest.raises(ConfigError):
            measure(lambda: None, warmup=-1)


class TestMeasureRatio:
    def test_slow_over_fast_exceeds_one(self):
        ratio = measure_ratio(
            lambda: time.sleep(0.004), lambda: time.sleep(0.001), repeats=2
        )
        assert ratio > 1.5

    def test_wallclock_agrees_with_latency_model_direction(self, monkeypatch):
        """A T=30 forward must be measurably slower than T=10."""
        import numpy as np

        from repro.config import NetworkConfig
        from repro.snn import SpikingNetwork

        # Measure on the numpy reference: faster backends shrink the
        # timed windows until constant per-forward overhead dominates
        # and the T-scaling direction drowns in scheduler noise.
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        net = SpikingNetwork(NetworkConfig(layer_sizes=(24, 16, 12, 4), beta=0.9), seed=0)
        net.set_trainable(False)
        rng = np.random.default_rng(0)
        x30 = (rng.random((30, 4, 24)) < 0.3).astype(np.float32)
        x10 = x30[:10]
        ratio = measure_ratio(
            lambda: net.forward(x30), lambda: net.forward(x10), repeats=3
        )
        net.set_trainable(True)
        assert ratio > 1.5  # direction matches the analytic model
