"""Tests for OpCounts / OpsCounter."""

import pytest

from repro.errors import ConfigError
from repro.hw import OpCounts, OpsCounter
from repro.snn.state import LayerTraceEntry, SpikeTrace


def make_trace(input_spikes=100.0, output_spikes=50.0, recurrent=True,
               n_in=10, n_out=5, timesteps=8, batch=2):
    trace = SpikeTrace()
    trace.add(
        LayerTraceEntry(
            name="hidden0", n_in=n_in, n_out=n_out, recurrent=recurrent,
            input_spike_count=input_spikes, output_spike_count=output_spikes,
            timesteps=timesteps, batch=batch,
        )
    )
    return trace


class TestOpCounts:
    def test_add(self):
        a = OpCounts(sops=1, macs=2, neuron_updates=3, memory_bytes=4, codec_cells=5)
        b = OpCounts(sops=10, macs=20, neuron_updates=30, memory_bytes=40, codec_cells=50)
        c = a + b
        assert (c.sops, c.macs, c.neuron_updates, c.memory_bytes, c.codec_cells) == (
            11, 22, 33, 44, 55,
        )

    def test_scaled(self):
        a = OpCounts(sops=2, macs=4)
        b = a.scaled(0.5)
        assert b.sops == 1 and b.macs == 2


class TestForwardCounts:
    def test_sop_rule(self):
        # feedforward: 100 spikes x fanout 5; recurrent: 50 x 5
        counts = OpsCounter().count_forward(make_trace())
        assert counts.sops == 100 * 5 + 50 * 5

    def test_sop_rule_no_recurrent(self):
        counts = OpsCounter().count_forward(make_trace(recurrent=False))
        assert counts.sops == 100 * 5

    def test_mac_rule(self):
        counts = OpsCounter().count_forward(make_trace())
        assert counts.macs == 8 * 2 * (10 * 5 + 5 * 5)

    def test_macs_independent_of_spikes(self):
        dense = OpsCounter().count_forward(make_trace(input_spikes=1000.0))
        sparse = OpsCounter().count_forward(make_trace(input_spikes=1.0))
        assert dense.macs == sparse.macs
        assert dense.sops > sparse.sops

    def test_neuron_update_rule(self):
        counts = OpsCounter().count_forward(make_trace())
        assert counts.neuron_updates == 8 * 2 * 5

    def test_memory_positive(self):
        assert OpsCounter().count_forward(make_trace()).memory_bytes > 0

    def test_multi_layer_sums(self):
        trace = make_trace()
        trace.add(trace.entries[0])
        double = OpsCounter().count_forward(trace)
        single = OpsCounter().count_forward(make_trace())
        assert double.sops == 2 * single.sops


class TestTrainingCounts:
    def test_backward_multiplier(self):
        counter = OpsCounter(backward_multiplier=2.0)
        fwd = counter.count_forward(make_trace())
        train = counter.count_training(make_trace())
        assert train.sops == pytest.approx(3.0 * fwd.sops)
        assert train.macs == pytest.approx(3.0 * fwd.macs)

    def test_zero_multiplier_is_forward(self):
        counter = OpsCounter(backward_multiplier=0.0)
        fwd = counter.count_forward(make_trace())
        train = counter.count_training(make_trace())
        assert train.sops == fwd.sops

    def test_validation(self):
        with pytest.raises(ConfigError):
            OpsCounter(backward_multiplier=-1.0)


class TestCodecCounts:
    def test_cells_counted(self):
        counts = OpsCounter().count_codec(800)
        assert counts.codec_cells == 800
        assert counts.memory_bytes == 100  # 1 bit per cell

    def test_zero_cells(self):
        assert OpsCounter().count_codec(0).codec_cells == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            OpsCounter().count_codec(-1)
