"""Tests for the cost-report builder."""

import pytest

from repro.core.strategies import EpochCost, NCLResult
from repro.errors import ConfigError
from repro.hw import build_cost_report
from repro.snn.state import LayerTraceEntry, SpikeTrace
from repro.training.metrics import TrainingHistory


def make_result(timesteps, latent_bytes=1000, old=0.9, new=0.8, epochs=3):
    trace = SpikeTrace()
    trace.add(
        LayerTraceEntry(
            name="hidden0", n_in=8, n_out=4, recurrent=True,
            input_spike_count=100.0 * timesteps / 10, output_spike_count=50.0,
            timesteps=timesteps, batch=2,
        )
    )
    cost = EpochCost(train_traces=[trace], timesteps=timesteps)
    return NCLResult(
        method="m", insertion_layer=1, timesteps=timesteps,
        history=TrainingHistory(), final_old_accuracy=old,
        final_new_accuracy=new, final_overall_accuracy=(old + new) / 2,
        latent_storage_bytes=latent_bytes, latent_stored_frames=timesteps,
        epoch_costs=[cost] * epochs, prepare_cost=EpochCost(timesteps=timesteps),
    )


class TestBuildCostReport:
    def test_reference_is_first(self):
        report = build_cost_report([
            ("sota", make_result(100)),
            ("ours", make_result(40, latent_bytes=800)),
        ])
        assert report.rows[0].latency_ratio == pytest.approx(1.0)
        assert report.rows[0].energy_ratio == pytest.approx(1.0)

    def test_faster_method_has_speedup(self):
        report = build_cost_report([
            ("sota", make_result(100)),
            ("ours", make_result(40, latent_bytes=800)),
        ])
        ours = report.rows[1]
        assert ours.latency_speedup > 1.0
        assert ours.energy_saving > 0.0
        assert ours.memory_saving == pytest.approx(0.2)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            build_cost_report([])

    def test_zero_reference_memory(self):
        report = build_cost_report([
            ("naive", make_result(100, latent_bytes=0)),
            ("ours", make_result(40, latent_bytes=800)),
        ])
        # No reference buffer: ratios stay 1.0 rather than dividing by 0.
        assert report.rows[1].memory_ratio == 1.0

    def test_format_table(self):
        report = build_cost_report([
            ("sota", make_result(100)),
            ("ours", make_result(40)),
        ])
        table = report.format_table()
        assert "sota" in table and "ours" in table
        assert "embedded-neuromorphic" in table
        assert "speedup" in table

    def test_include_prepare_toggle(self):
        heavy_prepare = make_result(100)
        heavy_prepare.prepare_cost = heavy_prepare.epoch_costs[0]
        with_prepare = build_cost_report([("m", heavy_prepare)])
        without = build_cost_report([("m", heavy_prepare)], include_prepare=False)
        assert with_prepare.rows[0].latency_s > without.rows[0].latency_s
