"""Tests for the latent-memory model vs. on-disk store cross-check."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hw.memory import LatentMemoryModel, audit_store, latent_memory_bytes
from repro.replaystore import ReplayStore


@pytest.fixture
def store(tmp_path):
    rng = np.random.default_rng(0)
    raster = (rng.random((24, 19, 16)) < 0.25).astype(np.float32)
    store = ReplayStore.create(
        tmp_path / "store",
        stored_frames=24,
        num_channels=16,
        generated_timesteps=24,
        shard_samples=6,
    )
    store.append(raster, rng.integers(0, 3, 19))
    return store


class TestAuditStore:
    def test_model_matches_geometry(self, store):
        audit = audit_store(store)
        assert audit.modelled_bytes == latent_memory_bytes(24, 19, 16)
        assert audit.num_samples == 19
        assert audit.num_shards == 4

    def test_payload_never_beats_model_by_less_than_padding(self, store):
        # Per-shard codecs pick the smaller encoding, so the payload can
        # only undercut the bitmap model (modulo 1 B/shard bit padding
        # and the headers the model charges but the payload omits).
        audit = audit_store(store)
        assert audit.payload_bytes <= audit.modelled_bytes + audit.num_shards
        assert audit.payload_saving >= 0.0

    def test_disk_includes_format_overhead(self, store):
        audit = audit_store(store)
        assert audit.disk_bytes == store.disk_bytes()
        assert audit.format_overhead_bytes > 0
        assert audit.disk_bytes == audit.payload_bytes + audit.format_overhead_bytes

    def test_sparse_store_shows_saving(self, tmp_path):
        rng = np.random.default_rng(1)
        raster = (rng.random((24, 10, 16)) < 0.005).astype(np.float32)
        store = ReplayStore.create(
            tmp_path / "sparse",
            stored_frames=24,
            num_channels=16,
            generated_timesteps=24,
        )
        store.append(raster, np.zeros(10))
        audit = audit_store(store)
        # AER shards on near-empty rasters beat the bitmap model.
        assert audit.payload_saving > 0.5

    def test_model_method(self, store):
        assert (
            LatentMemoryModel().audit_store(store).modelled_bytes
            == audit_store(store).modelled_bytes
        )

    def test_empty_store_rejected(self, tmp_path):
        empty = ReplayStore.create(
            tmp_path / "empty",
            stored_frames=4,
            num_channels=4,
            generated_timesteps=4,
        )
        with pytest.raises(ConfigError, match="no samples"):
            audit_store(empty)
