"""Setup shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so
the package can be installed in environments without the ``wheel``
package (PEP 517 editable installs require it), via::

    python setup.py develop
"""

from setuptools import setup

setup()
