"""Learning-rate schedules.

The paper uses constant rates per phase (eta_pre, eta_cl = eta_pre/100);
the step/exponential schedules support the learning-rate-policy ablation.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["ConstantSchedule", "ExponentialDecaySchedule", "StepSchedule"]


class ConstantSchedule:
    """``lr(epoch) = base`` — the paper's per-phase policy."""

    def __init__(self, base: float):
        if base <= 0:
            raise ConfigError(f"base learning rate must be positive, got {base}")
        self.base = float(base)

    def __call__(self, epoch: int) -> float:
        return self.base


class ExponentialDecaySchedule:
    """``lr(epoch) = base * decay^epoch``."""

    def __init__(self, base: float, decay: float):
        if base <= 0:
            raise ConfigError(f"base learning rate must be positive, got {base}")
        if not 0.0 < decay <= 1.0:
            raise ConfigError(f"decay must lie in (0, 1], got {decay}")
        self.base = float(base)
        self.decay = float(decay)

    def __call__(self, epoch: int) -> float:
        return self.base * self.decay**epoch


class StepSchedule:
    """Divide the rate by ``factor`` every ``step_every`` epochs."""

    def __init__(self, base: float, step_every: int, factor: float = 10.0):
        if base <= 0:
            raise ConfigError(f"base learning rate must be positive, got {base}")
        if step_every <= 0:
            raise ConfigError(f"step_every must be positive, got {step_every}")
        if factor <= 1.0:
            raise ConfigError(f"factor must exceed 1, got {factor}")
        self.base = float(base)
        self.step_every = int(step_every)
        self.factor = float(factor)

    def __call__(self, epoch: int) -> float:
        return self.base / self.factor ** (epoch // self.step_every)
