"""Loss functions for spiking classification."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, cross_entropy
from repro.errors import ConfigError

__all__ = ["readout_cross_entropy", "spike_count_regularizer"]


def readout_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Cross-entropy on the max-over-time readout membrane.

    The readout layer already reduces its membrane trajectory to
    per-class maxima (Fig. 6a output convention), so this is a plain
    softmax cross-entropy over those maxima.
    """
    return cross_entropy(logits, labels)


def spike_count_regularizer(
    hidden_spikes: list[Tensor], target_rate: float, weight: float = 1.0
) -> Tensor:
    """Quadratic penalty pulling mean firing rates toward ``target_rate``.

    Optional activity regulariser (common in SHD training recipes) that
    keeps hidden layers in the sparse regime the energy model assumes.
    """
    if not hidden_spikes:
        raise ConfigError("need at least one hidden spike raster")
    if not 0.0 <= target_rate <= 1.0:
        raise ConfigError(f"target_rate must lie in [0, 1], got {target_rate}")
    if weight < 0:
        raise ConfigError(f"weight must be >= 0, got {weight}")
    penalty: Tensor | None = None
    for spikes in hidden_spikes:
        rate = spikes.mean()
        term = (rate - target_rate) * (rate - target_rate)
        penalty = term if penalty is None else penalty + term
    return penalty * (weight / len(hidden_spikes))
