"""Gradient-descent optimizers over :class:`~repro.autograd.Tensor` parameters.

Optimizers hold references to parameter tensors; ``step()`` consumes the
``grad`` fields written by ``backward()`` and ``zero_grad()`` clears them.
State (Adam moments) is keyed by parameter identity, so freezing /
unfreezing layers between phases does not corrupt it.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd import Tensor
from repro.errors import ConfigError, TrainingError

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: parameter bookkeeping and the public interface."""

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ConfigError("optimizer needs at least one parameter")
        if learning_rate <= 0:
            raise ConfigError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)

    def zero_grad(self) -> None:
        """Clear every parameter's accumulated gradient."""
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        """Apply one update from the current gradients (subclasses)."""
        raise NotImplementedError

    def set_learning_rate(self, learning_rate: float) -> None:
        """Update the learning rate (used by schedules and eta policies)."""
        if learning_rate <= 0:
            raise ConfigError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)

    # -- state snapshot/restore -----------------------------------------
    # Internal slots are keyed by parameter *identity* (``id``), which is
    # meaningless across processes; snapshots re-key them by parameter
    # *position*, which is stable for the same network architecture.
    def _slot_index(self) -> dict[int, int]:
        return {id(p): i for i, p in enumerate(self.parameters)}

    def _export_slots(self, slots: dict) -> dict[int, object]:
        index_of = self._slot_index()
        return {
            index_of[key]: (
                value.copy() if isinstance(value, np.ndarray) else value
            )
            for key, value in slots.items()
            if key in index_of
        }

    def _import_slots(self, exported: dict) -> dict[int, object]:
        slots: dict[int, object] = {}
        for index, value in exported.items():
            index = int(index)
            if not 0 <= index < len(self.parameters):
                raise ConfigError(
                    f"optimizer snapshot indexes parameter {index} but this "
                    f"optimizer holds {len(self.parameters)}"
                )
            key = id(self.parameters[index])
            slots[key] = value.copy() if isinstance(value, np.ndarray) else value
        return slots

    def state_dict(self) -> dict:
        """Copy of the optimizer's state, keyed by parameter position.

        Restoring it via :meth:`load_state_dict` into an optimizer over
        the same parameter list continues training bitwise from the
        snapshot point (the mid-step complement of the network's
        ``state_dict`` — see :mod:`repro.scenario.checkpoint` for why
        step-boundary checkpoints don't need it).
        """
        return {"learning_rate": self.learning_rate}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot, in place."""
        self.set_learning_rate(float(state["learning_rate"]))


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float,
        momentum: float = 0.0,
    ):
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must lie in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        """One (momentum-)SGD update over parameters with gradients."""
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            if self.momentum > 0.0:
                velocity = self._velocity.get(id(p))
                if velocity is None:
                    velocity = np.zeros_like(p.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(p)] = velocity
                grad = velocity
            p.data = p.data - self.learning_rate * grad

    def state_dict(self) -> dict:
        """Learning rate plus per-parameter momentum velocities."""
        state = super().state_dict()
        state["velocity"] = self._export_slots(self._velocity)
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot, in place."""
        super().load_state_dict(state)
        self._velocity = self._import_slots(state["velocity"])


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the paper's training optimizer."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(parameters, learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigError(f"betas must lie in [0, 1), got {beta1}, {beta2}")
        if eps <= 0:
            raise ConfigError(f"eps must be positive, got {eps}")
        self.beta1, self.beta2, self.eps = float(beta1), float(beta2), float(eps)
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t: dict[int, int] = {}

    def step(self) -> None:
        """One bias-corrected Adam update over parameters with gradients.

        Raises:
            TrainingError: If any gradient is non-finite.
        """
        for p in self.parameters:
            if p.grad is None:
                continue
            if not np.all(np.isfinite(p.grad)):
                raise TrainingError(
                    "non-finite gradient encountered; lower the learning rate "
                    "or check the loss"
                )
            key = id(p)
            t = self._t.get(key, 0) + 1
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = self.beta1 * m + (1.0 - self.beta1) * p.grad
            v = self.beta2 * v + (1.0 - self.beta2) * (p.grad * p.grad)
            self._m[key], self._v[key], self._t[key] = m, v, t
            m_hat = m / (1.0 - self.beta1**t)
            v_hat = v / (1.0 - self.beta2**t)
            p.data = p.data - self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        """Learning rate plus per-parameter Adam moments and step counts."""
        state = super().state_dict()
        state["m"] = self._export_slots(self._m)
        state["v"] = self._export_slots(self._v)
        state["t"] = self._export_slots(self._t)
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot, in place."""
        super().load_state_dict(state)
        self._m = self._import_slots(state["m"])
        self._v = self._import_slots(state["v"])
        self._t = {k: int(v) for k, v in self._import_slots(state["t"]).items()}
