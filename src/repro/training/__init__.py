"""Training substrate: optimizers, losses, the BPTT trainer, metrics.

The paper trains with surrogate-gradient BPTT (§II-B) and Adam; the NCL
phase differs only in which parameters are trainable, which data is fed
(current ∪ latent replay) and the learning-rate / threshold policies.
The :class:`Trainer` here is phase-agnostic: methods in
:mod:`repro.core` compose it.
"""

from repro.training.losses import spike_count_regularizer, readout_cross_entropy
from repro.training.metrics import (
    EpochRecord,
    TrainingHistory,
    forgetting,
    per_class_accuracy,
    top1_accuracy,
)
from repro.training.optimizers import SGD, Adam, Optimizer
from repro.training.schedules import ConstantSchedule, ExponentialDecaySchedule, StepSchedule
from repro.training.trainer import Trainer, TrainerConfig

__all__ = [
    "Optimizer",
    "Adam",
    "SGD",
    "readout_cross_entropy",
    "spike_count_regularizer",
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
    "EpochRecord",
    "top1_accuracy",
    "per_class_accuracy",
    "forgetting",
    "ConstantSchedule",
    "ExponentialDecaySchedule",
    "StepSchedule",
]
