"""Training callbacks: early stopping and in-memory checkpointing.

Used with :meth:`Trainer.fit`'s ``epoch_callback`` hook.  Callbacks are
plain callables over :class:`~repro.training.metrics.EpochRecord`;
:class:`CallbackList` composes several.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.errors import ConfigError
from repro.snn.network import SpikingNetwork
from repro.training.metrics import EpochRecord

__all__ = ["EarlyStopping", "BestCheckpoint", "CallbackList"]


def _check_metric_name(metric: str) -> str:
    """Validate that ``metric`` names an :class:`EpochRecord` field.

    A typo'd metric would otherwise make the callback silently observe
    nothing for the whole run (``getattr(record, metric, None)`` is
    ``None`` forever), so the name is checked at construction time.

    Raises:
        ConfigError: If ``metric`` is not an ``EpochRecord`` field.
    """
    fields = tuple(f.name for f in dataclasses.fields(EpochRecord))
    if metric not in fields:
        raise ConfigError(
            f"metric must be an EpochRecord field ({', '.join(fields)}); "
            f"got {metric!r}"
        )
    return metric


class EarlyStopping:
    """Raise :class:`StopTraining` when a metric stops improving.

    Because :meth:`Trainer.fit` drives the loop, stopping is signalled
    by the :attr:`should_stop` flag, which the caller checks between
    epochs (the figure experiments run fixed budgets and ignore it; the
    examples use it for interactive runs).
    """

    def __init__(
        self,
        metric: str = "loss",
        patience: int = 5,
        min_delta: float = 0.0,
        mode: str = "min",
    ):
        if patience <= 0:
            raise ConfigError(f"patience must be positive, got {patience}")
        if mode not in ("min", "max"):
            raise ConfigError(f"mode must be 'min' or 'max', got {mode!r}")
        if min_delta < 0:
            raise ConfigError(f"min_delta must be >= 0, got {min_delta}")
        self.metric = _check_metric_name(metric)
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.mode = mode
        self.best: float | None = None
        self.stale_epochs = 0
        self.should_stop = False

    def __call__(self, record: EpochRecord) -> None:
        value = getattr(record, self.metric, None)
        if value is None:
            return
        improved = (
            self.best is None
            or (self.mode == "min" and value < self.best - self.min_delta)
            or (self.mode == "max" and value > self.best + self.min_delta)
        )
        if improved:
            self.best = value
            self.stale_epochs = 0
        else:
            self.stale_epochs += 1
            if self.stale_epochs >= self.patience:
                self.should_stop = True


class BestCheckpoint:
    """Keep the network weights of the best epoch (in memory).

    >>> checkpoint = BestCheckpoint(network, metric="old_task_accuracy", mode="max")
    >>> history = trainer.fit(x, y, epoch_callback=checkpoint)   # doctest: +SKIP
    >>> checkpoint.restore()                                     # doctest: +SKIP
    """

    def __init__(
        self,
        network: SpikingNetwork,
        metric: str = "loss",
        mode: str = "min",
    ):
        if mode not in ("min", "max"):
            raise ConfigError(f"mode must be 'min' or 'max', got {mode!r}")
        self.network = network
        self.metric = _check_metric_name(metric)
        self.mode = mode
        self.best: float | None = None
        self.best_epoch: int | None = None
        self._state: dict | None = None

    def __call__(self, record: EpochRecord) -> None:
        value = getattr(record, self.metric, None)
        if value is None:
            return
        better = (
            self.best is None
            or (self.mode == "min" and value < self.best)
            or (self.mode == "max" and value > self.best)
        )
        if better:
            self.best = value
            self.best_epoch = record.epoch
            self._state = self.network.state_dict()

    def restore(self) -> None:
        """Load the best snapshot back into the network."""
        if self._state is None:
            raise ConfigError("no checkpoint captured yet")
        self.network.load_state_dict(self._state)


class CallbackList:
    """Compose several epoch callbacks into one."""

    def __init__(self, callbacks: list[Callable[[EpochRecord], None]]):
        self.callbacks = list(callbacks)

    def __call__(self, record: EpochRecord) -> None:
        for callback in self.callbacks:
            callback(record)
