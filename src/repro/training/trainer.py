"""The surrogate-gradient BPTT training loop.

One :class:`Trainer` drives one phase (pre-training, or the NCL phase on
the learning layers only).  It is agnostic about *where* its inputs come
from: raw rasters for ``start_layer=0``, or mixed current+latent
activations when an NCL method trains a split network.

Per-epoch evaluator callables let the caller attach task accuracies
(old/new) that land in the :class:`TrainingHistory` — this is how the
figure experiments collect their accuracy-vs-epoch curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.data.loaders import DataLoader
from repro.errors import ConfigError, TrainingError
from repro.seeding import default_rng
from repro.snn.network import SpikingNetwork
from repro.snn.state import SpikeTrace
from repro.snn.threshold import ThresholdController
from repro.training.losses import readout_cross_entropy
from repro.training.metrics import EpochRecord, TrainingHistory
from repro.training.optimizers import Optimizer

__all__ = ["Trainer", "TrainerConfig"]


@dataclass(frozen=True)
class TrainerConfig:
    """Loop hyper-parameters.

    Attributes:
        epochs: Number of passes over the data.
        batch_size: Minibatch size.
        start_layer: First weight layer executed; >0 trains a split
            network on pre-computed activations (the NCL phase).
        grad_clip: Optional global-norm gradient clip; None disables.
        shuffle: Reshuffle minibatches each epoch.
    """

    epochs: int
    batch_size: int
    start_layer: int = 0
    grad_clip: float | None = 5.0
    shuffle: bool = True

    def __post_init__(self):
        if self.epochs <= 0:
            raise ConfigError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ConfigError(f"batch_size must be positive, got {self.batch_size}")
        if self.start_layer < 0:
            raise ConfigError(f"start_layer must be >= 0, got {self.start_layer}")
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ConfigError(f"grad_clip must be positive or None, got {self.grad_clip}")


class Trainer:
    """Runs BPTT epochs of a :class:`SpikingNetwork` phase."""

    def __init__(
        self,
        network: SpikingNetwork,
        optimizer: Optimizer,
        config: TrainerConfig,
        rng: np.random.Generator | None = None,
        controller: ThresholdController | None = None,
    ):
        self.network = network
        self.optimizer = optimizer
        self.config = config
        self.rng = rng or default_rng()
        self.controller = controller
        #: SpikeTraces of every forward pass, grouped per epoch — the raw
        #: material of the hardware latency/energy models.
        self.epoch_traces: list[list[SpikeTrace]] = []

    # ------------------------------------------------------------------
    def train_epoch(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """One pass over the data; returns the mean minibatch loss."""
        loader = DataLoader(
            inputs,
            labels,
            batch_size=self.config.batch_size,
            shuffle=self.config.shuffle,
            rng=self.rng,
        )
        losses: list[float] = []
        traces: list[SpikeTrace] = []
        for batch_inputs, batch_labels in loader:
            result = self.network.forward(
                batch_inputs,
                start_layer=self.config.start_layer,
                controller=self.controller,
            )
            loss = readout_cross_entropy(result.logits, batch_labels)
            if not np.isfinite(loss.data):
                raise TrainingError("loss became non-finite; check learning rate")
            self.optimizer.zero_grad()
            loss.backward()
            self._clip_gradients()
            self.optimizer.step()
            losses.append(float(loss.data))
            traces.append(result.trace)
        self.epoch_traces.append(traces)
        return float(np.mean(losses))

    def _controller_value(self) -> float | None:
        """Scalar threshold telemetry (mean for per-neuron controllers)."""
        if not isinstance(self.controller, ThresholdController):
            return None
        value = self.controller.value
        return float(np.mean(value))

    def _clip_gradients(self) -> None:
        if self.config.grad_clip is None:
            return
        total = 0.0
        for p in self.optimizer.parameters:
            if p.grad is not None:
                total += float((p.grad * p.grad).sum())
        norm = np.sqrt(total)
        if norm > self.config.grad_clip:
            scale = self.config.grad_clip / (norm + 1e-12)
            for p in self.optimizer.parameters:
                if p.grad is not None:
                    p.grad = p.grad * scale

    # ------------------------------------------------------------------
    def fit(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        evaluators: dict[str, Callable[[], float]] | None = None,
        epoch_callback: Callable[[EpochRecord], None] | None = None,
    ) -> TrainingHistory:
        """Run ``config.epochs`` epochs, recording telemetry.

        ``evaluators`` maps record fields (``"old_task_accuracy"``,
        ``"new_task_accuracy"``, ``"overall_accuracy"``) to zero-argument
        callables evaluated after every epoch.
        """
        evaluators = evaluators or {}
        unknown = set(evaluators) - {
            "old_task_accuracy",
            "new_task_accuracy",
            "overall_accuracy",
        }
        if unknown:
            raise ConfigError(f"unknown evaluator fields: {sorted(unknown)}")

        history = TrainingHistory()
        for epoch in range(self.config.epochs):
            with obs.span("train.epoch", category="train", epoch=epoch) as span:
                loss = self.train_epoch(inputs, labels)
                with obs.span("train.eval", category="train", epoch=epoch):
                    record = EpochRecord(
                        epoch=epoch,
                        loss=loss,
                        learning_rate=self.optimizer.learning_rate,
                        threshold=self._controller_value(),
                        **{name: fn() for name, fn in evaluators.items()},
                    )
                span.set(loss=loss)
            history.append(record)
            if epoch_callback is not None:
                epoch_callback(record)
        return history
