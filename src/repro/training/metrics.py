"""Accuracy metrics, continual-learning measures, and training history."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "top1_accuracy",
    "per_class_accuracy",
    "forgetting",
    "EpochRecord",
    "TrainingHistory",
]


def top1_accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact label matches (the paper's Top-1 metric)."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ShapeError(
            f"predictions {predictions.shape} and labels {labels.shape} must align"
        )
    if predictions.size == 0:
        return 0.0
    return float((predictions == labels).mean())


def per_class_accuracy(
    predictions: np.ndarray, labels: np.ndarray
) -> dict[int, float]:
    """Top-1 accuracy for every class present in ``labels``."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ShapeError(
            f"predictions {predictions.shape} and labels {labels.shape} must align"
        )
    result: dict[int, float] = {}
    for class_id in np.unique(labels):
        mask = labels == class_id
        result[int(class_id)] = float((predictions[mask] == class_id).mean())
    return result


def forgetting(accuracy_before: float, accuracy_after: float) -> float:
    """Accuracy drop on old tasks after learning a new one (>= 0 means forgot)."""
    return accuracy_before - accuracy_after


@dataclass(frozen=True)
class EpochRecord:
    """One epoch of training telemetry."""

    epoch: int
    loss: float
    old_task_accuracy: float | None = None
    new_task_accuracy: float | None = None
    overall_accuracy: float | None = None
    learning_rate: float | None = None
    threshold: float | None = None


@dataclass
class TrainingHistory:
    """Sequence of :class:`EpochRecord` with convenience accessors."""

    records: list[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        """Add one epoch's record to the history."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def losses(self) -> list[float]:
        """Mean minibatch loss of every epoch, in order."""
        return [r.loss for r in self.records]

    @property
    def old_task_curve(self) -> list[float]:
        """Old-task accuracy per epoch (epochs that measured it)."""
        return [r.old_task_accuracy for r in self.records if r.old_task_accuracy is not None]

    @property
    def new_task_curve(self) -> list[float]:
        """New-task accuracy per epoch (epochs that measured it)."""
        return [r.new_task_accuracy for r in self.records if r.new_task_accuracy is not None]

    def final(self) -> EpochRecord:
        """The last epoch's record.

        Raises:
            IndexError: If the history is empty.
        """
        if not self.records:
            raise IndexError("history is empty")
        return self.records[-1]

    def best_old_task_accuracy(self) -> float:
        """Highest old-task accuracy seen (0.0 when never measured)."""
        curve = self.old_task_curve
        return max(curve) if curve else 0.0

    def epochs_to_reach(self, accuracy: float, task: str = "old") -> int | None:
        """First epoch whose old/new-task accuracy meets ``accuracy``.

        Returns None if never reached — the time-to-quality measure
        behind the headline 4.88x latency interpretation (Fig. 11b).
        """
        curve = self.old_task_curve if task == "old" else self.new_task_curve
        for i, value in enumerate(curve):
            if value >= accuracy:
                return i
        return None
