"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary without swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class GradientError(ReproError):
    """Backward pass was requested in an invalid state.

    Examples: calling ``backward`` on a non-scalar tensor without an
    explicit upstream gradient, or reading ``grad`` from a tensor that
    does not require gradients.
    """


class ConfigError(ReproError):
    """A configuration value is out of its valid domain."""


class CodecError(ReproError):
    """Spike-train compression/decompression received invalid input."""


class DataError(ReproError):
    """Dataset construction or loading failed."""


class StoreError(ReproError):
    """A replay-store shard, index, or budget operation is invalid."""


class SplitError(ReproError):
    """A network split (frozen/learning) request is invalid."""


class TrainingError(ReproError):
    """The training loop reached an invalid state."""
