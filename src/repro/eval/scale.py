"""Scale presets: ci / bench / paper (DESIGN.md §7).

CPU-only numpy cannot train the paper's 700-200-100-50-20 network for 50
epochs in benchmark time, so accuracy experiments run at a reduced scale
that preserves every qualitative relationship; the analytic hardware
models are exact at any scale.  The ``paper`` preset is the full
configuration for completeness.

Calibration notes
-----------------
- ``ncl.timesteps / pretrain.timesteps = 0.4`` at every scale, matching
  the paper's 40/100, so SpikingLR's factor-2 codec stores
  ``pretrain_T/2`` frames vs Replay4NCL's ``0.4 * pretrain_T`` — the 20%
  latent-memory relationship is scale-invariant.
- ``ncl.base_learning_rate`` rises as scale shrinks: the divisor rules
  (/10, /100) are the paper's, but small datasets provide far fewer
  optimizer steps per epoch, so the base is calibrated per scale for the
  new task to converge inside the epoch budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ExperimentConfig, NCLConfig, NetworkConfig, PretrainConfig
from repro.data.synthetic_shd import SyntheticSHDConfig
from repro.errors import ConfigError

__all__ = ["ScalePreset", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ScalePreset:
    """A named (dataset, experiment) configuration pair."""

    name: str
    shd: SyntheticSHDConfig
    experiment: ExperimentConfig

    @property
    def description(self) -> str:
        """One-line summary shown by ``repro list``."""
        net = self.experiment.network.layer_sizes
        return (
            f"{self.name}: net={net}, T_pre={self.experiment.pretrain.timesteps}, "
            f"T_ncl={self.experiment.ncl.timesteps}, "
            f"{self.experiment.num_pretrain_classes}+1 classes"
        )


def _ci() -> ScalePreset:
    shd = SyntheticSHDConfig(
        num_channels=48, num_classes=5, grid_steps=60, peak_rate=80.0
    )
    experiment = ExperimentConfig(
        network=NetworkConfig(layer_sizes=(48, 24, 16, 12, 5), beta=0.95),
        pretrain=PretrainConfig(
            epochs=16, learning_rate=5e-3, timesteps=30, batch_size=8
        ),
        ncl=NCLConfig(
            timesteps=12,
            insertion_layer=3,
            epochs=16,
            batch_size=4,
            replay_fraction=0.3,
            base_learning_rate=2.0,
        ),
        seed=0,
        num_pretrain_classes=4,
        samples_per_class=8,
        test_samples_per_class=4,
    )
    return ScalePreset(name="ci", shd=shd, experiment=experiment)


def _bench() -> ScalePreset:
    shd = SyntheticSHDConfig(num_channels=140, num_classes=10)
    experiment = ExperimentConfig(
        network=NetworkConfig(layer_sizes=(140, 64, 48, 32, 10), beta=0.95),
        pretrain=PretrainConfig(
            epochs=40, learning_rate=2e-3, timesteps=100, batch_size=36
        ),
        ncl=NCLConfig(
            timesteps=40,
            insertion_layer=3,
            epochs=50,
            batch_size=8,
            replay_fraction=0.25,
            base_learning_rate=5e-2,
        ),
        seed=0,
        num_pretrain_classes=9,
        samples_per_class=16,
        test_samples_per_class=8,
    )
    return ScalePreset(name="bench", shd=shd, experiment=experiment)


def _paper() -> ScalePreset:
    shd = SyntheticSHDConfig(num_channels=700, num_classes=20)
    experiment = ExperimentConfig(
        network=NetworkConfig(layer_sizes=(700, 200, 100, 50, 20), beta=0.95),
        pretrain=PretrainConfig(
            epochs=50, learning_rate=1e-3, timesteps=100, batch_size=32
        ),
        ncl=NCLConfig(
            timesteps=40,
            insertion_layer=3,
            epochs=50,
            batch_size=32,
            replay_fraction=0.25,
        ),
        seed=0,
        num_pretrain_classes=19,
        samples_per_class=32,
        test_samples_per_class=16,
    )
    return ScalePreset(name="paper", shd=shd, experiment=experiment)


SCALES = {"ci": _ci, "bench": _bench, "paper": _paper}


def get_scale(name: str) -> ScalePreset:
    """Look up a preset by name; raises ConfigError on unknown names."""
    try:
        factory = SCALES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scale {name!r}; available: {sorted(SCALES)}"
        ) from None
    return factory()
