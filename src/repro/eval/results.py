"""Result containers with text/CSV/JSON rendering."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.eval.ascii_plot import ascii_bars, ascii_curve

__all__ = ["Series", "ExperimentResult"]


@dataclass(frozen=True)
class Series:
    """One named data series of an experiment (a curve or a bar group).

    ``x`` is the independent variable (epoch, timestep, insertion
    layer), ``y`` the measured values.
    """

    name: str
    x: tuple
    y: tuple
    x_label: str = "x"
    y_label: str = "y"

    def __post_init__(self):
        if len(self.x) != len(self.y):
            raise ConfigError(
                f"series {self.name!r}: {len(self.x)} x values but {len(self.y)} y"
            )

    def as_dict(self) -> dict:
        """JSON-ready payload of the series."""
        return {
            "name": self.name,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x": list(self.x),
            "y": [float(v) for v in self.y],
        }


@dataclass
class ExperimentResult:
    """Output of one figure/table reproduction."""

    experiment_id: str
    title: str
    scale: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    scalars: dict[str, float] = field(default_factory=dict)

    def add_series(self, series: Series) -> None:
        """Append one plotted series."""
        self.series.append(series)

    def add_note(self, note: str) -> None:
        """Attach a free-text caveat/annotation to the result."""
        self.notes.append(note)

    def get_series(self, name: str) -> Series:
        """Look up a series by name (raises when absent)."""
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series named {name!r} in {self.experiment_id}")

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format_text(self, plot: bool = True) -> str:
        """Human-readable report: scalars, series tables, ASCII plots."""
        lines = [f"== {self.experiment_id}: {self.title} (scale={self.scale}) =="]
        for key, value in self.scalars.items():
            lines.append(f"  {key}: {value:.4g}")
        for s in self.series:
            lines.append(f"\n  -- {s.name} ({s.y_label} vs {s.x_label}) --")
            lines.append(
                "  " + "  ".join(f"{xv}:{float(yv):.4g}" for xv, yv in zip(s.x, s.y))
            )
        if plot and self.series:
            numeric_x = all(
                isinstance(xv, (int, float)) for s in self.series for xv in s.x
            )
            lines.append("")
            if numeric_x and max(len(s.x) for s in self.series) > 6:
                lines.append(ascii_curve({s.name: (s.x, s.y) for s in self.series}))
            else:
                lines.append(
                    ascii_bars(
                        {s.name: dict(zip((str(x) for x in s.x), s.y)) for s in self.series}
                    )
                )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Long-format CSV: series,x,y."""
        rows = ["series,x,y"]
        for s in self.series:
            for xv, yv in zip(s.x, s.y):
                rows.append(f"{s.name},{xv},{float(yv):.6g}")
        return "\n".join(rows) + "\n"

    def to_json(self) -> str:
        """Serialize the full result (series, notes, scalars) to JSON."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "scale": self.scale,
                "scalars": {k: float(v) for k, v in self.scalars.items()},
                "series": [s.as_dict() for s in self.series],
                "notes": self.notes,
            },
            indent=2,
        )

    def save(self, directory: str | Path) -> tuple[Path, Path]:
        """Write ``<id>.json`` and ``<id>.csv`` into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        json_path = directory / f"{self.experiment_id}.json"
        csv_path = directory / f"{self.experiment_id}.csv"
        json_path.write_text(self.to_json())
        csv_path.write_text(self.to_csv())
        return json_path, csv_path
