"""Experiment reproduction: one function per paper figure/table.

Usage::

    from repro.eval import experiments
    result = experiments.run("fig11", scale="bench")
    print(result.format_text())

Figure ids: ``fig1a``, ``fig2``, ``fig8``, ``fig10``, ``fig11``,
``fig12``, ``fig13``, ``headline``.  Scales: ``ci`` (tiny, for tests),
``bench`` (default for benchmarks), ``paper`` (the full configuration —
CPU-hours).  See DESIGN.md §4 for the experiment index and §7 for the
scale definitions.
"""

from repro.eval import experiments
from repro.eval.ascii_plot import ascii_bars, ascii_curve
from repro.eval.results import ExperimentResult, Series
from repro.eval.scale import SCALES, ScalePreset, get_scale

__all__ = [
    "experiments",
    "ExperimentResult",
    "Series",
    "ScalePreset",
    "SCALES",
    "get_scale",
    "ascii_curve",
    "ascii_bars",
]
