"""The paper's reported numbers, as structured data.

Single source of truth for what the paper claims, used by the
``python -m repro compare`` command to render paper-vs-measured tables
from saved benchmark results, and by EXPERIMENTS.md.

Each target names the figure, the quantity, the paper's value, and how
to extract the measured value from the corresponding
:class:`~repro.eval.results.ExperimentResult` JSON (a scalar key, or a
reduction over a series).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError

__all__ = ["PaperTarget", "PAPER_TARGETS", "compare_to_paper", "format_comparison"]


@dataclass(frozen=True)
class PaperTarget:
    """One quantitative claim of the paper.

    Attributes
    ----------
    experiment_id:
        Which reproduction result carries the measurement.
    description:
        What the number is, in the paper's words.
    paper_value:
        The value the paper reports (fractions for percentages).
    scalar:
        Key into the result's ``scalars`` holding our measurement.
    direction:
        ``"shape"`` — comparable in kind, absolute match not expected
        (our substrate is a simulator at reduced scale); ``"band"`` —
        our value should land within ``band`` of the paper's.
    band:
        Absolute tolerance when ``direction == "band"``.
    """

    experiment_id: str
    description: str
    paper_value: float
    scalar: str
    direction: str = "shape"
    band: float = 0.0

    def __post_init__(self):
        if self.direction not in ("shape", "band"):
            raise ConfigError(f"direction must be 'shape' or 'band', got {self.direction!r}")


PAPER_TARGETS: tuple[PaperTarget, ...] = (
    PaperTarget(
        experiment_id="headline",
        description="old-task Top-1, Replay4NCL (abstract: 90.43%)",
        paper_value=0.9043,
        scalar="replay4ncl_old_acc",
    ),
    PaperTarget(
        experiment_id="headline",
        description="old-task Top-1, SpikingLR (abstract: 86.22%)",
        paper_value=0.8622,
        scalar="spikinglr_old_acc",
    ),
    PaperTarget(
        experiment_id="headline",
        description="latent memory saving (abstract: 20%)",
        paper_value=0.20,
        scalar="memory_saving",
        direction="band",
        band=0.05,
    ),
    PaperTarget(
        experiment_id="headline",
        description="energy saving at the headline layer (abstract: 36.43%)",
        paper_value=0.3643,
        scalar="energy_saving",
        direction="band",
        band=0.25,
    ),
    PaperTarget(
        experiment_id="headline",
        description="latency speed-up (abstract: 4.88x, incl. convergence)",
        paper_value=4.88,
        scalar="latency_speedup",
    ),
    PaperTarget(
        experiment_id="fig10",
        description="max per-epoch latency speed-up across layers (Fig. 10b: 2.34x)",
        paper_value=2.34,
        scalar="max_latency_speedup",
        direction="band",
        band=0.5,
    ),
    PaperTarget(
        experiment_id="fig10",
        description="max energy saving across layers (Fig. 10c: 56.7%)",
        paper_value=0.567,
        scalar="max_energy_saving",
        direction="band",
        band=0.2,
    ),
    PaperTarget(
        experiment_id="fig12",
        description="max latent memory saving across layers (Fig. 12: 21.88%)",
        paper_value=0.2188,
        scalar="max_saving",
        direction="band",
        band=0.05,
    ),
    PaperTarget(
        experiment_id="fig1a",
        description="old-task accuracy collapse without NCL (Fig. 1a)",
        paper_value=0.8,  # the figure shows a drop from ~90% to near-chance
        scalar="accuracy_drop",
    ),
    PaperTarget(
        experiment_id="fig8",
        description="old-task accuracy drop at 20% timesteps (Fig. 8a, Obs. A)",
        paper_value=0.3,  # the figure shows a large degradation
        scalar="old_acc_drop_at_20pct",
    ),
)


def compare_to_paper(results_dir: str | Path) -> list[dict]:
    """Join saved benchmark results against the paper targets.

    Returns one row per target: description, paper value, measured value
    (None when the experiment result is missing), and whether a
    ``band`` target landed inside its tolerance.
    """
    results_dir = Path(results_dir)
    cache: dict[str, dict] = {}
    rows = []
    for target in PAPER_TARGETS:
        if target.experiment_id not in cache:
            path = results_dir / f"{target.experiment_id}.json"
            cache[target.experiment_id] = (
                json.loads(path.read_text()) if path.exists() else {}
            )
        payload = cache[target.experiment_id]
        measured = payload.get("scalars", {}).get(target.scalar)
        in_band = None
        if measured is not None and target.direction == "band":
            in_band = abs(measured - target.paper_value) <= target.band
        rows.append(
            {
                "experiment": target.experiment_id,
                "description": target.description,
                "paper": target.paper_value,
                "measured": measured,
                "direction": target.direction,
                "in_band": in_band,
            }
        )
    return rows


def format_comparison(rows: list[dict]) -> str:
    """Render comparison rows as an aligned text table."""
    header = f"{'experiment':10s} {'paper':>9s} {'measured':>9s} {'verdict':>9s}  description"
    lines = [header, "-" * len(header)]
    for row in rows:
        measured = "missing" if row["measured"] is None else f"{row['measured']:.4g}"
        if row["measured"] is None:
            verdict = "-"
        elif row["direction"] == "band":
            verdict = "in-band" if row["in_band"] else "off-band"
        else:
            verdict = "shape"
        lines.append(
            f"{row['experiment']:10s} {row['paper']:9.4g} {measured:>9s} "
            f"{verdict:>9s}  {row['description']}"
        )
    return "\n".join(lines)
