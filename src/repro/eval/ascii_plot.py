"""Terminal plotting: line charts and bar groups without matplotlib."""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["ascii_curve", "ascii_bars"]

_MARKS = "*o+x#@%&"


def ascii_curve(
    series: dict[str, tuple],
    width: int = 64,
    height: int = 16,
) -> str:
    """Plot named ``(x, y)`` series on a shared-axis character grid.

    >>> print(ascii_curve({"a": ((0, 1, 2), (0.0, 0.5, 1.0))}))  # doctest: +SKIP
    """
    if not series:
        raise ConfigError("need at least one series")
    if width < 16 or height < 4:
        raise ConfigError("plot must be at least 16x4")

    all_x = [float(x) for xs, _ in series.values() for x in xs]
    all_y = [float(y) for _, ys in series.values() for y in ys]
    if not all_x:
        raise ConfigError("series are empty")
    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, (xs, ys)), mark in zip(series.items(), _MARKS):
        for x, y in zip(xs, ys):
            col = int((float(x) - x_min) / x_span * (width - 1))
            row = height - 1 - int((float(y) - y_min) / y_span * (height - 1))
            grid[row][col] = mark

    lines = []
    for i, row in enumerate(grid):
        label = y_max if i == 0 else (y_min if i == height - 1 else None)
        prefix = f"{label:8.3g} |" if label is not None else " " * 8 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_min:<10.4g}{'':^{max(width - 20, 0)}}{x_max:>10.4g}")
    legend = "   ".join(
        f"{mark}={name}" for (name, _), mark in zip(series.items(), _MARKS)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def ascii_bars(groups: dict[str, dict[str, float]], width: int = 48) -> str:
    """Grouped horizontal bars.

    ``groups`` maps series name -> {category: value}.  Bars are scaled to
    the global maximum.
    """
    if not groups:
        raise ConfigError("need at least one group")
    values = [v for cats in groups.values() for v in cats.values()]
    if not values:
        raise ConfigError("groups are empty")
    peak = max(abs(float(v)) for v in values) or 1.0

    label_width = max(
        len(f"{name}[{cat}]") for name, cats in groups.items() for cat in cats
    )
    lines = []
    for name, cats in groups.items():
        for cat, value in cats.items():
            bar = "#" * max(int(abs(float(value)) / peak * width), 0)
            lines.append(f"{name}[{cat}]".ljust(label_width + 1) + f"|{bar} {float(value):.4g}")
    return "\n".join(lines)
