"""Experiment contexts, caching, and the figure registry.

``run("fig10", scale="bench")`` is the single entry point the benchmark
harness uses.  Expensive artefacts are cached at two levels:

- the pre-trained network is cached in-process *and* on disk (keyed by a
  hash of the full configuration), because every figure starts from the
  same pre-training run (Alg. 1 lines 1-5);
- NCL runs are cached in-process keyed by their policy knobs, because
  several figures share runs (Fig. 10's layer sweep feeds Fig. 11's
  layer-3 curves and the headline table).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import env_value
from repro.core.pipeline import PretrainResult, pretrain
from repro.core.strategies import NCLResult
from repro.data.synthetic_shd import SyntheticSHD
from repro.data.tasks import ClassIncrementalSplit, make_class_incremental
from repro.errors import ConfigError
from repro.eval.results import ExperimentResult
from repro.eval.scale import ScalePreset, get_scale
from repro.ioutil import atomic_open
from repro.snn.network import SpikingNetwork
from repro.training.metrics import TrainingHistory

__all__ = [
    "ExperimentContext",
    "context",
    "run",
    "run_scenario",
    "available_experiments",
    "cache_dir",
]

_CONTEXTS: dict[str, "ExperimentContext"] = {}
_RUNS: dict[tuple, NCLResult] = {}
#: Scenario-level run cache (see :func:`run_scenario`): full
#: ScenarioResults keyed on (scenario, method, scale, seed, ReplaySpec).
_SCENARIO_RUNS: dict[tuple, object] = {}


def cache_dir() -> Path:
    """Directory for cached pre-trained weights (override: REPRO_CACHE)."""
    path = Path(env_value("REPRO_CACHE"))
    path.mkdir(parents=True, exist_ok=True)
    return path


@dataclass
class ExperimentContext:
    """Everything shared by the figures of one scale preset."""

    preset: ScalePreset
    generator: SyntheticSHD
    split: ClassIncrementalSplit
    pretrained: PretrainResult

    def cached_run(self, key: tuple, factory) -> NCLResult:
        """Run-level cache: ``factory()`` executes on a miss."""
        full_key = (self.preset.name, self.preset.experiment.seed) + key
        if full_key not in _RUNS:
            _RUNS[full_key] = factory()
        return _RUNS[full_key]


def _config_digest(preset: ScalePreset) -> str:
    payload = json.dumps(
        {
            "shd": preset.shd.__dict__,
            "network": {
                **preset.experiment.network.__dict__,
                "layer_sizes": list(preset.experiment.network.layer_sizes),
            },
            "pretrain": preset.experiment.pretrain.__dict__,
            "seed": preset.experiment.seed,
            "classes": preset.experiment.num_pretrain_classes,
            "samples": preset.experiment.samples_per_class,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _load_pretrained(preset: ScalePreset, split) -> PretrainResult | None:
    path = cache_dir() / f"pretrain-{_config_digest(preset)}.npz"
    if not path.exists():
        return None
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError):
        return None
    network = SpikingNetwork(preset.experiment.network, seed=preset.experiment.seed)
    state: dict[str, dict[str, np.ndarray]] = {}
    for key in archive.files:
        if key == "__test_accuracy__":
            continue
        layer, param = key.split("/", 1)
        state.setdefault(layer, {})[param] = archive[key]
    try:
        network.load_state_dict(state)
    except Exception:
        return None
    return PretrainResult(
        network=network,
        history=TrainingHistory(),
        test_accuracy=float(archive["__test_accuracy__"]),
        epoch_traces=[],
    )


def _store_pretrained(preset: ScalePreset, result: PretrainResult) -> None:
    path = cache_dir() / f"pretrain-{_config_digest(preset)}.npz"
    flat = {
        f"{layer}/{param}": value
        for layer, params in result.network.state_dict().items()
        for param, value in params.items()
    }
    flat["__test_accuracy__"] = np.asarray(result.test_accuracy)
    with atomic_open(path, "wb") as handle:
        np.savez(handle, **flat)


def context(scale: str = "bench") -> ExperimentContext:
    """Build (or fetch) the shared context of a scale preset."""
    if scale not in _CONTEXTS:
        preset = get_scale(scale)
        generator = SyntheticSHD(preset.shd, seed=preset.experiment.seed)
        split = make_class_incremental(
            generator,
            preset.experiment.samples_per_class,
            preset.experiment.test_samples_per_class,
            num_pretrain_classes=preset.experiment.num_pretrain_classes,
        )
        pretrained = _load_pretrained(preset, split)
        if pretrained is None:
            pretrained = pretrain(preset.experiment, split)
            _store_pretrained(preset, pretrained)
        _CONTEXTS[scale] = ExperimentContext(
            preset=preset, generator=generator, split=split, pretrained=pretrained
        )
    return _CONTEXTS[scale]


def available_experiments() -> list[str]:
    """Sorted ids of every reproducible figure/table."""
    from repro.eval import figures

    return sorted(figures.FIGURES)


def run(experiment_id: str, scale: str = "bench", **kwargs) -> ExperimentResult:
    """Reproduce one figure/table at the given scale."""
    from repro.eval import figures

    try:
        fn = figures.FIGURES[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {available_experiments()}"
        ) from None
    return fn(context(scale), **kwargs)


def _scenario_cache_key(name, method, scale: str, kwargs: dict) -> tuple | None:
    """Cache key of a scenario run, or None when the call is uncacheable.

    Only fully *name-addressed* calls cache: a :class:`Scenario`
    instance or a method factory may carry arbitrary state, and any
    explicit override (``pretrained``/``generator``/``experiment``)
    changes the run in ways the key cannot see.  ``replay`` participates
    as the (frozen, hashable) :class:`~repro.core.ReplaySpec` itself —
    two runs with different specs are different artefacts on disk.  The
    *registered factories* behind both names participate too, so
    re-registering a name (``register`` explicitly replaces) invalidates
    its cached runs instead of silently serving the old implementation.
    """
    from repro.core import ReplaySpec
    from repro.core.registry import _METHODS
    from repro.scenario.registry import _SCENARIOS

    if not (isinstance(name, str) and isinstance(method, str)):
        return None
    if set(kwargs) - {"replay"}:
        return None
    replay = kwargs.get("replay")
    if replay is not None and not isinstance(replay, ReplaySpec):
        return None
    if replay is not None and replay.overwrite:
        # overwrite=True is an explicit "rebuild the store" request; a
        # cache hit would silently skip the rewrite.
        return None
    scenario_factory = _SCENARIOS.get(name)
    method_factory = _METHODS.get(method)
    if scenario_factory is None or method_factory is None:
        return None  # unknown names error downstream; nothing to cache
    seed = get_scale(scale).experiment.seed
    return (name, method, scale, seed, replay, scenario_factory, method_factory)


def run_scenario(name: str, method: str = "replay4ncl", scale: str = "bench", **kwargs):
    """Run a registered continual-learning scenario at a scale preset.

    Thin wiring into :func:`repro.scenario.run_scenario` that reuses
    this module's shared context where possible: the default
    ``single-step`` scenario is exactly the paper's split, so its
    (disk-cached) pre-trained network and generator are shared with the
    figure experiments instead of re-training.  ``kwargs`` are forwarded
    (e.g. ``replay=ReplaySpec(...)``).

    Whole runs are cached in-process, keyed on
    ``(scenario, method, scale, seed, ReplaySpec)``: a repeat call with
    the same addressing returns the previous
    :class:`~repro.scenario.runner.ScenarioResult` without re-running —
    scenario sweeps that revisit a configuration (benchmark suites,
    figure scripts comparing regimes) pay for each run once, like the
    per-figure NCL run cache above.  Passing a scenario instance, a
    method factory, or any explicit override bypasses the cache, and any
    key component changing (including the replay spec) is a miss.
    Store-backed runs re-run when their on-disk federation has been
    deleted since, and ``overwrite=True`` specs never cache (they are an
    explicit rebuild request).
    """
    from repro import scenario as scenario_pkg

    cache_key = _scenario_cache_key(name, method, scale, kwargs)
    if cache_key is not None and cache_key in _SCENARIO_RUNS:
        cached = _SCENARIO_RUNS[cache_key]
        # A store-backed result references an on-disk artefact; if the
        # caller deleted it since, re-run instead of handing back a
        # result whose store_root no longer exists.
        if cached.store_root is None or Path(cached.store_root).exists():
            return cached
        del _SCENARIO_RUNS[cache_key]

    # Reuse the cached context only when the caller overrode nothing it
    # depends on: a custom generator/experiment changes the base split,
    # and a network pretrained on a different split would silently
    # produce garbage metrics.
    overrides = ("pretrained", "generator", "experiment")
    if name == "single-step" and not any(key in kwargs for key in overrides):
        ctx = context(scale)
        kwargs["generator"] = ctx.generator
        kwargs["experiment"] = ctx.preset.experiment
        kwargs["pretrained"] = ctx.pretrained
    result = scenario_pkg.run_scenario(name, method, scale=scale, **kwargs)
    if cache_key is not None:
        _SCENARIO_RUNS[cache_key] = result
    return result
