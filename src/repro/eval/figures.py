"""One reproduction function per paper figure/table (DESIGN.md §4).

Every function takes an :class:`~repro.eval.experiments.ExperimentContext`
and returns an :class:`~repro.eval.results.ExperimentResult` whose series
mirror the rows/curves the paper plots.  Latency/energy numbers come from
the :mod:`repro.hw` models on the default embedded-neuromorphic profile;
all normalisations follow the paper's (stated in each docstring).
"""

from __future__ import annotations

import numpy as np

from repro import seeding
from repro.core.latent_replay import LatentReplayBuffer
from repro.core.replay4ncl import Replay4NCL
from repro.core.spikinglr import SpikingLR
from repro.core.strategies import NaiveFinetune, NCLResult
from repro.eval.experiments import ExperimentContext
from repro.eval.results import ExperimentResult, Series
from repro.hw.energy import EnergyModel
from repro.hw.latency import LatencyModel
from repro.hw.memory import LatentMemoryModel
from repro.hw.profiles import embedded_neuromorphic

__all__ = [
    "fig1a",
    "fig2",
    "fig8",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "headline",
    "FIGURES",
]


# ----------------------------------------------------------------------
# Shared runners
# ----------------------------------------------------------------------

def _with_insertion(ctx: ExperimentContext, insertion: int):
    return ctx.preset.experiment.replace(
        ncl=ctx.preset.experiment.ncl.replace(insertion_layer=insertion)
    )


def _run_spikinglr(
    ctx: ExperimentContext, insertion: int, timesteps: int | None = None,
    epochs: int | None = None,
) -> NCLResult:
    def factory():
        config = _with_insertion(ctx, insertion)
        if epochs is not None:
            config = config.replace(ncl=config.ncl.replace(epochs=epochs))
        method = SpikingLR(config, timesteps=timesteps)
        return method.run(ctx.pretrained.network, ctx.split)

    return ctx.cached_run(("spikinglr", insertion, timesteps, epochs), factory)


def _run_replay4ncl(
    ctx: ExperimentContext, insertion: int, timesteps: int | None = None,
    adaptive: bool | None = None, epochs: int | None = None,
) -> NCLResult:
    def factory():
        config = _with_insertion(ctx, insertion)
        if epochs is not None:
            config = config.replace(ncl=config.ncl.replace(epochs=epochs))
        method = Replay4NCL(config, timesteps=timesteps, adaptive_threshold=adaptive)
        return method.run(ctx.pretrained.network, ctx.split)

    return ctx.cached_run(("replay4ncl", insertion, timesteps, adaptive, epochs), factory)


def _run_naive(ctx: ExperimentContext) -> NCLResult:
    def factory():
        return NaiveFinetune(ctx.preset.experiment).run(
            ctx.pretrained.network, ctx.split
        )

    return ctx.cached_run(("naive",), factory)


def _epoch_axis(history) -> tuple:
    return tuple(r.epoch for r in history.records)


# ----------------------------------------------------------------------
# Fig. 1(a): catastrophic forgetting of the baseline
# ----------------------------------------------------------------------

def fig1a(ctx: ExperimentContext) -> ExperimentResult:
    """Old-task accuracy collapse while the baseline learns a new class."""
    result = ExperimentResult(
        experiment_id="fig1a",
        title="Catastrophic forgetting in the baseline network",
        scale=ctx.preset.name,
    )
    naive = _run_naive(ctx)
    epochs = _epoch_axis(naive.history)
    result.add_series(Series(
        name="old-tasks", x=epochs, y=tuple(naive.history.old_task_curve),
        x_label="epoch", y_label="top1",
    ))
    result.add_series(Series(
        name="new-task", x=epochs, y=tuple(naive.history.new_task_curve),
        x_label="epoch", y_label="top1",
    ))
    drop = ctx.pretrained.test_accuracy - naive.final_old_accuracy
    result.scalars["pretrain_accuracy"] = ctx.pretrained.test_accuracy
    result.scalars["final_old_accuracy"] = naive.final_old_accuracy
    result.scalars["accuracy_drop"] = drop
    result.add_note(
        "paper: old-task accuracy drops sharply as the unprotected network "
        "learns the new class; reproduced when accuracy_drop is large"
    )
    return result


# ----------------------------------------------------------------------
# Fig. 2: SpikingLR overheads + aggressive timestep reduction
# ----------------------------------------------------------------------

def fig2(ctx: ExperimentContext) -> ExperimentResult:
    """(a) SpikingLR latency/energy vs the no-NCL baseline across LR
    insertion layers (normalized to the baseline); (b) accuracy collapse
    when SpikingLR's timestep is cut aggressively (100 -> 20 equivalent).
    """
    result = ExperimentResult(
        experiment_id="fig2",
        title="Case study: SpikingLR overheads and timestep reduction",
        scale=ctx.preset.name,
    )
    profile = embedded_neuromorphic()
    latency_model = LatencyModel(profile)
    energy_model = EnergyModel(profile)

    baseline = _run_naive(ctx)
    base_latency = latency_model.run_latency(baseline)
    base_energy = energy_model.run_energy(baseline)

    layers = tuple(range(ctx.pretrained.network.num_weight_layers))
    latency_ratio, energy_ratio = [], []
    for lins in layers:
        run = _run_spikinglr(ctx, lins)
        latency_ratio.append(latency_model.run_latency(run) / base_latency)
        energy_ratio.append(energy_model.run_energy(run) / base_energy)
    result.add_series(Series(
        name="spikinglr-latency-vs-baseline", x=layers, y=tuple(latency_ratio),
        x_label="LR insertion layer", y_label="normalized latency",
    ))
    result.add_series(Series(
        name="spikinglr-energy-vs-baseline", x=layers, y=tuple(energy_ratio),
        x_label="LR insertion layer", y_label="normalized energy",
    ))

    # (b) aggressive timestep reduction on the replay pipeline.
    t_full = ctx.preset.experiment.pretrain.timesteps
    t_low = max(t_full // 5, 1)  # the paper's 100 -> 20
    full = _run_spikinglr(ctx, ctx.preset.experiment.ncl.insertion_layer)
    low = _run_spikinglr(ctx, ctx.preset.experiment.ncl.insertion_layer, timesteps=t_low)
    result.add_series(Series(
        name=f"old-acc-T{t_full}", x=_epoch_axis(full.history),
        y=tuple(full.history.old_task_curve), x_label="epoch", y_label="top1",
    ))
    result.add_series(Series(
        name=f"old-acc-T{t_low}", x=_epoch_axis(low.history),
        y=tuple(low.history.old_task_curve), x_label="epoch", y_label="top1",
    ))
    result.scalars["max_latency_overhead"] = max(latency_ratio)
    result.scalars["max_energy_overhead"] = max(energy_ratio)
    result.scalars["accuracy_drop_from_reduction"] = (
        full.final_old_accuracy - low.final_old_accuracy
    )
    result.add_note(
        "paper: SpikingLR costs multiples of the baseline and collapses "
        "under aggressive timestep reduction without compensation"
    )
    return result


# ----------------------------------------------------------------------
# Fig. 8: timestep sweep (Observations A-C)
# ----------------------------------------------------------------------

def fig8(ctx: ExperimentContext) -> ExperimentResult:
    """Accuracy profiles and latency for T ∈ {100%, 60%, 40%, 20%} of the
    pre-training timestep, on the replay pipeline without enhancements.
    Latency is normalized to the 100% setting (paper Fig. 8b).
    """
    result = ExperimentResult(
        experiment_id="fig8",
        title="Timestep optimization case study",
        scale=ctx.preset.name,
    )
    t_full = ctx.preset.experiment.pretrain.timesteps
    fractions = (1.0, 0.6, 0.4, 0.2)
    insertion = ctx.preset.experiment.ncl.insertion_layer
    latency_model = LatencyModel(embedded_neuromorphic())

    latencies, finals_old, finals_new = [], [], []
    for fraction in fractions:
        timesteps = max(int(round(t_full * fraction)), 1)
        run = _run_spikinglr(ctx, insertion, timesteps=timesteps)
        label = f"T{timesteps}"
        result.add_series(Series(
            name=f"old-acc-{label}", x=_epoch_axis(run.history),
            y=tuple(run.history.old_task_curve), x_label="epoch", y_label="top1",
        ))
        result.add_series(Series(
            name=f"new-acc-{label}", x=_epoch_axis(run.history),
            y=tuple(run.history.new_task_curve), x_label="epoch", y_label="top1",
        ))
        latencies.append(latency_model.run_latency(run))
        finals_old.append(run.final_old_accuracy)
        finals_new.append(run.final_new_accuracy)

    timestep_axis = tuple(max(int(round(t_full * f)), 1) for f in fractions)
    result.add_series(Series(
        name="latency-normalized", x=timestep_axis,
        y=tuple(value / latencies[0] for value in latencies),
        x_label="timesteps", y_label="normalized latency",
    ))
    result.add_series(Series(
        name="final-old-acc", x=timestep_axis, y=tuple(finals_old),
        x_label="timesteps", y_label="top1",
    ))
    result.add_series(Series(
        name="final-new-acc", x=timestep_axis, y=tuple(finals_new),
        x_label="timesteps", y_label="top1",
    ))
    result.scalars["old_acc_drop_at_20pct"] = finals_old[0] - finals_old[-1]
    result.add_note(
        "Observation A: aggressive reduction hurts old-task accuracy; "
        "B: ~40% of the original timesteps is the usable floor; "
        "C: latency falls with the timestep"
    )
    return result


# ----------------------------------------------------------------------
# Fig. 10: both methods across insertion layers
# ----------------------------------------------------------------------

def fig10(ctx: ExperimentContext) -> ExperimentResult:
    """Accuracy, processing time, and energy across LR insertion layers.

    SpikingLR vs Replay4NCL over panels (a)-(c); latency/energy are
    normalized to SpikingLR at insertion layer 0 (the paper's SOTA
    reference).
    """
    result = ExperimentResult(
        experiment_id="fig10",
        title="SpikingLR vs Replay4NCL across LR insertion layers",
        scale=ctx.preset.name,
    )
    profile = embedded_neuromorphic()
    latency_model = LatencyModel(profile)
    energy_model = EnergyModel(profile)
    layers = tuple(range(ctx.pretrained.network.num_weight_layers))

    table: dict[str, list[float]] = {
        "spikinglr-old": [], "spikinglr-new": [],
        "replay4ncl-old": [], "replay4ncl-new": [],
        "spikinglr-latency": [], "replay4ncl-latency": [],
        "spikinglr-energy": [], "replay4ncl-energy": [],
    }
    for lins in layers:
        sota = _run_spikinglr(ctx, lins)
        ours = _run_replay4ncl(ctx, lins)
        table["spikinglr-old"].append(sota.final_old_accuracy)
        table["spikinglr-new"].append(sota.final_new_accuracy)
        table["replay4ncl-old"].append(ours.final_old_accuracy)
        table["replay4ncl-new"].append(ours.final_new_accuracy)
        table["spikinglr-latency"].append(latency_model.run_latency(sota))
        table["replay4ncl-latency"].append(latency_model.run_latency(ours))
        table["spikinglr-energy"].append(energy_model.run_energy(sota))
        table["replay4ncl-energy"].append(energy_model.run_energy(ours))

    ref_latency = table["spikinglr-latency"][0]
    ref_energy = table["spikinglr-energy"][0]
    for key in ("spikinglr-latency", "replay4ncl-latency"):
        table[key] = [v / ref_latency for v in table[key]]
    for key in ("spikinglr-energy", "replay4ncl-energy"):
        table[key] = [v / ref_energy for v in table[key]]

    labels = {
        "spikinglr-old": "top1", "spikinglr-new": "top1",
        "replay4ncl-old": "top1", "replay4ncl-new": "top1",
        "spikinglr-latency": "normalized latency",
        "replay4ncl-latency": "normalized latency",
        "spikinglr-energy": "normalized energy",
        "replay4ncl-energy": "normalized energy",
    }
    for name, values in table.items():
        result.add_series(Series(
            name=name, x=layers, y=tuple(values),
            x_label="LR insertion layer", y_label=labels[name],
        ))

    speedups = [
        s / r for s, r in zip(table["spikinglr-latency"], table["replay4ncl-latency"])
    ]
    savings = [
        1.0 - r / s for s, r in zip(table["spikinglr-energy"], table["replay4ncl-energy"])
    ]
    result.scalars["max_latency_speedup"] = max(speedups)
    result.scalars["max_energy_saving"] = max(savings)
    result.add_note(
        "paper markers: comparable accuracy (1), up to 2.34x speed-up (2), "
        "up to 56.7% energy saving (3)"
    )
    return result


# ----------------------------------------------------------------------
# Fig. 11: layer-3 profiles across epochs (headline accuracy)
# ----------------------------------------------------------------------

def fig11(ctx: ExperimentContext) -> ExperimentResult:
    """Layer-3 profiles across epochs (the headline accuracy figure).

    Old-task accuracy vs epoch (a) plus cumulative latency (b) and
    energy (c) at epoch checkpoints, for the headline insertion layer.
    Bars are normalized to SpikingLR at the first checkpoint, as in the
    paper ("Normalized to SOTA Epoch 10").
    """
    result = ExperimentResult(
        experiment_id="fig11",
        title="Epoch profiles at the headline LR insertion layer",
        scale=ctx.preset.name,
    )
    insertion = ctx.preset.experiment.ncl.insertion_layer
    profile = embedded_neuromorphic()
    latency_model = LatencyModel(profile)
    energy_model = EnergyModel(profile)

    sota = _run_spikinglr(ctx, insertion)
    ours = _run_replay4ncl(ctx, insertion)

    result.add_series(Series(
        name="spikinglr-old-acc", x=_epoch_axis(sota.history),
        y=tuple(sota.history.old_task_curve), x_label="epoch", y_label="top1",
    ))
    result.add_series(Series(
        name="replay4ncl-old-acc", x=_epoch_axis(ours.history),
        y=tuple(ours.history.old_task_curve), x_label="epoch", y_label="top1",
    ))

    epochs = len(sota.history)
    checkpoints = tuple(
        max(1, int(round(epochs * f))) for f in (0.2, 0.6, 1.0)
    )  # the paper's 10/30/50 of a 50-epoch run
    ref_latency = latency_model.cumulative_latency(sota, checkpoints[0])
    ref_energy = energy_model.cumulative_energy(sota, checkpoints[0])
    for label, run in (("spikinglr", sota), ("replay4ncl", ours)):
        result.add_series(Series(
            name=f"{label}-cumulative-latency", x=checkpoints,
            y=tuple(
                latency_model.cumulative_latency(run, c) / ref_latency
                for c in checkpoints
            ),
            x_label="epoch", y_label="normalized latency",
        ))
        result.add_series(Series(
            name=f"{label}-cumulative-energy", x=checkpoints,
            y=tuple(
                energy_model.cumulative_energy(run, c) / ref_energy
                for c in checkpoints
            ),
            x_label="epoch", y_label="normalized energy",
        ))

    result.scalars["spikinglr_final_old_acc"] = sota.final_old_accuracy
    result.scalars["replay4ncl_final_old_acc"] = ours.final_old_accuracy
    per_epoch_speedup = (
        latency_model.run_latency(sota, include_prepare=False)
        / latency_model.run_latency(ours, include_prepare=False)
    )
    result.scalars["per_epoch_latency_speedup"] = per_epoch_speedup

    # Time-to-quality: epochs each method needs to reach the SOTA final
    # old-task accuracy (minus a small tolerance), in cumulative seconds.
    target = sota.final_old_accuracy - 0.01
    sota_epoch = sota.history.epochs_to_reach(target, task="old")
    ours_epoch = ours.history.epochs_to_reach(target, task="old")
    if sota_epoch is not None and ours_epoch is not None:
        sota_time = latency_model.cumulative_latency(sota, sota_epoch + 1)
        ours_time = latency_model.cumulative_latency(ours, ours_epoch + 1)
        if ours_time > 0:
            result.scalars["time_to_quality_speedup"] = sota_time / ours_time
    result.scalars["energy_saving"] = 1.0 - (
        energy_model.run_energy(ours, include_prepare=False)
        / energy_model.run_energy(sota, include_prepare=False)
    )
    result.add_note(
        "paper markers: accuracy improvement for old tasks (4: 90.43% vs "
        "86.22%), latency saving (5, headline 4.88x incl. convergence), "
        "energy saving (6, headline 36.43%)"
    )
    return result


# ----------------------------------------------------------------------
# Fig. 12: latent memory sizes
# ----------------------------------------------------------------------

def fig12(ctx: ExperimentContext) -> ExperimentResult:
    """Latent memory across LR insertion layers 1..L-1.

    Normalized to SpikingLR at layer 1 (the paper omits layer 0, whose
    "latent" data is the raw input).  Only buffer generation runs — no
    training needed.
    """
    result = ExperimentResult(
        experiment_id="fig12",
        title="Latent memory: SpikingLR vs Replay4NCL",
        scale=ctx.preset.name,
    )
    exp = ctx.preset.experiment
    network = ctx.pretrained.network
    memory_model = LatentMemoryModel()
    replay = ctx.split.pretrain_train.sample_fraction(
        exp.ncl.replay_fraction, seeding.default_rng(exp.seed)
    )
    layers = tuple(range(1, network.num_weight_layers))

    sota_bytes, ours_bytes = [], []
    for lins in layers:
        sota_buffer = LatentReplayBuffer.generate(
            network, replay, insertion_layer=lins,
            timesteps=exp.pretrain.timesteps, compression_factor=2,
        )
        ours_buffer = LatentReplayBuffer.generate(
            network, replay, insertion_layer=lins,
            timesteps=exp.ncl.timesteps, compression_factor=1,
        )
        sota_bytes.append(memory_model.buffer_bytes(sota_buffer))
        ours_bytes.append(memory_model.buffer_bytes(ours_buffer))

    reference = sota_bytes[0]
    result.add_series(Series(
        name="spikinglr-memory", x=layers,
        y=tuple(b / reference for b in sota_bytes),
        x_label="LR insertion layer", y_label="normalized latent memory",
    ))
    result.add_series(Series(
        name="replay4ncl-memory", x=layers,
        y=tuple(b / reference for b in ours_bytes),
        x_label="LR insertion layer", y_label="normalized latent memory",
    ))
    savings = [1.0 - o / s for s, o in zip(sota_bytes, ours_bytes)]
    result.add_series(Series(
        name="memory-saving", x=layers, y=tuple(savings),
        x_label="LR insertion layer", y_label="fraction saved",
    ))
    result.scalars["min_saving"] = min(savings)
    result.scalars["max_saving"] = max(savings)
    result.add_note("paper: 20%-21.88% latent memory saving across layers")
    return result


# ----------------------------------------------------------------------
# Fig. 13: long-training convergence
# ----------------------------------------------------------------------

def fig13(ctx: ExperimentContext) -> ExperimentResult:
    """New-task accuracy over a 3x-longer training run.

    The paper's 150 epochs vs the usual 50: Replay4NCL's lower learning
    rate gives a smoother curve and equal-or-better late accuracy.
    """
    result = ExperimentResult(
        experiment_id="fig13",
        title="Long-training accuracy profiles (new task)",
        scale=ctx.preset.name,
    )
    insertion = ctx.preset.experiment.ncl.insertion_layer
    epochs = ctx.preset.experiment.ncl.epochs * 3
    sota = _run_spikinglr(ctx, insertion, epochs=epochs)
    ours = _run_replay4ncl(ctx, insertion, epochs=epochs)
    result.add_series(Series(
        name="spikinglr-new-acc", x=_epoch_axis(sota.history),
        y=tuple(sota.history.new_task_curve), x_label="epoch", y_label="top1",
    ))
    result.add_series(Series(
        name="replay4ncl-new-acc", x=_epoch_axis(ours.history),
        y=tuple(ours.history.new_task_curve), x_label="epoch", y_label="top1",
    ))

    def smoothness(curve: list[float]) -> float:
        """Mean absolute epoch-to-epoch change (lower = smoother)."""
        arr = np.asarray(curve)
        return float(np.abs(np.diff(arr)).mean()) if arr.size > 1 else 0.0

    result.scalars["spikinglr_final_new_acc"] = sota.final_new_accuracy
    result.scalars["replay4ncl_final_new_acc"] = ours.final_new_accuracy
    result.scalars["spikinglr_curve_roughness"] = smoothness(
        sota.history.new_task_curve
    )
    result.scalars["replay4ncl_curve_roughness"] = smoothness(
        ours.history.new_task_curve
    )
    result.add_note(
        "paper marker 7: Replay4NCL shows better learning convergence "
        "(smoother curve) thanks to the lower NCL learning rate"
    )
    return result


# ----------------------------------------------------------------------
# Headline table (abstract / §V key results)
# ----------------------------------------------------------------------

def headline(ctx: ExperimentContext) -> ExperimentResult:
    """The abstract's four numbers, at the headline insertion layer.

    Old-task Top-1 (ours vs SOTA), latency speed-up, latent memory
    saving, and energy saving.
    """
    result = ExperimentResult(
        experiment_id="headline",
        title="Headline comparison (paper abstract)",
        scale=ctx.preset.name,
    )
    insertion = ctx.preset.experiment.ncl.insertion_layer
    profile = embedded_neuromorphic()
    latency_model = LatencyModel(profile)
    energy_model = EnergyModel(profile)
    memory_model = LatentMemoryModel()

    sota = _run_spikinglr(ctx, insertion)
    ours = _run_replay4ncl(ctx, insertion)

    result.scalars["spikinglr_old_acc"] = sota.final_old_accuracy
    result.scalars["replay4ncl_old_acc"] = ours.final_old_accuracy
    result.scalars["spikinglr_new_acc"] = sota.final_new_accuracy
    result.scalars["replay4ncl_new_acc"] = ours.final_new_accuracy
    result.scalars["latency_speedup"] = latency_model.run_latency(
        sota, include_prepare=False
    ) / latency_model.run_latency(ours, include_prepare=False)
    result.scalars["memory_saving"] = memory_model.saving(
        sota.latent_storage_bytes, ours.latent_storage_bytes
    )
    result.scalars["energy_saving"] = 1.0 - (
        energy_model.run_energy(ours, include_prepare=False)
        / energy_model.run_energy(sota, include_prepare=False)
    )

    methods = ("spikinglr", "replay4ncl")
    result.add_series(Series(
        name="old-acc", x=methods,
        y=(sota.final_old_accuracy, ours.final_old_accuracy),
        x_label="method", y_label="top1",
    ))
    result.add_series(Series(
        name="new-acc", x=methods,
        y=(sota.final_new_accuracy, ours.final_new_accuracy),
        x_label="method", y_label="top1",
    ))
    result.add_series(Series(
        name="latent-bytes", x=methods,
        y=(float(sota.latent_storage_bytes), float(ours.latent_storage_bytes)),
        x_label="method", y_label="bytes",
    ))
    result.add_note(
        "paper: 90.43% vs 86.22% old-task top-1, 4.88x latency speed-up "
        "(incl. convergence), 20% latent memory saving, 36.43% energy saving"
    )
    return result


FIGURES = {
    "fig1a": fig1a,
    "fig2": fig2,
    "fig8": fig8,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "headline": headline,
}
