"""Name registry for NCL methods.

The scenario-first run API (:func:`repro.scenario.run_scenario`, the
``repro scenario run`` CLI) refers to methods by name instead of
hardcoding class references.  A *method factory* is any callable taking
an :class:`~repro.config.ExperimentConfig` and returning a fresh
:class:`~repro.core.strategies.NCLMethod`; the classes themselves
qualify.

Built-ins registered at import time:

- ``naive`` — :class:`~repro.core.strategies.NaiveFinetune`
- ``raw`` — :class:`~repro.core.raw_replay.RawInputReplay`
- ``spikinglr`` — :class:`~repro.core.spikinglr.SpikingLR`
- ``replay4ncl`` — :class:`~repro.core.replay4ncl.Replay4NCL`
"""

from __future__ import annotations

from typing import Callable

from repro.config import ExperimentConfig
from repro.core.raw_replay import RawInputReplay
from repro.core.replay4ncl import Replay4NCL
from repro.core.spikinglr import SpikingLR
from repro.core.strategies import NaiveFinetune, NCLMethod
from repro.errors import ConfigError

__all__ = ["register_method", "get_method", "available_methods"]

MethodFactory = Callable[[ExperimentConfig], NCLMethod]

_METHODS: dict[str, MethodFactory] = {}


def register_method(name: str, factory: MethodFactory) -> MethodFactory:
    """Register ``factory`` under ``name`` (re-registration replaces).

    Returns the factory so the call composes with class definitions::

        register_method("my-method", MyMethod)
    """
    if not name or not isinstance(name, str):
        raise ConfigError(f"method name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise ConfigError(f"method factory for {name!r} must be callable")
    _METHODS[name] = factory
    return factory


def get_method(name: str) -> MethodFactory:
    """Look up a method factory by registry name."""
    try:
        return _METHODS[name]
    except KeyError:
        raise ConfigError(
            f"unknown method {name!r}; available: {available_methods()}"
        ) from None


def available_methods() -> list[str]:
    """Sorted names of every registered method."""
    return sorted(_METHODS)


register_method("naive", NaiveFinetune)
register_method("raw", RawInputReplay)
register_method("spikinglr", SpikingLR)
register_method("replay4ncl", Replay4NCL)
