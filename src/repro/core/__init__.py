"""The paper's contribution: memory-replay NCL methods.

Three methods over the same pre-trained network and class-incremental
split:

- :class:`NaiveFinetune` — no replay; demonstrates catastrophic
  forgetting (paper Fig. 1a).
- :class:`SpikingLR` — the state-of-the-art comparator (Dequino et al.):
  latent replay at the pre-training timestep (T=100) with the Fig. 7
  compress/decompress cycle and a static threshold.
- :class:`Replay4NCL` — the paper's method: latent data generated and
  stored at a reduced timestep T* (no decompression), adaptive threshold
  potential, and a strongly reduced NCL learning rate (Alg. 1).

Entry points: :func:`~repro.core.pipeline.pretrain` builds the shared
pre-trained network; ``method.run(...)`` executes the NCL phase and
returns an :class:`NCLResult` carrying accuracy curves, latent-memory
stats and the op-count cost profile the hardware models consume.
Replay persistence is configured through one validated
:class:`~repro.core.replayspec.ReplaySpec` passed as ``replay=`` to
every entry point, and methods are addressable by registry name
(``naive`` / ``raw`` / ``spikinglr`` / ``replay4ncl`` — see
:mod:`repro.core.registry`) so scenario-level drivers like
:func:`repro.scenario.run_scenario` never hardcode class references.
"""

from repro.core.latent_replay import LatentReplayBuffer
from repro.core.pipeline import pretrain, run_method
from repro.core.raw_replay import RawInputReplay
from repro.core.registry import available_methods, get_method, register_method
from repro.core.replay4ncl import Replay4NCL
from repro.core.replayspec import ReplaySpec
from repro.core.sequential import (
    SequentialResult,
    iter_sequential_splits,
    make_sequential_splits,
    run_sequential,
)
from repro.core.spikinglr import SpikingLR
from repro.core.strategies import EpochCost, NCLMethod, NCLResult, NaiveFinetune

__all__ = [
    "LatentReplayBuffer",
    "NCLMethod",
    "NCLResult",
    "EpochCost",
    "NaiveFinetune",
    "RawInputReplay",
    "SpikingLR",
    "Replay4NCL",
    "ReplaySpec",
    "SequentialResult",
    "iter_sequential_splits",
    "make_sequential_splits",
    "run_sequential",
    "pretrain",
    "run_method",
    "register_method",
    "get_method",
    "available_methods",
]
