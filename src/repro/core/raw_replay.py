"""Raw-input rehearsal: the classic replay baseline latent replay improves on.

Rehearsal methods (§II-C) originally stored *raw input samples* of old
tasks and mixed them into training.  Latent replay [SpikingLR, this
paper] instead stores activations at an intermediate layer, which (a)
shrinks with the layer dimension and (b) lets the frozen front be
skipped at replay time.  This baseline quantifies both effects: it is
mechanically the ``insertion_layer = 0`` corner of the framework —
"latent" data at layer 0 *is* the raw input (paper Fig. 6) — but with
the whole network kept trainable, as classic rehearsal does.
"""

from __future__ import annotations

from repro.config import ExperimentConfig
from repro.core.strategies import NCLMethod

__all__ = ["RawInputReplay"]


class RawInputReplay(NCLMethod):
    """Rehearsal with raw input spikes; trains the full network."""

    name = "raw-input-replay"

    def __init__(self, config: ExperimentConfig, timesteps: int | None = None):
        super().__init__(config)
        self._timesteps = timesteps or config.pretrain.timesteps

    def insertion_layer(self) -> int:
        """Replay raw inputs: Lins = 0, nothing frozen."""
        return 0

    def ncl_timesteps(self) -> int:
        """Full pre-training resolution (no temporal reduction)."""
        return self._timesteps

    def learning_rate(self) -> float:
        """The pre-training rate, continued."""
        # Classic rehearsal simply continues training at the pre-training
        # rate (the mixed batch provides the stability, not the rate).
        # NCLConfig.base_learning_rate is calibrated for split-network
        # readout updates and does not transfer to full-network training.
        return self.config.pretrain.learning_rate

    def compression_factor(self) -> int:
        """No compression: raw binary rasters, stored bit-packed."""
        return 1

    def decompress_for_replay(self) -> bool:
        """Raw rasters train as stored; nothing to decompress."""
        return False
