"""Latent replay buffers: generation, compressed storage, materialisation.

A latent replay (LR) buffer holds the spike activations of the replay
subset ``TS_replay ⊆ TS_pre`` at the input of the LR insertion layer
(paper Fig. 6b).  It is generated once, by running the *frozen* front of
the pre-trained network (Alg. 1 lines 6-20), then replayed every NCL
epoch alongside the new-task activations.

Storage model
-------------
Stored rasters are binary, so the storage authority is the bit-packed
size (1 bit/cell) plus a fixed per-sample header (label + shape
metadata) — see :meth:`LatentReplayBuffer.storage_bytes`.  The Fig. 7
subsampling codec optionally reduces the stored frame count by its
factor; SpikingLR stores ``ceil(T/2)`` frames and zero-stuffs back to
``T`` for replay, Replay4NCL stores its reduced-timestep activations
as-is (factor 1, ``decompress=False``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.bitpack import BitpackCodec
from repro.compression.subsample import TemporalSubsampleCodec
from repro.data.datasets import SpikeDataset
from repro.errors import CodecError, ConfigError
from repro.replaystore.builder import SAMPLE_HEADER_BYTES
from repro.snn.network import SpikingNetwork
from repro.snn.threshold import ThresholdController

__all__ = [
    "LatentReplayBuffer",
    "HEADER_BYTES_PER_SAMPLE",
    "frozen_front_trace",
]


def _frozen_front_pass(
    network: SpikingNetwork,
    insertion_layer: int,
    inputs: np.ndarray,
    controller: ThresholdController | None = None,
):
    """Run the frozen front once; return ``(trace, final_activations)``.

    Layers are forced non-trainable for the pass so no tape is built.
    The shared engine of :func:`frozen_front_trace` (dense accounting)
    and the chunked generation loop in
    :meth:`LatentReplayBuffer.generate_into_store` — one implementation,
    so the op accounting the hw models consume can never diverge
    between the dense and streaming paths.
    """
    from repro.snn.network import _layer_controller
    from repro.snn.state import LayerTraceEntry, SpikeTrace

    network._check_layer_index(insertion_layer)
    trace = SpikeTrace()
    inputs = np.asarray(inputs)
    timesteps = int(inputs.shape[0])
    batch = int(inputs.shape[1])
    activations = inputs
    flags = [
        (layer, layer.trainable)
        for layer in network.hidden_layers[:insertion_layer]
    ]
    try:
        for layer, _ in flags:
            layer.set_trainable(False)
        for layer, _ in flags:
            out = layer.forward(activations, _layer_controller(controller, layer))
            trace.add(
                LayerTraceEntry(
                    name=layer.name,
                    n_in=layer.n_in,
                    n_out=layer.n_out,
                    recurrent=layer.recurrent,
                    input_spike_count=float(np.asarray(activations).sum()),
                    output_spike_count=float(out.data.sum()),
                    timesteps=timesteps,
                    batch=batch,
                )
            )
            activations = out.data
    finally:
        for layer, flag in flags:
            layer.set_trainable(flag)
    return trace, activations


def frozen_front_trace(
    network: SpikingNetwork,
    insertion_layer: int,
    inputs: np.ndarray,
    controller: ThresholdController | None = None,
):
    """Forward-only trace of the frozen front over ``inputs``.

    Runs layers ``0 .. insertion_layer-1`` purely for op accounting
    (spike counts per layer feed the hardware latency/energy models).
    ``controller`` must match whatever the accounted pass used (e.g. the
    generation controller for the latent-buffer trace) so the spike
    counts are faithful.  Returns an empty trace for
    ``insertion_layer=0`` (raw-input insertion has no frozen front).
    """
    trace, _ = _frozen_front_pass(network, insertion_layer, inputs, controller)
    return trace

#: Bytes of per-sample metadata (label id, sample length) charged by the
#: storage model on top of the packed payload.  Shared with the
#: replay-store budget accounting (the single authority lives in
#: :mod:`repro.replaystore.builder`).
HEADER_BYTES_PER_SAMPLE = SAMPLE_HEADER_BYTES


@dataclass
class LatentReplayBuffer:
    """Compressed latent activations of the replay subset.

    Attributes
    ----------
    compressed:
        ``[T_stored, N, C]`` binary raster of stored frames (time-major).
    labels:
        ``[N]`` labels of the replay samples.
    insertion_layer:
        Weight layer the activations feed (``Lins``).
    generated_timesteps:
        Timestep count the frozen part ran at during generation.
    codec:
        The temporal subsampling codec the buffer was stored with.
    """

    compressed: np.ndarray
    labels: np.ndarray
    insertion_layer: int
    generated_timesteps: int
    codec: TemporalSubsampleCodec

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        network: SpikingNetwork,
        replay_data: SpikeDataset,
        insertion_layer: int,
        timesteps: int,
        compression_factor: int = 1,
        controller: ThresholdController | None = None,
    ) -> "LatentReplayBuffer":
        """Run the frozen front on the replay subset and store the result.

        Parameters
        ----------
        network:
            The pre-trained network (its layers below ``insertion_layer``
            act as the frozen feature extractor).
        replay_data:
            ``TS_replay`` — the stored subset of the pre-training set.
        timesteps:
            Temporal resolution of generation: 100 for SpikingLR, the
            reduced ``T*`` for Replay4NCL.
        compression_factor:
            Fig. 7 subsampling factor applied before storage.
        controller:
            Optional adaptive threshold controller active while the
            frozen part generates activations (Alg. 1 lines 8-19).
        """
        if len(replay_data) == 0:
            raise ConfigError("replay dataset is empty")
        inputs = replay_data.to_dense(timesteps)
        activations = network.activations_at(
            insertion_layer, inputs, controller=controller
        )
        codec = TemporalSubsampleCodec(compression_factor)
        return cls(
            compressed=codec.compress(activations),
            labels=replay_data.labels.copy(),
            insertion_layer=insertion_layer,
            generated_timesteps=timesteps,
            codec=codec,
        )

    @classmethod
    def generate_into_store(
        cls,
        network: SpikingNetwork,
        replay_data: SpikeDataset,
        root,
        *,
        insertion_layer: int,
        timesteps: int,
        compression_factor: int = 1,
        controller: ThresholdController | None = None,
        shard_samples: int | None = None,
        overwrite: bool = False,
    ):
        """Generate latent data directly into an on-disk replay store.

        The streaming twin of :meth:`generate` + :meth:`to_store`: the
        replay subset is pushed through the frozen front in
        shard-samples-sized chunks, each chunk encoded and appended to
        the store immediately — so generation's peak resident latent
        memory is one shard, not the whole buffer, which is what lets a
        long task sequence persist every step without ever holding a
        dense per-task buffer (results are bitwise-identical to the
        dense path: per-sample dynamics are batch-independent).

        When ``controller`` is not None the adaptive threshold observes
        *batch-aggregated* spike statistics, so chunked generation would
        change the thresholds Alg. 1 lines 8-19 produce; generation then
        falls back to one dense pass (still released right after the
        store append).

        Returns ``(store, trace)`` where ``trace`` is the frozen-front
        :class:`~repro.snn.state.SpikeTrace` of the generation pass (the
        op-accounting input; empty for ``insertion_layer=0``).
        """
        from repro.replaystore.store import DEFAULT_SHARD_SAMPLES
        from repro.snn.state import LayerTraceEntry, SpikeTrace

        if len(replay_data) == 0:
            raise ConfigError("replay dataset is empty")
        network._check_layer_index(insertion_layer)
        chunk_samples = shard_samples or DEFAULT_SHARD_SAMPLES

        if controller is not None:
            buffer = cls.generate(
                network,
                replay_data,
                insertion_layer=insertion_layer,
                timesteps=timesteps,
                compression_factor=compression_factor,
                controller=controller,
            )
            store = buffer.to_store(
                root, shard_samples=chunk_samples, overwrite=overwrite
            )
            trace = frozen_front_trace(
                network,
                insertion_layer,
                replay_data.to_dense(timesteps),
                controller=controller,
            )
            return store, trace

        codec = TemporalSubsampleCodec(compression_factor)
        store = None
        chunk_traces = []
        for start in range(0, len(replay_data), chunk_samples):
            chunk = replay_data.subset(
                np.arange(start, min(start + chunk_samples, len(replay_data)))
            )
            chunk_trace, activations = _frozen_front_pass(
                network, insertion_layer, chunk.to_dense(timesteps)
            )
            chunk_traces.append(chunk_trace)
            compressed = codec.compress(
                np.asarray(activations, dtype=np.float32)
            )
            if store is None:
                from repro.replaystore.store import ReplayStore

                store = ReplayStore.create(
                    root,
                    stored_frames=compressed.shape[0],
                    num_channels=compressed.shape[2],
                    generated_timesteps=timesteps,
                    insertion_layer=insertion_layer,
                    codec_factor=compression_factor,
                    shard_samples=chunk_samples,
                    overwrite=overwrite,
                )
            store.append(compressed, chunk.labels)

        # Merge the per-chunk traces: spike counts sum across chunks,
        # the batch extent is the whole subset.
        trace = SpikeTrace()
        for i, first in enumerate(chunk_traces[0].entries):
            trace.add(
                LayerTraceEntry(
                    name=first.name,
                    n_in=first.n_in,
                    n_out=first.n_out,
                    recurrent=first.recurrent,
                    input_spike_count=sum(
                        t.entries[i].input_spike_count for t in chunk_traces
                    ),
                    output_spike_count=sum(
                        t.entries[i].output_spike_count for t in chunk_traces
                    ),
                    timesteps=timesteps,
                    batch=len(replay_data),
                )
            )
        return store, trace

    def __post_init__(self):
        if self.compressed.ndim != 3:
            raise CodecError(
                f"compressed buffer must be [T, N, C], got shape {self.compressed.shape}"
            )
        if self.labels.shape[0] != self.compressed.shape[1]:
            raise CodecError(
                f"{self.labels.shape[0]} labels for {self.compressed.shape[1]} samples"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        """Stored replay samples."""
        return int(self.compressed.shape[1])

    @property
    def num_channels(self) -> int:
        """Input channels per stored frame."""
        return int(self.compressed.shape[2])

    @property
    def stored_frames(self) -> int:
        """Frames kept per sample after compression."""
        return int(self.compressed.shape[0])

    def storage_bytes(self) -> int:
        """Latent memory footprint: bit-packed payload + per-sample headers.

        This is the quantity behind the paper's latent-memory comparison
        (Fig. 12): SpikingLR stores ``ceil(100/2) = 50`` frames/sample,
        Replay4NCL stores ``T* = 40`` — a 20% saving, slightly more once
        the fixed headers are amortised over fewer frames.
        """
        payload = BitpackCodec().packed_bytes(self.compressed.shape)
        return payload + HEADER_BYTES_PER_SAMPLE * self.num_samples

    # ------------------------------------------------------------------
    # Persistence (repro.replaystore)
    # ------------------------------------------------------------------
    def to_store(
        self,
        root,
        shard_samples: int | None = None,
        overwrite: bool = False,
    ) -> "ReplayStore":
        """Persist this buffer as a sharded on-disk replay store.

        The dense raster is chunked into shards of ``shard_samples``
        columns (``replaystore`` default when None), each encoded with
        the smaller of the bitpack/address-event codecs for its density.
        The returned store round-trips exactly: see :meth:`from_store`.
        """
        from repro.replaystore.store import DEFAULT_SHARD_SAMPLES, ReplayStore

        store = ReplayStore.create(
            root,
            stored_frames=self.stored_frames,
            num_channels=self.num_channels,
            generated_timesteps=self.generated_timesteps,
            insertion_layer=self.insertion_layer,
            codec_factor=self.codec.factor,
            shard_samples=shard_samples or DEFAULT_SHARD_SAMPLES,
            overwrite=overwrite,
        )
        store.append(self.compressed, self.labels)
        return store

    @classmethod
    def from_store(cls, root) -> "LatentReplayBuffer":
        """Rebuild the dense buffer from a store.

        The exact inverse of :meth:`to_store` — shard codecs are
        lossless.
        """
        from repro.replaystore.store import ReplayStore

        store = root if isinstance(root, ReplayStore) else ReplayStore.open(root)
        if store.num_samples == 0:
            raise ConfigError(f"store at {store.root} holds no samples")
        rasters, labels = [], []
        for shard_id in range(store.num_shards):
            raster, shard_labels = store.read_shard(shard_id)
            rasters.append(raster)
            labels.append(shard_labels)
        return cls(
            compressed=np.concatenate(rasters, axis=1),
            labels=np.concatenate(labels),
            insertion_layer=store.meta.insertion_layer,
            generated_timesteps=store.meta.generated_timesteps,
            codec=TemporalSubsampleCodec(store.meta.codec_factor),
        )

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def materialize(self, decompress: bool) -> np.ndarray:
        """Return the replay raster ``[T, N, C]`` for NCL training.

        ``decompress=True`` zero-stuffs back to ``generated_timesteps``
        (the SpikingLR cycle); ``decompress=False`` replays the stored
        frames directly (Replay4NCL — only valid when the codec factor is
        1, i.e. the stored frames already *are* the training resolution).
        """
        if decompress:
            return self.codec.decompress(self.compressed, self.generated_timesteps)
        if self.codec.factor != 1:
            raise CodecError(
                "cannot replay subsampled frames without decompression: "
                f"codec factor is {self.codec.factor}"
            )
        return self.compressed.astype(np.float32, copy=True)

    def decompressed_cells_per_replay(self, decompress: bool) -> int:
        """Raster cells written by one decompression pass (cost model)."""
        if not decompress:
            return 0
        return int(
            self.generated_timesteps * self.num_samples * self.num_channels
        )

    # ------------------------------------------------------------------
    # Budgeting
    # ------------------------------------------------------------------
    def fit_budget(
        self, max_bytes: int, rng: np.random.Generator
    ) -> "LatentReplayBuffer":
        """Return a copy whose storage fits ``max_bytes``.

        Embedded deployments cap latent memory; this drops whole samples
        — class-stratified, so every old class keeps at least one
        exemplar — until the bit-packed payload plus headers fits.
        Raises :class:`ConfigError` when even one sample per class
        exceeds the budget.
        """
        if max_bytes <= 0:
            raise ConfigError(f"max_bytes must be positive, got {max_bytes}")
        if self.storage_bytes() <= max_bytes:
            return self

        bytes_per_sample = (
            BitpackCodec().packed_bytes((self.stored_frames, 1, self.num_channels))
            + HEADER_BYTES_PER_SAMPLE
        )
        keep_total = max_bytes // bytes_per_sample
        classes = sorted(set(self.labels.tolist()))
        if keep_total < len(classes):
            raise ConfigError(
                f"budget of {max_bytes} B cannot hold one sample per class "
                f"({len(classes)} classes x {bytes_per_sample} B)"
            )

        # Round-robin over classes so the kept set stays balanced.
        per_class = {
            c: rng.permutation(np.flatnonzero(self.labels == c)).tolist()
            for c in classes
        }
        chosen: list[int] = []
        while len(chosen) < keep_total and any(per_class.values()):
            for c in classes:
                if per_class[c] and len(chosen) < keep_total:
                    chosen.append(per_class[c].pop())
        chosen.sort()
        return LatentReplayBuffer(
            compressed=self.compressed[:, chosen, :].copy(),
            labels=self.labels[chosen].copy(),
            insertion_layer=self.insertion_layer,
            generated_timesteps=self.generated_timesteps,
            codec=self.codec,
        )
