"""The SpikingLR state-of-the-art comparator (Dequino et al., ISVLSI 2024).

Reimplemented from its description in the Replay4NCL paper (§I-A, §II-C,
Fig. 7):

- NCL phase runs at the **pre-training timestep** (T = 100) — the source
  of its latency/energy overheads (paper Fig. 2a).
- Latent replay data is generated at T, compressed with the Fig. 7
  temporal subsampling codec (factor 2, storing ``ceil(T/2)`` frames),
  and **decompressed back to T frames** (zero-stuffed) for every replay.
- Static neuron threshold (the pre-trained ``Vthr``).
- NCL learning rate ``eta_pre / 10`` — a conventional fine-tuning
  reduction; the paper contrasts this against Replay4NCL's much lower
  ``eta_pre / 100``.
"""

from __future__ import annotations

from repro.config import ExperimentConfig
from repro.core.strategies import NCLMethod

__all__ = ["SpikingLR"]

#: Fig. 7 subsampling factor used by the comparator's storage path.
SPIKINGLR_COMPRESSION_FACTOR = 2

#: Conventional fine-tuning LR reduction used by the comparator.
SPIKINGLR_LR_DIVISOR = 10.0


class SpikingLR(NCLMethod):
    """Latent replay at full timestep with compress/decompress storage."""

    name = "spikinglr"

    def __init__(self, config: ExperimentConfig, timesteps: int | None = None):
        """``timesteps`` overrides the NCL resolution.

        The paper's case study runs SpikingLR at reduced timesteps to
        expose Observation A — accuracy collapse without compensation.
        """
        super().__init__(config)
        self._timesteps = timesteps or config.pretrain.timesteps

    def ncl_timesteps(self) -> int:
        """Full pre-training resolution (SpikingLR's default regime)."""
        return self._timesteps

    def learning_rate(self) -> float:
        """Conventional fine-tuning reduction: eta_pre / 10."""
        return self.base_eta() / SPIKINGLR_LR_DIVISOR

    def compression_factor(self) -> int:
        """Fig. 7's 2x compress/decompress storage cycle."""
        return SPIKINGLR_COMPRESSION_FACTOR

    def decompress_for_replay(self) -> bool:
        """SpikingLR decompresses its latent data every epoch."""
        return True
