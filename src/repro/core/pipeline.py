"""End-to-end Alg. 1: pre-training + NCL phase orchestration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ExperimentConfig
from repro.core.replayspec import ReplaySpec, resolve_replay_spec
from repro.core.strategies import NCLMethod, NCLResult
from repro.data.tasks import ClassIncrementalSplit
from repro.seeding import spawn
from repro.snn.network import SpikingNetwork
from repro.snn.state import SpikeTrace
from repro.training.metrics import TrainingHistory, top1_accuracy
from repro.training.optimizers import Adam
from repro.training.trainer import Trainer, TrainerConfig

__all__ = ["PretrainResult", "pretrain", "run_method"]


@dataclass
class PretrainResult:
    """The shared pre-trained model plus its telemetry."""

    network: SpikingNetwork
    history: TrainingHistory
    test_accuracy: float
    epoch_traces: list[list[SpikeTrace]]


def pretrain(
    config: ExperimentConfig, split: ClassIncrementalSplit
) -> PretrainResult:
    """Alg. 1 lines 1-5: train the network on the old classes.

    Runs at ``config.pretrain.timesteps`` with ``eta_pre`` on the 19
    pre-training classes.  Every NCL method starts from a clone of the
    resulting network, so one pre-training run serves a whole sweep.
    """
    network = SpikingNetwork(config.network, seed=config.seed)
    inputs = split.pretrain_train.to_dense(config.pretrain.timesteps)
    labels = split.pretrain_train.labels
    optimizer = Adam(network.trainable_parameters(), config.pretrain.learning_rate)
    trainer = Trainer(
        network,
        optimizer,
        TrainerConfig(
            epochs=config.pretrain.epochs, batch_size=config.pretrain.batch_size
        ),
        rng=spawn(config.seed, "pretrain"),
    )
    history = trainer.fit(inputs, labels)

    test_inputs = split.pretrain_test.to_dense(config.pretrain.timesteps)
    accuracy = top1_accuracy(
        network.predict(test_inputs), split.pretrain_test.labels
    )
    return PretrainResult(
        network=network,
        history=history,
        test_accuracy=accuracy,
        epoch_traces=trainer.epoch_traces,
    )


def run_method(
    method: NCLMethod,
    pretrained: PretrainResult | SpikingNetwork,
    split: ClassIncrementalSplit,
    replay: ReplaySpec | None = None,
) -> NCLResult:
    """Run one NCL method from a shared pre-trained model.

    ``replay`` is a :class:`~repro.core.replayspec.ReplaySpec` (or a
    bare store path): with ``store_dir`` set it routes replay through an
    on-disk :class:`~repro.replaystore.store.ReplayStore` instead of the
    dense in-memory buffer (see :meth:`NCLMethod.run`).
    """
    replay = resolve_replay_spec(replay)
    network = (
        pretrained.network if isinstance(pretrained, PretrainResult) else pretrained
    )
    return method.run(network, split, replay=replay)
