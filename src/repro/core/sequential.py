"""Sequential (multi-step) class-incremental learning.

The paper evaluates one continual step (19 classes -> +1).  Deployed
agents face a *stream* of new classes; this module chains NCL steps:

- step k learns new-class set k starting from the network trained at
  step k-1;
- the replay pool for step k covers **all classes seen so far** —
  including classes learned continually in earlier steps, whose latent
  data is regenerated from their training recordings through the frozen
  front (the frozen layers never change, so regeneration is exact).

This is the natural extension of Alg. 1 and the stress test for the
paper's parameter adjustments: forgetting can now compound across steps.

Long sequences should not hold replay densely: pass ``store_root`` to
persist every step's latent data as a member of a
:class:`~repro.replaystore.federation.FederatedReplayStore` — each step
trains through a lazy (optionally prefetching) shard stream, so peak
resident replay memory stays bounded by the shard size no matter how
many tasks the stream brings, and an optional global byte budget is
enforced across all steps' stores by cross-member eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.strategies import NCLMethod, NCLResult
from repro.data.synthetic_shd import SyntheticSHD
from repro.data.tasks import ClassIncrementalSplit
from repro.errors import DataError
from repro.snn.network import SpikingNetwork

__all__ = ["SequentialResult", "make_sequential_splits", "run_sequential"]


@dataclass(frozen=True)
class SequentialResult:
    """Outcome of a multi-step scenario."""

    steps: tuple[NCLResult, ...]
    #: Root of the per-step replay-store federation when the run was
    #: store-backed (``store_root``); None for dense in-memory runs.
    store_root: str | None = None

    @property
    def final_network(self) -> SpikingNetwork:
        network = self.steps[-1].network
        if network is None:
            raise DataError("final step carries no network")
        return network

    @property
    def old_accuracy_trajectory(self) -> tuple[float, ...]:
        """Old-task accuracy after each step (forgetting accumulation)."""
        return tuple(step.final_old_accuracy for step in self.steps)

    @property
    def new_accuracy_trajectory(self) -> tuple[float, ...]:
        return tuple(step.final_new_accuracy for step in self.steps)

    def describe(self) -> str:
        lines = [f"sequential scenario: {len(self.steps)} steps"]
        for i, step in enumerate(self.steps):
            lines.append(
                f"  step {i}: old={step.final_old_accuracy:.3f} "
                f"new={step.final_new_accuracy:.3f} "
                f"overall={step.final_overall_accuracy:.3f}"
            )
        return "\n".join(lines)


def make_sequential_splits(
    generator: SyntheticSHD,
    samples_per_class: int,
    test_samples_per_class: int,
    base_classes: int,
    steps: int,
    classes_per_step: int = 1,
) -> list[ClassIncrementalSplit]:
    """Build one :class:`ClassIncrementalSplit` per continual step.

    Step k's "old" pool holds the base classes plus everything learned
    in steps ``< k`` (so replay regeneration covers all seen classes);
    its "new" set holds the next ``classes_per_step`` class ids.
    """
    num_classes = generator.config.num_classes
    needed = base_classes + steps * classes_per_step
    if base_classes <= 0 or steps <= 0 or classes_per_step <= 0:
        raise DataError("base_classes, steps and classes_per_step must be positive")
    if needed > num_classes:
        raise DataError(
            f"scenario needs {needed} classes but the generator has {num_classes}"
        )

    splits = []
    for k in range(steps):
        seen = list(range(base_classes + k * classes_per_step))
        new = list(
            range(
                base_classes + k * classes_per_step,
                base_classes + (k + 1) * classes_per_step,
            )
        )
        splits.append(
            ClassIncrementalSplit(
                pretrain_train=generator.generate_dataset(
                    samples_per_class, split="train", classes=seen
                ),
                pretrain_test=generator.generate_dataset(
                    test_samples_per_class, split="test", classes=seen
                ),
                new_train=generator.generate_dataset(
                    samples_per_class, split="train", classes=new
                ),
                new_test=generator.generate_dataset(
                    test_samples_per_class, split="test", classes=new
                ),
                old_classes=tuple(seen),
                new_classes=tuple(new),
            )
        )
    return splits


def run_sequential(
    method_factory,
    pretrained,
    splits: list[ClassIncrementalSplit],
    *,
    store_root: str | Path | None = None,
    store_shard_samples: int | None = None,
    store_overwrite: bool = False,
    prefetch: bool | None = None,
    federation_budget_bytes: int | None = None,
    federation_policy: str = "class-balanced",
    federation_seed: int = 0,
) -> SequentialResult:
    """Chain NCL steps: each starts from the previous step's network.

    ``method_factory`` is called once per step (``factory(step_index)``)
    so policies may vary along the stream; return a fresh
    :class:`NCLMethod` each time.  ``pretrained`` is the starting
    network — a :class:`SpikingNetwork` or a
    :class:`~repro.core.pipeline.PretrainResult` (unwrapped like
    :func:`~repro.core.pipeline.run_method` does).

    Parameters
    ----------
    store_root:
        Directory for the store-backed path: step k persists its latent
        replay data as member store ``store_root/step-<k>`` of a
        :class:`~repro.replaystore.federation.FederatedReplayStore`
        instead of holding a dense per-task buffer, and trains through a
        lazy shard stream — peak resident replay memory is bounded by
        the stream's two-shard decode cache (``2 * store_shard_samples``
        dense samples) for *every* step of an arbitrary-length task
        stream.  Training trajectories are bitwise-identical to the
        dense path at the same seed.
    store_shard_samples / prefetch:
        Forwarded to each step's :meth:`NCLMethod.run` (shard decode
        granularity; async shard prefetch, ``None`` = the
        ``REPRO_PREFETCH`` environment switch).
    store_overwrite:
        Replace an existing federation (and its member stores) at
        ``store_root`` instead of refusing to clobber it — the re-run
        switch for a crashed or repeated scenario.
    federation_budget_bytes:
        Optional global byte budget over *all* steps' stores together.
        After each step the federation rebalances: every stored sample
        is re-admitted through ``federation_policy`` (class-balanced by
        default) and losers are evicted across member stores, so the
        archived replay memory never exceeds the budget no matter how
        long the sequence runs.  The just-trained step is rebalanced
        *after* its training finished — the budget caps the persistent
        archive, never perturbing the current step's replay set.
    federation_policy / federation_seed:
        Eviction policy name and RNG seed of the rebalance passes.
    """
    if not splits:
        raise DataError("need at least one split")
    from repro.core.pipeline import PretrainResult

    if isinstance(pretrained, PretrainResult):
        pretrained = pretrained.network
    federation = None
    if store_root is not None:
        from repro.replaystore.federation import FederatedReplayStore

        store_root = Path(store_root)
        federation = FederatedReplayStore.create(
            store_root,
            budget_bytes=federation_budget_bytes,
            policy=federation_policy,
            seed=federation_seed,
            overwrite=store_overwrite,
        )
    network = pretrained
    results = []
    for k, split in enumerate(splits):
        method: NCLMethod = method_factory(k)
        if federation is not None:
            member = f"step-{k:03d}"
            result = method.run(
                network,
                split,
                replay_store_dir=store_root / member,
                store_shard_samples=store_shard_samples,
                store_overwrite=store_overwrite,
                prefetch=prefetch,
            )
            if result.replay_store_path is not None:
                federation.adopt(member)
                federation.rebalance()
        else:
            result = method.run(network, split)
        if result.network is None:
            raise DataError("method did not return its trained network")
        results.append(result)
        network = result.network
    return SequentialResult(
        steps=tuple(results),
        store_root=str(store_root) if federation is not None else None,
    )
