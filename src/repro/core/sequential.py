"""Sequential (multi-step) class-incremental learning.

The paper evaluates one continual step (19 classes -> +1).  Deployed
agents face a *stream* of new classes; this module chains NCL steps:

- step k learns new-class set k starting from the network trained at
  step k-1;
- the replay pool for step k covers **all classes seen so far** —
  including classes learned continually in earlier steps, whose latent
  data is regenerated from their training recordings through the frozen
  front (the frozen layers never change, so regeneration is exact).

This is the natural extension of Alg. 1 and the stress test for the
paper's parameter adjustments: forgetting can now compound across steps.

Long sequences should not hold replay densely: pass
``replay=ReplaySpec(store_dir=...)`` to persist every step's latent
data as a member of a
:class:`~repro.replaystore.federation.FederatedReplayStore` — each step
trains through a lazy (optionally prefetching) shard stream, so peak
resident replay memory stays bounded by the shard size no matter how
many tasks the stream brings, and an optional global byte budget is
enforced across all steps' stores by cross-member eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.replayspec import ReplaySpec, resolve_replay_spec
from repro.core.strategies import NCLMethod, NCLResult
from repro.data.synthetic_shd import SyntheticSHD
from repro.data.tasks import ClassIncrementalSplit
from repro.errors import DataError
from repro.snn.network import SpikingNetwork

__all__ = [
    "SequentialResult",
    "iter_sequential_splits",
    "make_sequential_splits",
    "run_sequential",
]


def create_federation(replay: "ReplaySpec | None"):
    """Open the per-step store federation of a store-backed spec.

    Returns ``None`` for dense specs.  Shared by :func:`run_sequential`
    and :func:`repro.scenario.run_scenario`, so both entry points build
    byte-for-byte identical federations from the same ``ReplaySpec``.
    """
    if replay is None or not replay.store_backed:
        return None
    from repro.replaystore.federation import FederatedReplayStore

    return FederatedReplayStore.create(
        Path(replay.store_dir),
        budget_bytes=replay.federation_budget_bytes,
        policy=replay.federation_policy,
        seed=replay.federation_seed,
        overwrite=replay.overwrite,
    )


def run_chained_step(
    method: NCLMethod,
    network,
    split: ClassIncrementalSplit,
    *,
    index: int,
    replay: "ReplaySpec | None",
    federation,
) -> NCLResult:
    """Run one step of a chained scenario and validate its result.

    The single authority for per-step federation plumbing: member
    ``step-<index>`` is written under the federation root, adopted, and
    the federation rebalanced *after* the step trained (the budget caps
    the archive, never the current step's replay set).  Used by both
    :func:`run_sequential` and :func:`repro.scenario.run_scenario` so
    their trajectories cannot drift apart.
    """
    if federation is not None:
        member = f"step-{index:03d}"
        result = method.run(network, split, replay=replay.member(member))
        if result.replay_store_path is not None:
            federation.adopt(member)
            federation.rebalance()
    else:
        result = method.run(network, split)
    if result.network is None:
        raise DataError("method did not return its trained network")
    return result


@dataclass(frozen=True)
class SequentialResult:
    """Outcome of a multi-step scenario."""

    steps: tuple[NCLResult, ...]
    #: Root of the per-step replay-store federation when the run was
    #: store-backed (``store_root``); None for dense in-memory runs.
    store_root: str | None = None

    @property
    def final_network(self) -> SpikingNetwork:
        """Network state after the last step (raises when not retained)."""
        network = self.steps[-1].network
        if network is None:
            raise DataError("final step carries no network")
        return network

    @property
    def old_accuracy_trajectory(self) -> tuple[float, ...]:
        """Old-task accuracy after each step (forgetting accumulation)."""
        return tuple(step.final_old_accuracy for step in self.steps)

    @property
    def new_accuracy_trajectory(self) -> tuple[float, ...]:
        """New-task accuracy after each step (plasticity trajectory)."""
        return tuple(step.final_new_accuracy for step in self.steps)

    def describe(self) -> str:
        """Multi-line human-readable summary of the run."""
        lines = [f"sequential scenario: {len(self.steps)} steps"]
        for i, step in enumerate(self.steps):
            lines.append(
                f"  step {i}: old={step.final_old_accuracy:.3f} "
                f"new={step.final_new_accuracy:.3f} "
                f"overall={step.final_overall_accuracy:.3f}"
            )
        return "\n".join(lines)


def iter_sequential_splits(
    generator: SyntheticSHD,
    samples_per_class: int,
    test_samples_per_class: int,
    base_classes: int,
    steps: int,
    classes_per_step: int = 1,
):
    """Lazily yield one :class:`ClassIncrementalSplit` per continual step.

    Step k's "old" pool holds the base classes plus everything learned
    in steps ``< k`` (so replay regeneration covers all seen classes);
    its "new" set holds the next ``classes_per_step`` class ids.

    Step k's datasets materialise only when the iterator reaches it
    (:meth:`~repro.data.synthetic_shd.SyntheticSHD.generate_dataset`
    derives every sample from ``(seed, class, sample)`` alone, so lazy
    and eager construction are bitwise-identical) — long streams never
    hold all their data at once.  Parameters are validated eagerly, at
    call time.
    """
    num_classes = generator.config.num_classes
    needed = base_classes + steps * classes_per_step
    if base_classes <= 0 or steps <= 0 or classes_per_step <= 0:
        raise DataError("base_classes, steps and classes_per_step must be positive")
    if needed > num_classes:
        raise DataError(
            f"scenario needs {needed} classes but the generator has {num_classes}"
        )

    def generate():
        for k in range(steps):
            seen = list(range(base_classes + k * classes_per_step))
            new = list(
                range(
                    base_classes + k * classes_per_step,
                    base_classes + (k + 1) * classes_per_step,
                )
            )
            yield ClassIncrementalSplit(
                pretrain_train=generator.generate_dataset(
                    samples_per_class, split="train", classes=seen
                ),
                pretrain_test=generator.generate_dataset(
                    test_samples_per_class, split="test", classes=seen
                ),
                new_train=generator.generate_dataset(
                    samples_per_class, split="train", classes=new
                ),
                new_test=generator.generate_dataset(
                    test_samples_per_class, split="test", classes=new
                ),
                old_classes=tuple(seen),
                new_classes=tuple(new),
            )

    return generate()


def make_sequential_splits(
    generator: SyntheticSHD,
    samples_per_class: int,
    test_samples_per_class: int,
    base_classes: int,
    steps: int,
    classes_per_step: int = 1,
) -> list[ClassIncrementalSplit]:
    """Eager list form of :func:`iter_sequential_splits` (same splits)."""
    return list(
        iter_sequential_splits(
            generator,
            samples_per_class,
            test_samples_per_class,
            base_classes=base_classes,
            steps=steps,
            classes_per_step=classes_per_step,
        )
    )


def run_sequential(
    method_factory,
    pretrained,
    splits: list[ClassIncrementalSplit],
    *,
    replay: ReplaySpec | None = None,
) -> SequentialResult:
    """Chain NCL steps: each starts from the previous step's network.

    ``method_factory`` is called once per step (``factory(step_index)``)
    so policies may vary along the stream; return a fresh
    :class:`NCLMethod` each time.  ``pretrained`` is the starting
    network — a :class:`SpikingNetwork` or a
    :class:`~repro.core.pipeline.PretrainResult` (unwrapped like
    :func:`~repro.core.pipeline.run_method` does).

    ``replay`` is a :class:`~repro.core.replayspec.ReplaySpec` (or a
    bare federation root path).  With ``store_dir`` set, step k persists
    its latent replay data as member store ``store_dir/step-<k>`` of a
    :class:`~repro.replaystore.federation.FederatedReplayStore` instead
    of holding a dense per-task buffer, and trains through a lazy shard
    stream — peak resident replay memory is bounded by the stream's
    two-shard decode cache (``2 * spec.shard_samples`` dense samples)
    for *every* step of an arbitrary-length task stream, while training
    trajectories stay bitwise-identical to the dense path at the same
    seed.  ``spec.overwrite`` replaces an existing federation (the
    re-run switch); ``spec.federation_budget_bytes`` caps the persistent
    archive across *all* steps' stores together — after each step the
    federation rebalances through ``spec.federation_policy`` (seeded by
    ``spec.federation_seed``) and losers are evicted across member
    stores.  The just-trained step is rebalanced *after* its training
    finished, so the budget never perturbs the current step's replay
    set.
    """
    if not splits:
        raise DataError("need at least one split")
    replay = resolve_replay_spec(replay)
    if replay is None:
        replay = ReplaySpec()
    from repro.core.pipeline import PretrainResult

    if isinstance(pretrained, PretrainResult):
        pretrained = pretrained.network
    federation = create_federation(replay)
    network = pretrained
    results = []
    for k, split in enumerate(splits):
        method: NCLMethod = method_factory(k)
        result = run_chained_step(
            method, network, split, index=k, replay=replay, federation=federation
        )
        results.append(result)
        network = result.network
    return SequentialResult(
        steps=tuple(results),
        store_root=str(replay.store_dir) if federation is not None else None,
    )
