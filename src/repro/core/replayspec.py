"""`ReplaySpec`: one validated object for all replay/store configuration.

Before this module existed, replay persistence was configured through a
sprawl of keyword arguments copy-pasted across :meth:`NCLMethod.run`,
:func:`run_method`, and :func:`run_sequential`.  Every new entry point
had to forward all seven knobs, and every new knob meant touching three
signatures.

:class:`ReplaySpec` consolidates them: one frozen, validated dataclass
passed as ``replay=`` to every run entry point.  ``ReplaySpec()`` (all
defaults) means *dense in-memory replay* — identical to passing nothing.
A spec with ``store_dir`` set routes replay through the on-disk
:mod:`repro.replaystore` machinery; the federation fields only apply to
multi-step runs (:func:`~repro.core.sequential.run_sequential`,
:func:`~repro.scenario.run_scenario`), where ``store_dir`` names the
federation root and each step persists into a member store beneath it.

The legacy kwargs shipped one deprecation cycle as warning shims and
are gone: every entry point takes ``replay=`` only, normalized through
:func:`resolve_replay_spec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError

__all__ = ["ReplaySpec", "resolve_replay_spec"]


@dataclass(frozen=True)
class ReplaySpec:
    """Where and how replay memory persists during an NCL run.

    Attributes
    ----------
    store_dir:
        Directory of the on-disk replay store.  ``None`` (default) keeps
        replay dense in memory.  For single runs this is the
        :class:`~repro.replaystore.store.ReplayStore` root; for
        multi-step runs it is the
        :class:`~repro.replaystore.federation.FederatedReplayStore` root
        and each step writes member store ``step-<k>`` beneath it.
    shard_samples:
        Samples per shard (decode granularity) of the store-backed path;
        ``None`` keeps the store default.
    overwrite:
        Replace an existing store/federation at ``store_dir`` instead of
        refusing to clobber it (the re-run switch).
    prefetch:
        Async shard prefetch on the store-backed path: ``True``/``False``
        force it, ``None`` defers to the ``REPRO_PREFETCH`` environment
        switch.  Output is bitwise-identical either way.
    federation_budget_bytes:
        Optional global byte budget enforced across all steps' member
        stores by cross-member eviction (multi-step runs only).
    federation_policy:
        Eviction policy of the federation rebalance passes
        (``fifo`` | ``reservoir`` | ``class-balanced``).
    federation_seed:
        RNG seed of the rebalance passes.
    """

    store_dir: str | Path | None = None
    shard_samples: int | None = None
    overwrite: bool = False
    prefetch: bool | None = None
    federation_budget_bytes: int | None = None
    federation_policy: str = "class-balanced"
    federation_seed: int = 0

    def __post_init__(self):
        if self.store_dir is not None:
            object.__setattr__(self, "store_dir", Path(self.store_dir))
        if self.shard_samples is not None and self.shard_samples <= 0:
            raise ConfigError(
                f"shard_samples must be positive, got {self.shard_samples}"
            )
        if (
            self.federation_budget_bytes is not None
            and self.federation_budget_bytes <= 0
        ):
            raise ConfigError(
                "federation_budget_bytes must be positive, got "
                f"{self.federation_budget_bytes}"
            )
        # Fail at construction on a misspelled policy, not steps later
        # when the first rebalance runs.
        from repro.replaystore.policies import get_policy

        try:
            get_policy(self.federation_policy)
        except Exception as error:
            raise ConfigError(
                f"unknown federation_policy {self.federation_policy!r}"
            ) from error
        if self.store_dir is None:
            stray = [
                name
                for name, value in (
                    ("shard_samples", self.shard_samples),
                    ("prefetch", self.prefetch),
                    ("federation_budget_bytes", self.federation_budget_bytes),
                )
                if value is not None
            ]
            if self.overwrite:
                stray.append("overwrite")
            if self.federation_policy != "class-balanced":
                stray.append("federation_policy")
            if self.federation_seed != 0:
                stray.append("federation_seed")
            if stray:
                raise ConfigError(
                    f"replay options {stray} require store_dir (a dense "
                    "in-memory run has no store to configure)"
                )

    @property
    def store_backed(self) -> bool:
        """Whether replay persists on disk instead of staying dense."""
        return self.store_dir is not None

    @property
    def has_federation_options(self) -> bool:
        """Whether any multi-step federation field departs from default."""
        return (
            self.federation_budget_bytes is not None
            or self.federation_policy != "class-balanced"
            or self.federation_seed != 0
        )

    def member(self, name: str) -> "ReplaySpec":
        """Spec for one federation member store under ``store_dir``.

        Multi-step runners hand each step this per-member view: the same
        shard/overwrite/prefetch settings, rooted at
        ``store_dir/<name>``, with the federation-level fields stripped
        (the runner, not the per-step method, owns the federation).
        """
        if self.store_dir is None:
            raise ConfigError("member() requires a store-backed spec")
        return ReplaySpec(
            store_dir=Path(self.store_dir) / name,
            shard_samples=self.shard_samples,
            overwrite=self.overwrite,
            prefetch=self.prefetch,
        )

    def describe(self) -> str:
        """One-line human-readable summary of the spec."""
        if not self.store_backed:
            return "dense in-memory replay"
        parts = [f"store-backed replay at {self.store_dir}"]
        if self.shard_samples is not None:
            parts.append(f"{self.shard_samples} samples/shard")
        if self.federation_budget_bytes is not None:
            parts.append(f"budget {self.federation_budget_bytes} B")
        return ", ".join(parts)


def resolve_replay_spec(
    replay: "ReplaySpec | str | Path | None",
) -> ReplaySpec | None:
    """Normalize the ``replay=`` argument of a run entry point.

    A bare path is promoted to ``ReplaySpec(store_dir=path)``; a spec
    passes through; anything else non-``None`` is a
    :class:`ConfigError`.
    """
    if isinstance(replay, (str, Path)):
        replay = ReplaySpec(store_dir=replay)
    if replay is not None and not isinstance(replay, ReplaySpec):
        raise ConfigError(
            f"replay must be a ReplaySpec or a store path, got {type(replay).__name__}"
        )
    return replay
