"""NCL method interface, shared result containers, and the naive baseline.

Every method runs the same protocol against a pre-trained network and a
:class:`~repro.data.tasks.ClassIncrementalSplit`:

1. ``prepare`` — freeze layers, generate/store latent replay data.
2. ``train`` — run the NCL epochs, recording old/new task accuracy after
   each epoch plus the op-count cost profile.

The cost profile (:class:`EpochCost`) is the bridge to :mod:`repro.hw`:
it captures *what was computed* (forward traces of the learning part,
frozen-part inference, codec work) so latency/energy are derived from
actual simulated activity, not assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.config import ExperimentConfig
from repro.core.latent_replay import LatentReplayBuffer
from repro.core.replayspec import ReplaySpec, resolve_replay_spec
from repro.data.tasks import ClassIncrementalSplit
from repro.errors import ConfigError
from repro.seeding import spawn
from repro.snn.network import SpikingNetwork
from repro.snn.state import SpikeTrace
from repro.snn.threshold import ThresholdController
from repro.training.metrics import TrainingHistory, top1_accuracy
from repro.training.optimizers import Adam
from repro.training.trainer import Trainer, TrainerConfig

__all__ = ["EpochCost", "NCLResult", "NCLMethod", "NaiveFinetune"]


@dataclass
class EpochCost:
    """Op-count inputs of one NCL epoch for the hardware models.

    Attributes
    ----------
    train_traces:
        Forward traces of the training passes (learning part); the
        hardware model charges forward + backward for these.
    frozen_traces:
        Inference traces of the frozen part (Alg. 1 line 23 runs it every
        epoch on the current data) — forward cost only.
    decompressed_cells:
        Raster cells written by latent-data decompression this epoch
        (SpikingLR's Fig. 7 cycle; 0 for Replay4NCL).
    timesteps:
        The temporal resolution the epoch ran at.
    """

    train_traces: list[SpikeTrace] = field(default_factory=list)
    frozen_traces: list[SpikeTrace] = field(default_factory=list)
    decompressed_cells: int = 0
    timesteps: int = 0


@dataclass
class NCLResult:
    """Everything one NCL run produces.

    ``network`` is the trained clone (the pre-trained input network is
    never mutated); sequential multi-task scenarios chain on it.
    """

    method: str
    insertion_layer: int
    timesteps: int
    history: TrainingHistory
    final_old_accuracy: float
    final_new_accuracy: float
    final_overall_accuracy: float
    latent_storage_bytes: int
    latent_stored_frames: int
    epoch_costs: list[EpochCost]
    prepare_cost: EpochCost
    network: "SpikingNetwork | None" = None
    #: Directory of the on-disk replay store when the run used the
    #: store-backed path (``ReplaySpec.store_dir``); None for in-memory runs.
    replay_store_path: str | None = None
    #: Measured high-water mark of decoded replay bytes resident during
    #: store-backed training (the stream's LRU residency); 0 for
    #: in-memory runs, where the whole buffer is always resident.
    replay_peak_resident_bytes: int = 0
    #: Spans + metrics this run recorded (see :mod:`repro.obs`); None
    #: unless tracing was enabled (``REPRO_TRACE``/``obs.use_recorder``).
    trace: obs.TraceReport | None = None

    def summary(self) -> str:
        """One-line human-readable digest of the run."""
        return (
            f"{self.method} (Lins={self.insertion_layer}, T={self.timesteps}): "
            f"old={self.final_old_accuracy:.4f} new={self.final_new_accuracy:.4f} "
            f"overall={self.final_overall_accuracy:.4f} "
            f"latent={self.latent_storage_bytes} B"
        )


class NCLMethod:
    """Template for NCL methods; subclasses set policies via hooks."""

    #: Human-readable method name (subclasses override).
    name = "base"

    def __init__(self, config: ExperimentConfig):
        self.config = config

    # -- policy hooks ---------------------------------------------------
    def insertion_layer(self) -> int:
        """The LR insertion layer Lins (layers below it are frozen)."""
        return self.config.ncl.insertion_layer

    def ncl_timesteps(self) -> int:
        """Temporal resolution of the NCL phase."""
        raise NotImplementedError

    def learning_rate(self) -> float:
        """The eta_cl learning rate of the NCL phase."""
        raise NotImplementedError

    def base_eta(self) -> float:
        """The eta_pre entering the divisor policies (see NCLConfig)."""
        base = self.config.ncl.base_learning_rate
        return base if base is not None else self.config.pretrain.learning_rate

    def make_controller(self) -> ThresholdController | None:
        """Threshold controller for NCL training (None = static)."""
        return None

    def make_generation_controller(self) -> ThresholdController | None:
        """Threshold controller for latent-data generation."""
        return None

    def compression_factor(self) -> int:
        """Storage compression applied to latent data (1 = none)."""
        return 1

    def decompress_for_replay(self) -> bool:
        """Whether replay decompresses latent data each epoch."""
        return False

    def uses_replay(self) -> bool:
        """Whether the method maintains a replay buffer at all."""
        return True

    # -- protocol -------------------------------------------------------
    def run(
        self,
        pretrained: SpikingNetwork,
        split: ClassIncrementalSplit,
        replay: ReplaySpec | None = None,
    ) -> NCLResult:
        """Execute the full NCL phase; the pre-trained network is not mutated.

        ``replay`` is a :class:`~repro.core.replayspec.ReplaySpec` (or a
        bare store path promoted to one); ``None`` keeps replay dense in
        memory.  A spec with ``store_dir`` set switches the replay
        buffer to the store-backed path: the generated latent data is
        persisted as a sharded
        :class:`~repro.replaystore.store.ReplayStore` at that directory
        (streamed chunk-by-chunk when no generation controller is
        active, so not even generation holds the dense buffer), and
        training pulls replay minibatches through a lazy
        :class:`~repro.replaystore.stream.ReplayStream` (shard-at-a-time
        decode).  The training trajectory is bitwise-identical to the
        in-memory path at the same seed — shard codecs are lossless and
        the minibatch order is unchanged — while peak resident replay
        memory stays bounded by the stream's decode cache: two decoded
        shards, i.e. ``2 * spec.shard_samples`` dense samples (measured
        into ``NCLResult.replay_peak_resident_bytes``).

        ``spec.prefetch`` controls async shard prefetch on that path: a
        background thread decodes the next minibatch's shards while the
        current batch trains (see
        :class:`~repro.replaystore.prefetch.PrefetchingStream` — output
        is bitwise-identical either way).  ``None`` defers to the
        ``REPRO_PREFETCH`` environment switch.
        """
        replay = resolve_replay_spec(replay)
        if replay is None:
            replay = ReplaySpec()
        if replay.has_federation_options:
            raise ConfigError(
                "federation options only apply to multi-step runs "
                "(run_sequential / run_scenario); a single NCL run has "
                "no federation to configure"
            )
        config = self.config
        recorder = obs.current()
        trace_mark = recorder.mark()
        network = pretrained.clone()
        insertion = self.insertion_layer()
        timesteps = self.ncl_timesteps()
        network.freeze_below(insertion)

        rng = spawn(config.seed, f"ncl:{self.name}")
        prepare_cost = EpochCost(timesteps=timesteps)

        # ---- prepare: latent replay buffer (Alg. 1 lines 6-20) --------
        buffer: LatentReplayBuffer | None = None
        store = None
        if self.uses_replay():
            with obs.span("ncl.prepare", category="scenario", method=self.name):
                replay_subset = split.pretrain_train.sample_fraction(
                    config.ncl.replay_fraction, spawn(config.seed, "replay-subset")
                )
                if replay.store_backed:
                    store, generation_trace = LatentReplayBuffer.generate_into_store(
                        network,
                        replay_subset,
                        replay.store_dir,
                        insertion_layer=insertion,
                        timesteps=timesteps,
                        compression_factor=self.compression_factor(),
                        controller=self.make_generation_controller(),
                        shard_samples=replay.shard_samples,
                        overwrite=replay.overwrite,
                    )
                    prepare_cost.frozen_traces.append(generation_trace)
                else:
                    buffer = LatentReplayBuffer.generate(
                        network,
                        replay_subset,
                        insertion_layer=insertion,
                        timesteps=timesteps,
                        compression_factor=self.compression_factor(),
                        controller=self.make_generation_controller(),
                    )
                    prepare_cost.frozen_traces.append(
                        self._frozen_trace(
                            network,
                            insertion,
                            replay_subset.to_dense(timesteps),
                            controller=self.make_generation_controller(),
                        )
                    )

        # ---- current-task activations (Alg. 1 line 23) ----------------
        new_inputs = split.new_train.to_dense(timesteps)
        new_activations = network.activations_at(insertion, new_inputs)
        new_labels = split.new_train.labels

        latent_bytes = 0
        latent_frames = 0
        decompressed_cells = 0
        store_path: str | None = None
        replay_view = None
        if buffer is not None:
            latent_bytes = buffer.storage_bytes()
            latent_frames = buffer.stored_frames
            decompressed_cells = buffer.decompressed_cells_per_replay(
                self.decompress_for_replay()
            )
            replay_raster = buffer.materialize(
                decompress=self.decompress_for_replay()
            )
            train_inputs = np.concatenate([new_activations, replay_raster], axis=1)
            train_labels = np.concatenate([new_labels, buffer.labels])
        elif store is not None:
            from repro.hw.memory import latent_memory_bytes
            from repro.replaystore.prefetch import PrefetchingStream
            from repro.replaystore.stream import ConcatReplaySource, ReplayStream

            # Path-independent accounting: same storage model the dense
            # buffer would have reported (asserted in the parity tests).
            latent_bytes = latent_memory_bytes(
                store.meta.stored_frames, store.num_samples, store.meta.num_channels
            )
            latent_frames = store.meta.stored_frames
            if self.decompress_for_replay():
                decompressed_cells = int(
                    store.meta.generated_timesteps
                    * store.num_samples
                    * store.meta.num_channels
                )
            stream = ReplayStream(store, decompress=self.decompress_for_replay())
            replay_view = PrefetchingStream(stream, enabled=replay.prefetch)
            train_inputs = ConcatReplaySource(new_activations, replay_view)
            train_labels = np.concatenate([new_labels, store.labels])
            store_path = str(store.root)
        else:
            train_inputs = new_activations
            train_labels = new_labels

        # ---- NCL training (Alg. 1 lines 21-33) ------------------------
        # The try covers everything from here to the end of training:
        # replay_view owns a live worker thread, so any failure before
        # fit() must still join it (not just failures inside fit).
        try:
            controller = self.make_controller()
            optimizer = Adam(
                network.trainable_parameters(), self.learning_rate()
            )
            trainer = Trainer(
                network,
                optimizer,
                TrainerConfig(
                    epochs=config.ncl.epochs,
                    batch_size=config.ncl.batch_size,
                    start_layer=insertion,
                ),
                rng=rng,
                controller=controller,
            )

            old_test = split.pretrain_test.to_dense(timesteps)
            new_test = split.new_test.to_dense(timesteps)
            old_labels = split.pretrain_test.labels
            new_test_labels = split.new_test.labels

            def predict(inputs: np.ndarray) -> np.ndarray:
                # Deployment semantics of Alg. 1: the frozen front keeps
                # its static pre-trained threshold; adaptive thresholds
                # apply to the learning layers only.
                return network.predict(
                    inputs,
                    controller=self.make_controller(),
                    controller_from_layer=insertion,
                )

            def eval_old() -> float:
                return top1_accuracy(predict(old_test), old_labels)

            def eval_new() -> float:
                return top1_accuracy(predict(new_test), new_test_labels)

            def eval_overall() -> float:
                preds = np.concatenate([predict(old_test), predict(new_test)])
                labels = np.concatenate([old_labels, new_test_labels])
                return top1_accuracy(preds, labels)

            with obs.span(
                "ncl.train",
                category="scenario",
                method=self.name,
                epochs=config.ncl.epochs,
            ):
                history = trainer.fit(
                    train_inputs,
                    train_labels,
                    evaluators={
                        "old_task_accuracy": eval_old,
                        "new_task_accuracy": eval_new,
                        "overall_accuracy": eval_overall,
                    },
                )
        finally:
            if replay_view is not None:
                replay_view.close()
        peak_resident = replay_view.peak_cache_bytes if replay_view else 0

        epoch_costs = self._collect_epoch_costs(
            trainer, network, insertion, new_inputs, decompressed_cells, timesteps
        )

        trace = obs.TraceReport.capture(recorder, trace_mark)
        obs.maybe_export()
        final = history.final()
        return NCLResult(
            method=self.name,
            insertion_layer=insertion,
            timesteps=timesteps,
            history=history,
            final_old_accuracy=final.old_task_accuracy,
            final_new_accuracy=final.new_task_accuracy,
            final_overall_accuracy=final.overall_accuracy,
            latent_storage_bytes=latent_bytes,
            latent_stored_frames=latent_frames,
            epoch_costs=epoch_costs,
            prepare_cost=prepare_cost,
            network=network,
            replay_store_path=store_path,
            replay_peak_resident_bytes=peak_resident,
            trace=trace,
        )

    # ------------------------------------------------------------------
    def _frozen_trace(
        self,
        network: SpikingNetwork,
        insertion: int,
        inputs: np.ndarray,
        controller=None,
    ) -> SpikeTrace:
        """Trace of running the frozen front once over ``inputs``.

        Forward-only re-run used purely for op accounting; see
        :func:`~repro.core.latent_replay.frozen_front_trace` (the shared
        authority, also used by store-streamed generation).
        """
        from repro.core.latent_replay import frozen_front_trace

        return frozen_front_trace(network, insertion, inputs, controller)

    def _collect_epoch_costs(
        self,
        trainer: Trainer,
        network: SpikingNetwork,
        insertion: int,
        new_inputs: np.ndarray,
        cells: int,
        timesteps: int,
    ) -> list[EpochCost]:
        """Assemble per-epoch cost inputs from the trainer's traces.

        Alg. 1 recomputes the frozen part on current data every epoch
        (line 23) and SpikingLR decompresses the latent buffer per epoch;
        both are charged here even though the implementation caches the
        results (the values are identical every epoch).  ``cells`` is the
        per-replay decompression volume, captured before a store-backed
        run releases its dense buffer.
        """
        frozen = self._frozen_trace(network, insertion, new_inputs)
        costs = []
        for traces in trainer.epoch_traces:
            costs.append(
                EpochCost(
                    train_traces=list(traces),
                    frozen_traces=[frozen] if frozen.entries else [],
                    decompressed_cells=cells,
                    timesteps=timesteps,
                )
            )
        return costs


class NaiveFinetune(NCLMethod):
    """Fine-tune on the new task with no replay — the Fig. 1a baseline.

    "An SNN model without any NCL capabilities" (paper Fig. 1 caption):
    the *whole* network keeps training on new-task data only, at the
    pre-training timestep and learning rate, so old-task accuracy
    collapses (catastrophic forgetting).
    """

    name = "naive-finetune"

    def insertion_layer(self) -> int:
        """Nothing frozen: plain continued training from layer 0."""
        return 0

    def ncl_timesteps(self) -> int:
        """Full pre-training resolution."""
        return self.config.pretrain.timesteps

    def learning_rate(self) -> float:
        """The pre-training rate, continued."""
        return self.config.pretrain.learning_rate

    def uses_replay(self) -> bool:
        """Naive fine-tuning keeps no replay buffer — that is the point."""
        return False
