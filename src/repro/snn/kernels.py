"""Fused sequence kernels for the SNN time loop.

The reference simulation path (:mod:`repro.snn.layers`) advances the
neuron state one timestep at a time through the autograd tape: every
decay, reset, matmul and Heaviside records its own node, so a ``T``-step
pass over a layer costs thousands of Python-level graph objects.  These
kernels collapse the entire ``[T, B, N]`` time loop into **one** tape
node each (via :class:`repro.autograd.Function`): the forward runs the
recurrence in raw numpy over preallocated state arrays, and the backward
is hand-derived BPTT through the decay/reset/recurrent/surrogate path.

The numerics are *identical* to the per-step reference — the same
elementwise operations in the same order, and numpy's stacked matmul
produces bitwise-equal projections — so fused and per-step paths are
interchangeable.  The dispatch in :mod:`repro.snn.layers` uses the fused
kernels whenever the effective threshold is static for the whole
sequence (``None`` or a :class:`~repro.snn.threshold.StaticThreshold`)
and falls back to the per-step path for dynamic
:class:`~repro.snn.threshold.ThresholdController` policies (Alg. 1),
whose per-timestep feedback genuinely needs the step loop.

Hand-derived BPTT (hard reset, recurrent; soft reset swaps the two
reset partials)::

    forward:   I[t] = x[t] @ Wff + S[t-1] @ Wrec
               V[t] = beta * V[t-1] * (1 - S[t-1]) + I[t]
               S[t] = H(V[t] - vthr)

    reverse:   gS[t] = dL/dS[t] + Wrec^T-path + reset-path   (from t+1)
               gV[t] = gS[t] * surrogate'(V[t] - vthr) + beta * (1 - S[t]) * gV[t+1]
               gI[t] = gV[t]
               reset-path(t-1)     = -beta * V[t-1] * gV[t]     (hard)
                                   = -vthr * gV[t]              (soft)
               Wrec^T-path(t-1)    = gI[t] @ Wrec^T
               gX[t]  = gI[t] @ Wff^T
               gWff   = sum_t x[t]^T @ gI[t]
               gWrec  = sum_t S[t-1]^T @ gI[t]

Set ``REPRO_FUSED_KERNELS=0`` to force the per-step reference everywhere
(useful when bisecting a numerical question back to first principles).
"""

from __future__ import annotations

import os

import numpy as np

from repro.autograd import Tensor
from repro.autograd.function import Function
from repro.errors import ConfigError, ShapeError
from repro.snn.neurons import LIFParameters, resolve_threshold

__all__ = [
    "lif_sequence",
    "cuba_lif_sequence",
    "leaky_readout_sequence",
    "fused_enabled",
]


def fused_enabled() -> bool:
    """Whether the fused kernels are globally enabled.

    Controlled by the ``REPRO_FUSED_KERNELS`` environment variable;
    anything other than ``"0"``/``"false"``/``"off"`` (or unset) enables
    them.  Layers consult this at every forward, so flipping the
    variable mid-process takes effect immediately.
    """
    return os.environ.get("REPRO_FUSED_KERNELS", "1").lower() not in ("0", "false", "off")


def _check_sequence_args(x: np.ndarray, w_ff: np.ndarray, w_rec) -> None:
    if x.ndim != 3:
        raise ShapeError(f"expected [T, B, n_in] input, got shape {x.shape}")
    if w_ff.ndim != 2 or x.shape[2] != w_ff.shape[0]:
        raise ShapeError(
            f"feedforward weights {w_ff.shape} do not match input features {x.shape[2]}"
        )
    if w_rec is not None and w_rec.shape != (w_ff.shape[1], w_ff.shape[1]):
        raise ShapeError(
            f"recurrent weights must be square [{w_ff.shape[1]}, {w_ff.shape[1]}], "
            f"got {w_rec.shape}"
        )


def _lif_reverse_sweep(
    g_spikes, surrogate, membrane, spikes, w_rec, params, vthr, alpha
):
    """Reverse BPTT sweep shared by the LIF and CuBa kernels.

    Returns ``gI`` — the gradient of the loss w.r.t. the projected input
    current at every timestep — from which all weight/input gradients
    follow as matmuls.

    **Bitwise discipline.**  Fused and per-step paths must produce the
    *same training trajectories*, not just close ones: spiking networks
    are chaotic, so a one-ulp gradient difference grows into different
    spike rasters within a few optimizer steps and breaks trajectory
    reproducibility between the two paths.  Every accumulation below
    therefore replicates the association order of the per-step tape
    exactly (float addition commutes but does not associate):

    - ``gS[t] = (upstream + reset-path) + recurrent-path``,
    - ``gV[t] = surrogate-path + decay-path``,
    - partial products mirror the tape, e.g. hard reset uses
      ``(gV * beta) * V[t-1]`` — never ``gV * (beta * V[t-1])``.
    """
    timesteps = spikes.shape[0]
    beta = params.beta
    hard = params.reset_mode == "zero"
    w_rec_t = None if w_rec is None else w_rec.T
    g_current = np.empty_like(spikes)
    state_shape = spikes.shape[1:]
    dtype = spikes.dtype
    # Preallocated scratch: the loop runs T times over small [B, N]
    # arrays, so per-step allocation overhead is comparable to the
    # arithmetic itself.  in-place ufuncs keep op order (hence bits)
    # identical.
    gv = np.empty(state_shape, dtype)  # dL/dV[t]
    gv_beta = np.empty(state_shape, dtype)
    gv_carry = np.empty(state_shape, dtype)  # decay path into gV[t], from t+1
    gs_reset = np.empty(state_shape, dtype)  # reset path into gS[t], from t+1
    gs_rec = np.empty(state_shape, dtype)  # recurrent path into gS[t], from t+1
    gj_carry = np.empty(state_shape, dtype)  # synaptic decay into gJ[t] (CuBa)
    have_carry = False
    for t in range(timesteps - 1, -1, -1):
        gj = g_current[t]  # written in place below
        if have_carry:
            np.add(g_spikes[t], gs_reset, out=gv)  # gs = upstream + reset path
            if w_rec_t is not None:
                np.add(gv, gs_rec, out=gv)  # ... + recurrent path
            np.multiply(gv, surrogate[t], out=gv)
            np.add(gv, gv_carry, out=gv)
        else:
            np.multiply(g_spikes[t], surrogate[t], out=gv)
        if alpha is not None:
            # J[t] feeds V[t] directly and J[t+1] through the alpha decay.
            if have_carry:
                np.add(gv, gj_carry, out=gj)
            else:
                gj[...] = gv
            np.multiply(gj, alpha, out=gj_carry)
        else:
            gj[...] = gv
        if t > 0:
            if hard:
                np.multiply(gv, beta, out=gv_beta)
                np.multiply(gv_beta, membrane[t - 1], out=gs_reset)
                np.negative(gs_reset, out=gs_reset)
                np.subtract(1.0, spikes[t - 1], out=gv_carry)
                np.multiply(gv_beta, gv_carry, out=gv_carry)
            else:
                np.negative(gv, out=gs_reset)
                np.multiply(gs_reset, vthr, out=gs_reset)
                np.multiply(gv, beta, out=gv_carry)
            if w_rec_t is not None:
                np.matmul(gj, w_rec_t, out=gs_rec)
            have_carry = True
    return g_current


def _sequence_weight_grads(ctx, x, w_ff, w_rec, spikes, g_current):
    """Input/weight gradients from ``gI``, in the tape's summation order.

    The per-step tape accumulates the feedforward weight gradient
    forward-in-time for feedforward-only graphs but reverse-in-time when
    a recurrent weight is present (the recurrent edge changes the
    reverse topological order) — replicated here for bitwise parity.
    Gradients whose ``ctx.needs_input_grad`` flag is False are skipped.
    """
    timesteps = spikes.shape[0]
    needs = ctx.needs_input_grad
    gx = g_current @ w_ff.T if needs[0] else None
    gw_ff = None
    if needs[1]:
        scratch = np.empty(w_ff.shape, dtype=g_current.dtype)
        order = range(timesteps - 1, -1, -1) if w_rec is not None else range(timesteps)
        for t in order:
            if gw_ff is None:
                gw_ff = x[t].T @ g_current[t]
            else:
                np.matmul(x[t].T, g_current[t], out=scratch)
                np.add(gw_ff, scratch, out=gw_ff)
    gw_rec = None
    if w_rec is not None and needs[2]:
        scratch = np.empty(w_rec.shape, dtype=g_current.dtype)
        for t in range(timesteps - 1, 0, -1):
            if gw_rec is None:
                gw_rec = spikes[t - 1].T @ g_current[t]
            else:
                np.matmul(spikes[t - 1].T, g_current[t], out=scratch)
                np.add(gw_rec, scratch, out=gw_rec)
        if gw_rec is None:
            # T == 1: the recurrent weight never fired (S[-1] = 0), but
            # it is still a differentiable input — its gradient is zero,
            # not absent.
            gw_rec = np.zeros(w_rec.shape, dtype=g_current.dtype)
    return gx, gw_ff, gw_rec


def _lif_forward_sweep(x, w_ff, w_rec, params, vthr, alpha):
    """Forward recurrence shared by the LIF and CuBa kernels.

    Runs the same elementwise operations in the same order as ``T``
    applications of :func:`repro.snn.neurons.lif_step` /
    :func:`~repro.snn.neurons.cuba_lif_step` (the stacked feedforward
    GEMM is bitwise-equal to the per-step ``x[t] @ w_ff``).  Returns
    ``(membrane, spikes)`` stacks ``[T, B, N]``.
    """
    timesteps, batch, _ = x.shape
    n_out = w_ff.shape[1]
    ff = x @ w_ff
    dtype = ff.dtype
    membrane = np.empty((timesteps, batch, n_out), dtype=dtype)
    spikes = np.empty((timesteps, batch, n_out), dtype=dtype)
    v = np.zeros((batch, n_out), dtype=dtype)
    s = np.zeros((batch, n_out), dtype=dtype)
    syn = np.zeros((batch, n_out), dtype=dtype) if alpha is not None else None
    beta = params.beta
    hard = params.reset_mode == "zero"
    for t in range(timesteps):
        current = ff[t] if w_rec is None else ff[t] + s @ w_rec
        if alpha is not None:
            syn = syn * alpha + current
            current = syn
        if hard:
            v = v * (1.0 - s) * beta + current
        else:
            v = v * beta - s * vthr + current
        s = (v - vthr > 0.0).astype(dtype)
        membrane[t] = v
        spikes[t] = s
    return membrane, spikes


class _LIFSequence(Function):
    """Single tape node for a full LIF layer pass (module docstring)."""

    @staticmethod
    def forward(ctx, x, w_ff, w_rec, params, vthr):
        membrane, spikes = _lif_forward_sweep(x, w_ff, w_rec, params, vthr, None)
        ctx.save_for_backward(x, w_ff, w_rec, membrane, spikes)
        ctx.params = params
        ctx.vthr = vthr
        return spikes

    @staticmethod
    def backward(ctx, g_spikes):
        x, w_ff, w_rec, membrane, spikes = ctx.saved
        params, vthr = ctx.params, ctx.vthr
        surrogate = params.surrogate.derivative(membrane - vthr)  # [T, B, N]
        g_current = _lif_reverse_sweep(
            g_spikes, surrogate, membrane, spikes, w_rec, params, vthr, alpha=None
        )
        return _sequence_weight_grads(ctx, x, w_ff, w_rec, spikes, g_current) + (
            None,
            None,
        )


class _CubaLIFSequence(Function):
    """LIF sequence with a synaptic low-pass current state (CuBa)."""

    @staticmethod
    def forward(ctx, x, w_ff, w_rec, params, alpha, vthr):
        membrane, spikes = _lif_forward_sweep(x, w_ff, w_rec, params, vthr, alpha)
        ctx.save_for_backward(x, w_ff, w_rec, membrane, spikes)
        ctx.params = params
        ctx.alpha = alpha
        ctx.vthr = vthr
        return spikes

    @staticmethod
    def backward(ctx, g_spikes):
        x, w_ff, w_rec, membrane, spikes = ctx.saved
        params, alpha, vthr = ctx.params, ctx.alpha, ctx.vthr
        surrogate = params.surrogate.derivative(membrane - vthr)
        g_current = _lif_reverse_sweep(
            g_spikes, surrogate, membrane, spikes, w_rec, params, vthr, alpha=alpha
        )
        return _sequence_weight_grads(ctx, x, w_ff, w_rec, spikes, g_current) + (
            None,
            None,
            None,
        )


class _LeakyReadoutSequence(Function):
    """Fused non-spiking leaky integrator: returns the full trajectory."""

    @staticmethod
    def forward(ctx, x, w_ff, beta):
        projected = x @ w_ff  # [T, B, C]
        trajectory = np.empty_like(projected)
        membrane = np.zeros(projected.shape[1:], dtype=projected.dtype)
        for t in range(projected.shape[0]):
            membrane = membrane * beta + projected[t]
            trajectory[t] = membrane
        ctx.save_for_backward(x, w_ff)
        ctx.beta = beta
        return trajectory

    @staticmethod
    def backward(ctx, g_trajectory):
        x, w_ff = ctx.saved
        beta = ctx.beta
        timesteps = g_trajectory.shape[0]
        # Same bitwise discipline as _lif_reverse_sweep: membrane adjoint
        # associates as (upstream + decay-path); the feedforward weight
        # gradient accumulates forward-in-time (feedforward-only graph).
        g_membrane = np.empty_like(g_trajectory)
        carry = None
        for t in range(timesteps - 1, -1, -1):
            gm = g_trajectory[t] if carry is None else g_trajectory[t] + carry
            g_membrane[t] = gm
            carry = gm * beta
        gx = g_membrane @ w_ff.T if ctx.needs_input_grad[0] else None
        gw_ff = None
        if ctx.needs_input_grad[1]:
            for t in range(timesteps):
                contribution = x[t].T @ g_membrane[t]
                gw_ff = contribution if gw_ff is None else gw_ff + contribution
        return gx, gw_ff, None


def lif_sequence(
    x: Tensor | np.ndarray,
    w_ff: Tensor | np.ndarray,
    params: LIFParameters,
    w_rec: Tensor | np.ndarray | None = None,
    threshold=None,
) -> Tensor:
    """Run a whole LIF layer sequence as one fused tape node.

    Parameters
    ----------
    x:
        Input spikes/activations ``[T, B, n_in]``.
    w_ff:
        Feedforward weights ``[n_in, n_out]``.
    params:
        Neuron constants (decay, reset mode, surrogate family).
    w_rec:
        Optional recurrent weights ``[n_out, n_out]``.
    threshold:
        Static effective ``Vthr`` — scalar or per-neuron ``[n_out]``
        array; defaults to ``params.threshold``.  Dynamic thresholds
        (Alg. 1 controllers) are *not* representable here — callers must
        use the per-step path for those.

    Returns the output spike raster ``[T, B, n_out]``, numerically
    identical to ``T`` applications of :func:`repro.snn.neurons.lif_step`.
    """
    x = x if isinstance(x, Tensor) else Tensor(x)
    w_ff = w_ff if isinstance(w_ff, Tensor) else Tensor(w_ff)
    if w_rec is not None and not isinstance(w_rec, Tensor):
        w_rec = Tensor(w_rec)
    _check_sequence_args(x.data, w_ff.data, None if w_rec is None else w_rec.data)
    vthr = resolve_threshold(params, threshold, dtype=x.data.dtype)
    return _LIFSequence.apply(x, w_ff, w_rec, params, vthr)


def cuba_lif_sequence(
    x: Tensor | np.ndarray,
    w_ff: Tensor | np.ndarray,
    params: LIFParameters,
    alpha: float,
    w_rec: Tensor | np.ndarray | None = None,
    threshold=None,
) -> Tensor:
    """Fused current-based (CuBa) LIF sequence.

    Same contract as :func:`lif_sequence` with the synaptic low-pass
    state ``J[t] = alpha * J[t-1] + I[t]`` of
    :func:`repro.snn.neurons.cuba_lif_step` inserted before integration.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"synaptic alpha must lie in (0, 1), got {alpha}")
    x = x if isinstance(x, Tensor) else Tensor(x)
    w_ff = w_ff if isinstance(w_ff, Tensor) else Tensor(w_ff)
    if w_rec is not None and not isinstance(w_rec, Tensor):
        w_rec = Tensor(w_rec)
    _check_sequence_args(x.data, w_ff.data, None if w_rec is None else w_rec.data)
    vthr = resolve_threshold(params, threshold, dtype=x.data.dtype)
    return _CubaLIFSequence.apply(x, w_ff, w_rec, params, float(alpha), vthr)


def leaky_readout_sequence(
    x: Tensor | np.ndarray,
    w_ff: Tensor | np.ndarray,
    beta: float,
) -> Tensor:
    """Fused leaky-integrator readout: membrane trajectory ``[T, B, C]``.

    The caller applies the logit reduction (mean/max/last) on the
    returned trajectory; those reductions are cheap single tape nodes.
    """
    x = x if isinstance(x, Tensor) else Tensor(x)
    w_ff = w_ff if isinstance(w_ff, Tensor) else Tensor(w_ff)
    _check_sequence_args(x.data, w_ff.data, None)
    if not 0.0 < beta < 1.0:
        raise ConfigError(f"readout beta must lie in (0, 1), got {beta}")
    return _LeakyReadoutSequence.apply(x, w_ff, float(beta))
