"""Fused sequence kernels for the SNN time loop.

The reference simulation path (:mod:`repro.snn.layers`) advances the
neuron state one timestep at a time through the autograd tape: every
decay, reset, matmul and Heaviside records its own node, so a ``T``-step
pass over a layer costs thousands of Python-level graph objects.  These
kernels collapse the entire ``[T, B, N]`` time loop into **one** tape
node each (via :class:`repro.autograd.Function`): the forward runs the
recurrence over preallocated state arrays, and the backward is
hand-derived BPTT through the decay/reset/recurrent/surrogate path.

*Which executor* runs the recurrence is pluggable: this module computes
the GEMMs (the stacked feedforward projection and the weight-gradient
reductions — the bitwise anchor, always numpy) and hands the
time-recurrent sweeps to the backend selected via ``REPRO_BACKEND``
(see :mod:`repro.snn.backends`).  The numpy reference executor runs the
same elementwise operations in the same order as the per-step path, so
fused and per-step paths are interchangeable; the C executor replicates
that association order bitwise in compiled code; the torch executor is
tolerance-gated.  The dispatch in :mod:`repro.snn.layers` uses the
fused kernels whenever the effective threshold is static for the whole
sequence (``None`` or a :class:`~repro.snn.threshold.StaticThreshold`)
and falls back to the per-step path for dynamic
:class:`~repro.snn.threshold.ThresholdController` policies (Alg. 1),
whose per-timestep feedback genuinely needs the step loop.

Hand-derived BPTT (hard reset, recurrent; soft reset swaps the two
reset partials)::

    forward:   I[t] = x[t] @ Wff + S[t-1] @ Wrec
               V[t] = beta * V[t-1] * (1 - S[t-1]) + I[t]
               S[t] = H(V[t] - vthr)

    reverse:   gS[t] = dL/dS[t] + Wrec^T-path + reset-path   (from t+1)
               gV[t] = gS[t] * surrogate'(V[t] - vthr) + beta * (1 - S[t]) * gV[t+1]
               gI[t] = gV[t]
               reset-path(t-1)     = -beta * V[t-1] * gV[t]     (hard)
                                   = -vthr * gV[t]              (soft)
               Wrec^T-path(t-1)    = gI[t] @ Wrec^T
               gX[t]  = gI[t] @ Wff^T
               gWff   = sum_t x[t]^T @ gI[t]
               gWrec  = sum_t S[t-1]^T @ gI[t]

The bitwise-discipline rules the reference sweeps obey (and bitwise
backends must replicate) live in :mod:`repro.snn.backends.numpy_ref`
and are documented in ``docs/reproducibility.md``.

Set ``REPRO_FUSED_KERNELS=0`` to force the per-step reference everywhere
(useful when bisecting a numerical question back to first principles).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.autograd import Tensor
from repro.autograd.function import Function
from repro.config import env_switch
from repro.errors import ConfigError, ShapeError
from repro.snn import backends
from repro.snn.backends import SweepSpec
from repro.snn.neurons import LIFParameters, resolve_threshold

__all__ = [
    "lif_sequence",
    "cuba_lif_sequence",
    "leaky_readout_sequence",
    "fused_enabled",
]


def fused_enabled() -> bool:
    """Whether the fused kernels are globally enabled.

    Controlled by the ``REPRO_FUSED_KERNELS`` environment variable;
    anything other than ``"0"``/``"false"``/``"off"`` (or unset) enables
    them.  Layers consult this at every forward, so flipping the
    variable mid-process takes effect immediately.
    """
    return env_switch("REPRO_FUSED_KERNELS")


def _check_sequence_args(x: np.ndarray, w_ff: np.ndarray, w_rec) -> None:
    if x.ndim != 3:
        raise ShapeError(f"expected [T, B, n_in] input, got shape {x.shape}")
    if w_ff.ndim != 2 or x.shape[2] != w_ff.shape[0]:
        raise ShapeError(
            f"feedforward weights {w_ff.shape} do not match input features {x.shape[2]}"
        )
    if w_rec is not None and w_rec.shape != (w_ff.shape[1], w_ff.shape[1]):
        raise ShapeError(
            f"recurrent weights must be square [{w_ff.shape[1]}, {w_ff.shape[1]}], "
            f"got {w_rec.shape}"
        )


def _sequence_weight_grads(ctx, x, w_ff, w_rec, spikes, g_current):
    """Input/weight gradients from ``gI``, in the tape's summation order.

    The per-step tape accumulates the feedforward weight gradient
    forward-in-time for feedforward-only graphs but reverse-in-time when
    a recurrent weight is present (the recurrent edge changes the
    reverse topological order) — replicated here for bitwise parity.
    These are pure GEMM reductions, so they stay on the numpy anchor for
    every backend.  Gradients whose ``ctx.needs_input_grad`` flag is
    False are skipped.
    """
    timesteps = spikes.shape[0]
    needs = ctx.needs_input_grad
    gx = g_current @ w_ff.T if needs[0] else None
    gw_ff = None
    if needs[1]:
        scratch = np.empty(w_ff.shape, dtype=g_current.dtype)
        order = range(timesteps - 1, -1, -1) if w_rec is not None else range(timesteps)
        for t in order:
            if gw_ff is None:
                gw_ff = x[t].T @ g_current[t]
            else:
                np.matmul(x[t].T, g_current[t], out=scratch)
                np.add(gw_ff, scratch, out=gw_ff)
    gw_rec = None
    if w_rec is not None and needs[2]:
        scratch = np.empty(w_rec.shape, dtype=g_current.dtype)
        for t in range(timesteps - 1, 0, -1):
            if gw_rec is None:
                gw_rec = spikes[t - 1].T @ g_current[t]
            else:
                np.matmul(spikes[t - 1].T, g_current[t], out=scratch)
                np.add(gw_rec, scratch, out=gw_rec)
        if gw_rec is None:
            # T == 1: the recurrent weight never fired (S[-1] = 0), but
            # it is still a differentiable input — its gradient is zero,
            # not absent.
            gw_rec = np.zeros(w_rec.shape, dtype=g_current.dtype)
    return gx, gw_ff, gw_rec


def _lif_spec(params: LIFParameters, vthr, alpha: float | None) -> SweepSpec:
    return SweepSpec(
        beta=params.beta,
        vthr=vthr,
        hard=params.reset_mode == "zero",
        alpha=alpha,
    )


class _LIFSequence(Function):
    """Single tape node for a full LIF layer pass (module docstring)."""

    @staticmethod
    def forward(ctx, x, w_ff, w_rec, params, vthr):
        """Run the T-step membrane/spike sweep on the active backend."""
        executor = backends.active()
        spec = _lif_spec(params, vthr, alpha=None)
        obs.count("kernel.calls", backend=executor.name, kernel="lif_forward")
        with obs.span("kernel.lif_forward", category="kernel", backend=executor.name):
            membrane, spikes = executor.lif_forward(x @ w_ff, w_rec, spec)
        ctx.save_for_backward(x, w_ff, w_rec, membrane, spikes)
        ctx.params = params
        ctx.spec = spec
        # The executor is pinned at forward time so backward runs on the
        # same backend even if REPRO_BACKEND flips mid-graph.
        ctx.executor = executor
        return spikes

    @staticmethod
    def backward(ctx, g_spikes):
        """Hand-derived BPTT, bitwise-identical to the per-step tape."""
        x, w_ff, w_rec, membrane, spikes = ctx.saved
        surrogate = ctx.params.surrogate.derivative(membrane - ctx.spec.vthr)
        obs.count("kernel.calls", backend=ctx.executor.name, kernel="lif_backward")
        with obs.span("kernel.lif_backward", category="kernel", backend=ctx.executor.name):
            g_current = ctx.executor.lif_backward(
                g_spikes, surrogate, membrane, spikes, w_rec, ctx.spec
            )
        return _sequence_weight_grads(ctx, x, w_ff, w_rec, spikes, g_current) + (
            None,
            None,
        )


class _CubaLIFSequence(Function):
    """LIF sequence with a synaptic low-pass current state (CuBa)."""

    @staticmethod
    def forward(ctx, x, w_ff, w_rec, params, alpha, vthr):
        """Run the CuBa sweep (synaptic filter + membrane) on the backend."""
        executor = backends.active()
        spec = _lif_spec(params, vthr, alpha=alpha)
        obs.count("kernel.calls", backend=executor.name, kernel="cuba_lif_forward")
        with obs.span("kernel.cuba_lif_forward", category="kernel", backend=executor.name):
            membrane, spikes = executor.lif_forward(x @ w_ff, w_rec, spec)
        ctx.save_for_backward(x, w_ff, w_rec, membrane, spikes)
        ctx.params = params
        ctx.spec = spec
        ctx.executor = executor
        return spikes

    @staticmethod
    def backward(ctx, g_spikes):
        """BPTT through the CuBa recurrences, bitwise vs the per-step tape."""
        x, w_ff, w_rec, membrane, spikes = ctx.saved
        surrogate = ctx.params.surrogate.derivative(membrane - ctx.spec.vthr)
        obs.count("kernel.calls", backend=ctx.executor.name, kernel="cuba_lif_backward")
        with obs.span(
            "kernel.cuba_lif_backward", category="kernel", backend=ctx.executor.name
        ):
            g_current = ctx.executor.lif_backward(
                g_spikes, surrogate, membrane, spikes, w_rec, ctx.spec
            )
        return _sequence_weight_grads(ctx, x, w_ff, w_rec, spikes, g_current) + (
            None,
            None,
            None,
        )


class _LeakyReadoutSequence(Function):
    """Fused non-spiking leaky integrator: returns the full trajectory."""

    @staticmethod
    def forward(ctx, x, w_ff, beta):
        """Run the leaky-integrator sweep on the active backend."""
        executor = backends.active()
        obs.count("kernel.calls", backend=executor.name, kernel="readout_forward")
        with obs.span("kernel.readout_forward", category="kernel", backend=executor.name):
            trajectory = executor.readout_forward(x @ w_ff, beta)
        ctx.save_for_backward(x, w_ff)
        ctx.beta = beta
        ctx.executor = executor
        return trajectory

    @staticmethod
    def backward(ctx, g_trajectory):
        """Reverse-accumulate the decay chain, then the weight GEMMs."""
        x, w_ff = ctx.saved
        timesteps = g_trajectory.shape[0]
        obs.count("kernel.calls", backend=ctx.executor.name, kernel="readout_backward")
        with obs.span(
            "kernel.readout_backward", category="kernel", backend=ctx.executor.name
        ):
            g_membrane = ctx.executor.readout_backward(g_trajectory, ctx.beta)
        gx = g_membrane @ w_ff.T if ctx.needs_input_grad[0] else None
        gw_ff = None
        if ctx.needs_input_grad[1]:
            # The feedforward weight gradient accumulates forward-in-time
            # (feedforward-only graph) — same order as the per-step tape.
            for t in range(timesteps):
                contribution = x[t].T @ g_membrane[t]
                gw_ff = contribution if gw_ff is None else gw_ff + contribution
        return gx, gw_ff, None


def lif_sequence(
    x: Tensor | np.ndarray,
    w_ff: Tensor | np.ndarray,
    params: LIFParameters,
    w_rec: Tensor | np.ndarray | None = None,
    threshold=None,
) -> Tensor:
    """Run a whole LIF layer sequence as one fused tape node.

    Args:
        x: Input spikes/activations ``[T, B, n_in]``.
        w_ff: Feedforward weights ``[n_in, n_out]``.
        params: Neuron constants (decay, reset mode, surrogate family).
        w_rec: Optional recurrent weights ``[n_out, n_out]``.
        threshold: Static effective ``Vthr`` — scalar or per-neuron
            ``[n_out]`` array; defaults to ``params.threshold``.
            Dynamic thresholds (Alg. 1 controllers) are *not*
            representable here — callers must use the per-step path for
            those.

    Returns:
        The output spike raster ``[T, B, n_out]``, numerically identical
        to ``T`` applications of :func:`repro.snn.neurons.lif_step`.
    """
    x = x if isinstance(x, Tensor) else Tensor(x)
    w_ff = w_ff if isinstance(w_ff, Tensor) else Tensor(w_ff)
    if w_rec is not None and not isinstance(w_rec, Tensor):
        w_rec = Tensor(w_rec)
    _check_sequence_args(x.data, w_ff.data, None if w_rec is None else w_rec.data)
    vthr = resolve_threshold(params, threshold, dtype=x.data.dtype)
    return _LIFSequence.apply(x, w_ff, w_rec, params, vthr)


def cuba_lif_sequence(
    x: Tensor | np.ndarray,
    w_ff: Tensor | np.ndarray,
    params: LIFParameters,
    alpha: float,
    w_rec: Tensor | np.ndarray | None = None,
    threshold=None,
) -> Tensor:
    """Fused current-based (CuBa) LIF sequence.

    Same contract as :func:`lif_sequence` with the synaptic low-pass
    state ``J[t] = alpha * J[t-1] + I[t]`` of
    :func:`repro.snn.neurons.cuba_lif_step` inserted before integration.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"synaptic alpha must lie in (0, 1), got {alpha}")
    x = x if isinstance(x, Tensor) else Tensor(x)
    w_ff = w_ff if isinstance(w_ff, Tensor) else Tensor(w_ff)
    if w_rec is not None and not isinstance(w_rec, Tensor):
        w_rec = Tensor(w_rec)
    _check_sequence_args(x.data, w_ff.data, None if w_rec is None else w_rec.data)
    vthr = resolve_threshold(params, threshold, dtype=x.data.dtype)
    return _CubaLIFSequence.apply(x, w_ff, w_rec, params, float(alpha), vthr)


def leaky_readout_sequence(
    x: Tensor | np.ndarray,
    w_ff: Tensor | np.ndarray,
    beta: float,
) -> Tensor:
    """Fused leaky-integrator readout: membrane trajectory ``[T, B, C]``.

    The caller applies the logit reduction (mean/max/last) on the
    returned trajectory; those reductions are cheap single tape nodes.
    """
    x = x if isinstance(x, Tensor) else Tensor(x)
    w_ff = w_ff if isinstance(w_ff, Tensor) else Tensor(w_ff)
    _check_sequence_args(x.data, w_ff.data, None)
    if not 0.0 < beta < 1.0:
        raise ConfigError(f"readout beta must lie in (0, 1), got {beta}")
    return _LeakyReadoutSequence.apply(x, w_ff, float(beta))
