"""The multi-layer recurrent spiking network of paper Fig. 6.

A :class:`SpikingNetwork` is a stack of :class:`RecurrentLIFLayer` hidden
layers followed by a :class:`LeakyReadout`.  Weight layers are indexed
``0 .. L-1`` where ``L-1`` is the readout; the paper's 4-layer network
(``L = 4``) has hidden weight layers 0-2 and readout layer 3.

Latent replay needs two partial passes, both provided here:

- :meth:`activations_at` — run layers ``0 .. k-1`` (the *frozen* part)
  and return the spike raster that feeds weight layer ``k``.  With
  ``k = 0`` this is the raw input (Fig. 6: "LR insertion layer 0" inserts
  input spikes directly).
- :meth:`forward` with ``start_layer=k`` — run the *learning* part only,
  taking pre-computed layer-``k`` input activations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import Tensor
from repro.config import NetworkConfig
from repro.errors import ShapeError, SplitError
from repro.seeding import spawn
from repro.snn.layers import LeakyReadout, RecurrentLIFLayer
from repro.snn.neurons import LIFParameters
from repro.snn.state import LayerTraceEntry, SpikeTrace
from repro.snn.threshold import ThresholdController
from repro.autograd.surrogate import fast_sigmoid_surrogate

__all__ = ["SpikingNetwork", "ForwardResult", "ControllerLike"]

#: A threshold controller shared across layers, or a factory
#: ``layer -> ThresholdController`` building one controller per layer
#: (required by per-neuron controllers, whose state is sized to the
#: layer).  ``None`` means the static configured threshold.
ControllerLike = "ThresholdController | callable | None"


def _layer_controller(controller, layer) -> ThresholdController | None:
    """Resolve a ControllerLike for one layer (resetting shared ones)."""
    if controller is None:
        return None
    if isinstance(controller, ThresholdController):
        controller.reset()
        return controller
    if callable(controller):
        return controller(layer)
    raise TypeError(
        f"controller must be a ThresholdController, a factory, or None; "
        f"got {type(controller).__name__}"
    )


@dataclass
class ForwardResult:
    """Output of a :meth:`SpikingNetwork.forward` pass.

    Attributes:
        logits: ``[B, num_classes]`` readout maxima (differentiable).
        trace: Per-layer spike counts, for the hardware cost models.
        hidden_spikes: Output spike Tensors per executed hidden layer
            (time-major), present only when ``record_spikes=True``.
    """

    logits: Tensor
    trace: SpikeTrace
    hidden_spikes: list[Tensor] | None = None


class SpikingNetwork:
    """Stack of recurrent LIF layers + leaky readout (Fig. 6a)."""

    def __init__(self, config: NetworkConfig, seed: int = 0):
        self.config = config
        self.seed = int(seed)
        surrogate = fast_sigmoid_surrogate(config.surrogate_scale)
        params = LIFParameters(
            beta=config.beta,
            threshold=config.threshold,
            reset_mode=config.reset_mode,
            surrogate=surrogate,
        )
        self.neuron_params = params

        sizes = config.layer_sizes
        self.hidden_layers: list[RecurrentLIFLayer] = []
        for i in range(len(sizes) - 2):
            rng = spawn(seed, f"hidden{i}")
            self.hidden_layers.append(
                RecurrentLIFLayer(
                    sizes[i],
                    sizes[i + 1],
                    params,
                    recurrent=config.recurrent,
                    rng=rng,
                    name=f"hidden{i}",
                    synapse_alpha=config.synapse_alpha,
                )
            )
        self.readout = LeakyReadout(
            sizes[-2],
            sizes[-1],
            beta=config.beta,
            rng=spawn(seed, "readout"),
            readout_mode=config.readout_mode,
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_weight_layers(self) -> int:
        """L = hidden layers + readout."""
        return len(self.hidden_layers) + 1

    def layer_input_size(self, layer: int) -> int:
        """Fan-in of weight layer ``layer`` (what LR data there looks like)."""
        self._check_layer_index(layer)
        return self.config.layer_sizes[layer]

    def _check_layer_index(self, layer: int) -> None:
        if not 0 <= layer < self.num_weight_layers:
            raise SplitError(
                f"weight layer index {layer} out of range 0..{self.num_weight_layers - 1}"
            )

    def parameters(self) -> list[Tensor]:
        """All weight Tensors, hidden layers first, readout last."""
        params: list[Tensor] = []
        for layer in self.hidden_layers:
            params.extend(layer.parameters())
        params.extend(self.readout.parameters())
        return params

    def trainable_parameters(self) -> list[Tensor]:
        """Subset of :meth:`parameters` with ``requires_grad`` set."""
        return [p for p in self.parameters() if p.requires_grad]

    def set_trainable(self, flag: bool) -> None:
        """Mark every weight layer trainable (or frozen) at once."""
        for layer in self.hidden_layers:
            layer.set_trainable(flag)
        self.readout.set_trainable(flag)

    def set_fused(self, flag: bool) -> None:
        """Enable/disable the fused sequence kernels for every layer.

        The fused path (:mod:`repro.snn.kernels`) is the default and is
        numerically identical to the per-step reference; disabling it
        forces the per-step tape everywhere (diagnostics, parity tests).
        Layers under a dynamic threshold controller fall back to the
        per-step path automatically regardless of this flag.
        """
        for layer in self.hidden_layers:
            layer.use_fused = bool(flag)
        self.readout.use_fused = bool(flag)

    def freeze_below(self, insertion_layer: int) -> None:
        """Freeze weight layers ``0 .. insertion_layer-1`` (paper Fig. 6).

        Layers from ``insertion_layer`` on remain trainable — these are
        the "learning layers"; the rest are the "frozen layers" that only
        forward spikes using their pre-trained weights.
        """
        self._check_layer_index(insertion_layer)
        for i, layer in enumerate(self.hidden_layers):
            layer.set_trainable(i >= insertion_layer)
        self.readout.set_trainable(True)

    def state_dict(self) -> dict[str, dict[str, np.ndarray]]:
        """Copy of all weights, keyed by layer name."""
        state = {layer.name: layer.state_dict() for layer in self.hidden_layers}
        state["readout"] = self.readout.state_dict()
        return state

    def load_state_dict(self, state: dict[str, dict[str, np.ndarray]]) -> None:
        """Restore weights from a :meth:`state_dict` copy, in place."""
        for layer in self.hidden_layers:
            layer.load_state_dict(state[layer.name])
        self.readout.load_state_dict(state["readout"])

    def clone(self) -> "SpikingNetwork":
        """Deep copy with identical weights (used to snapshot pre-training)."""
        twin = SpikingNetwork(self.config, seed=self.seed)
        twin.load_state_dict(self.state_dict())
        return twin

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(
        self,
        inputs: Tensor | np.ndarray,
        start_layer: int = 0,
        controller=None,
        record_spikes: bool = False,
        controller_from_layer: int = 0,
        class_mask: np.ndarray | None = None,
    ) -> ForwardResult:
        """Run weight layers ``start_layer .. L-1``.

        Args:
            inputs: ``[T, B, layer_input_size(start_layer)]`` spike
                raster — the dataset encoding for ``start_layer=0``, or
                latent activations when replaying into a later layer.
            controller: :data:`ControllerLike` — a shared controller
                (reset per layer), a per-layer factory, or None for the
                static threshold.
            record_spikes: Keep per-layer output rasters (needed when
                generating latent replay data).
            controller_from_layer: First weight-layer index the
                controller applies to; earlier layers run at their
                static threshold.  NCL evaluation uses this to confine
                adaptive thresholds to the *learning* layers (Alg. 1
                adapts ``netl``, not the frozen front).
            class_mask: Optional boolean ``[num_classes]`` readout mask
                restricting the logits to the active task's classes
                (task-incremental inference).  ``None`` or a full mask
                leaves the logits bitwise-unchanged; see
                :meth:`LeakyReadout.forward`.
        """
        x = inputs if isinstance(inputs, Tensor) else Tensor(inputs)
        self._check_layer_index(start_layer)
        expected = self.layer_input_size(start_layer)
        if x.ndim != 3 or x.shape[2] != expected:
            raise ShapeError(
                f"start_layer={start_layer} expects [T, B, {expected}] input, "
                f"got shape {tuple(x.shape)}"
            )

        timesteps, batch = x.shape[0], x.shape[1]
        trace = SpikeTrace()
        recorded: list[Tensor] = []
        activations = x
        for i in range(start_layer, len(self.hidden_layers)):
            layer = self.hidden_layers[i]
            layer_ctrl = (
                _layer_controller(controller, layer)
                if i >= controller_from_layer
                else None
            )
            out = layer.forward(activations, layer_ctrl)
            trace.add(
                LayerTraceEntry(
                    name=layer.name,
                    n_in=layer.n_in,
                    n_out=layer.n_out,
                    recurrent=layer.recurrent,
                    input_spike_count=float(activations.data.sum()),
                    output_spike_count=float(out.data.sum()),
                    timesteps=timesteps,
                    batch=batch,
                )
            )
            if record_spikes:
                recorded.append(out)
            activations = out

        logits = self.readout.forward(activations, class_mask=class_mask)
        trace.add(
            LayerTraceEntry(
                name=self.readout.name,
                n_in=self.readout.n_in,
                n_out=self.readout.n_out,
                recurrent=False,
                input_spike_count=float(activations.data.sum()),
                output_spike_count=0.0,
                timesteps=timesteps,
                batch=batch,
            )
        )
        return ForwardResult(
            logits=logits,
            trace=trace,
            hidden_spikes=recorded if record_spikes else None,
        )

    def activations_at(
        self,
        insertion_layer: int,
        inputs: Tensor | np.ndarray,
        controller=None,
    ) -> np.ndarray:
        """Spike raster feeding weight layer ``insertion_layer``.

        Runs the frozen front (layers ``0 .. insertion_layer-1``) in
        inference mode.  ``insertion_layer=0`` returns the raw input —
        inserting LR data "at layer 0" replays input spikes themselves.

        Returns a detached binary array ``[T, B, layer_input_size]`` —
        latent replay data is stored, not differentiated through.
        """
        self._check_layer_index(insertion_layer)
        x = inputs if isinstance(inputs, Tensor) else Tensor(inputs)
        if insertion_layer == 0:
            return x.data.astype(np.float32, copy=True)

        activations = x
        for i in range(insertion_layer):
            layer = self.hidden_layers[i]
            was_trainable = layer.trainable
            layer.set_trainable(False)
            try:
                activations = layer.forward(
                    activations, _layer_controller(controller, layer)
                )
            finally:
                layer.set_trainable(was_trainable)
        return activations.data.astype(np.float32, copy=True)

    def predict(
        self,
        inputs: Tensor | np.ndarray,
        batch_size: int = 64,
        start_layer: int = 0,
        controller=None,
        controller_from_layer: int = 0,
        class_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Class predictions ``[B]`` without building a tape.

        ``class_mask`` restricts the argmax to the active task's classes
        (task-incremental inference); ``None``/full mask is a bitwise
        no-op.
        """
        x = inputs.data if isinstance(inputs, Tensor) else np.asarray(inputs)
        predictions: list[np.ndarray] = []
        flags = [(layer, layer.trainable) for layer in self.hidden_layers]
        flags.append((self.readout, self.readout.trainable))
        for module, _ in flags:
            module.set_trainable(False)
        try:
            for start in range(0, x.shape[1], batch_size):
                chunk = x[:, start : start + batch_size]
                result = self.forward(
                    chunk,
                    start_layer=start_layer,
                    controller=controller,
                    controller_from_layer=controller_from_layer,
                    class_mask=class_mask,
                )
                predictions.append(result.logits.data.argmax(axis=1))
        finally:
            for module, flag in flags:
                module.set_trainable(flag)
        return np.concatenate(predictions) if predictions else np.empty(0, dtype=int)
