"""Threshold-potential controllers (paper §III-B and Alg. 1).

The paper compensates for the information loss of reduced timesteps by
adjusting the neuron threshold potential ``Vthr`` dynamically during the
NCL phase:

- on timesteps where spikes occur (checked every ``adjust_interval``
  steps during network preparation, every step during NCL training),
  ``Vthr = 1 + 0.01 * (Tstep - avg_spike_time)`` — later average spike
  times pull the threshold down toward 1, early spiking raises it
  slightly (Alg. 1 lines 12-13 / 26-27);
- on silent timesteps, a sigmoidal decay ``Vthr = 1 / (1 + exp(-0.001 t))``
  drops the threshold to about 0.5, making neurons easier to fire when
  the reduced-timestep input provides too few spikes (lines 16 / 29).

Controllers are stateful observers: the network calls
:meth:`ThresholdController.step` once per timestep with the spike
activity of that step, and receives the threshold to use for the next
step.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "ThresholdController",
    "StaticThreshold",
    "AdaptiveSpikeTimingThreshold",
    "PerNeuronAdaptiveThreshold",
]


class ThresholdController:
    """Interface: produces the effective ``Vthr`` per timestep.

    ``step`` may return a scalar (one threshold for the whole layer) or a
    per-neuron array ``[n]`` — the LIF step broadcasts either against the
    membrane.
    """

    def reset(self) -> None:
        """Restore initial state before a new sequence."""

    def step(self, t: int, spike_counts, spike_time_sums):
        """Observe timestep ``t`` activity and return ``Vthr`` for the next step.

        Args:
            t: Timestep index in ``0..T-1``.
            spike_counts: Spikes emitted at ``t``, summed over the
                batch, as a per-neuron array ``[n]`` (scalar controllers
                reduce it).
            spike_time_sums: Per-neuron sums of spike times (each spike
                contributes ``t``), so controllers can maintain running
                means.
        """
        raise NotImplementedError

    @property
    def value(self):
        """Current threshold (scalar or ``[n]`` array)."""
        raise NotImplementedError


class StaticThreshold(ThresholdController):
    """Constant ``Vthr`` — what SpikingLR and the pre-training phase use."""

    def __init__(self, value: float = 1.0):
        if value <= 0.0:
            raise ConfigError(f"threshold must be positive, got {value}")
        self._value = float(value)

    def reset(self) -> None:
        """No state to restore."""

    def step(self, t: int, spike_counts, spike_time_sums) -> float:
        """Ignore activity; the threshold never moves."""
        return self._value

    @property
    def value(self) -> float:
        """The constant threshold."""
        return self._value

    def __repr__(self) -> str:
        return f"StaticThreshold({self._value:g})"


class AdaptiveSpikeTimingThreshold(ThresholdController):
    """Alg. 1's dynamic threshold policy.

    Attributes:
        timesteps: ``Tstep`` of the NCL phase — enters the spike-timing
            formula.
        adjust_interval: Spike-timing updates happen when
            ``t % adjust_interval == 0`` (Alg. 1 line 10); other steps
            use the sigmoidal decay.  Pass 1 to update on every step
            (the NCL-training variant, lines 25-30).
        gain: The 0.01 coefficient of the spike-timing term.
        decay_rate: The 0.001 coefficient inside the sigmoidal decay.
        floor: Lower safety clamp on ``Vthr``.
        ceil: Upper safety clamp on ``Vthr``.  The paper's formulas
            already stay inside the band for T <= 100; the clamp guards
            pathological configurations.
    """

    def __init__(
        self,
        timesteps: int,
        adjust_interval: int = 5,
        gain: float = 0.01,
        decay_rate: float = 0.001,
        floor: float = 0.05,
        ceil: float = 4.0,
        initial: float = 1.0,
    ):
        if timesteps <= 0:
            raise ConfigError(f"timesteps must be positive, got {timesteps}")
        if adjust_interval <= 0:
            raise ConfigError(f"adjust_interval must be positive, got {adjust_interval}")
        if not 0.0 < floor < ceil:
            raise ConfigError(f"need 0 < floor < ceil, got {floor}, {ceil}")
        self.timesteps = int(timesteps)
        self.adjust_interval = int(adjust_interval)
        self.gain = float(gain)
        self.decay_rate = float(decay_rate)
        self.floor = float(floor)
        self.ceil = float(ceil)
        self.initial = float(initial)
        self.reset()

    def reset(self) -> None:
        """Restore the initial threshold and clear spike statistics."""
        self._value = self.initial
        self._spike_count = 0.0
        self._spike_time_sum = 0.0

    def step(self, t: int, spike_counts, spike_time_sums) -> float:
        """Apply Alg. 1 lines 10-17 (interval > 1) or 25-30 (interval == 1)."""
        self._spike_count += float(np.sum(spike_counts))
        self._spike_time_sum += float(np.sum(spike_time_sums))

        on_boundary = (t % self.adjust_interval) == 0
        if on_boundary and self._spike_count > 0:
            avg_spike_time = self._spike_time_sum / self._spike_count
            self._value = 1.0 + self.gain * (self.timesteps - avg_spike_time)
        elif not on_boundary or self._spike_count == 0:
            # Sigmoidal decay toward ~0.5 lowers the barrier on silent
            # intervals so fewer input spikes still reach threshold.
            self._value = 1.0 / (1.0 + np.exp(-self.decay_rate * t))
        self._value = float(np.clip(self._value, self.floor, self.ceil))
        return self._value

    @property
    def value(self) -> float:
        """Current scalar threshold."""
        return self._value

    @property
    def mean_spike_time(self) -> float | None:
        """Running mean spike time, or None before any spike was seen."""
        if self._spike_count == 0:
            return None
        return self._spike_time_sum / self._spike_count

    def __repr__(self) -> str:
        return (
            f"AdaptiveSpikeTimingThreshold(T={self.timesteps}, "
            f"interval={self.adjust_interval}, value={self._value:.3f})"
        )


class PerNeuronAdaptiveThreshold(ThresholdController):
    """Per-neuron variant of the Alg. 1 policy (the deployed form).

    Alg. 1 states the two rules — the spike-timing formula where spikes
    occur and the sigmoidal decay where they do not — without fixing
    their granularity.  Applied network-wide, any activity anywhere takes
    the "spikes occur" branch, so the decay never fires and the
    compensation the paper describes in §III-B ("reduce Vthr so fewer
    incoming spikes still reach threshold") cannot happen.  Applied
    **per neuron**, the policy becomes exactly that compensation: neurons
    starved of input under the reduced timestep see their threshold decay
    toward ~0.5 until they fire again, while active neurons follow the
    spike-timing rule around the baseline.  This homeostatic reading is
    what :class:`~repro.core.replay4ncl.Replay4NCL` deploys.

    Parameters match :class:`AdaptiveSpikeTimingThreshold`, plus
    ``num_neurons``.
    """

    def __init__(
        self,
        num_neurons: int,
        timesteps: int,
        adjust_interval: int = 5,
        gain: float = 0.01,
        decay_rate: float = 0.001,
        floor: float = 0.05,
        ceil: float = 4.0,
        initial: float = 1.0,
    ):
        if num_neurons <= 0:
            raise ConfigError(f"num_neurons must be positive, got {num_neurons}")
        if timesteps <= 0:
            raise ConfigError(f"timesteps must be positive, got {timesteps}")
        if adjust_interval <= 0:
            raise ConfigError(f"adjust_interval must be positive, got {adjust_interval}")
        if not 0.0 < floor < ceil:
            raise ConfigError(f"need 0 < floor < ceil, got {floor}, {ceil}")
        self.num_neurons = int(num_neurons)
        self.timesteps = int(timesteps)
        self.adjust_interval = int(adjust_interval)
        self.gain = float(gain)
        self.decay_rate = float(decay_rate)
        self.floor = float(floor)
        self.ceil = float(ceil)
        self.initial = float(initial)
        self.reset()

    def reset(self) -> None:
        """Restore the initial per-neuron thresholds and clear statistics."""
        self._value = np.full(self.num_neurons, self.initial, dtype=np.float32)
        self._spike_counts = np.zeros(self.num_neurons, dtype=np.float64)
        self._spike_time_sums = np.zeros(self.num_neurons, dtype=np.float64)

    def step(self, t: int, spike_counts, spike_time_sums) -> np.ndarray:
        """Apply the Alg. 1 rules independently per neuron."""
        spike_counts = np.asarray(spike_counts, dtype=np.float64)
        if spike_counts.shape != (self.num_neurons,):
            raise ConfigError(
                f"expected per-neuron counts of shape ({self.num_neurons},), "
                f"got {spike_counts.shape}"
            )
        self._spike_counts += spike_counts
        self._spike_time_sums += np.asarray(spike_time_sums, dtype=np.float64)

        decay_value = 1.0 / (1.0 + np.exp(-self.decay_rate * t))
        on_boundary = (t % self.adjust_interval) == 0
        active = self._spike_counts > 0
        if on_boundary:
            with np.errstate(invalid="ignore", divide="ignore"):
                avg = np.where(
                    active, self._spike_time_sums / np.maximum(self._spike_counts, 1e-12), 0.0
                )
            timing_value = 1.0 + self.gain * (self.timesteps - avg)
            self._value = np.where(active, timing_value, decay_value).astype(np.float32)
        else:
            # Off-boundary steps: silent neurons keep decaying; active
            # neurons hold their last timing-rule value.
            self._value = np.where(active, self._value, decay_value).astype(np.float32)
        self._value = np.clip(self._value, self.floor, self.ceil)
        return self._value

    @property
    def value(self) -> np.ndarray:
        """Current per-neuron thresholds, shape ``[num_neurons]``."""
        return self._value

    @property
    def mean_threshold(self) -> float:
        """Population mean of the per-neuron thresholds."""
        return float(self._value.mean())

    def __repr__(self) -> str:
        return (
            f"PerNeuronAdaptiveThreshold(n={self.num_neurons}, T={self.timesteps}, "
            f"interval={self.adjust_interval}, mean={self.mean_threshold:.3f})"
        )
