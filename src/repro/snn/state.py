"""Simulation trace containers consumed by the hardware cost models.

A forward pass optionally records a :class:`SpikeTrace`: per-layer spike
counts and dimensions.  The :mod:`repro.hw` package turns these into
synaptic-operation (SOP), MAC, and memory-traffic counts — the basis of
the latency/energy models that substitute for the paper's GPU
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LayerTraceEntry", "SpikeTrace"]


@dataclass(frozen=True)
class LayerTraceEntry:
    """Per-layer activity record for one forward pass.

    Attributes:
        name: Layer identifier (``"hidden0"``, ..., ``"readout"``).
        n_in: Fan-in of the dense projection.
        n_out: Fan-out of the dense projection.
        recurrent: Whether the layer has an ``n_out x n_out`` recurrent
            projection.
        input_spike_count: Total presynaptic events into the feedforward
            projection, summed over timesteps and batch.
        output_spike_count: Total spikes emitted by the layer (0 for the
            readout).
        timesteps: Temporal extent of the pass.
        batch: Batch extent of the pass.
    """

    name: str
    n_in: int
    n_out: int
    recurrent: bool
    input_spike_count: float
    output_spike_count: float
    timesteps: int
    batch: int


@dataclass
class SpikeTrace:
    """Activity trace of one forward pass (all layers)."""

    entries: list[LayerTraceEntry] = field(default_factory=list)

    def add(self, entry: LayerTraceEntry) -> None:
        """Append one layer's activity record."""
        self.entries.append(entry)

    @property
    def total_spikes(self) -> float:
        """All spikes emitted by hidden layers during the pass."""
        return sum(e.output_spike_count for e in self.entries)

    @property
    def timesteps(self) -> int:
        """Temporal extent of the traced pass (0 when empty)."""
        return self.entries[0].timesteps if self.entries else 0

    @property
    def batch(self) -> int:
        """Batch extent of the traced pass (0 when empty)."""
        return self.entries[0].batch if self.entries else 0

    def merge(self, other: "SpikeTrace") -> "SpikeTrace":
        """Concatenate two traces (e.g. frozen-part + learning-part passes)."""
        merged = SpikeTrace()
        merged.entries = list(self.entries) + list(other.entries)
        return merged
