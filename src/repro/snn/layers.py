"""Spiking layers: recurrent LIF hidden layers and the leaky readout.

Layout convention: spike/current sequences are **time-major** numpy
arrays or Tensors of shape ``[T, B, N]`` (timesteps, batch, neurons).

Each layer has two numerically identical execution paths:

- the **fused** path (:mod:`repro.snn.kernels`) runs the whole time loop
  inside a single autograd tape node — the fast default whenever the
  effective threshold is static over the sequence;
- the **per-step** path advances one timestep at a time through the
  tape, which is required when a dynamic
  :class:`~repro.snn.threshold.ThresholdController` (Alg. 1) feeds spike
  activity back into the threshold every step.

Dispatch is automatic; ``layer.last_forward_path`` records which path
the most recent forward took (``"fused"`` or ``"steps"``).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, stack, zeros
from repro.autograd.tensor import no_grad
from repro.errors import ShapeError
from repro.errors import ConfigError
from repro.snn import kernels
from repro.seeding import default_rng
from repro.snn.init import dense_init, recurrent_init
from repro.snn.neurons import LIFParameters, cuba_lif_step, lif_step
from repro.snn.threshold import StaticThreshold, ThresholdController

__all__ = ["RecurrentLIFLayer", "LeakyReadout", "MASKED_LOGIT"]

#: Additive logit penalty for classes outside an active ``class_mask``.
#: Finite (not ``-inf``) so masked logits stay NaN-free under arithmetic,
#: yet far below any reachable membrane value, so a masked class can
#: never win an argmax.
MASKED_LOGIT = -1.0e9


def _static_threshold(controller: "ThresholdController | None", default: float):
    """Effective static ``Vthr`` for a sequence, or None when dynamic.

    Only a missing controller or an exact :class:`StaticThreshold`
    guarantees the threshold cannot change mid-sequence — anything else
    (including subclasses, which may override ``step``) must run
    per-step so the controller observes every timestep's activity.
    """
    if controller is None:
        return default
    if type(controller) is StaticThreshold:
        return controller.value
    return None


class RecurrentLIFLayer:
    """A dense feedforward projection into recurrent LIF neurons (Fig. 6a).

    Each timestep computes

        I[t]   = X[t] @ W_ff + S[t-1] @ W_rec
        V, S   = lif_step(V, S, I[t])

    where ``W_rec`` is present only when ``recurrent=True`` (the SHD
    architecture of the paper uses recurrent hidden layers).

    With ``synapse_alpha`` set, the neurons follow the current-based
    (CuBa) dynamics instead: the projected input is low-pass filtered
    through a synaptic current state with decay ``alpha`` before
    integration (see :func:`repro.snn.neurons.cuba_lif_step`).
    """

    #: Default feedforward init gain.  Plain 1/sqrt(fan_in) leaves deep
    #: layers silent at a threshold of 1.0 with sparse spike inputs; a
    #: gain of 3 puts the initial membrane fluctuations near threshold so
    #: spiking activity propagates through all hidden layers from epoch 0
    #: (fluctuation-driven initialisation).
    FF_GAIN = 3.0

    def __init__(
        self,
        n_in: int,
        n_out: int,
        params: LIFParameters,
        recurrent: bool = True,
        rng: np.random.Generator | None = None,
        name: str = "lif",
        ff_gain: float | None = None,
        synapse_alpha: float | None = None,
    ):
        rng = rng or default_rng()
        if synapse_alpha is not None and not 0.0 < synapse_alpha < 1.0:
            raise ConfigError(
                f"synapse_alpha must lie in (0, 1) or be None, got {synapse_alpha}"
            )
        self.n_in = int(n_in)
        self.n_out = int(n_out)
        self.params = params
        self.recurrent = bool(recurrent)
        self.name = name
        self.synapse_alpha = synapse_alpha
        self.use_fused = True
        self.last_forward_path: str | None = None
        self.w_ff = dense_init(rng, n_in, n_out, gain=ff_gain or self.FF_GAIN)
        self.w_rec = recurrent_init(rng, n_out) if recurrent else None

    # ------------------------------------------------------------------
    def parameters(self) -> list[Tensor]:
        """Weight Tensors: ``w_ff`` plus ``w_rec`` when recurrent."""
        params = [self.w_ff]
        if self.w_rec is not None:
            params.append(self.w_rec)
        return params

    def set_trainable(self, flag: bool) -> None:
        """Freeze (False) or unfreeze (True) this layer's weights."""
        for p in self.parameters():
            p.requires_grad = bool(flag)

    @property
    def trainable(self) -> bool:
        """True when any of this layer's weights require grad."""
        return any(p.requires_grad for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of this layer's weights, keyed ``w_ff``/``w_rec``."""
        state = {"w_ff": self.w_ff.data.copy()}
        if self.w_rec is not None:
            state["w_rec"] = self.w_rec.data.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore weights from a :meth:`state_dict` copy, in place."""
        if state["w_ff"].shape != self.w_ff.data.shape:
            raise ShapeError(
                f"w_ff shape {state['w_ff'].shape} != {self.w_ff.data.shape}"
            )
        self.w_ff.data = state["w_ff"].copy()
        if self.w_rec is not None:
            self.w_rec.data = state["w_rec"].copy()

    # ------------------------------------------------------------------
    def forward(
        self,
        inputs: Tensor | np.ndarray,
        controller: ThresholdController | None = None,
    ) -> Tensor:
        """Run the full sequence; return output spikes ``[T, B, n_out]``.

        ``controller`` supplies the effective threshold per timestep
        (Alg. 1); None means the layer's static ``params.threshold``.
        When the layer is frozen (no trainable parameters) and the input
        carries no gradient, the pass runs without building a tape.
        """
        x = inputs if isinstance(inputs, Tensor) else Tensor(inputs)
        if x.ndim != 3:
            raise ShapeError(f"expected [T, B, n_in] input, got shape {x.shape}")
        if x.shape[2] != self.n_in:
            raise ShapeError(
                f"input feature dim {x.shape[2]} != layer fan-in {self.n_in}"
            )
        needs_graph = self.trainable or x.requires_grad
        if needs_graph:
            return self._dispatch(x, controller)
        with no_grad():
            return self._dispatch(x, controller)

    def _dispatch(self, x: Tensor, controller: ThresholdController | None) -> Tensor:
        """Route to the fused kernel when the threshold is static."""
        vthr = _static_threshold(controller, self.params.threshold)
        if vthr is not None and self.use_fused and kernels.fused_enabled():
            self.last_forward_path = "fused"
            return self._forward_fused(x, vthr)
        self.last_forward_path = "steps"
        return self._forward_steps(x, controller)

    def _forward_fused(self, x: Tensor, vthr) -> Tensor:
        if self.synapse_alpha is not None:
            return kernels.cuba_lif_sequence(
                x, self.w_ff, self.params, self.synapse_alpha,
                w_rec=self.w_rec, threshold=vthr,
            )
        return kernels.lif_sequence(
            x, self.w_ff, self.params, w_rec=self.w_rec, threshold=vthr
        )

    def _forward_steps(
        self, x: Tensor, controller: ThresholdController | None
    ) -> Tensor:
        timesteps, batch = x.shape[0], x.shape[1]
        controller = controller or StaticThreshold(self.params.threshold)
        membrane = zeros((batch, self.n_out))
        spikes = zeros((batch, self.n_out))
        syn = zeros((batch, self.n_out)) if self.synapse_alpha is not None else None
        threshold = controller.value
        outputs: list[Tensor] = []
        for t in range(timesteps):
            current = x[t] @ self.w_ff
            if self.w_rec is not None:
                current = current + spikes @ self.w_rec
            if syn is not None:
                membrane, syn, spikes = cuba_lif_step(
                    membrane, syn, spikes, current, self.params,
                    self.synapse_alpha, threshold,
                )
            else:
                membrane, spikes = lif_step(
                    membrane, spikes, current, self.params, threshold
                )
            outputs.append(spikes)
            counts = spikes.data.sum(axis=0)  # per-neuron, batch-summed
            threshold = controller.step(t, counts, counts * t)
        return stack(outputs, axis=0)


class LeakyReadout:
    """Non-spiking leaky-integrator output layer (Fig. 6a readout).

    Integrates projected input over time without firing.  Classification
    logits reduce the membrane trajectory per class with ``readout_mode``:

    - ``"mean"`` (default) — time-average of the membrane.  Every
      timestep contributes gradient, which trains robustly even for
      classes whose membrane never peaks (a max-over-time readout gives
      silent classes near-zero gradient because their argmax lands on an
      early, spike-free step).
    - ``"max"`` — maximum membrane over time (the snnTorch-style
      convention); kept for the readout ablation.
    - ``"last"`` — final membrane value.
    """

    READOUT_MODES = ("mean", "max", "last")

    def __init__(
        self,
        n_in: int,
        n_out: int,
        beta: float = 0.95,
        rng: np.random.Generator | None = None,
        name: str = "readout",
        readout_mode: str = "mean",
    ):
        rng = rng or default_rng()
        if readout_mode not in self.READOUT_MODES:
            raise ShapeError(
                f"readout_mode must be one of {self.READOUT_MODES}, got {readout_mode!r}"
            )
        self.n_in = int(n_in)
        self.n_out = int(n_out)
        self.beta = float(beta)
        self.name = name
        self.readout_mode = readout_mode
        self.use_fused = True
        self.last_forward_path: str | None = None
        self.w_ff = dense_init(rng, n_in, n_out)

    def parameters(self) -> list[Tensor]:
        """The single feedforward weight Tensor."""
        return [self.w_ff]

    def set_trainable(self, flag: bool) -> None:
        """Freeze (False) or unfreeze (True) the readout weights."""
        for p in self.parameters():
            p.requires_grad = bool(flag)

    @property
    def trainable(self) -> bool:
        """True when the readout weights require grad."""
        return self.w_ff.requires_grad

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of the readout weights, keyed ``w_ff``."""
        return {"w_ff": self.w_ff.data.copy()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore weights from a :meth:`state_dict` copy, in place."""
        if state["w_ff"].shape != self.w_ff.data.shape:
            raise ShapeError(
                f"w_ff shape {state['w_ff'].shape} != {self.w_ff.data.shape}"
            )
        self.w_ff.data = state["w_ff"].copy()

    def forward(
        self,
        inputs: Tensor | np.ndarray,
        class_mask: np.ndarray | None = None,
    ) -> Tensor:
        """Integrate the sequence; return logits ``[B, n_out]``.

        ``class_mask`` is an optional boolean vector ``[n_out]`` selecting
        the classes the readout may answer with (task-incremental
        inference: the task id restricts the label space).  Classes
        outside the mask receive an additive :data:`MASKED_LOGIT` penalty
        after integration, so both the fused and the per-step path
        support masking identically and gradients still flow to every
        logit.  A full mask is skipped entirely — the output is
        bitwise-identical to passing ``None``.
        """
        x = inputs if isinstance(inputs, Tensor) else Tensor(inputs)
        if x.ndim != 3:
            raise ShapeError(f"expected [T, B, n_in] input, got shape {x.shape}")
        if x.shape[2] != self.n_in:
            raise ShapeError(
                f"input feature dim {x.shape[2]} != readout fan-in {self.n_in}"
            )
        mask = self._resolve_mask(class_mask)
        needs_graph = self.trainable or x.requires_grad
        if not needs_graph:
            with no_grad():
                return self._mask(self._integrate(x), mask)
        return self._mask(self._integrate(x), mask)

    def _resolve_mask(self, class_mask) -> np.ndarray | None:
        """Validate a class mask; None also for a full (no-op) mask."""
        if class_mask is None:
            return None
        mask = np.asarray(class_mask)
        if mask.shape != (self.n_out,):
            raise ShapeError(
                f"class_mask must have shape ({self.n_out},), got {tuple(mask.shape)}"
            )
        mask = mask.astype(bool)
        if not mask.any():
            raise ConfigError("class_mask must keep at least one class")
        if mask.all():
            return None
        return mask

    def _mask(self, logits: Tensor, mask: np.ndarray | None) -> Tensor:
        if mask is None:
            return logits
        return logits + Tensor(np.where(mask, 0.0, MASKED_LOGIT))

    def _integrate(self, x: Tensor) -> Tensor:
        if self.use_fused and 0.0 < self.beta < 1.0 and kernels.fused_enabled():
            self.last_forward_path = "fused"
            stacked = kernels.leaky_readout_sequence(x, self.w_ff, self.beta)
            return self._reduce(stacked)
        self.last_forward_path = "steps"
        timesteps, batch = x.shape[0], x.shape[1]
        membrane = zeros((batch, self.n_out))
        trajectory: list[Tensor] = []
        for t in range(timesteps):
            membrane = membrane * self.beta + x[t] @ self.w_ff
            trajectory.append(membrane)
        if self.readout_mode == "last":
            return trajectory[-1]
        return self._reduce(stack(trajectory, axis=0))

    def _reduce(self, stacked: Tensor) -> Tensor:
        """Collapse a membrane trajectory ``[T, B, C]`` into logits."""
        if self.readout_mode == "last":
            return stacked[-1]
        if self.readout_mode == "max":
            return stacked.max(axis=0)
        return stacked.mean(axis=0)
