"""Weight initialisation for spiking layers.

Feedforward weights use the fluctuation-driven scaling common in SNN
training (uniform in ``±1/sqrt(fan_in)``, as snnTorch/SpikingLR do for
dense layers); recurrent weights get an extra damping ``gain`` so the
recurrent loop starts below the self-excitation regime.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.errors import ConfigError

__all__ = ["dense_init", "recurrent_init"]


def dense_init(
    rng: np.random.Generator, fan_in: int, fan_out: int, gain: float = 1.0
) -> Tensor:
    """Uniform ``±gain/sqrt(fan_in)`` dense weight matrix ``[fan_in, fan_out]``."""
    if fan_in <= 0 or fan_out <= 0:
        raise ConfigError(f"fan_in/fan_out must be positive, got {fan_in}/{fan_out}")
    bound = gain / np.sqrt(fan_in)
    weights = rng.uniform(-bound, bound, size=(fan_in, fan_out)).astype(np.float32)
    return Tensor(weights, requires_grad=True)


def recurrent_init(rng: np.random.Generator, size: int, gain: float = 0.5) -> Tensor:
    """Damped recurrent weight matrix ``[size, size]`` with zeroed diagonal.

    The zero diagonal removes immediate self-excitation, which otherwise
    lets single neurons latch into permanent firing at low thresholds.
    """
    if size <= 0:
        raise ConfigError(f"size must be positive, got {size}")
    bound = gain / np.sqrt(size)
    weights = rng.uniform(-bound, bound, size=(size, size)).astype(np.float32)
    np.fill_diagonal(weights, 0.0)
    return Tensor(weights, requires_grad=True)
