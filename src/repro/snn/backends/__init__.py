"""Multi-backend kernel dispatch for the fused SNN sequence sweeps.

The fused kernels (:mod:`repro.snn.kernels`) define *what* runs as one
autograd tape node; this package decides *who executes it*.  Mirroring
tinygrad's ``runtime/ops_clang.py`` / ``ops_torch.py`` split, each
backend is a :class:`~repro.snn.backends.base.SequenceExecutor`
registered by name:

- ``numpy`` (:mod:`~repro.snn.backends.numpy_ref`) — the always-available
  bitwise reference every other backend is pinned to;
- ``c`` (:mod:`~repro.snn.backends.cffi_c`) — hand-written C kernels
  compiled lazily via cffi, bitwise-identical to numpy by construction;
- ``torch`` (:mod:`~repro.snn.backends.torch_backend`) — active only
  when torch is importable, tolerance-gated.

Selection is per-process via ``REPRO_BACKEND=numpy|c|torch|auto``
(default ``auto``: first available backend in speed order).  See
``docs/backends.md`` for the executor contract and how to add a
backend, and ``repro backends`` for the live availability table.
"""

from repro.snn.backends.base import (
    SequenceExecutor,
    SweepSpec,
    active,
    all_backends,
    available_backends,
    get_backend,
    register_backend,
    select_backend,
    selection_report,
)
from repro.snn.backends.cffi_c import CffiExecutor
from repro.snn.backends.numpy_ref import NumpyExecutor
from repro.snn.backends.torch_backend import TorchExecutor

__all__ = [
    "SequenceExecutor",
    "SweepSpec",
    "NumpyExecutor",
    "CffiExecutor",
    "TorchExecutor",
    "register_backend",
    "get_backend",
    "all_backends",
    "available_backends",
    "select_backend",
    "active",
    "selection_report",
]
