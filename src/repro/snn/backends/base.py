"""The kernel-backend contract: sequence executors and their registry.

The fused sequence kernels (:mod:`repro.snn.kernels`) collapse the SNN
time loop into single autograd tape nodes.  *What runs inside* those
nodes is pluggable: a :class:`SequenceExecutor` implements the four
time-recurrent sweeps (LIF/CuBa forward, LIF/CuBa reverse, leaky-readout
forward and reverse) and registers itself by name, mirroring tinygrad's
``runtime/ops_clang.py`` / ``ops_torch.py`` split.

**The contract** (see ``docs/backends.md`` for the full guide):

- Executors receive *projected currents*: the stacked feedforward GEMM
  (``x @ w_ff``) and the weight-gradient reductions stay on the numpy
  reference path, because BLAS accumulation order is the bitwise anchor
  of the whole reproduction — it is not reproducible by naive loops, so
  no backend reimplements it.  A backend only executes the per-timestep
  recurrence (elementwise state updates plus, for recurrent layers, the
  per-step recurrent projection).
- A backend declares its :attr:`~SequenceExecutor.parity` class —
  ``"bitwise"`` executors must replicate the reference association order
  documented in :mod:`repro.snn.kernels` exactly; ``"tolerance"``
  executors (e.g. torch) are pinned to the reference within a numeric
  tolerance by the parity suite.
- Availability is probed lazily and reported with a human-readable
  reason; probing must never raise.
- Selection is per-process via the ``REPRO_BACKEND`` environment flag
  (``numpy | c | torch | auto``, threaded through
  :func:`repro.config.backend_selection`).  ``auto`` walks the registry
  in ascending :attr:`~SequenceExecutor.priority` (speed) order and
  picks the first available executor; an explicitly requested backend
  that is unavailable raises :class:`~repro.errors.ConfigError` naming
  the missing dependency.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.config import backend_selection
from repro.errors import ConfigError

__all__ = [
    "SweepSpec",
    "SequenceExecutor",
    "register_backend",
    "get_backend",
    "all_backends",
    "available_backends",
    "select_backend",
    "active",
    "selection_report",
]


@dataclass(frozen=True)
class SweepSpec:
    """Static per-sequence neuron constants handed to an executor.

    One spec describes a whole ``[T, B, N]`` sweep — anything that can
    change mid-sequence (dynamic thresholds) is outside the fused path
    by construction.

    Attributes:
        beta: Membrane decay per timestep.
        vthr: Effective threshold — a float, or a per-neuron ``[N]``
            array already cast to the sweep dtype.
        hard: True for hard (reset-to-zero) reset, False for soft
            (subtract-threshold) reset.
        alpha: Synaptic decay of the CuBa variant, or None for plain LIF.
    """

    beta: float
    vthr: float | np.ndarray
    hard: bool
    alpha: float | None = None


class SequenceExecutor(ABC):
    """One executor of the fused sequence sweeps (the backend contract).

    Subclasses set :attr:`name`, :attr:`parity` and :attr:`priority`,
    implement :meth:`availability` plus the four sweeps, and register an
    instance with :func:`register_backend`.  All array arguments and
    results are numpy ``[T, B, N]`` stacks; executors that compute on
    another substrate convert at the boundary.
    """

    #: Registry name (the value ``REPRO_BACKEND`` selects).
    name: str = "abstract"
    #: ``"bitwise"`` — must replicate the reference association order
    #: exactly; ``"tolerance"`` — pinned within a numeric tolerance.
    parity: str = "bitwise"
    #: Auto-selection rank; lower is preferred (faster).
    priority: int = 100

    @abstractmethod
    def availability(self) -> tuple[bool, str]:
        """Whether this executor can run here, with the reason.

        Returns ``(True, reason-it-was-selected)`` or ``(False,
        what-dependency-is-missing)``.  Must never raise: probes catch
        their own failures and fold them into the reason string.
        """

    @abstractmethod
    def lif_forward(
        self, ff: np.ndarray, w_rec: np.ndarray | None, spec: SweepSpec
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run the (CuBa-)LIF forward recurrence over a whole sequence.

        Args:
            ff: Projected feedforward currents ``[T, B, N]`` (the
                ``x @ w_ff`` GEMM, precomputed on the reference path).
            w_rec: Optional recurrent weights ``[N, N]``.
            spec: Neuron constants for the sweep.

        Returns:
            ``(membrane, spikes)`` stacks, each ``[T, B, N]``.
        """

    @abstractmethod
    def lif_backward(
        self,
        g_spikes: np.ndarray,
        surrogate: np.ndarray,
        membrane: np.ndarray,
        spikes: np.ndarray,
        w_rec: np.ndarray | None,
        spec: SweepSpec,
    ) -> np.ndarray:
        """Run the reverse BPTT sweep; return ``gI`` ``[T, B, N]``.

        ``surrogate`` is the precomputed surrogate derivative at every
        timestep (reference path).  The returned ``gI`` is the gradient
        w.r.t. the projected input current, from which the reference
        path derives all weight/input gradients as GEMMs.
        """

    @abstractmethod
    def readout_forward(self, projected: np.ndarray, beta: float) -> np.ndarray:
        """Integrate the leaky readout; return the membrane trajectory.

        ``projected`` is ``x @ w_ff`` ``[T, B, C]``; the result is the
        ``[T, B, C]`` trajectory of ``m[t] = m[t-1] * beta + p[t]``.
        """

    @abstractmethod
    def readout_backward(self, g_trajectory: np.ndarray, beta: float) -> np.ndarray:
        """Reverse sweep of the readout; return ``g_membrane`` ``[T, B, C]``."""


_REGISTRY: dict[str, SequenceExecutor] = {}


def register_backend(executor: SequenceExecutor) -> SequenceExecutor:
    """Register an executor under its :attr:`~SequenceExecutor.name`.

    Re-registering a name replaces the previous executor (latest wins),
    so tests and downstream packages can shadow a built-in.  Returns the
    executor for decorator-style use.
    """
    if not executor.name or executor.name == "abstract":
        raise ConfigError("backend executors must set a concrete `name`")
    if executor.parity not in ("bitwise", "tolerance"):
        raise ConfigError(
            f"backend {executor.name!r} declares unknown parity "
            f"{executor.parity!r}; expected 'bitwise' or 'tolerance'"
        )
    _REGISTRY[executor.name] = executor
    _invalidate_active()
    return executor


def all_backends() -> list[SequenceExecutor]:
    """Every registered executor, in auto-selection (priority) order."""
    return sorted(_REGISTRY.values(), key=lambda b: (b.priority, b.name))


def get_backend(name: str) -> SequenceExecutor:
    """Look up a registered executor by name.

    Raises:
        ConfigError: If no executor is registered under ``name``.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise ConfigError(
            f"unknown kernel backend {name!r}; registered backends: {known}"
        ) from None


def available_backends() -> list[SequenceExecutor]:
    """The registered executors whose availability probe passes."""
    return [b for b in all_backends() if b.availability()[0]]


def select_backend(name: str | None = None) -> SequenceExecutor:
    """Resolve a selection to one available executor.

    Args:
        name: A backend name, ``"auto"``, or None to read the
            ``REPRO_BACKEND`` environment flag.

    Returns:
        The selected executor.  ``auto`` probes the registry in priority
        order and always succeeds (the numpy reference is unconditionally
        available).

    Raises:
        ConfigError: When an explicitly named backend is unknown or its
            availability probe fails — the message names the missing
            dependency so the fix is actionable.
    """
    selection = backend_selection() if name is None else name.strip().lower()
    if selection == "auto":
        for backend in all_backends():
            if backend.availability()[0]:
                return backend
        raise ConfigError(
            "no kernel backend is available (the numpy reference should "
            "always be; is the registry empty?)"
        )
    backend = get_backend(selection)
    ok, reason = backend.availability()
    if not ok:
        raise ConfigError(
            f"kernel backend {selection!r} was requested via REPRO_BACKEND "
            f"but is unavailable: {reason}"
        )
    return backend


# The active executor is memoised per environment selection so the hot
# path (one lookup per fused tape node) costs a string compare, while
# flipping REPRO_BACKEND mid-process still takes effect immediately.
_ACTIVE: dict[str, SequenceExecutor | None] = {"selection": None, "backend": None}


def _invalidate_active() -> None:
    _ACTIVE["selection"] = None
    _ACTIVE["backend"] = None


def active() -> SequenceExecutor:
    """The executor the current ``REPRO_BACKEND`` selection resolves to."""
    selection = backend_selection()
    if _ACTIVE["selection"] != selection:
        _ACTIVE["backend"] = select_backend(selection)
        _ACTIVE["selection"] = selection
    return _ACTIVE["backend"]


def selection_report() -> list[dict[str, str | bool]]:
    """Availability/selection table behind ``repro backends``.

    One row per registered executor: name, declared parity class,
    availability, the probe's reason string, and whether the current
    selection resolves to it.  Diagnostic by design: an unsatisfiable
    explicit selection marks no row selected instead of raising, so the
    table still prints when the user is debugging exactly that.
    """
    try:
        selected = active()
    except ConfigError:
        selected = None
    rows: list[dict[str, str | bool]] = []
    for backend in all_backends():
        ok, reason = backend.availability()
        rows.append(
            {
                "name": backend.name,
                "parity": backend.parity,
                "available": ok,
                "reason": reason,
                "selected": backend is selected,
            }
        )
    return rows
