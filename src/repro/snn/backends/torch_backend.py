"""Torch executor for the fused sequence sweeps (active when importable).

Runs the same recurrences as the reference on torch CPU tensors.  Torch
is *not* a dependency of this library: the executor activates only when
``import torch`` succeeds, and otherwise reports itself unavailable so
``auto`` selection skips it (requesting it explicitly via
``REPRO_BACKEND=torch`` raises a :class:`~repro.errors.ConfigError`
naming the missing package).

Unlike the C backend, torch owns its whole computation — including the
per-step recurrent projection — so its accumulation order (and any use
of fused multiply-adds inside torch kernels) legitimately differs from
the numpy anchor.  The executor therefore declares ``parity =
"tolerance"``: the parity suite pins it to the reference trajectory
within a numeric tolerance instead of bitwise.

The torch module is injectable (constructor argument) so the sweep code
is exercised by the test suite on machines without torch, through a
minimal numpy-backed stand-in.
"""

from __future__ import annotations

import numpy as np

from repro.snn.backends.base import SequenceExecutor, SweepSpec, register_backend

__all__ = ["TorchExecutor"]


class TorchExecutor(SequenceExecutor):
    """Torch-tensor executor (module docstring has the full story)."""

    name = "torch"
    parity = "tolerance"
    priority = 20

    def __init__(self, torch_module=None):
        self._torch = torch_module
        self._probed = torch_module is not None

    def _module(self):
        if not self._probed:
            self._probed = True
            try:
                import torch

                self._torch = torch
            except ImportError:
                self._torch = None
        return self._torch

    def availability(self) -> tuple[bool, str]:
        """Available iff ``import torch`` succeeds in this process."""
        torch = self._module()
        if torch is None:
            return False, "the torch package is not importable (pip install torch)"
        version = getattr(torch, "__version__", "unknown")
        return True, f"torch {version} (tolerance-gated parity)"

    def _tensor(self, array: np.ndarray):
        return self._module().from_numpy(np.ascontiguousarray(array))

    def _vthr(self, spec: SweepSpec, dtype):
        if np.isscalar(spec.vthr):
            return float(spec.vthr)
        return self._tensor(np.asarray(spec.vthr, dtype=dtype))

    def lif_forward(self, ff, w_rec, spec):
        """Forward recurrence on torch tensors; returns numpy stacks."""
        torch = self._module()
        ff_t = self._tensor(ff)
        w_rec_t = None if w_rec is None else self._tensor(w_rec)
        vthr = self._vthr(spec, ff.dtype)
        beta, alpha, hard = spec.beta, spec.alpha, spec.hard
        v = torch.zeros_like(ff_t[0])
        s = torch.zeros_like(ff_t[0])
        syn = torch.zeros_like(ff_t[0]) if alpha is not None else None
        membrane, spikes = [], []
        for t in range(ff.shape[0]):
            current = ff_t[t] if w_rec_t is None else ff_t[t] + s @ w_rec_t
            if alpha is not None:
                syn = syn * alpha + current
                current = syn
            if hard:
                v = v * (1.0 - s) * beta + current
            else:
                v = v * beta - s * vthr + current
            s = (v - vthr > 0.0).to(v.dtype)
            membrane.append(v)
            spikes.append(s)
        return torch.stack(membrane).numpy(), torch.stack(spikes).numpy()

    def lif_backward(self, g_spikes, surrogate, membrane, spikes, w_rec, spec):
        """Reverse BPTT sweep on torch tensors; returns numpy ``gI``."""
        torch = self._module()
        g_t = self._tensor(g_spikes)
        surrogate_t = self._tensor(surrogate)
        membrane_t = self._tensor(membrane)
        spikes_t = self._tensor(spikes)
        w_rec_t = None if w_rec is None else self._tensor(w_rec.T)
        vthr = self._vthr(spec, spikes.dtype)
        beta, alpha, hard = spec.beta, spec.alpha, spec.hard
        timesteps = spikes.shape[0]
        gs_reset = gs_rec = gv_carry = gj_carry = None
        g_current = [None] * timesteps
        for t in range(timesteps - 1, -1, -1):
            if gs_reset is not None:
                gv = g_t[t] + gs_reset
                if w_rec_t is not None:
                    gv = gv + gs_rec
                gv = gv * surrogate_t[t] + gv_carry
            else:
                gv = g_t[t] * surrogate_t[t]
            if alpha is not None:
                gj = gv if gj_carry is None else gv + gj_carry
                gj_carry = gj * alpha
            else:
                gj = gv
            g_current[t] = gj
            if t > 0:
                if hard:
                    gv_beta = gv * beta
                    gs_reset = -(gv_beta * membrane_t[t - 1])
                    gv_carry = gv_beta * (1.0 - spikes_t[t - 1])
                else:
                    gs_reset = (-gv) * vthr
                    gv_carry = gv * beta
                if w_rec_t is not None:
                    gs_rec = gj @ w_rec_t
        return torch.stack(g_current).numpy()

    def readout_forward(self, projected, beta):
        """Readout integration on torch tensors."""
        torch = self._module()
        projected_t = self._tensor(projected)
        membrane = torch.zeros_like(projected_t[0])
        trajectory = []
        for t in range(projected.shape[0]):
            membrane = membrane * beta + projected_t[t]
            trajectory.append(membrane)
        return torch.stack(trajectory).numpy()

    def readout_backward(self, g_trajectory, beta):
        """Readout reverse sweep on torch tensors."""
        torch = self._module()
        g_t = self._tensor(g_trajectory)
        timesteps = g_trajectory.shape[0]
        out = [None] * timesteps
        carry = None
        for t in range(timesteps - 1, -1, -1):
            gm = g_t[t] if carry is None else g_t[t] + carry
            out[t] = gm
            carry = gm * beta
        return torch.stack(out).numpy()


register_backend(TorchExecutor())
