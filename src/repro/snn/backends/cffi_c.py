"""Hand-written C executor for the fused sequence sweeps (via cffi).

The interpreter-bound part of the fused kernels is the per-timestep
chain of small elementwise ufunc calls; this backend runs that chain in
compiled C.  The C kernels replicate the reference association order
documented in :mod:`repro.snn.backends.numpy_ref` **exactly** and are
compiled with ``-fno-fast-math -ffp-contract=off`` so the compiler can
neither reassociate nor fuse multiplies and adds — the backend declares
(and the parity suite enforces) *bitwise* parity with numpy.

GEMMs never move to C: BLAS accumulation order is the bitwise anchor
and is not reproducible by a naive loop (measured, not assumed — see
``docs/reproducibility.md``).  Feedforward layers and the leaky readout
therefore run their whole time loop in one C call, while recurrent
layers run a hybrid loop: numpy performs each step's recurrent
projection and C performs the elementwise state update, which still
removes most of the per-step interpreter overhead.

The shared library is built lazily on first use via the system C
compiler, cached per process and on disk (keyed by a hash of the C
source, under ``$REPRO_CACHE/ckernels``).  When cffi or a compiler is
missing, or the compiled kernels fail their bitwise self-check, the
backend reports itself unavailable with the reason — ``auto`` selection
then falls back to numpy.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
from shutil import which

import numpy as np

from repro.config import env_value
from repro.snn.backends import numpy_ref
from repro.snn.backends.base import SequenceExecutor, SweepSpec, register_backend

__all__ = ["CffiExecutor", "kernel_source"]

# One macro-generated body per dtype: float ("f32") and double ("f64").
# Arithmetic mirrors numpy_ref line for line; every expression relies on
# C's left-to-right association for + and - so the accumulation order
# matches the documented tape order.
_TEMPLATE = r"""
static void lif_step_{suf}(
    long B, long N,
    const {ctype} *current, const {ctype} *v_prev, const {ctype} *s_prev,
    const {ctype} *vthr, double beta, int hard,
    int has_alpha, double alpha, {ctype} *syn,
    {ctype} *v_out, {ctype} *s_out)
{{
    const {ctype} beta_c = ({ctype})beta;
    const {ctype} alpha_c = ({ctype})alpha;
    long i = 0;
    for (long b = 0; b < B; b++) {{
        for (long n = 0; n < N; n++, i++) {{
            {ctype} cur = current[i];
            {ctype} vp = v_prev ? v_prev[i] : ({ctype})0.0;
            {ctype} sp = s_prev ? s_prev[i] : ({ctype})0.0;
            if (has_alpha) {{
                syn[i] = syn[i] * alpha_c + cur;
                cur = syn[i];
            }}
            {ctype} v = hard
                ? vp * (({ctype})1.0 - sp) * beta_c + cur
                : vp * beta_c - sp * vthr[n] + cur;
            v_out[i] = v;
            s_out[i] = (v - vthr[n] > ({ctype})0.0) ? ({ctype})1.0 : ({ctype})0.0;
        }}
    }}
}}

void lif_forward_{suf}(
    long T, long B, long N,
    const {ctype} *ff, const {ctype} *vthr, double beta, int hard,
    int has_alpha, double alpha, {ctype} *syn,
    {ctype} *membrane, {ctype} *spikes)
{{
    const long BN = B * N;
    for (long t = 0; t < T; t++) {{
        const {ctype} *v_prev = t ? membrane + (t - 1) * BN : 0;
        const {ctype} *s_prev = t ? spikes + (t - 1) * BN : 0;
        lif_step_{suf}(B, N, ff + t * BN, v_prev, s_prev, vthr, beta, hard,
                       has_alpha, alpha, syn,
                       membrane + t * BN, spikes + t * BN);
    }}
}}

void lif_forward_step_{suf}(
    long B, long N,
    const {ctype} *current, const {ctype} *v_prev, const {ctype} *s_prev,
    const {ctype} *vthr, double beta, int hard,
    int has_alpha, double alpha, {ctype} *syn,
    {ctype} *v_out, {ctype} *s_out)
{{
    lif_step_{suf}(B, N, current, v_prev, s_prev, vthr, beta, hard,
                   has_alpha, alpha, syn, v_out, s_out);
}}

void lif_backward_step_{suf}(
    long B, long N,
    const {ctype} *g_spikes_t, const {ctype} *surrogate_t,
    const {ctype} *gs_rec, const {ctype} *membrane_prev,
    const {ctype} *spikes_prev, const {ctype} *vthr, double beta, int hard,
    int has_alpha, double alpha, int have_carry,
    {ctype} *gs_reset, {ctype} *gv_carry, {ctype} *gj_carry, {ctype} *gj_out)
{{
    const {ctype} beta_c = ({ctype})beta;
    const {ctype} alpha_c = ({ctype})alpha;
    long i = 0;
    for (long b = 0; b < B; b++) {{
        for (long n = 0; n < N; n++, i++) {{
            {ctype} gv;
            if (have_carry) {{
                gv = g_spikes_t[i] + gs_reset[i];
                if (gs_rec) gv = gv + gs_rec[i];
                gv = gv * surrogate_t[i] + gv_carry[i];
            }} else {{
                gv = g_spikes_t[i] * surrogate_t[i];
            }}
            {ctype} gj = gv;
            if (has_alpha) {{
                if (have_carry) gj = gv + gj_carry[i];
                gj_carry[i] = gj * alpha_c;
            }}
            gj_out[i] = gj;
            if (membrane_prev) {{
                if (hard) {{
                    {ctype} gv_beta = gv * beta_c;
                    gs_reset[i] = -(gv_beta * membrane_prev[i]);
                    gv_carry[i] = gv_beta * (({ctype})1.0 - spikes_prev[i]);
                }} else {{
                    gs_reset[i] = (-gv) * vthr[n];
                    gv_carry[i] = gv * beta_c;
                }}
            }}
        }}
    }}
}}

void lif_backward_{suf}(
    long T, long B, long N,
    const {ctype} *g_spikes, const {ctype} *surrogate,
    const {ctype} *membrane, const {ctype} *spikes,
    const {ctype} *vthr, double beta, int hard,
    int has_alpha, double alpha,
    {ctype} *gs_reset, {ctype} *gv_carry, {ctype} *gj_carry,
    {ctype} *g_current)
{{
    const long BN = B * N;
    for (long t = T - 1; t >= 0; t--) {{
        const {ctype} *m_prev = t ? membrane + (t - 1) * BN : 0;
        const {ctype} *s_prev = t ? spikes + (t - 1) * BN : 0;
        lif_backward_step_{suf}(B, N, g_spikes + t * BN, surrogate + t * BN,
                                0, m_prev, s_prev, vthr, beta, hard,
                                has_alpha, alpha, (t < T - 1),
                                gs_reset, gv_carry, gj_carry,
                                g_current + t * BN);
    }}
}}

void readout_forward_{suf}(
    long T, long BC, const {ctype} *projected, double beta,
    {ctype} *trajectory)
{{
    const {ctype} beta_c = ({ctype})beta;
    for (long t = 0; t < T; t++) {{
        const {ctype} *prev = t ? trajectory + (t - 1) * BC : 0;
        for (long i = 0; i < BC; i++) {{
            {ctype} m = prev ? prev[i] : ({ctype})0.0;
            trajectory[t * BC + i] = m * beta_c + projected[t * BC + i];
        }}
    }}
}}

void readout_backward_{suf}(
    long T, long BC, const {ctype} *g_trajectory, double beta,
    {ctype} *g_membrane)
{{
    const {ctype} beta_c = ({ctype})beta;
    for (long t = T - 1; t >= 0; t--) {{
        for (long i = 0; i < BC; i++) {{
            {ctype} gm = g_trajectory[t * BC + i];
            if (t < T - 1) gm = gm + g_membrane[(t + 1) * BC + i] * beta_c;
            g_membrane[t * BC + i] = gm;
        }}
    }}
}}
"""

_CDEF_TEMPLATE = """
void lif_forward_{suf}(long, long, long, const {ctype} *, const {ctype} *,
                       double, int, int, double, {ctype} *, {ctype} *, {ctype} *);
void lif_forward_step_{suf}(long, long, const {ctype} *, const {ctype} *,
                            const {ctype} *, const {ctype} *, double, int, int,
                            double, {ctype} *, {ctype} *, {ctype} *);
void lif_backward_{suf}(long, long, long, const {ctype} *, const {ctype} *,
                        const {ctype} *, const {ctype} *, const {ctype} *,
                        double, int, int, double, {ctype} *, {ctype} *,
                        {ctype} *, {ctype} *);
void lif_backward_step_{suf}(long, long, const {ctype} *, const {ctype} *,
                             const {ctype} *, const {ctype} *, const {ctype} *,
                             const {ctype} *, double, int, int, double, int,
                             {ctype} *, {ctype} *, {ctype} *, {ctype} *);
void readout_forward_{suf}(long, long, const {ctype} *, double, {ctype} *);
void readout_backward_{suf}(long, long, const {ctype} *, double, {ctype} *);
"""

_DTYPES = {"f32": "float", "f64": "double"}

#: Compiler flags that make the C arithmetic IEEE-exact: no value
#: reassociation, no contraction of a*b+c into fma(a, b, c) — either
#: would change rounding and break bitwise parity with numpy.
_CFLAGS = ("-O2", "-fPIC", "-shared", "-fno-fast-math", "-ffp-contract=off")


def kernel_source() -> str:
    """The complete C source of the kernels (both dtype variants)."""
    return "\n".join(
        _TEMPLATE.format(suf=suf, ctype=ctype) for suf, ctype in _DTYPES.items()
    )


def _cache_dir() -> str:
    root = env_value("REPRO_CACHE")
    return os.path.join(root, "ckernels")


def _find_compiler() -> str | None:
    for candidate in ("cc", "gcc", "clang"):
        path = which(candidate)
        if path:
            return path
    return None


def _compile(compiler: str, source: str) -> str:
    """Compile ``source`` into a cached shared library; return its path.

    The library name embeds a hash of the source and flags, so editing
    the kernels naturally invalidates the on-disk cache.
    """
    digest = hashlib.sha256(
        (source + " ".join(_CFLAGS) + compiler).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"reprokernels-{digest}.so")
    if os.path.exists(lib_path):
        return lib_path
    os.makedirs(cache, exist_ok=True)
    src_path = os.path.join(cache, f"reprokernels-{digest}.c")
    with open(src_path, "w") as handle:
        handle.write(source)
    # Build into a temp name then rename: concurrent processes racing on
    # the same cache see either nothing or a complete library.
    fd, tmp_path = tempfile.mkstemp(suffix=".so", dir=cache)
    os.close(fd)
    try:
        subprocess.run(
            [compiler, *_CFLAGS, "-o", tmp_path, src_path],
            check=True,
            capture_output=True,
            text=True,
        )
        os.replace(tmp_path, lib_path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
    return lib_path


class CffiExecutor(SequenceExecutor):
    """Compiled-C executor (module docstring has the full story)."""

    name = "c"
    parity = "bitwise"
    priority = 10

    def __init__(self):
        self._ffi = None
        self._lib = None
        self._probe: tuple[bool, str] | None = None

    # -- build / probe -------------------------------------------------
    def availability(self) -> tuple[bool, str]:
        """Probe cffi + a C compiler and build/self-check the kernels.

        The probe runs once per process; its result (and reason) is
        cached.  Any failure — missing cffi, no compiler on PATH, a
        compile error, or a bitwise self-check mismatch — makes the
        backend unavailable with that reason.
        """
        if self._probe is None:
            self._probe = self._probe_once()
        return self._probe

    def _probe_once(self) -> tuple[bool, str]:
        try:
            import cffi  # noqa: F401
        except ImportError:
            return False, "the cffi package is not importable (pip install cffi)"
        compiler = _find_compiler()
        if compiler is None:
            return False, "no C compiler (cc / gcc / clang) on PATH"
        try:
            self._build(compiler)
        except Exception as error:  # build failures become reasons, not crashes
            return False, f"kernel compilation failed: {error}"
        try:
            self._self_check()
        except Exception as error:
            return False, f"compiled kernels failed their bitwise self-check: {error}"
        return True, f"compiled C kernels via {compiler} (bitwise vs numpy)"

    def _build(self, compiler: str) -> None:
        import cffi

        ffi = cffi.FFI()
        for suf, ctype in _DTYPES.items():
            ffi.cdef(_CDEF_TEMPLATE.format(suf=suf, ctype=ctype))
        lib_path = _compile(compiler, kernel_source())
        self._lib = ffi.dlopen(lib_path)
        self._ffi = ffi

    def _self_check(self) -> None:
        """Assert bitwise parity with numpy on a canonical tiny workload.

        Guards against compilers that contract or reassociate despite
        the flags: such a toolchain silently demotes this backend to
        unavailable instead of corrupting trajectory reproducibility.
        """
        # The probe deliberately avoids repro.seeding: a broken toolchain
        # must be diagnosed before this backend touches any repro module,
        # and the fixed seed carries no experiment state.
        rng = np.random.default_rng(0)  # repro-lint: disable=RPL001 -- fixed-seed toolchain probe, independent of experiment seeding
        for dtype in (np.float32, np.float64):
            ff = rng.standard_normal((5, 3, 4)).astype(dtype)
            w_rec = rng.standard_normal((4, 4)).astype(dtype) * dtype(0.3)
            for w in (None, w_rec):
                for spec in (
                    SweepSpec(beta=0.9, vthr=0.7, hard=True, alpha=None),
                    SweepSpec(beta=0.9, vthr=0.7, hard=False, alpha=0.5),
                ):
                    want = numpy_ref.lif_forward_sweep(ff, w, spec)
                    got = self.lif_forward(ff, w, spec)
                    if not all(np.array_equal(a, b) for a, b in zip(want, got)):
                        raise AssertionError("forward sweep mismatch")
                    g = rng.standard_normal(ff.shape).astype(dtype)
                    surrogate = rng.random(ff.shape).astype(dtype)
                    want_g = numpy_ref.lif_reverse_sweep(g, surrogate, *want, w, spec)
                    got_g = self.lif_backward(g, surrogate, *got, w, spec)
                    if not np.array_equal(want_g, got_g):
                        raise AssertionError("reverse sweep mismatch")
            traj = numpy_ref.readout_forward_sweep(ff, 0.8)
            if not np.array_equal(traj, self.readout_forward(ff, 0.8)):
                raise AssertionError("readout forward mismatch")
            if not np.array_equal(
                numpy_ref.readout_backward_sweep(ff, 0.8),
                self.readout_backward(ff, 0.8),
            ):
                raise AssertionError("readout backward mismatch")

    # -- helpers -------------------------------------------------------
    _SUFFIXES = {np.dtype(np.float32): "f32", np.dtype(np.float64): "f64"}

    def _kernel(self, name: str, dtype) -> tuple[object, str]:
        if self._lib is None:
            # Reached only when a caller bypasses selection; the probe
            # (availability) is what normally builds the library.
            ok, reason = self.availability()
            if not ok:
                from repro.errors import ConfigError

                raise ConfigError(f"C kernel backend unavailable: {reason}")
        suf = self._SUFFIXES[np.dtype(dtype)]
        ctype = "float *" if suf == "f32" else "double *"
        return getattr(self._lib, f"{name}_{suf}"), ctype

    def _ptr(self, ctype: str, array: np.ndarray):
        return self._ffi.cast(ctype, array.ctypes.data)

    def _supported(self, *arrays: np.ndarray) -> bool:
        return all(np.dtype(a.dtype) in self._SUFFIXES for a in arrays)

    @staticmethod
    def _vthr_array(spec: SweepSpec, n: int, dtype) -> np.ndarray:
        # numpy computes `v - vthr` with a python-float threshold by
        # value-casting it to the array dtype first (NEP 50) — the same
        # cast this broadcast performs, so scalar and per-neuron paths
        # agree bitwise.
        vthr = np.asarray(spec.vthr, dtype=dtype)
        return np.ascontiguousarray(np.broadcast_to(vthr, (n,)))

    # -- contract ------------------------------------------------------
    def lif_forward(self, ff, w_rec, spec):
        """C (or hybrid numpy-GEMM + C) forward recurrence."""
        if not self._supported(ff):
            return numpy_ref.lif_forward_sweep(ff, w_rec, spec)
        timesteps, batch, n_out = ff.shape
        dtype = ff.dtype
        ff = np.ascontiguousarray(ff)
        membrane = np.empty_like(ff)
        spikes = np.empty_like(ff)
        vthr = self._vthr_array(spec, n_out, dtype)
        has_alpha = spec.alpha is not None
        syn = np.zeros((batch, n_out), dtype=dtype)
        alpha = spec.alpha if has_alpha else 0.0
        if w_rec is None:
            kernel, ctype = self._kernel("lif_forward", dtype)
            kernel(
                timesteps, batch, n_out,
                self._ptr(ctype, ff), self._ptr(ctype, vthr),
                float(spec.beta), int(spec.hard), int(has_alpha), float(alpha),
                self._ptr(ctype, syn),
                self._ptr(ctype, membrane), self._ptr(ctype, spikes),
            )
            return membrane, spikes
        # Recurrent hybrid: numpy owns the per-step projection (BLAS is
        # the bitwise anchor), C owns the elementwise state update.
        step, ctype = self._kernel("lif_forward_step", dtype)
        size = batch * n_out
        current = np.empty((batch, n_out), dtype=dtype)
        rec = np.empty((batch, n_out), dtype=dtype)
        s_prev = np.zeros((batch, n_out), dtype=dtype)
        p_cur = self._ptr(ctype, current)
        p_vthr = self._ptr(ctype, vthr)
        p_syn = self._ptr(ctype, syn)
        p_membrane = self._ptr(ctype, membrane)
        p_spikes = self._ptr(ctype, spikes)
        null = self._ffi.NULL
        beta, hard = float(spec.beta), int(spec.hard)
        for t in range(timesteps):
            np.matmul(s_prev, w_rec, out=rec)
            np.add(ff[t], rec, out=current)
            off = t * size
            step(
                batch, n_out, p_cur,
                p_membrane + off - size if t else null,
                p_spikes + off - size if t else null,
                p_vthr, beta, hard, int(has_alpha), float(alpha), p_syn,
                p_membrane + off, p_spikes + off,
            )
            s_prev = spikes[t]
        return membrane, spikes

    def lif_backward(self, g_spikes, surrogate, membrane, spikes, w_rec, spec):
        """C (or hybrid) reverse BPTT sweep returning ``gI``."""
        if not self._supported(g_spikes, surrogate, membrane, spikes):
            return numpy_ref.lif_reverse_sweep(
                g_spikes, surrogate, membrane, spikes, w_rec, spec
            )
        timesteps, batch, n_out = spikes.shape
        dtype = spikes.dtype
        g_spikes = np.ascontiguousarray(g_spikes, dtype=dtype)
        surrogate = np.ascontiguousarray(surrogate, dtype=dtype)
        membrane = np.ascontiguousarray(membrane)
        spikes = np.ascontiguousarray(spikes)
        g_current = np.empty_like(spikes)
        vthr = self._vthr_array(spec, n_out, dtype)
        has_alpha = spec.alpha is not None
        alpha = spec.alpha if has_alpha else 0.0
        scratch = [np.empty((batch, n_out), dtype=dtype) for _ in range(3)]
        if w_rec is None:
            kernel, ctype = self._kernel("lif_backward", dtype)
            kernel(
                timesteps, batch, n_out,
                self._ptr(ctype, g_spikes), self._ptr(ctype, surrogate),
                self._ptr(ctype, membrane), self._ptr(ctype, spikes),
                self._ptr(ctype, vthr),
                float(spec.beta), int(spec.hard), int(has_alpha), float(alpha),
                *(self._ptr(ctype, s) for s in scratch),
                self._ptr(ctype, g_current),
            )
            return g_current
        step, ctype = self._kernel("lif_backward_step", dtype)
        size = batch * n_out
        w_rec_t = w_rec.T
        gs_rec = np.empty((batch, n_out), dtype=dtype)
        p = {
            "g": self._ptr(ctype, g_spikes),
            "surr": self._ptr(ctype, surrogate),
            "m": self._ptr(ctype, membrane),
            "s": self._ptr(ctype, spikes),
            "gj": self._ptr(ctype, g_current),
            "gs_rec": self._ptr(ctype, gs_rec),
            "vthr": self._ptr(ctype, vthr),
        }
        p_scratch = [self._ptr(ctype, s) for s in scratch]
        null = self._ffi.NULL
        beta, hard = float(spec.beta), int(spec.hard)
        for t in range(timesteps - 1, -1, -1):
            off = t * size
            have_carry = t < timesteps - 1
            step(
                batch, n_out, p["g"] + off, p["surr"] + off,
                p["gs_rec"] if have_carry else null,
                p["m"] + off - size if t else null,
                p["s"] + off - size if t else null,
                p["vthr"], beta, hard, int(has_alpha), float(alpha),
                int(have_carry), *p_scratch, p["gj"] + off,
            )
            if t > 0:
                np.matmul(g_current[t], w_rec_t, out=gs_rec)
        return g_current

    def readout_forward(self, projected, beta):
        """Whole readout integration in one C call."""
        if not self._supported(projected):
            return numpy_ref.readout_forward_sweep(projected, beta)
        projected = np.ascontiguousarray(projected)
        trajectory = np.empty_like(projected)
        kernel, ctype = self._kernel("readout_forward", projected.dtype)
        timesteps = projected.shape[0]
        kernel(
            timesteps, projected.size // timesteps,
            self._ptr(ctype, projected), float(beta),
            self._ptr(ctype, trajectory),
        )
        return trajectory

    def readout_backward(self, g_trajectory, beta):
        """Whole readout reverse sweep in one C call."""
        if not self._supported(g_trajectory):
            return numpy_ref.readout_backward_sweep(g_trajectory, beta)
        g_trajectory = np.ascontiguousarray(g_trajectory)
        g_membrane = np.empty_like(g_trajectory)
        kernel, ctype = self._kernel("readout_backward", g_trajectory.dtype)
        timesteps = g_trajectory.shape[0]
        kernel(
            timesteps, g_trajectory.size // timesteps,
            self._ptr(ctype, g_trajectory), float(beta),
            self._ptr(ctype, g_membrane),
        )
        return g_membrane


register_backend(CffiExecutor())
