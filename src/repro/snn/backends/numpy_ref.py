"""The numpy reference executor — the bitwise anchor of every backend.

This module *is* the semantics of the backend contract: the forward
recurrence runs the same elementwise operations in the same order as
``T`` applications of :func:`repro.snn.neurons.lif_step` /
:func:`~repro.snn.neurons.cuba_lif_step`, and the reverse sweep is the
hand-derived BPTT documented in :mod:`repro.snn.kernels`.  Every other
backend is pinned to these trajectories by the parity suite
(``tests/snn/test_backends.py``) — bitwise for backends that declare
``parity = "bitwise"``, tolerance-gated otherwise.

**Bitwise discipline.**  Fused and per-step paths must produce the
*same training trajectories*, not just close ones: spiking networks are
chaotic, so a one-ulp gradient difference grows into different spike
rasters within a few optimizer steps and breaks trajectory
reproducibility between the two paths.  Every accumulation below
therefore replicates the association order of the per-step tape exactly
(float addition commutes but does not associate):

- ``gS[t] = (upstream + reset-path) + recurrent-path``,
- ``gV[t] = surrogate-path + decay-path``,
- partial products mirror the tape, e.g. hard reset uses
  ``(gV * beta) * V[t-1]`` — never ``gV * (beta * V[t-1])``.
"""

from __future__ import annotations

import numpy as np

from repro.snn.backends.base import SequenceExecutor, SweepSpec, register_backend

__all__ = ["NumpyExecutor"]


def lif_forward_sweep(
    ff: np.ndarray, w_rec: np.ndarray | None, spec: SweepSpec
) -> tuple[np.ndarray, np.ndarray]:
    """Forward recurrence shared by the LIF and CuBa kernels.

    Runs the same elementwise operations in the same order as ``T``
    applications of :func:`repro.snn.neurons.lif_step` /
    :func:`~repro.snn.neurons.cuba_lif_step` on the already-projected
    feedforward currents ``ff`` (the stacked GEMM is bitwise-equal to
    the per-step ``x[t] @ w_ff``).  Returns ``(membrane, spikes)``
    stacks ``[T, B, N]``.
    """
    timesteps, batch, n_out = ff.shape
    dtype = ff.dtype
    alpha = spec.alpha
    vthr = spec.vthr
    beta = spec.beta
    hard = spec.hard
    membrane = np.empty((timesteps, batch, n_out), dtype=dtype)
    spikes = np.empty((timesteps, batch, n_out), dtype=dtype)
    v = np.zeros((batch, n_out), dtype=dtype)
    s = np.zeros((batch, n_out), dtype=dtype)
    syn = np.zeros((batch, n_out), dtype=dtype) if alpha is not None else None
    for t in range(timesteps):
        current = ff[t] if w_rec is None else ff[t] + s @ w_rec
        if alpha is not None:
            syn = syn * alpha + current
            current = syn
        if hard:
            v = v * (1.0 - s) * beta + current
        else:
            v = v * beta - s * vthr + current
        s = (v - vthr > 0.0).astype(dtype)
        membrane[t] = v
        spikes[t] = s
    return membrane, spikes


def lif_reverse_sweep(
    g_spikes: np.ndarray,
    surrogate: np.ndarray,
    membrane: np.ndarray,
    spikes: np.ndarray,
    w_rec: np.ndarray | None,
    spec: SweepSpec,
) -> np.ndarray:
    """Reverse BPTT sweep shared by the LIF and CuBa kernels.

    Returns ``gI`` — the gradient of the loss w.r.t. the projected input
    current at every timestep — from which all weight/input gradients
    follow as matmuls (on the reference path, not in the executor).  See
    the module docstring for the association-order rules every
    accumulation obeys.
    """
    timesteps = spikes.shape[0]
    beta = spec.beta
    vthr = spec.vthr
    alpha = spec.alpha
    hard = spec.hard
    w_rec_t = None if w_rec is None else w_rec.T
    g_current = np.empty_like(spikes)
    state_shape = spikes.shape[1:]
    dtype = spikes.dtype
    # Preallocated scratch: the loop runs T times over small [B, N]
    # arrays, so per-step allocation overhead is comparable to the
    # arithmetic itself.  in-place ufuncs keep op order (hence bits)
    # identical.
    gv = np.empty(state_shape, dtype)  # dL/dV[t]
    gv_beta = np.empty(state_shape, dtype)
    gv_carry = np.empty(state_shape, dtype)  # decay path into gV[t], from t+1
    gs_reset = np.empty(state_shape, dtype)  # reset path into gS[t], from t+1
    gs_rec = np.empty(state_shape, dtype)  # recurrent path into gS[t], from t+1
    gj_carry = np.empty(state_shape, dtype)  # synaptic decay into gJ[t] (CuBa)
    have_carry = False
    for t in range(timesteps - 1, -1, -1):
        gj = g_current[t]  # written in place below
        if have_carry:
            np.add(g_spikes[t], gs_reset, out=gv)  # gs = upstream + reset path
            if w_rec_t is not None:
                np.add(gv, gs_rec, out=gv)  # ... + recurrent path
            np.multiply(gv, surrogate[t], out=gv)
            np.add(gv, gv_carry, out=gv)
        else:
            np.multiply(g_spikes[t], surrogate[t], out=gv)
        if alpha is not None:
            # J[t] feeds V[t] directly and J[t+1] through the alpha decay.
            if have_carry:
                np.add(gv, gj_carry, out=gj)
            else:
                gj[...] = gv
            np.multiply(gj, alpha, out=gj_carry)
        else:
            gj[...] = gv
        if t > 0:
            if hard:
                np.multiply(gv, beta, out=gv_beta)
                np.multiply(gv_beta, membrane[t - 1], out=gs_reset)
                np.negative(gs_reset, out=gs_reset)
                np.subtract(1.0, spikes[t - 1], out=gv_carry)
                np.multiply(gv_beta, gv_carry, out=gv_carry)
            else:
                np.negative(gv, out=gs_reset)
                np.multiply(gs_reset, vthr, out=gs_reset)
                np.multiply(gv, beta, out=gv_carry)
            if w_rec_t is not None:
                np.matmul(gj, w_rec_t, out=gs_rec)
            have_carry = True
    return g_current


def readout_forward_sweep(projected: np.ndarray, beta: float) -> np.ndarray:
    """Leaky-integrator forward: trajectory of ``m[t] = m[t-1]*beta + p[t]``."""
    trajectory = np.empty_like(projected)
    membrane = np.zeros(projected.shape[1:], dtype=projected.dtype)
    for t in range(projected.shape[0]):
        membrane = membrane * beta + projected[t]
        trajectory[t] = membrane
    return trajectory


def readout_backward_sweep(g_trajectory: np.ndarray, beta: float) -> np.ndarray:
    """Reverse sweep of the readout integrator.

    Same bitwise discipline as :func:`lif_reverse_sweep`: the membrane
    adjoint associates as ``(upstream + decay-path)``.
    """
    timesteps = g_trajectory.shape[0]
    g_membrane = np.empty_like(g_trajectory)
    carry = None
    for t in range(timesteps - 1, -1, -1):
        gm = g_trajectory[t] if carry is None else g_trajectory[t] + carry
        g_membrane[t] = gm
        carry = gm * beta
    return g_membrane


class NumpyExecutor(SequenceExecutor):
    """The always-available reference executor (raw numpy)."""

    name = "numpy"
    parity = "bitwise"
    priority = 30

    def availability(self) -> tuple[bool, str]:
        """Always available — numpy is the library's only hard dependency."""
        return True, "reference executor (numpy is always available)"

    def lif_forward(self, ff, w_rec, spec):
        """Run the reference forward recurrence (module docstring)."""
        return lif_forward_sweep(ff, w_rec, spec)

    def lif_backward(self, g_spikes, surrogate, membrane, spikes, w_rec, spec):
        """Run the reference reverse BPTT sweep (module docstring)."""
        return lif_reverse_sweep(g_spikes, surrogate, membrane, spikes, w_rec, spec)

    def readout_forward(self, projected, beta):
        """Run the reference readout integration."""
        return readout_forward_sweep(projected, beta)

    def readout_backward(self, g_trajectory, beta):
        """Run the reference readout reverse sweep."""
        return readout_backward_sweep(g_trajectory, beta)


register_backend(NumpyExecutor())
