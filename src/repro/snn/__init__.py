"""Spiking neural network library: LIF neurons, recurrent layers, networks.

Implements the architecture of paper Fig. 6: a stack of recurrent LIF
hidden layers followed by a non-spiking leaky readout, trained with
surrogate-gradient BPTT.  Networks can be *split* at an arbitrary weight
layer into a frozen front and a learning tail — the mechanism behind
latent replay (the frozen part produces latent activations; only the tail
is trained during the NCL phase).

The simulation hot path has two interchangeable executions: fused
sequence kernels (:mod:`repro.snn.kernels`) that run the whole time loop
in one autograd tape node, and the per-step reference the fused path is
bitwise-validated against (see :mod:`repro.snn.layers` for dispatch).
"""

from repro.snn.init import dense_init, recurrent_init
from repro.snn.kernels import (
    cuba_lif_sequence,
    fused_enabled,
    leaky_readout_sequence,
    lif_sequence,
)
from repro.snn.layers import LeakyReadout, RecurrentLIFLayer
from repro.snn.network import ForwardResult, SpikingNetwork
from repro.snn.neurons import LIFParameters, cuba_lif_step, lif_step
from repro.snn.state import LayerTraceEntry, SpikeTrace
from repro.snn.threshold import (
    AdaptiveSpikeTimingThreshold,
    PerNeuronAdaptiveThreshold,
    StaticThreshold,
    ThresholdController,
)

__all__ = [
    "LIFParameters",
    "lif_step",
    "cuba_lif_step",
    "lif_sequence",
    "cuba_lif_sequence",
    "leaky_readout_sequence",
    "fused_enabled",
    "RecurrentLIFLayer",
    "LeakyReadout",
    "SpikingNetwork",
    "ForwardResult",
    "SpikeTrace",
    "LayerTraceEntry",
    "ThresholdController",
    "StaticThreshold",
    "AdaptiveSpikeTimingThreshold",
    "PerNeuronAdaptiveThreshold",
    "dense_init",
    "recurrent_init",
]
