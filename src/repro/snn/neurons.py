"""Discrete-time Leaky Integrate-and-Fire dynamics (paper Eq. 1-2).

The continuous dynamics

    tau dV/dt = -(V - Vrst) + Z(t)

are discretized with the standard exponential-Euler step used by the
surrogate-gradient literature (and by the SpikingLR comparator):

    V[t] = beta * V[t-1] * reset(S[t-1]) + I[t]        (hard reset)
    V[t] = beta * V[t-1] - S[t-1] * Vthr + I[t]        (soft reset)
    S[t] = Heaviside(V[t] - Vthr)

with ``beta = exp(-dt / tau)`` and ``Vrst = 0``.  The Heaviside backward
pass uses a surrogate gradient (see :mod:`repro.autograd.surrogate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd import Tensor
from repro.autograd.surrogate import SurrogateSpec, fast_sigmoid_surrogate, spike
from repro.errors import ConfigError

__all__ = ["LIFParameters", "lif_step", "cuba_lif_step", "resolve_threshold"]


@dataclass(frozen=True)
class LIFParameters:
    """Per-layer neuron constants.

    Attributes:
        beta: Membrane decay per timestep, ``exp(-dt/tau)`` in Eq. (1).
        threshold: Baseline threshold potential ``Vthr``; may be
            overridden per timestep by a threshold controller (Alg. 1).
        reset_mode: ``"zero"`` — hard reset to ``Vrst = 0`` after a
            spike (Eq. 2); ``"subtract"`` — subtract ``Vthr`` (soft
            reset).
        surrogate: Pseudo-derivative family for the backward pass.
    """

    beta: float = 0.95
    threshold: float = 1.0
    reset_mode: str = "zero"
    surrogate: SurrogateSpec = field(default_factory=fast_sigmoid_surrogate)

    def __post_init__(self):
        if not 0.0 < self.beta < 1.0:
            raise ConfigError(f"beta must lie in (0, 1), got {self.beta}")
        if self.threshold <= 0.0:
            raise ConfigError(f"threshold must be positive, got {self.threshold}")
        if self.reset_mode not in ("zero", "subtract"):
            raise ConfigError(
                f"reset_mode must be 'zero' or 'subtract', got {self.reset_mode!r}"
            )


def resolve_threshold(params: LIFParameters, threshold, dtype=None):
    """Resolve the effective ``Vthr`` for a step or sequence kernel.

    Returns ``params.threshold`` when ``threshold`` is None, a float for
    scalar overrides, or an ndarray (cast to ``dtype`` when given) for
    per-neuron overrides.  Raises :class:`ConfigError` on non-positive
    values — a zero or negative threshold makes every neuron fire every
    step and silently destroys training.
    """
    if threshold is None:
        vthr = params.threshold
    elif np.isscalar(threshold):
        vthr = float(threshold)
    else:
        vthr = np.asarray(threshold, dtype=dtype)
    if np.any(np.asarray(vthr) <= 0.0):
        raise ConfigError(f"effective threshold must be positive, got {vthr}")
    return vthr


def lif_step(
    membrane: Tensor,
    prev_spikes: Tensor,
    current: Tensor,
    params: LIFParameters,
    threshold=None,
) -> tuple[Tensor, Tensor]:
    """Advance one LIF timestep.

    Args:
        membrane: ``V[t-1]``, shape ``[B, N]``.
        prev_spikes: ``S[t-1]``, shape ``[B, N]`` (binary).
        current: Input current ``I[t]`` (already projected through the
            weights).
        params: Neuron constants.
        threshold: Effective ``Vthr`` for this step: scalar, or a
            per-neuron array ``[N]`` broadcast against the batch.
            Defaults to ``params.threshold``.  This is the hook the
            adaptive threshold controllers (Alg. 1 lines 10-17 / 25-30)
            use to modulate excitability per timestep.

    Returns:
        ``(membrane, spikes)`` — ``V[t]`` and ``S[t]``.
    """
    vthr = resolve_threshold(params, threshold, dtype=membrane.data.dtype)

    if params.reset_mode == "zero":
        decayed = membrane * (1.0 - prev_spikes) * params.beta
    else:
        decayed = membrane * params.beta - prev_spikes * vthr
    new_membrane = decayed + current
    new_spikes = spike(new_membrane - vthr, params.surrogate)
    return new_membrane, new_spikes


def cuba_lif_step(
    membrane: Tensor,
    syn_current: Tensor,
    prev_spikes: Tensor,
    input_current: Tensor,
    params: LIFParameters,
    alpha: float,
    threshold=None,
) -> tuple[Tensor, Tensor, Tensor]:
    """Advance one current-based (CuBa) LIF timestep.

    The CuBa variant low-pass filters the input through a synaptic
    current state before it reaches the membrane:

        I[t] = alpha * I[t-1] + X[t] @ W
        V[t] = beta * V[t-1] * reset(S[t-1]) + I[t]
        S[t] = Heaviside(V[t] - Vthr)

    ``alpha = exp(-dt/tau_syn)`` is the synaptic decay.  Returns
    ``(membrane, syn_current, spikes)``.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"synaptic alpha must lie in (0, 1), got {alpha}")
    new_syn = syn_current * alpha + input_current
    membrane, spikes = lif_step(membrane, prev_spikes, new_syn, params, threshold)
    return membrane, new_syn, spikes
