"""Typed configuration objects shared across the library.

Configs are frozen dataclasses with validation in ``__post_init__`` so a
bad experiment fails at construction time, not three epochs in.  The
`replace`-style helpers return modified copies, keeping experiment sweeps
functional (no mutation).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = [
    "NetworkConfig",
    "PretrainConfig",
    "NCLConfig",
    "ExperimentConfig",
    "PAPER_LAYER_SIZES",
    "EnvFlag",
    "ENV_FLAGS",
    "env_flag",
    "env_value",
    "env_switch",
    "BACKEND_CHOICES",
    "backend_selection",
    "trace_selection",
]

# The paper's Fig. 6 architecture: 700 input channels, hidden layers of
# 200/100/50 recurrent LIF neurons, 20 readout classes.
PAPER_LAYER_SIZES: tuple[int, ...] = (700, 200, 100, 50, 20)


@dataclass(frozen=True)
class NetworkConfig:
    """Architecture and neuron parameters for the recurrent SNN.

    Attributes
    ----------
    layer_sizes:
        ``(input, hidden..., classes)``.  The paper uses
        ``(700, 200, 100, 50, 20)`` — four weight layers (L=4), the last
        being a non-spiking leaky readout.
    beta:
        Membrane decay per timestep, ``exp(-dt/tau)`` in Eq. (1).
    threshold:
        Baseline neuron threshold potential ``Vthr`` (Eq. 2).
    surrogate_scale:
        Slope of the fast-sigmoid surrogate (Fig. 5b).
    recurrent:
        Whether hidden layers have recurrent weights (Fig. 6a shows they
        do for the SHD workload).
    reset_mode:
        ``"subtract"`` (soft reset, V -= Vthr) or ``"zero"`` (hard reset
        to Vrst, Eq. 2).  The paper's Eq. 2 is a hard reset.
    readout_mode:
        Logit reduction of the readout membrane trajectory over time:
        ``"mean"`` (default), ``"max"``, or ``"last"``.
    synapse_alpha:
        None (default) — plain LIF (Eq. 1); in (0, 1) — current-based
        (CuBa) LIF with synaptic decay ``alpha`` (neuron-model ablation).
    """

    layer_sizes: tuple[int, ...] = PAPER_LAYER_SIZES
    beta: float = 0.95
    threshold: float = 1.0
    surrogate_scale: float = 25.0
    recurrent: bool = True
    reset_mode: str = "zero"
    readout_mode: str = "mean"
    synapse_alpha: float | None = None

    def __post_init__(self):
        if self.readout_mode not in ("mean", "max", "last"):
            raise ConfigError(
                f"readout_mode must be 'mean', 'max' or 'last', got {self.readout_mode!r}"
            )
        if self.synapse_alpha is not None and not 0.0 < self.synapse_alpha < 1.0:
            raise ConfigError(
                f"synapse_alpha must lie in (0, 1) or be None, got {self.synapse_alpha}"
            )
        if len(self.layer_sizes) < 3:
            raise ConfigError(
                "layer_sizes needs at least (input, hidden, classes); "
                f"got {self.layer_sizes}"
            )
        if any(n <= 0 for n in self.layer_sizes):
            raise ConfigError(f"layer sizes must be positive: {self.layer_sizes}")
        if not 0.0 < self.beta < 1.0:
            raise ConfigError(f"beta must lie in (0, 1), got {self.beta}")
        if self.threshold <= 0:
            raise ConfigError(f"threshold must be positive, got {self.threshold}")
        if self.reset_mode not in ("subtract", "zero"):
            raise ConfigError(f"reset_mode must be 'subtract' or 'zero', got {self.reset_mode!r}")

    @property
    def num_weight_layers(self) -> int:
        """Number of weight layers L (hidden layers + readout)."""
        return len(self.layer_sizes) - 1

    @property
    def num_hidden_layers(self) -> int:
        return len(self.layer_sizes) - 2

    @property
    def num_classes(self) -> int:
        return self.layer_sizes[-1]

    @property
    def num_inputs(self) -> int:
        return self.layer_sizes[0]

    def replace(self, **kwargs) -> "NetworkConfig":
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class PretrainConfig:
    """Pre-training phase settings (Alg. 1, lines 1-5)."""

    epochs: int = 50
    learning_rate: float = 1e-3  # eta_pre in Alg. 1 line 2
    timesteps: int = 100
    batch_size: int = 32

    def __post_init__(self):
        if self.epochs <= 0:
            raise ConfigError(f"epochs must be positive, got {self.epochs}")
        if self.learning_rate <= 0:
            raise ConfigError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.timesteps <= 0:
            raise ConfigError(f"timesteps must be positive, got {self.timesteps}")
        if self.batch_size <= 0:
            raise ConfigError(f"batch_size must be positive, got {self.batch_size}")

    def replace(self, **kwargs) -> "PretrainConfig":
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class NCLConfig:
    """Continual-learning phase settings (Alg. 1, lines 6-33).

    Attributes
    ----------
    timesteps:
        NCL-phase timestep count.  100 for SpikingLR; the reduced ``T*``
        (default 40, from Fig. 8 Observation B) for Replay4NCL.
    learning_rate_divisor:
        ``eta_cl = eta_pre / divisor``; 100 for Replay4NCL (Alg. 1 line
        6/21), 10 for the SpikingLR comparator.
    base_learning_rate:
        The ``eta_pre`` entering the divisor rule.  None (default) uses
        the actual pre-training rate; the small-scale presets set it
        higher because far fewer optimizer steps per epoch are available
        than at paper scale (see DESIGN.md §7).
    insertion_layer:
        Index of the LR insertion layer ``Lins`` in ``0..L-1`` weight
        layers (hidden layers only; the readout cannot host LR data).
    replay_fraction:
        Fraction of the pre-training set stored as latent replay data
        (``TS_replay ⊆ TS_pre``).
    adjust_interval:
        Alg. 1's ``adjust_interval`` for the adaptive threshold (=5).
    adaptive_threshold:
        Replay4NCL's dynamic Vthr policy; off for SpikingLR.
    compression_factor:
        Temporal subsampling factor of the Fig. 7 codec applied to stored
        LR data (SpikingLR: 2; Replay4NCL stores natively: 1).
    decompress_for_replay:
        Whether stored LR data is zero-stuffed back to the training
        timestep count before replay (SpikingLR: True).
    """

    timesteps: int = 40
    learning_rate_divisor: float = 100.0
    base_learning_rate: float | None = None
    insertion_layer: int = 3
    replay_fraction: float = 0.25
    adjust_interval: int = 5
    adaptive_threshold: bool = True
    compression_factor: int = 1
    decompress_for_replay: bool = False
    epochs: int = 50
    batch_size: int = 32

    def __post_init__(self):
        if self.timesteps <= 0:
            raise ConfigError(f"timesteps must be positive, got {self.timesteps}")
        if self.learning_rate_divisor <= 0:
            raise ConfigError(
                f"learning_rate_divisor must be positive, got {self.learning_rate_divisor}"
            )
        if self.base_learning_rate is not None and self.base_learning_rate <= 0:
            raise ConfigError(
                f"base_learning_rate must be positive, got {self.base_learning_rate}"
            )
        if self.insertion_layer < 0:
            raise ConfigError(f"insertion_layer must be >= 0, got {self.insertion_layer}")
        if not 0.0 < self.replay_fraction <= 1.0:
            raise ConfigError(
                f"replay_fraction must lie in (0, 1], got {self.replay_fraction}"
            )
        if self.adjust_interval <= 0:
            raise ConfigError(f"adjust_interval must be positive, got {self.adjust_interval}")
        if self.compression_factor < 1:
            raise ConfigError(
                f"compression_factor must be >= 1, got {self.compression_factor}"
            )
        if self.epochs <= 0:
            raise ConfigError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ConfigError(f"batch_size must be positive, got {self.batch_size}")

    def replace(self, **kwargs) -> "NCLConfig":
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class ExperimentConfig:
    """A complete class-incremental experiment specification."""

    network: NetworkConfig = field(default_factory=NetworkConfig)
    pretrain: PretrainConfig = field(default_factory=PretrainConfig)
    ncl: NCLConfig = field(default_factory=NCLConfig)
    seed: int = 0
    num_pretrain_classes: int = 19
    samples_per_class: int = 32
    test_samples_per_class: int = 16

    def __post_init__(self):
        if not 0 < self.num_pretrain_classes < self.network.num_classes:
            raise ConfigError(
                f"num_pretrain_classes must lie in (0, {self.network.num_classes}); "
                f"got {self.num_pretrain_classes}"
            )
        if self.samples_per_class <= 0 or self.test_samples_per_class <= 0:
            raise ConfigError("sample counts must be positive")
        if self.ncl.insertion_layer >= self.network.num_weight_layers:
            raise ConfigError(
                f"insertion_layer {self.ncl.insertion_layer} out of range for a network "
                f"with {self.network.num_weight_layers} weight layers"
            )

    def replace(self, **kwargs) -> "ExperimentConfig":
        return dataclasses.replace(self, **kwargs)


# ----------------------------------------------------------------------
# Process-environment flags.
#
# Every ``REPRO_*`` environment variable the library honours is declared
# here, once, so the documentation (docs/env.md, README) can be verified
# against the code instead of drifting per-PR.  Consumers read the
# environment *through* these helpers; nothing else in the library calls
# ``os.environ`` for a REPRO_ flag directly.
# ----------------------------------------------------------------------

#: Valid values of ``REPRO_BACKEND`` (see :mod:`repro.snn.backends`).
BACKEND_CHOICES: tuple[str, ...] = ("auto", "numpy", "c", "torch")


@dataclass(frozen=True)
class EnvFlag:
    """Declaration of one ``REPRO_*`` environment variable.

    Attributes:
        name: The environment variable, e.g. ``"REPRO_BACKEND"``.
        default: Effective value when the variable is unset.
        values: Human-readable domain, e.g. ``"numpy | c | torch | auto"``.
        description: One-line summary used by the docs reference.
    """

    name: str
    default: str
    values: str
    description: str


#: The consolidated registry of every environment flag the library reads.
ENV_FLAGS: tuple[EnvFlag, ...] = (
    EnvFlag(
        "REPRO_BACKEND",
        "auto",
        "numpy | c | torch | auto",
        "Kernel backend executing the fused SNN sequence sweeps; "
        "`auto` probes availability in speed order (c, torch, numpy).",
    ),
    EnvFlag(
        "REPRO_FUSED_KERNELS",
        "1",
        "1 | 0",
        "Kill switch for the fused sequence kernels; 0 forces the "
        "per-step reference tape everywhere.",
    ),
    EnvFlag(
        "REPRO_PREFETCH",
        "1",
        "1 | 0",
        "Kill switch for the background shard-prefetch worker on "
        "store-backed replay streams.",
    ),
    EnvFlag(
        "REPRO_BENCH_SCALE",
        "bench",
        "ci | bench | paper",
        "Workload size of the benchmark suite (benchmarks/bench_*.py).",
    ),
    EnvFlag(
        "REPRO_CACHE",
        "./.repro_cache",
        "directory path",
        "Directory for cached pre-trained weights and compiled C kernels.",
    ),
    EnvFlag(
        "REPRO_TRACE",
        "0",
        "0 | 1 | file path",
        "Structured tracing (`repro.obs`): 1 records spans/metrics "
        "in-process, a file path additionally exports them as JSONL.",
    ),
)


def env_flag(name: str) -> EnvFlag:
    """Look up the declaration of one environment flag by name.

    Raises:
        ConfigError: If ``name`` is not a declared ``REPRO_*`` flag.
    """
    for flag in ENV_FLAGS:
        if flag.name == name:
            return flag
    raise ConfigError(
        f"unknown environment flag {name!r}; declared flags: "
        f"{', '.join(f.name for f in ENV_FLAGS)}"
    )


def env_value(name: str) -> str:
    """Read a declared environment flag's raw string value.

    Returns the process-environment value, or the flag's declared
    default when the variable is unset.  This is the one blessed way
    for library code to read a ``REPRO_*`` variable (the ``RPL003``
    lint rule forbids direct ``os.environ`` access outside this
    module), so every knob is declared, documented, and conformance-
    tested in one place.

    Raises:
        ConfigError: If ``name`` is not a declared ``REPRO_*`` flag.
    """
    flag = env_flag(name)
    return os.environ.get(flag.name, flag.default)


def env_switch(name: str) -> bool:
    """Read a declared boolean on/off environment flag.

    Anything other than ``"0"``/``"false"``/``"off"`` (case-insensitive)
    counts as on; an unset variable takes the flag's declared default.
    Consulted at every use site, so flipping the variable mid-process
    takes effect immediately.
    """
    raw = os.environ.get(name, env_flag(name).default)
    return raw.lower() not in ("0", "false", "off")


def backend_selection() -> str:
    """The validated ``REPRO_BACKEND`` selection for this process.

    Returns one of :data:`BACKEND_CHOICES` (default ``"auto"``).

    Raises:
        ConfigError: If the environment names an unknown backend.
    """
    raw = os.environ.get("REPRO_BACKEND", "auto").strip().lower()
    if raw not in BACKEND_CHOICES:
        raise ConfigError(
            f"REPRO_BACKEND must be one of {' | '.join(BACKEND_CHOICES)}, "
            f"got {raw!r}"
        )
    return raw


def trace_selection() -> tuple[bool, str | None]:
    """The parsed ``REPRO_TRACE`` selection for this process.

    Returns ``(enabled, export_path)``: ``("0"|"false"|"off"|"")``
    disables tracing, ``("1"|"true"|"on")`` enables in-process recording
    only, and any other value enables recording *and* names the JSONL
    file traced runs export to.  Consulted at every use site, so
    flipping the variable mid-process takes effect immediately.
    """
    raw = os.environ.get("REPRO_TRACE", env_flag("REPRO_TRACE").default).strip()
    low = raw.lower()
    if low in ("", "0", "false", "off"):
        return (False, None)
    if low in ("1", "true", "on"):
        return (True, None)
    return (True, raw)
