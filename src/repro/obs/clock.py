"""Injectable time sources for the trace recorder.

Spans measure *durations*, so the recorder wants a monotonic clock, not
wall time.  The clock is injectable so tests can drive span timings
deterministically (:class:`ManualClock`) while production recording uses
:class:`MonotonicClock` (``time.perf_counter``).
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = ["Clock", "MonotonicClock", "ManualClock"]


class Clock(Protocol):
    """Anything with a monotonic ``now()`` in float seconds."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        ...  # pragma: no cover - protocol stub


class MonotonicClock:
    """The production clock: ``time.perf_counter`` seconds."""

    __slots__ = ()

    def now(self) -> float:
        """Current ``time.perf_counter()`` reading in seconds."""
        return time.perf_counter()


class ManualClock:
    """A hand-advanced clock for deterministic span timings in tests.

    Attributes:
        time: The value the next :meth:`now` call returns, in seconds.
    """

    __slots__ = ("time",)

    def __init__(self, start: float = 0.0):
        self.time = float(start)

    def now(self) -> float:
        """Current manual time in seconds (does not auto-advance)."""
        return self.time

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        self.time += float(seconds)
        return self.time
