"""Structured observability: tracing spans + runtime metrics.

``repro.obs`` gives every layer of the library one cheap, always-safe
way to account for where time and bytes go:

- **Spans** — hierarchical context-manager timings with attributes,
  nested per thread (the prefetch worker's decode spans root their own
  tree), driven by an injectable monotonic :class:`~repro.obs.clock.Clock`.
- **Metrics** — counters (bytes encoded/decoded, kernel calls per
  backend), gauges (prefetch queue depth) and histograms (prefetch
  wait time) on the same recorder.
- **Recorder selection** — ``REPRO_TRACE=0|1|<path>`` via
  :func:`repro.config.trace_selection`, memoized like the kernel
  backend registry; the disabled path is a shared no-op recorder whose
  overhead is perf-gated below 2% of the fused-kernel micro-bench.
- **Exporters** — lossless JSONL and Chrome ``trace_event`` JSON
  (Perfetto-loadable), plus a :class:`~repro.obs.report.TraceReport`
  attached to traced ``run_scenario``/``NCLMethod.run`` results.

Tracing never touches the numeric path or the RNG: traced and untraced
runs are bitwise-identical (asserted at ci scale in the test suite).
"""

from repro.obs.clock import Clock, ManualClock, MonotonicClock
from repro.obs.export import (
    from_chrome,
    maybe_export,
    read_jsonl,
    to_chrome,
    write_chrome,
    write_jsonl,
)
from repro.obs.recorder import (
    NULL_SPAN,
    MetricEntry,
    NullRecorder,
    NullSpan,
    Recorder,
    Span,
    SpanRecord,
    count,
    current,
    enabled,
    gauge,
    now,
    observe,
    span,
    use_recorder,
)
from repro.obs.report import SpanAggregate, TraceReport

__all__ = [
    "Clock",
    "MonotonicClock",
    "ManualClock",
    "SpanRecord",
    "MetricEntry",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Recorder",
    "NullRecorder",
    "current",
    "use_recorder",
    "span",
    "count",
    "gauge",
    "observe",
    "now",
    "enabled",
    "write_jsonl",
    "read_jsonl",
    "to_chrome",
    "from_chrome",
    "write_chrome",
    "maybe_export",
    "SpanAggregate",
    "TraceReport",
]
