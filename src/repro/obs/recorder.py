"""Span + metric recording with a process-wide, env-selected recorder.

The heart of :mod:`repro.obs`.  A :class:`Recorder` collects
hierarchical :class:`SpanRecord` timings (context-manager spans, nested
per *thread* so the prefetch worker's decode spans form their own tree
root) and counter/gauge/histogram metrics, all under one lock so the
background decode worker and the training thread can record
concurrently.

Selection mirrors the kernel-backend registry
(:mod:`repro.snn.backends`): the process-wide recorder is memoized on
the raw ``REPRO_TRACE`` environment string, so flipping the variable
mid-process swaps recorders immediately, and the disabled path is a
shared :class:`NullRecorder` whose span/metric calls are no-ops cheap
enough to leave permanently compiled into the hot kernels (gated below
2% of the fused-kernel micro-bench by ``benchmarks/check_regression.py``).

Instrumentation never touches the numeric path or RNG: recording reads
the clock and appends to recorder state, nothing else — traced and
untraced runs are bitwise-identical by construction (asserted in
``tests/obs/test_integration.py``).
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.config import env_value, trace_selection
from repro.obs.clock import Clock, MonotonicClock

__all__ = [
    "SpanRecord",
    "MetricEntry",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Recorder",
    "NullRecorder",
    "current",
    "use_recorder",
    "span",
    "count",
    "gauge",
    "observe",
    "now",
    "enabled",
]


@dataclass(frozen=True, eq=True)
class SpanRecord:
    """One finished span: a named, timed, attributed tree node.

    Attributes:
        span_id: Unique id within the recorder (assigned at entry).
        parent_id: ``span_id`` of the innermost enclosing span *on the
            same thread*, or ``None`` for a thread's root spans.
        name: Hierarchical span name, e.g. ``"kernel.lif_forward"``.
        category: Coarse grouping (``"kernel"``, ``"store"``, ...) used
            as the Chrome trace-event category.
        thread: Name of the recording thread (``"replay-prefetch"`` for
            worker-side decodes).
        start: Clock reading at entry, seconds.
        end: Clock reading at exit, seconds.
        attrs: JSON-serializable key/value annotations.
    """

    span_id: int
    parent_id: int | None
    name: str
    category: str
    thread: str
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class MetricEntry:
    """Aggregated state of one metric series (a name + tag set).

    One shape serves all three instrument kinds: counters read
    ``total``/``events``, gauges read ``last`` (with ``low``/``high``
    extremes), histograms read ``events``/``total``/``low``/``high``.

    Attributes:
        kind: ``"counter"``, ``"gauge"`` or ``"histogram"``.
        name: Metric name, e.g. ``"store.bytes_decoded"``.
        tags: Sorted ``(key, value)`` pairs identifying the series.
        events: Number of recorded updates.
        total: Sum of recorded values.
        last: Most recently recorded value.
        low: Smallest recorded value.
        high: Largest recorded value.
    """

    kind: str
    name: str
    tags: tuple[tuple[str, str], ...]
    events: int
    total: float
    last: float
    low: float
    high: float

    @property
    def mean(self) -> float:
        """Average recorded value (``total / events``)."""
        return self.total / self.events if self.events else 0.0

    def tag_dict(self) -> dict[str, str]:
        """The tag pairs as a plain dict (for export)."""
        return dict(self.tags)


class Span:
    """A live span handle; use as a context manager.

    Entry assigns the span id, captures the parent from the calling
    thread's span stack and reads the clock; exit reads the clock again
    and hands the finished :class:`SpanRecord` to the recorder.  Extra
    attributes can be attached mid-flight via :meth:`set`.
    """

    __slots__ = ("_recorder", "name", "category", "attrs", "span_id", "parent_id", "_start")

    def __init__(self, recorder: "Recorder", name: str, category: str, attrs: dict):
        self._recorder = recorder
        self.name = name
        self.category = category
        self.attrs = attrs
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self._start = 0.0

    def set(self, **attrs) -> "Span":
        """Attach extra attributes to the span; returns ``self``."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        """Open the span: assign ids, record the start time, push."""
        rec = self._recorder
        stack = rec._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = next(rec._ids)
        stack.append(self)
        self._start = rec.clock.now()
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the span: pop, record the end time, store the record."""
        rec = self._recorder
        end = rec.clock.now()
        stack = rec._stack()
        if stack and stack[-1] is self:
            stack.pop()
        rec._finish(
            SpanRecord(
                span_id=self.span_id if self.span_id is not None else 0,
                parent_id=self.parent_id,
                name=self.name,
                category=self.category,
                thread=threading.current_thread().name,
                start=self._start,
                end=end,
                attrs=self.attrs,
            )
        )


class NullSpan:
    """The no-op span the disabled path hands out (one shared instance)."""

    __slots__ = ()

    def set(self, **attrs) -> "NullSpan":
        """Discard attributes; returns ``self``."""
        return self

    def __enter__(self) -> "NullSpan":
        """No-op entry."""
        return self

    def __exit__(self, *exc_info) -> None:
        """No-op exit."""


#: The shared no-op span instance.
NULL_SPAN = NullSpan()


class Recorder:
    """Collects spans and metrics from any thread of the process.

    Attributes:
        clock: The injected :class:`~repro.obs.clock.Clock`; defaults to
            :class:`~repro.obs.clock.MonotonicClock`.
        enabled: Always ``True`` (the disabled counterpart is
            :class:`NullRecorder`).
    """

    enabled = True

    def __init__(self, clock: Clock | None = None):
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._metrics: dict[tuple, list] = {}
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def _stack(self) -> list:
        """The calling thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, record: SpanRecord) -> None:
        """Store a finished span (called from the span handle's exit)."""
        with self._lock:
            self._spans.append(record)

    def span(self, name: str, category: str = "", **attrs) -> Span:
        """Create a span handle; nothing is recorded until it is entered."""
        return Span(self, name, category, attrs)

    def mark(self) -> int:
        """Current finished-span count; pass to :meth:`spans` later."""
        with self._lock:
            return len(self._spans)

    def spans(self, start: int = 0) -> tuple[SpanRecord, ...]:
        """Finished spans in finish order, from index ``start`` on."""
        with self._lock:
            return tuple(self._spans[start:])

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _update(self, kind: str, name: str, value: float, tags: dict) -> None:
        """Fold one observation into the named series."""
        key = (kind, name, tuple(sorted((k, str(v)) for k, v in tags.items())))
        value = float(value)
        with self._lock:
            slot = self._metrics.get(key)
            if slot is None:
                self._metrics[key] = [1, value, value, value, value]
            else:
                slot[0] += 1
                slot[1] += value
                slot[2] = value
                if value < slot[3]:
                    slot[3] = value
                if value > slot[4]:
                    slot[4] = value

    def count(self, name: str, value: float = 1.0, **tags) -> None:
        """Increment the counter ``name`` (tagged) by ``value``."""
        self._update("counter", name, value, tags)

    def gauge(self, name: str, value: float, **tags) -> None:
        """Record the gauge ``name`` (tagged) at ``value``."""
        self._update("gauge", name, value, tags)

    def observe(self, name: str, value: float, **tags) -> None:
        """Add one observation to the histogram ``name`` (tagged)."""
        self._update("histogram", name, value, tags)

    def metrics(self) -> tuple[MetricEntry, ...]:
        """Snapshot of every metric series, sorted by (kind, name, tags)."""
        with self._lock:
            items = sorted(self._metrics.items())
        return tuple(
            MetricEntry(
                kind=kind,
                name=name,
                tags=tags,
                events=slot[0],
                total=slot[1],
                last=slot[2],
                low=slot[3],
                high=slot[4],
            )
            for (kind, name, tags), slot in items
        )

    def clear(self) -> None:
        """Drop all finished spans and metric series (tests/benches)."""
        with self._lock:
            self._spans.clear()
            self._metrics.clear()


class NullRecorder:
    """The disabled-path recorder: every call is a near-free no-op.

    Shares the full :class:`Recorder` surface so instrumentation sites
    never branch on enablement themselves.

    Attributes:
        clock: A :class:`~repro.obs.clock.MonotonicClock` (so
            ``obs.now()`` works regardless of enablement).
        enabled: Always ``False``.
    """

    enabled = False

    def __init__(self):
        self.clock: Clock = MonotonicClock()

    def span(self, name: str, category: str = "", **attrs) -> NullSpan:
        """Return the shared no-op span."""
        return NULL_SPAN

    def count(self, name: str, value: float = 1.0, **tags) -> None:
        """Discard the counter update."""

    def gauge(self, name: str, value: float, **tags) -> None:
        """Discard the gauge update."""

    def observe(self, name: str, value: float, **tags) -> None:
        """Discard the histogram observation."""

    def mark(self) -> int:
        """Always ``0`` (nothing is ever recorded)."""
        return 0

    def spans(self, start: int = 0) -> tuple[SpanRecord, ...]:
        """Always empty."""
        return ()

    def metrics(self) -> tuple[MetricEntry, ...]:
        """Always empty."""
        return ()

    def clear(self) -> None:
        """No-op (nothing to drop)."""


#: The shared disabled-path recorder.
_NULL_RECORDER = NullRecorder()

#: Explicitly-installed recorders (tests/benches) — innermost wins.
_OVERRIDES: list = []

#: Memoization of the env-selected recorder on the raw env string, so a
#: mid-process flip of ``REPRO_TRACE`` swaps recorders immediately while
#: the steady-state cost stays one environment read + string compare.
_ENV_MEMO: dict = {"raw": None, "recorder": _NULL_RECORDER}


def current() -> Recorder | NullRecorder:
    """The active recorder: innermost override, else the env-selected one."""
    if _OVERRIDES:
        return _OVERRIDES[-1]
    raw = env_value("REPRO_TRACE")
    if raw != _ENV_MEMO["raw"]:
        on, _ = trace_selection()
        _ENV_MEMO["recorder"] = Recorder() if on else _NULL_RECORDER
        _ENV_MEMO["raw"] = raw
    return _ENV_MEMO["recorder"]


@contextmanager
def use_recorder(recorder: Recorder | NullRecorder):
    """Install ``recorder`` as the process-wide recorder for the block.

    Overrides take precedence over ``REPRO_TRACE`` selection and nest
    (innermost wins); tests and benches use this to capture traces
    without touching the environment.  Yields the recorder.
    """
    _OVERRIDES.append(recorder)
    try:
        yield recorder
    finally:
        _OVERRIDES.pop()


def span(name: str, category: str = "", **attrs) -> Span | NullSpan:
    """A span on the current recorder (no-op when tracing is disabled)."""
    return current().span(name, category, **attrs)


def count(name: str, value: float = 1.0, **tags) -> None:
    """Increment a counter on the current recorder."""
    current().count(name, value, **tags)


def gauge(name: str, value: float, **tags) -> None:
    """Record a gauge value on the current recorder."""
    current().gauge(name, value, **tags)


def observe(name: str, value: float, **tags) -> None:
    """Add a histogram observation on the current recorder."""
    current().observe(name, value, **tags)


def now() -> float:
    """The current recorder's clock reading in seconds."""
    return current().clock.now()


def enabled() -> bool:
    """Whether the current recorder actually records anything."""
    return current().enabled
