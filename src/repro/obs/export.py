"""Trace exporters: JSONL (lossless) and Chrome ``trace_event`` JSON.

JSONL is the native on-disk form — one JSON object per line (a ``meta``
header, then ``span`` and ``metric`` records) — and round-trips back to
:class:`~repro.obs.recorder.SpanRecord`/:class:`~repro.obs.recorder.MetricEntry`
via :func:`read_jsonl`.  :func:`to_chrome` converts spans to the Chrome
``trace_event`` format (``"X"`` complete events with microsecond
``ts``/``dur``, plus ``"M"`` thread-name metadata) loadable in Perfetto
or ``chrome://tracing``; span/parent ids ride along in ``args`` so
:func:`from_chrome` can reconstruct the tree.  Metrics are JSONL-only —
the Chrome format has no aggregate-series notion worth abusing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.config import trace_selection
from repro.errors import ConfigError
from repro.obs.recorder import MetricEntry, SpanRecord, current

__all__ = [
    "FORMAT_VERSION",
    "write_jsonl",
    "read_jsonl",
    "to_chrome",
    "from_chrome",
    "write_chrome",
    "maybe_export",
]

#: Version stamp written into the JSONL ``meta`` line.
FORMAT_VERSION = 1

#: The single ``pid`` all events carry (this is a one-process library).
_PID = 1


def write_jsonl(
    path: str | os.PathLike,
    spans: tuple[SpanRecord, ...] | list[SpanRecord],
    metrics: tuple[MetricEntry, ...] | list[MetricEntry] = (),
) -> Path:
    """Write spans + metrics to ``path`` as JSONL; returns the path.

    The parent directory is created if missing; an existing file is
    overwritten (exports are whole-recorder snapshots, so the last
    write is always the most complete one).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps({"type": "meta", "version": FORMAT_VERSION, "spans": len(spans)})]
    for s in spans:
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "id": s.span_id,
                    "parent": s.parent_id,
                    "name": s.name,
                    "cat": s.category,
                    "thread": s.thread,
                    "start": s.start,
                    "end": s.end,
                    "attrs": s.attrs,
                }
            )
        )
    for m in metrics:
        lines.append(
            json.dumps(
                {
                    "type": "metric",
                    "kind": m.kind,
                    "name": m.name,
                    "tags": m.tag_dict(),
                    "events": m.events,
                    "total": m.total,
                    "last": m.last,
                    "low": m.low,
                    "high": m.high,
                }
            )
        )
    path.write_text("\n".join(lines) + "\n")
    return path


def read_jsonl(
    path: str | os.PathLike,
) -> tuple[tuple[SpanRecord, ...], tuple[MetricEntry, ...]]:
    """Parse a JSONL trace file back into ``(spans, metrics)``.

    Raises:
        ConfigError: If the file does not exist or a line is not one of
            the known record types.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"trace file not found: {path}")
    spans: list[SpanRecord] = []
    metrics: list[MetricEntry] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as error:
            raise ConfigError(f"{path}:{lineno}: not valid JSON: {error}") from error
        kind = obj.get("type")
        if kind == "meta":
            continue
        if kind == "span":
            spans.append(
                SpanRecord(
                    span_id=int(obj["id"]),
                    parent_id=None if obj["parent"] is None else int(obj["parent"]),
                    name=obj["name"],
                    category=obj.get("cat", ""),
                    thread=obj.get("thread", "MainThread"),
                    start=float(obj["start"]),
                    end=float(obj["end"]),
                    attrs=dict(obj.get("attrs", {})),
                )
            )
        elif kind == "metric":
            metrics.append(
                MetricEntry(
                    kind=obj["kind"],
                    name=obj["name"],
                    tags=tuple(sorted(obj.get("tags", {}).items())),
                    events=int(obj["events"]),
                    total=float(obj["total"]),
                    last=float(obj["last"]),
                    low=float(obj["low"]),
                    high=float(obj["high"]),
                )
            )
        else:
            raise ConfigError(f"{path}:{lineno}: unknown record type {kind!r}")
    return tuple(spans), tuple(metrics)


def to_chrome(spans: tuple[SpanRecord, ...] | list[SpanRecord]) -> dict:
    """Convert spans to a Chrome ``trace_event`` payload (a JSON dict).

    Each span becomes an ``"X"`` (complete) event with microsecond
    ``ts``/``dur``; threads map to stable integer ``tid``\\ s named via
    ``"M"`` metadata events, so Perfetto renders one track per recording
    thread with correct nesting.
    """
    events = []
    tids: dict[str, int] = {}
    for s in spans:
        tid = tids.setdefault(s.thread, len(tids) + 1)
        events.append(
            {
                "name": s.name,
                "cat": s.category or "repro",
                "ph": "X",
                "pid": _PID,
                "tid": tid,
                "ts": s.start * 1e6,
                "dur": (s.end - s.start) * 1e6,
                "args": {**s.attrs, "span_id": s.span_id, "parent_id": s.parent_id},
            }
        )
    for thread, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": thread},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def from_chrome(payload: dict) -> tuple[SpanRecord, ...]:
    """Reconstruct spans from a :func:`to_chrome` payload.

    Timestamps survive the seconds→microseconds→seconds round trip to
    float precision; ids, names, categories, threads and attributes are
    exact.
    """
    events = payload.get("traceEvents", [])
    thread_of: dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            thread_of[int(event["tid"])] = event["args"]["name"]
    spans = []
    for event in events:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = int(args.pop("span_id"))
        parent_id = args.pop("parent_id")
        start = float(event["ts"]) / 1e6
        spans.append(
            SpanRecord(
                span_id=span_id,
                parent_id=None if parent_id is None else int(parent_id),
                name=event["name"],
                category="" if event.get("cat") == "repro" else event.get("cat", ""),
                thread=thread_of.get(int(event["tid"]), "MainThread"),
                start=start,
                end=start + float(event["dur"]) / 1e6,
                attrs=args,
            )
        )
    spans.sort(key=lambda s: s.span_id)
    return tuple(spans)


def write_chrome(
    path: str | os.PathLike, spans: tuple[SpanRecord, ...] | list[SpanRecord]
) -> Path:
    """Write spans to ``path`` in Chrome ``trace_event`` format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome(spans), indent=2) + "\n")
    return path


def maybe_export() -> Path | None:
    """Export the current recorder to the ``REPRO_TRACE`` path, if any.

    A no-op (returning ``None``) unless ``REPRO_TRACE`` names a file
    path *and* the current recorder actually recorded something (i.e. it
    is not the null recorder).  Traced entry points (``run_scenario``,
    ``NCLMethod.run``) call this on completion; each call snapshots the
    whole recorder, so the last export of a process is the complete one.
    """
    on, path = trace_selection()
    if not on or path is None:
        return None
    recorder = current()
    if not recorder.enabled:
        return None
    return write_jsonl(path, recorder.spans(), recorder.metrics())
