"""Trace summaries: aggregate spans by name and render human tables.

:class:`TraceReport` is the user-facing view of a recorded trace — it
rides along on :class:`~repro.core.strategies.NCLResult` /
``ScenarioResult`` after a traced run, and backs the
``repro trace summary`` CLI for traces read back from JSONL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.recorder import MetricEntry, NullRecorder, Recorder, SpanRecord

__all__ = ["SpanAggregate", "TraceReport"]


@dataclass(frozen=True)
class SpanAggregate:
    """Per-span-name rollup across a trace.

    Attributes:
        name: The span name being aggregated.
        calls: Number of spans with that name.
        total_seconds: Summed duration.
        max_seconds: Longest single span.
    """

    name: str
    calls: int
    total_seconds: float
    max_seconds: float

    @property
    def mean_seconds(self) -> float:
        """Average span duration in seconds."""
        return self.total_seconds / self.calls if self.calls else 0.0


@dataclass(frozen=True)
class TraceReport:
    """An immutable snapshot of recorded spans + metrics.

    Attributes:
        spans: Finished spans in finish order.
        metrics: Metric-series snapshot (sorted).
    """

    spans: tuple[SpanRecord, ...]
    metrics: tuple[MetricEntry, ...]

    @classmethod
    def capture(
        cls, recorder: Recorder | NullRecorder, mark: int = 0
    ) -> "TraceReport | None":
        """Snapshot ``recorder`` from span index ``mark`` on.

        Returns ``None`` for a disabled recorder, so call sites can
        attach the result directly to an optional ``trace`` field.
        """
        if not recorder.enabled:
            return None
        return cls(spans=recorder.spans(mark), metrics=recorder.metrics())

    @property
    def num_spans(self) -> int:
        """Number of spans in the report."""
        return len(self.spans)

    def roots(self) -> tuple[SpanRecord, ...]:
        """Spans with no parent in this report (per-thread tree roots)."""
        ids = {s.span_id for s in self.spans}
        return tuple(
            s for s in self.spans if s.parent_id is None or s.parent_id not in ids
        )

    def children(self, span_id: int) -> tuple[SpanRecord, ...]:
        """Direct children of the span ``span_id``, in start order."""
        kids = [s for s in self.spans if s.parent_id == span_id]
        kids.sort(key=lambda s: s.start)
        return tuple(kids)

    def aggregate(self) -> tuple[SpanAggregate, ...]:
        """Per-name rollups, sorted by total duration (descending)."""
        rollup: dict[str, list] = {}
        for s in self.spans:
            slot = rollup.setdefault(s.name, [0, 0.0, 0.0])
            slot[0] += 1
            slot[1] += s.duration
            if s.duration > slot[2]:
                slot[2] = s.duration
        aggregates = [
            SpanAggregate(name=name, calls=slot[0], total_seconds=slot[1], max_seconds=slot[2])
            for name, slot in rollup.items()
        ]
        aggregates.sort(key=lambda a: (-a.total_seconds, a.name))
        return tuple(aggregates)

    def top_spans(self, n: int = 10) -> tuple[SpanAggregate, ...]:
        """The ``n`` span names with the largest total duration."""
        return self.aggregate()[: max(0, n)]

    def describe(self, top: int = 10) -> str:
        """Render a plain-text summary: top spans, then metrics."""
        lines = [f"{self.num_spans} spans, {len(self.metrics)} metric series"]
        aggregates = self.top_spans(top)
        if aggregates:
            lines.append("")
            lines.append(
                f"{'span':<32} {'calls':>7} {'total_ms':>10} {'mean_ms':>10} {'max_ms':>10}"
            )
            for a in aggregates:
                lines.append(
                    f"{a.name:<32} {a.calls:>7} "
                    f"{a.total_seconds * 1e3:>10.3f} "
                    f"{a.mean_seconds * 1e3:>10.3f} "
                    f"{a.max_seconds * 1e3:>10.3f}"
                )
        if self.metrics:
            lines.append("")
            lines.append(f"{'metric':<44} {'kind':<10} {'events':>7} {'value':>14}")
            for m in self.metrics:
                tags = ",".join(f"{k}={v}" for k, v in m.tags)
                label = f"{m.name}{{{tags}}}" if tags else m.name
                value = m.last if m.kind == "gauge" else m.total
                lines.append(f"{label:<44} {m.kind:<10} {m.events:>7} {value:>14.6g}")
        return "\n".join(lines)

    def tree(self, max_depth: int = 6) -> str:
        """Render the span tree as indented text (depth-capped)."""
        by_parent: dict[int | None, list[SpanRecord]] = {}
        ids = {s.span_id for s in self.spans}
        for s in self.spans:
            parent = s.parent_id if s.parent_id in ids else None
            by_parent.setdefault(parent, []).append(s)
        for kids in by_parent.values():
            kids.sort(key=lambda s: s.start)
        lines: list[str] = []

        def walk(parent: int | None, depth: int) -> None:
            if depth >= max_depth:
                return
            for s in by_parent.get(parent, []):
                lines.append(
                    f"{'  ' * depth}{s.name} [{s.thread}] {s.duration * 1e3:.3f}ms"
                )
                walk(s.span_id, depth + 1)

        walk(None, 0)
        return "\n".join(lines)
