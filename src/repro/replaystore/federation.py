"""Federation of per-task replay stores under one global byte budget.

A long task stream persists one :class:`~repro.replaystore.store.ReplayStore`
per continual step.  The federation composes those member stores into a
single class-balanced replay view and owns the *global* memory
invariant: the modelled bytes of all members together never exceed
``budget_bytes``.  When a new member pushes the total over budget,
:meth:`FederatedReplayStore.rebalance` re-admits every stored sample —
in global arrival order — through one of the existing
:mod:`~repro.replaystore.policies` and rewrites each member to hold only
its survivors (:meth:`~repro.replaystore.store.ReplayStore.filter`), so
eviction pressure flows *across* stores: a class-balanced policy will
evict over-represented classes from old members to make room for a new
task's samples.

On disk a federation is a directory of member stores plus one index::

    root/
      federation.json     # budget, policy, seed, member order
      step-000/           # ordinary ReplayStore directories
        index.json
        shard-00000.bin
      step-001/
        ...

Member stores stay fully self-describing — ``repro store stats
root/step-000`` keeps working — the federation only adds the budget
ledger and the composed view on top.

Byte accounting uses the same per-sample model as the
:class:`~repro.replaystore.builder.StreamingStoreBuilder` (bit-packed
payload + :data:`~repro.replaystore.builder.SAMPLE_HEADER_BYTES`), so a
federation budget and a builder budget mean the same thing.
"""

from __future__ import annotations

import json
import shutil
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro import obs
from repro.compression.bitpack import BitpackCodec
from repro.errors import StoreError
from repro.ioutil import FileLock, atomic_write_json
from repro.replaystore.builder import SAMPLE_HEADER_BYTES
from repro.replaystore.policies import get_policy
from repro.replaystore.store import INDEX_NAME, ReplayStore
from repro.replaystore.stream import ReplayStream
from repro.seeding import spawn

__all__ = [
    "FEDERATION_INDEX_NAME",
    "FEDERATION_LOCK_NAME",
    "DEFAULT_OPEN_MEMBERS",
    "FederationStats",
    "FederatedReplayStore",
    "FederatedReplayStream",
]

FEDERATION_INDEX_NAME = "federation.json"
#: Lock file guarding federation-index read-modify-write (a stable
#: inode; the index itself is renamed on every commit).
FEDERATION_LOCK_NAME = "federation.json.lock"
FEDERATION_VERSION = 1

#: Default cap on simultaneously open member handles/streams.  Member
#: indexes are small, but a fleet-scale federation has thousands of
#: members — opening them all eagerly is exactly what the lazy path
#: exists to avoid.
DEFAULT_OPEN_MEMBERS = 8


@dataclass(frozen=True)
class FederationStats:
    """Aggregate view of a federation (the ``repro store federate`` payload)."""

    num_members: int
    num_samples: int
    sample_bytes: int
    model_bytes: int
    budget_bytes: int | None
    policy: str
    member_samples: dict[str, int]
    class_counts: dict[int, int]

    @property
    def budget_utilization(self) -> float | None:
        """Modelled bytes over budget (None when unbudgeted)."""
        if self.budget_bytes is None:
            return None
        return self.model_bytes / self.budget_bytes


class FederatedReplayStore:
    """Ordered member stores + global budget ledger + composed view."""

    def __init__(
        self,
        root: Path,
        member_names: list[str],
        budget_bytes: int | None,
        policy: str,
        seed: int,
        rebalances: int = 0,
        pending_removal: list[str] | None = None,
        member_samples: dict[str, int] | None = None,
        geometry: dict | None = None,
        max_open_members: int = DEFAULT_OPEN_MEMBERS,
    ):
        if max_open_members < 1:
            raise StoreError(
                f"max_open_members must be >= 1, got {max_open_members}"
            )
        self.root = Path(root)
        self.member_names = list(member_names)
        self.budget_bytes = None if budget_bytes is None else int(budget_bytes)
        self.policy = policy
        self.seed = int(seed)
        #: Count of completed rebalance passes; keys the rebalance RNG so
        #: repeated passes stay deterministic yet independent.
        self.rebalances = int(rebalances)
        #: Member dirs an interrupted ``create(overwrite=True)`` still
        #: owes a removal — the crash ledger :meth:`adopt` consults so a
        #: stale dir is never silently re-registered as fresh latents.
        self.pending_removal = list(pending_removal or [])
        #: Per-member sample counts, maintained by :meth:`adopt` and
        #: :meth:`rebalance`, so :meth:`stream` can lay out the global
        #: index space without opening a single member.
        self.member_samples: dict[str, int] = dict(member_samples or {})
        #: Latent geometry shared by every member (persisted at first
        #: adopt); lets :meth:`adopt` validate and :meth:`stream` plan
        #: lazily, again without opening a reference member.
        self.geometry = dict(geometry) if geometry else None
        self.max_open_members = int(max_open_members)
        self._members: OrderedDict[str, ReplayStore] = OrderedDict()

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------
    @contextmanager
    def _locked(self):
        """Exclusive advisory lock over federation-index mutation."""
        lock = FileLock(self.root / FEDERATION_LOCK_NAME)
        lock.acquire()
        try:
            yield lock
        finally:
            lock.release()

    def _reload(self) -> None:
        """Refresh this handle from the on-disk index (under the lock).

        Mutating ops reload before modifying so read-modify-write cycles
        from concurrent handles compose; a handle whose index vanished
        gets a clean :class:`~repro.errors.StoreError`.
        """
        fresh = type(self).open(self.root, max_open_members=self.max_open_members)
        self.member_names = fresh.member_names
        self.budget_bytes = fresh.budget_bytes
        self.policy = fresh.policy
        self.seed = fresh.seed
        self.rebalances = fresh.rebalances
        self.pending_removal = fresh.pending_removal
        self.member_samples = fresh.member_samples
        self.geometry = fresh.geometry
        # Cached handles may predate another handle's commit; drop them
        # so the next access reopens against the current member state.
        self._members.clear()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: str | Path,
        *,
        budget_bytes: int | None = None,
        policy: str = "class-balanced",
        seed: int = 0,
        overwrite: bool = False,
    ) -> "FederatedReplayStore":
        """Initialise an empty federation directory."""
        root = Path(root)
        index_path = root / FEDERATION_INDEX_NAME
        if budget_bytes is not None and budget_bytes <= 0:
            raise StoreError(f"budget_bytes must be positive, got {budget_bytes}")
        get_policy(policy)  # validate the name up front
        federation = cls(root, [], budget_bytes, policy, seed)
        with federation._locked():
            if index_path.exists() and not overwrite:
                raise StoreError(
                    f"federation already exists at {root} "
                    "(pass overwrite=True to replace)"
                )
            # Overwrite must take the old run's member stores with it:
            # leaving them on disk would let a later `adopt` silently mix
            # stale latents into the new archive.
            old_names: list[str] = []
            if index_path.exists():
                try:
                    previous = cls.open(root)
                    old_names = previous.member_names + previous.pending_removal
                except StoreError:
                    old_names = []  # corrupt index: replace it, keep the dirs
            root.mkdir(parents=True, exist_ok=True)
            # Two-phase overwrite: commit an index that *records* the old
            # member dirs as pending removal, remove them, then commit
            # again with the ledger cleared.  A crash in the removal
            # window leaves an empty federation whose ledger still names
            # every orphan dir — adopt refuses them until the caller
            # acknowledges (allow_orphan=True) or create runs again.
            federation.pending_removal = list(old_names)
            federation._write_index()
            for name in old_names:
                member_dir = root / name
                if member_dir.is_dir():
                    shutil.rmtree(member_dir)
            federation.pending_removal = []
            federation._write_index()
        return federation

    @classmethod
    def open(
        cls,
        root: str | Path,
        *,
        max_open_members: int = DEFAULT_OPEN_MEMBERS,
    ) -> "FederatedReplayStore":
        """Load an existing federation from its index."""
        root = Path(root)
        index_path = root / FEDERATION_INDEX_NAME
        if not index_path.exists():
            raise StoreError(
                f"no federation at {root} (missing {FEDERATION_INDEX_NAME})"
            )
        try:
            payload = json.loads(index_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise StoreError(
                f"corrupt federation index at {index_path}: {error}"
            ) from error
        if payload.get("version") != FEDERATION_VERSION:
            raise StoreError(
                f"unsupported federation index version {payload.get('version')!r}"
            )
        try:
            return cls(
                root,
                list(payload["members"]),
                payload["budget_bytes"],
                payload["policy"],
                int(payload["seed"]),
                rebalances=int(payload.get("rebalances", 0)),
                pending_removal=list(payload.get("pending_removal", [])),
                member_samples={
                    str(k): int(v)
                    for k, v in payload.get("member_samples", {}).items()
                },
                geometry=payload.get("geometry"),
                max_open_members=max_open_members,
            )
        except (KeyError, TypeError) as error:
            raise StoreError(
                f"malformed federation index at {index_path}: {error}"
            ) from error

    def configure(
        self,
        *,
        budget_bytes: int | None = None,
        policy: str | None = None,
        seed: int | None = None,
    ) -> None:
        """Update the budget ledger of an existing federation.

        ``None`` keeps the stored value; explicit values are validated
        and persisted immediately (the next :meth:`rebalance` enforces
        them).  This is how ``repro store federate`` retrofits a budget
        onto a federation created without one.
        """
        if budget_bytes is not None and budget_bytes <= 0:
            raise StoreError(
                f"budget_bytes must be positive, got {budget_bytes}"
            )
        if policy is not None:
            get_policy(policy)  # validate the name
        with self._locked():
            self._reload()
            if budget_bytes is not None:
                self.budget_bytes = int(budget_bytes)
            if policy is not None:
                self.policy = policy
            if seed is not None:
                self.seed = int(seed)
            self._write_index()

    def _write_index(self) -> None:
        """Atomically replace the index (write-to-temp + rename)."""
        payload = {
            "version": FEDERATION_VERSION,
            "budget_bytes": self.budget_bytes,
            "policy": self.policy,
            "seed": self.seed,
            "rebalances": self.rebalances,
            "members": list(self.member_names),
            "pending_removal": list(self.pending_removal),
            "member_samples": {
                name: int(count) for name, count in self.member_samples.items()
            },
            "geometry": self.geometry,
        }
        atomic_write_json(self.root / FEDERATION_INDEX_NAME, payload)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def member(self, name: str) -> ReplayStore:
        """The named member store (opened lazily, LRU-capped cache).

        At most :attr:`max_open_members` handles stay cached; the least
        recently used is dropped when the cap is hit (a
        :class:`~repro.replaystore.store.ReplayStore` handle is just a
        parsed index — dropping it costs a reopen, nothing else).
        """
        if name not in self.member_names:
            raise StoreError(
                f"{name!r} is not a member of the federation at {self.root}"
            )
        if name in self._members:
            self._members.move_to_end(name)
            return self._members[name]
        while len(self._members) >= self.max_open_members:
            self._members.popitem(last=False)
        store = ReplayStore.open(self.root / name)
        self._members[name] = store
        return store

    def members(self) -> Iterator[tuple[str, ReplayStore]]:
        """Member stores in registration (task-arrival) order, lazily.

        A generator: members open one at a time through the LRU cache,
        so iterating a thousand-member federation never holds a thousand
        parsed indexes at once.
        """
        for name in self.member_names:
            yield name, self.member(name)

    @staticmethod
    def _geometry_of(store: ReplayStore) -> dict:
        """The meta fields every member must agree on."""
        return {
            "stored_frames": store.meta.stored_frames,
            "num_channels": store.meta.num_channels,
            "codec_factor": store.meta.codec_factor,
            "insertion_layer": store.meta.insertion_layer,
            "generated_timesteps": store.meta.generated_timesteps,
        }

    def adopt(self, name: str, *, allow_orphan: bool = False) -> ReplayStore:
        """Register the store at ``root/name`` as the next member.

        The store must already exist (e.g. written by a store-backed NCL
        step) and must share the federation's latent geometry — a
        federation composes stores of *one* insertion point, so mixed
        frame/channel geometry is a caller bug, not a mergeable state.

        A name on the :attr:`pending_removal` ledger is a directory an
        interrupted ``create(overwrite=True)`` failed to delete: its
        contents predate the current federation, so adopting it would
        silently resurrect stale latents.  Such names are refused unless
        the caller passes ``allow_orphan=True`` to explicitly claim the
        old data (which also clears the ledger entry).
        """
        if not name or "/" in name or "\\" in name or name in (".", ".."):
            raise StoreError(
                f"member name must be a plain directory name, got {name!r}"
            )
        with self._locked():
            self._reload()
            if name in self.member_names:
                raise StoreError(f"{name!r} is already a member of the federation")
            if name in self.pending_removal and not allow_orphan:
                raise StoreError(
                    f"cannot adopt {name!r}: the directory predates this "
                    "federation (an interrupted overwrite left it behind) "
                    "and holds stale latents; pass allow_orphan=True to "
                    "claim it anyway, or delete the directory"
                )
            path = self.root / name
            if not (path / INDEX_NAME).exists():
                raise StoreError(f"no replay store to adopt at {path}")
            store = ReplayStore.open(path)
            geometry = self._geometry_of(store)
            reference = self.geometry
            if reference is None and self.member_names:
                # Pre-ledger federation index: fall back to a member open.
                reference = self._geometry_of(self.member(self.member_names[0]))
            if reference is not None and geometry != reference:
                # Insertion layer and generation timesteps are part of
                # the geometry: stores from different insertion points
                # can share frame/channel counts (equal-width hidden
                # layers) yet live in different feature spaces —
                # federating them would serve semantically mixed replay
                # data with no error.
                raise StoreError(
                    f"cannot adopt {name!r}: geometry "
                    f"(T={geometry['stored_frames']}, "
                    f"C={geometry['num_channels']}, "
                    f"factor={geometry['codec_factor']}, "
                    f"Lins={geometry['insertion_layer']}, "
                    f"Tgen={geometry['generated_timesteps']}) does not match "
                    f"the federation's (T={reference['stored_frames']}, "
                    f"C={reference['num_channels']}, "
                    f"factor={reference['codec_factor']}, "
                    f"Lins={reference['insertion_layer']}, "
                    f"Tgen={reference['generated_timesteps']})"
                )
            if self.geometry is None:
                self.geometry = geometry
            if name in self.pending_removal:
                self.pending_removal.remove(name)
            self.member_names.append(name)
            self.member_samples[name] = store.num_samples
            self._members[name] = store
            self._write_index()
        return store

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def num_members(self) -> int:
        """Number of member stores in the federation."""
        return len(self.member_names)

    @property
    def num_samples(self) -> int:
        """Total samples across every member store."""
        return sum(store.num_samples for _, store in self.members())

    @property
    def labels(self) -> np.ndarray:
        """All labels in global arrival order (index-only)."""
        parts = [store.labels for _, store in self.members()]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts)

    @property
    def sample_bytes(self) -> int:
        """Modelled bytes per stored sample (builder's budget model)."""
        if not self.member_names:
            raise StoreError("an empty federation has no sample geometry")
        geometry = self.geometry
        if geometry is None:  # pre-ledger index: open the first member
            geometry = self._geometry_of(self.member(self.member_names[0]))
        packed = BitpackCodec().packed_bytes(
            (geometry["stored_frames"], geometry["num_channels"])
        )
        return packed + SAMPLE_HEADER_BYTES

    def model_bytes(self) -> int:
        """Modelled federation footprint: ``num_samples * sample_bytes``."""
        if not self.member_names:
            return 0
        return self.num_samples * self.sample_bytes

    def payload_bytes(self) -> int:
        """Actual codec payload bytes across all members."""
        return sum(store.payload_bytes() for _, store in self.members())

    def disk_bytes(self) -> int:
        """On-disk total: member stores plus the federation index."""
        total = (self.root / FEDERATION_INDEX_NAME).stat().st_size
        for _, store in self.members():
            total += store.disk_bytes()
        return total

    def class_counts(self) -> dict[int, int]:
        """Per-class sample counts aggregated over all members."""
        counts: dict[int, int] = {}
        for label in self.labels:
            counts[int(label)] = counts.get(int(label), 0) + 1
        return dict(sorted(counts.items()))

    def stats(self) -> FederationStats:
        """Aggregate :class:`FederationStats` for reporting."""
        return FederationStats(
            num_members=self.num_members,
            num_samples=self.num_samples,
            sample_bytes=self.sample_bytes if self.member_names else 0,
            model_bytes=self.model_bytes(),
            budget_bytes=self.budget_bytes,
            policy=self.policy,
            member_samples={
                name: store.num_samples for name, store in self.members()
            },
            class_counts=self.class_counts(),
        )

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------
    def over_budget(self) -> bool:
        """Whether the modelled footprint currently exceeds the budget."""
        if self.budget_bytes is None or not self.member_names:
            return False
        return self.model_bytes() > self.budget_bytes

    def rebalance(self) -> int:
        """Enforce the global budget across members; returns evictions.

        Every stored sample is offered — in global arrival order — to a
        fresh instance of the federation's
        :class:`~repro.replaystore.policies.EvictionPolicy` at the
        budget's capacity; survivors keep their member and storage
        order, losers are evicted via
        :meth:`~repro.replaystore.store.ReplayStore.filter`.  The pass
        is index-only until the per-member rewrites, so decision cost
        never touches shard payloads.  Deterministic: the RNG derives
        from the federation seed and the rebalance counter.  A no-op
        (returns 0) when unbudgeted or already within budget.
        """
        with self._locked():
            self._reload()
            if not self.over_budget():
                return 0
            with obs.span(
                "federation.rebalance", category="store", members=self.num_members
            ) as _span:
                evicted = self._rebalance(_span)
        obs.count("federation.evictions", evicted)
        return evicted

    def _rebalance(self, _span) -> int:
        """The budget-enforcement pass :meth:`rebalance` wraps in a span.

        Runs under the federation lock with a freshly reloaded index.
        Member rewrites take each member's own store lock in turn, so a
        rebalance serializes against direct appends to individual
        members without holding every member lock at once.
        """
        capacity = self.budget_bytes // self.sample_bytes
        if capacity < 1:
            raise StoreError(
                f"budget of {self.budget_bytes} B holds no sample "
                f"({self.sample_bytes} B each)"
            )
        policy = get_policy(self.policy)
        policy.reset()
        rng = spawn(self.seed, f"federation-rebalance:{self.rebalances}")

        # Policy pass over (member, local index) in global arrival order.
        kept_labels: list[int] = []
        kept_sources: list[tuple[str, int]] = []
        for name, store in self.members():
            for local, label in enumerate(store.labels):
                slot = policy.admit(int(label), kept_labels, capacity, rng)
                if slot is None:
                    continue
                if slot == len(kept_labels):
                    kept_labels.append(int(label))
                    kept_sources.append((name, local))
                else:
                    kept_labels[slot] = int(label)
                    kept_sources[slot] = (name, local)

        # Rewrite each member with its survivors (storage order kept).
        evicted = 0
        for name, store in self.members():
            survivors = np.asarray(
                sorted(local for member, local in kept_sources if member == name),
                dtype=np.int64,
            )
            evicted += store.filter(survivors)
            self.member_samples[name] = store.num_samples
        self.rebalances += 1
        self._write_index()
        _span.set(evicted=evicted)
        return evicted

    # ------------------------------------------------------------------
    # Composed view
    # ------------------------------------------------------------------
    def stream(
        self,
        decompress: bool = False,
        cache_shards: int = 2,
        max_open_streams: int | None = None,
        prefetch: bool = False,
    ) -> "FederatedReplayStream":
        """Lazy class-spanning view over every member's samples.

        Fully lazy end to end: the global index layout comes from the
        persisted per-member sample counts (falling back to one
        index-only open per member for pre-ledger federations), and a
        member's :class:`~repro.replaystore.stream.ReplayStream` is only
        opened when a gather first touches it — at most
        ``max_open_streams`` (default :attr:`max_open_members`) member
        streams stay open at once.  ``prefetch=True`` wraps each opened
        member in a :class:`~repro.replaystore.prefetch.PrefetchingStream`.
        """
        geometry = self.geometry
        if geometry is None and self.member_names:
            geometry = self._geometry_of(self.member(self.member_names[0]))
        counts: list[tuple[str, int]] = []
        for name in self.member_names:
            if name in self.member_samples:
                counts.append((name, self.member_samples[name]))
            else:  # pre-ledger index: index-only open, one at a time
                counts.append((name, self.member(name).num_samples))
        entries = [(name, count) for name, count in counts if count > 0]
        if not entries:
            raise StoreError(
                f"federation at {self.root} holds no samples to stream"
            )
        assert geometry is not None  # non-empty federation has geometry
        if not decompress and geometry["codec_factor"] != 1:
            raise StoreError(
                "cannot stream subsampled frames without decompression: "
                f"store codec factor is {geometry['codec_factor']}"
            )
        root = self.root

        def opener(name: str) -> ReplayStream | "PrefetchingStream":
            stream = ReplayStream(
                ReplayStore.open(root / name),
                decompress=decompress,
                cache_shards=cache_shards,
            )
            if prefetch:
                from repro.replaystore.prefetch import PrefetchingStream

                return PrefetchingStream(stream)
            return stream

        timesteps = (
            geometry["generated_timesteps"]
            if decompress
            else geometry["stored_frames"]
        )
        return FederatedReplayStream.lazy(
            openers=[
                (lambda name=name: opener(name)) for name, _count in entries
            ],
            counts=[count for _name, count in entries],
            timesteps=timesteps,
            num_channels=geometry["num_channels"],
            max_open_streams=(
                self.max_open_members
                if max_open_streams is None
                else max_open_streams
            ),
        )

    def __repr__(self) -> str:
        return (
            f"FederatedReplayStore(root={str(self.root)!r}, "
            f"members={self.num_members}, policy={self.policy!r}, "
            f"budget={self.budget_bytes})"
        )


class FederatedReplayStream:
    """Sample-axis concatenation of member :class:`ReplayStream` views.

    Serves the same lazy-source protocol as a single stream (``shape`` /
    ``gather`` / ``labels`` / shard iteration), with indices routed to
    members by global arrival order — so a federation trains exactly
    like one big store while peak resident memory stays
    ``cache_shards`` decoded shards per *open* member stream.

    Member streams are lazy: constructed via :meth:`lazy` (the
    :meth:`FederatedReplayStore.stream` path), a member is only opened
    when a gather first touches it, and at most ``max_open_streams``
    stay open — the least recently used is closed (its reader pin
    released) when the cap is hit.  The plain constructor takes
    already-open streams and never evicts them (an evicted pre-built
    stream could not be reopened).
    """

    def __init__(self, streams: list[ReplayStream]):
        if not streams:
            raise StoreError("FederatedReplayStream needs at least one stream")
        first = streams[0]
        for stream in streams[1:]:
            if (
                stream.timesteps != first.timesteps
                or stream.num_channels != first.num_channels
            ):
                raise StoreError(
                    f"member streams disagree on geometry: "
                    f"[T={first.timesteps}, C={first.num_channels}] vs "
                    f"[T={stream.timesteps}, C={stream.num_channels}]"
                )
        self._init(
            openers=[(lambda s=s: s) for s in streams],
            counts=[s.num_samples for s in streams],
            timesteps=first.timesteps,
            num_channels=first.num_channels,
            max_open_streams=len(streams),
            preopened=list(streams),
        )

    @classmethod
    def lazy(
        cls,
        openers: list[Callable[[], ReplayStream]],
        counts: list[int],
        timesteps: int,
        num_channels: int,
        max_open_streams: int = DEFAULT_OPEN_MEMBERS,
    ) -> "FederatedReplayStream":
        """Build a stream whose members open on first gather.

        ``openers[i]`` must return a fresh stream over member ``i``
        holding exactly ``counts[i]`` samples; a mismatch at open time
        (the member was mutated after the layout was taken) raises
        :class:`~repro.errors.StoreError` instead of misrouting indices.
        """
        if not openers:
            raise StoreError("FederatedReplayStream needs at least one stream")
        if len(openers) != len(counts):
            raise StoreError(
                f"{len(openers)} openers but {len(counts)} member counts"
            )
        if max_open_streams < 1:
            raise StoreError(
                f"max_open_streams must be >= 1, got {max_open_streams}"
            )
        self = cls.__new__(cls)
        self._init(
            openers=list(openers),
            counts=[int(c) for c in counts],
            timesteps=int(timesteps),
            num_channels=int(num_channels),
            max_open_streams=int(max_open_streams),
            preopened=None,
        )
        return self

    def _init(
        self,
        openers: list[Callable[[], ReplayStream]],
        counts: list[int],
        timesteps: int,
        num_channels: int,
        max_open_streams: int,
        preopened: list[ReplayStream] | None,
    ) -> None:
        self._openers = openers
        self._counts = counts
        self._timesteps = timesteps
        self._num_channels = num_channels
        self.max_open_streams = max(1, max_open_streams)
        self._open: OrderedDict[int, ReplayStream] = OrderedDict()
        if preopened is not None:
            self._open.update(enumerate(preopened))
        #: Member streams opened over this view's lifetime (telemetry;
        #: the concurrency tests assert the LRU cap from it).
        self.member_opens = len(self._open)
        # Peaks of already-closed member streams, so peak_cache_bytes
        # survives eviction.
        self._retired_peak_bytes = 0
        bounds = np.cumsum(counts)
        self._bounds = np.concatenate([[0], bounds]).astype(np.int64)

    # ------------------------------------------------------------------
    # Member stream lifecycle
    # ------------------------------------------------------------------
    @staticmethod
    def _close_stream(stream) -> None:
        """Close a member view and its wrapped stream (pin release)."""
        stream.close()
        inner = getattr(stream, "stream", None)
        if inner is not None and hasattr(inner, "close"):
            inner.close()  # PrefetchingStream wraps the pinned stream

    def _stream(self, member: int) -> ReplayStream:
        """Member stream ``member``, opening (and LRU-evicting) as needed."""
        if member in self._open:
            self._open.move_to_end(member)
            return self._open[member]
        while len(self._open) >= self.max_open_streams:
            _, victim = self._open.popitem(last=False)
            self._retired_peak_bytes += victim.peak_cache_bytes
            self._close_stream(victim)
        stream = self._openers[member]()
        if stream.num_samples != self._counts[member]:
            self._close_stream(stream)
            raise StoreError(
                f"store was mutated: member {member} now holds "
                f"{stream.num_samples} samples, this view was laid out "
                f"for {self._counts[member]}; open a fresh stream"
            )
        if (
            stream.timesteps != self._timesteps
            or stream.num_channels != self._num_channels
        ):
            self._close_stream(stream)
            raise StoreError(
                f"member streams disagree on geometry: "
                f"[T={self._timesteps}, C={self._num_channels}] vs "
                f"[T={stream.timesteps}, C={stream.num_channels}]"
            )
        self._open[member] = stream
        self.member_opens += 1
        obs.count("federation.member_opens")
        return stream

    @property
    def open_streams(self) -> int:
        """Member streams currently open (bounded by the LRU cap)."""
        return len(self._open)

    def close(self) -> None:
        """Close every open member stream (releasing reader pins)."""
        while self._open:
            _, stream = self._open.popitem(last=False)
            self._retired_peak_bytes += stream.peak_cache_bytes
            self._close_stream(stream)

    def __enter__(self) -> "FederatedReplayStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Lazy-source protocol
    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        """Total samples across the member streams."""
        return int(self._bounds[-1])

    @property
    def timesteps(self) -> int:
        """Generated timesteps per sample (uniform across members)."""
        return self._timesteps

    @property
    def num_channels(self) -> int:
        """Channels per sample (uniform across members)."""
        return self._num_channels

    @property
    def shape(self) -> tuple[int, int, int]:
        """Logical ``[T, n, C]`` shape of the concatenated stream."""
        return (self.timesteps, self.num_samples, self.num_channels)

    @property
    def labels(self) -> np.ndarray:
        """Labels of every member stream, concatenated in member order.

        Opens members one at a time through the LRU, so even the full
        label sweep never exceeds the open-handle cap.
        """
        return np.concatenate(
            [self._stream(i).labels for i in range(len(self._counts))]
        )

    @property
    def peak_cache_bytes(self) -> int:
        """Upper bound on decoded-shard residency across member streams.

        Open member LRU caches are resident *simultaneously*, so the
        federated high-water mark is the sum of the members' peaks
        (closed members contribute the peak they retired with).  A
        bound, not an exact joint maximum: members need not peak at the
        same instant.
        """
        return self._retired_peak_bytes + sum(
            s.peak_cache_bytes for s in self._open.values()
        )

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Decode the requested samples into a ``[T, k, C]`` raster.

        Behaves exactly like fancy indexing on the member-concatenated
        dense array (duplicates and arbitrary order included).
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise StoreError(f"indices must be 1-D, got shape {indices.shape}")
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.num_samples
        ):
            raise StoreError(
                f"indices out of range [0, {self.num_samples}) "
                f"(got [{indices.min()}, {indices.max()}])"
            )
        out = np.empty(
            (self.timesteps, indices.size, self.num_channels), dtype=np.float32
        )
        member_of = np.searchsorted(self._bounds, indices, side="right") - 1
        with obs.span(
            "federation.gather", category="store", samples=int(indices.size)
        ):
            for member in np.unique(member_of):
                mask = member_of == member
                local = indices[mask] - self._bounds[member]
                out[:, mask, :] = self._stream(int(member)).gather(local)
        return out

    def prefetch(self, indices: np.ndarray) -> int:
        """Advise members that ``indices`` are needed soon (advisory).

        Routed like :meth:`gather`; members whose view cannot prefetch
        (plain :class:`ReplayStream`) and out-of-range advice are
        skipped.  Only already-open members are advised — warming a
        member would force an open the caller never committed to.
        Returns the number of shard decodes actually queued.
        """
        indices = np.asarray(indices, dtype=np.int64)
        valid = (indices >= 0) & (indices < self.num_samples)
        if not np.all(valid):
            obs.count(
                "prefetch.bogus_advice", int(np.count_nonzero(~valid))
            )
            indices = indices[valid]
        if indices.size == 0:
            return 0
        member_of = np.searchsorted(self._bounds, indices, side="right") - 1
        queued = 0
        for member in np.unique(member_of):
            stream = self._open.get(int(member))
            hook = getattr(stream, "prefetch", None)
            if hook is None:
                continue
            mask = member_of == member
            queued += int(hook(indices[mask] - self._bounds[member]))
        return queued

    def __iter__(self):
        """Yield ``(raster, labels)`` shard by shard across members."""
        for member in range(len(self._counts)):
            yield from self._stream(member)

    def materialize(self) -> np.ndarray:
        """Densify the whole federation (tests/small stores only)."""
        return self.gather(np.arange(self.num_samples))
