"""Federation of per-task replay stores under one global byte budget.

A long task stream persists one :class:`~repro.replaystore.store.ReplayStore`
per continual step.  The federation composes those member stores into a
single class-balanced replay view and owns the *global* memory
invariant: the modelled bytes of all members together never exceed
``budget_bytes``.  When a new member pushes the total over budget,
:meth:`FederatedReplayStore.rebalance` re-admits every stored sample —
in global arrival order — through one of the existing
:mod:`~repro.replaystore.policies` and rewrites each member to hold only
its survivors (:meth:`~repro.replaystore.store.ReplayStore.filter`), so
eviction pressure flows *across* stores: a class-balanced policy will
evict over-represented classes from old members to make room for a new
task's samples.

On disk a federation is a directory of member stores plus one index::

    root/
      federation.json     # budget, policy, seed, member order
      step-000/           # ordinary ReplayStore directories
        index.json
        shard-00000.bin
      step-001/
        ...

Member stores stay fully self-describing — ``repro store stats
root/step-000`` keeps working — the federation only adds the budget
ledger and the composed view on top.

Byte accounting uses the same per-sample model as the
:class:`~repro.replaystore.builder.StreamingStoreBuilder` (bit-packed
payload + :data:`~repro.replaystore.builder.SAMPLE_HEADER_BYTES`), so a
federation budget and a builder budget mean the same thing.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.compression.bitpack import BitpackCodec
from repro.errors import StoreError
from repro.ioutil import atomic_write_json
from repro.replaystore.builder import SAMPLE_HEADER_BYTES
from repro.replaystore.policies import get_policy
from repro.replaystore.store import INDEX_NAME, ReplayStore
from repro.replaystore.stream import ReplayStream
from repro.seeding import spawn

__all__ = [
    "FEDERATION_INDEX_NAME",
    "FederationStats",
    "FederatedReplayStore",
    "FederatedReplayStream",
]

FEDERATION_INDEX_NAME = "federation.json"
FEDERATION_VERSION = 1


@dataclass(frozen=True)
class FederationStats:
    """Aggregate view of a federation (the ``repro store federate`` payload)."""

    num_members: int
    num_samples: int
    sample_bytes: int
    model_bytes: int
    budget_bytes: int | None
    policy: str
    member_samples: dict[str, int]
    class_counts: dict[int, int]

    @property
    def budget_utilization(self) -> float | None:
        """Modelled bytes over budget (None when unbudgeted)."""
        if self.budget_bytes is None:
            return None
        return self.model_bytes / self.budget_bytes


class FederatedReplayStore:
    """Ordered member stores + global budget ledger + composed view."""

    def __init__(
        self,
        root: Path,
        member_names: list[str],
        budget_bytes: int | None,
        policy: str,
        seed: int,
        rebalances: int = 0,
    ):
        self.root = Path(root)
        self.member_names = list(member_names)
        self.budget_bytes = None if budget_bytes is None else int(budget_bytes)
        self.policy = policy
        self.seed = int(seed)
        #: Count of completed rebalance passes; keys the rebalance RNG so
        #: repeated passes stay deterministic yet independent.
        self.rebalances = int(rebalances)
        self._members: dict[str, ReplayStore] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: str | Path,
        *,
        budget_bytes: int | None = None,
        policy: str = "class-balanced",
        seed: int = 0,
        overwrite: bool = False,
    ) -> "FederatedReplayStore":
        """Initialise an empty federation directory."""
        root = Path(root)
        index_path = root / FEDERATION_INDEX_NAME
        if index_path.exists() and not overwrite:
            raise StoreError(
                f"federation already exists at {root} "
                "(pass overwrite=True to replace)"
            )
        if budget_bytes is not None and budget_bytes <= 0:
            raise StoreError(f"budget_bytes must be positive, got {budget_bytes}")
        get_policy(policy)  # validate the name up front
        # Overwrite must take the old run's member stores with it:
        # leaving them on disk would let a later auto-discovering
        # `adopt` silently mix stale latents into the new archive.
        old_names: list[str] = []
        if index_path.exists():
            try:
                old_names = cls.open(root).member_names
            except StoreError:
                old_names = []  # corrupt index: replace it, keep the dirs
        root.mkdir(parents=True, exist_ok=True)
        federation = cls(root, [], budget_bytes, policy, seed)
        # Atomic index rename is the commit point; member removal comes
        # after, so a crash mid-overwrite leaves an empty federation
        # plus orphaned directories — never an index pointing at
        # deleted stores (same discipline as ReplayStore.compact).
        federation._write_index()
        for name in old_names:
            member_dir = root / name
            if member_dir.is_dir():
                shutil.rmtree(member_dir)
        return federation

    @classmethod
    def open(cls, root: str | Path) -> "FederatedReplayStore":
        """Load an existing federation from its index."""
        root = Path(root)
        index_path = root / FEDERATION_INDEX_NAME
        if not index_path.exists():
            raise StoreError(
                f"no federation at {root} (missing {FEDERATION_INDEX_NAME})"
            )
        try:
            payload = json.loads(index_path.read_text())
        except json.JSONDecodeError as error:
            raise StoreError(
                f"corrupt federation index at {index_path}: {error}"
            ) from error
        if payload.get("version") != FEDERATION_VERSION:
            raise StoreError(
                f"unsupported federation index version {payload.get('version')!r}"
            )
        try:
            return cls(
                root,
                list(payload["members"]),
                payload["budget_bytes"],
                payload["policy"],
                int(payload["seed"]),
                rebalances=int(payload.get("rebalances", 0)),
            )
        except (KeyError, TypeError) as error:
            raise StoreError(
                f"malformed federation index at {index_path}: {error}"
            ) from error

    def configure(
        self,
        *,
        budget_bytes: int | None = None,
        policy: str | None = None,
        seed: int | None = None,
    ) -> None:
        """Update the budget ledger of an existing federation.

        ``None`` keeps the stored value; explicit values are validated
        and persisted immediately (the next :meth:`rebalance` enforces
        them).  This is how ``repro store federate`` retrofits a budget
        onto a federation created without one.
        """
        if budget_bytes is not None:
            if budget_bytes <= 0:
                raise StoreError(
                    f"budget_bytes must be positive, got {budget_bytes}"
                )
            self.budget_bytes = int(budget_bytes)
        if policy is not None:
            get_policy(policy)  # validate the name
            self.policy = policy
        if seed is not None:
            self.seed = int(seed)
        self._write_index()

    def _write_index(self) -> None:
        """Atomically replace the index (write-to-temp + rename)."""
        payload = {
            "version": FEDERATION_VERSION,
            "budget_bytes": self.budget_bytes,
            "policy": self.policy,
            "seed": self.seed,
            "rebalances": self.rebalances,
            "members": list(self.member_names),
        }
        atomic_write_json(self.root / FEDERATION_INDEX_NAME, payload)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def member(self, name: str) -> ReplayStore:
        """The named member store (opened lazily, cached)."""
        if name not in self.member_names:
            raise StoreError(
                f"{name!r} is not a member of the federation at {self.root}"
            )
        if name not in self._members:
            self._members[name] = ReplayStore.open(self.root / name)
        return self._members[name]

    def members(self) -> list[tuple[str, ReplayStore]]:
        """All member stores in registration (task-arrival) order."""
        return [(name, self.member(name)) for name in self.member_names]

    def adopt(self, name: str) -> ReplayStore:
        """Register the store at ``root/name`` as the next member.

        The store must already exist (e.g. written by a store-backed NCL
        step) and must share the federation's latent geometry — a
        federation composes stores of *one* insertion point, so mixed
        frame/channel geometry is a caller bug, not a mergeable state.
        """
        if not name or "/" in name or "\\" in name or name in (".", ".."):
            raise StoreError(
                f"member name must be a plain directory name, got {name!r}"
            )
        if name in self.member_names:
            raise StoreError(f"{name!r} is already a member of the federation")
        path = self.root / name
        if not (path / INDEX_NAME).exists():
            raise StoreError(f"no replay store to adopt at {path}")
        store = ReplayStore.open(path)
        if self.member_names:
            reference = self.member(self.member_names[0])
            # Insertion layer and generation timesteps are part of the
            # geometry: stores from different insertion points can share
            # frame/channel counts (equal-width hidden layers) yet live
            # in different feature spaces — federating them would serve
            # semantically mixed replay data with no error.
            same = (
                store.meta.stored_frames == reference.meta.stored_frames
                and store.meta.num_channels == reference.meta.num_channels
                and store.meta.codec_factor == reference.meta.codec_factor
                and store.meta.insertion_layer == reference.meta.insertion_layer
                and store.meta.generated_timesteps
                == reference.meta.generated_timesteps
            )
            if not same:
                raise StoreError(
                    f"cannot adopt {name!r}: geometry "
                    f"(T={store.meta.stored_frames}, "
                    f"C={store.meta.num_channels}, "
                    f"factor={store.meta.codec_factor}, "
                    f"Lins={store.meta.insertion_layer}, "
                    f"Tgen={store.meta.generated_timesteps}) does not match "
                    f"the federation's (T={reference.meta.stored_frames}, "
                    f"C={reference.meta.num_channels}, "
                    f"factor={reference.meta.codec_factor}, "
                    f"Lins={reference.meta.insertion_layer}, "
                    f"Tgen={reference.meta.generated_timesteps})"
                )
        self.member_names.append(name)
        self._members[name] = store
        self._write_index()
        return store

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def num_members(self) -> int:
        """Number of member stores in the federation."""
        return len(self.member_names)

    @property
    def num_samples(self) -> int:
        """Total samples across every member store."""
        return sum(store.num_samples for _, store in self.members())

    @property
    def labels(self) -> np.ndarray:
        """All labels in global arrival order (index-only)."""
        parts = [store.labels for _, store in self.members()]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts)

    @property
    def sample_bytes(self) -> int:
        """Modelled bytes per stored sample (builder's budget model)."""
        if not self.member_names:
            raise StoreError("an empty federation has no sample geometry")
        meta = self.member(self.member_names[0]).meta
        packed = BitpackCodec().packed_bytes((meta.stored_frames, meta.num_channels))
        return packed + SAMPLE_HEADER_BYTES

    def model_bytes(self) -> int:
        """Modelled federation footprint: ``num_samples * sample_bytes``."""
        if not self.member_names:
            return 0
        return self.num_samples * self.sample_bytes

    def payload_bytes(self) -> int:
        """Actual codec payload bytes across all members."""
        return sum(store.payload_bytes() for _, store in self.members())

    def disk_bytes(self) -> int:
        """On-disk total: member stores plus the federation index."""
        total = (self.root / FEDERATION_INDEX_NAME).stat().st_size
        for _, store in self.members():
            total += store.disk_bytes()
        return total

    def class_counts(self) -> dict[int, int]:
        """Per-class sample counts aggregated over all members."""
        counts: dict[int, int] = {}
        for label in self.labels:
            counts[int(label)] = counts.get(int(label), 0) + 1
        return dict(sorted(counts.items()))

    def stats(self) -> FederationStats:
        """Aggregate :class:`FederationStats` for reporting."""
        return FederationStats(
            num_members=self.num_members,
            num_samples=self.num_samples,
            sample_bytes=self.sample_bytes if self.member_names else 0,
            model_bytes=self.model_bytes(),
            budget_bytes=self.budget_bytes,
            policy=self.policy,
            member_samples={
                name: store.num_samples for name, store in self.members()
            },
            class_counts=self.class_counts(),
        )

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------
    def over_budget(self) -> bool:
        """Whether the modelled footprint currently exceeds the budget."""
        if self.budget_bytes is None or not self.member_names:
            return False
        return self.model_bytes() > self.budget_bytes

    def rebalance(self) -> int:
        """Enforce the global budget across members; returns evictions.

        Every stored sample is offered — in global arrival order — to a
        fresh instance of the federation's
        :class:`~repro.replaystore.policies.EvictionPolicy` at the
        budget's capacity; survivors keep their member and storage
        order, losers are evicted via
        :meth:`~repro.replaystore.store.ReplayStore.filter`.  The pass
        is index-only until the per-member rewrites, so decision cost
        never touches shard payloads.  Deterministic: the RNG derives
        from the federation seed and the rebalance counter.  A no-op
        (returns 0) when unbudgeted or already within budget.
        """
        if not self.over_budget():
            return 0
        with obs.span(
            "federation.rebalance", category="store", members=self.num_members
        ) as _span:
            evicted = self._rebalance(_span)
        obs.count("federation.evictions", evicted)
        return evicted

    def _rebalance(self, _span) -> int:
        """The budget-enforcement pass :meth:`rebalance` wraps in a span."""
        capacity = self.budget_bytes // self.sample_bytes
        if capacity < 1:
            raise StoreError(
                f"budget of {self.budget_bytes} B holds no sample "
                f"({self.sample_bytes} B each)"
            )
        policy = get_policy(self.policy)
        policy.reset()
        rng = spawn(self.seed, f"federation-rebalance:{self.rebalances}")

        # Policy pass over (member, local index) in global arrival order.
        kept_labels: list[int] = []
        kept_sources: list[tuple[str, int]] = []
        for name, store in self.members():
            for local, label in enumerate(store.labels):
                slot = policy.admit(int(label), kept_labels, capacity, rng)
                if slot is None:
                    continue
                if slot == len(kept_labels):
                    kept_labels.append(int(label))
                    kept_sources.append((name, local))
                else:
                    kept_labels[slot] = int(label)
                    kept_sources[slot] = (name, local)

        # Rewrite each member with its survivors (storage order kept).
        evicted = 0
        for name, store in self.members():
            survivors = np.asarray(
                sorted(local for member, local in kept_sources if member == name),
                dtype=np.int64,
            )
            evicted += store.filter(survivors)
        self.rebalances += 1
        self._write_index()
        _span.set(evicted=evicted)
        return evicted

    # ------------------------------------------------------------------
    # Composed view
    # ------------------------------------------------------------------
    def stream(
        self, decompress: bool = False, cache_shards: int = 2
    ) -> "FederatedReplayStream":
        """Lazy class-spanning view over every member's samples."""
        streams = [
            ReplayStream(store, decompress=decompress, cache_shards=cache_shards)
            for name, store in self.members()
            if store.num_samples > 0
        ]
        if not streams:
            raise StoreError(
                f"federation at {self.root} holds no samples to stream"
            )
        return FederatedReplayStream(streams)

    def __repr__(self) -> str:
        return (
            f"FederatedReplayStore(root={str(self.root)!r}, "
            f"members={self.num_members}, policy={self.policy!r}, "
            f"budget={self.budget_bytes})"
        )


class FederatedReplayStream:
    """Sample-axis concatenation of member :class:`ReplayStream` views.

    Serves the same lazy-source protocol as a single stream (``shape`` /
    ``gather`` / ``labels`` / shard iteration), with indices routed to
    members by global arrival order — so a federation trains exactly
    like one big store while peak resident memory stays
    ``cache_shards`` decoded shards *per member stream*.
    """

    def __init__(self, streams: list[ReplayStream]):
        if not streams:
            raise StoreError("FederatedReplayStream needs at least one stream")
        first = streams[0]
        for stream in streams[1:]:
            if (
                stream.timesteps != first.timesteps
                or stream.num_channels != first.num_channels
            ):
                raise StoreError(
                    f"member streams disagree on geometry: "
                    f"[T={first.timesteps}, C={first.num_channels}] vs "
                    f"[T={stream.timesteps}, C={stream.num_channels}]"
                )
        self.streams = list(streams)
        bounds = np.cumsum([s.num_samples for s in self.streams])
        self._bounds = np.concatenate([[0], bounds]).astype(np.int64)

    @property
    def num_samples(self) -> int:
        """Total samples across the member streams."""
        return int(self._bounds[-1])

    @property
    def timesteps(self) -> int:
        """Generated timesteps per sample (uniform across members)."""
        return self.streams[0].timesteps

    @property
    def num_channels(self) -> int:
        """Channels per sample (uniform across members)."""
        return self.streams[0].num_channels

    @property
    def shape(self) -> tuple[int, int, int]:
        """Logical ``[T, n, C]`` shape of the concatenated stream."""
        return (self.timesteps, self.num_samples, self.num_channels)

    @property
    def labels(self) -> np.ndarray:
        """Labels of every member stream, concatenated in member order."""
        return np.concatenate([s.labels for s in self.streams])

    @property
    def peak_cache_bytes(self) -> int:
        """Upper bound on decoded-shard residency across member streams.

        Member LRU caches are resident *simultaneously*, so the
        federated high-water mark is the sum of the members' peaks (a
        bound, not an exact joint maximum: members need not peak at the
        same instant).
        """
        return sum(s.peak_cache_bytes for s in self.streams)

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Decode the requested samples into a ``[T, k, C]`` raster.

        Behaves exactly like fancy indexing on the member-concatenated
        dense array (duplicates and arbitrary order included).
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise StoreError(f"indices must be 1-D, got shape {indices.shape}")
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.num_samples
        ):
            raise StoreError(
                f"indices out of range [0, {self.num_samples}) "
                f"(got [{indices.min()}, {indices.max()}])"
            )
        out = np.empty(
            (self.timesteps, indices.size, self.num_channels), dtype=np.float32
        )
        member_of = np.searchsorted(self._bounds, indices, side="right") - 1
        with obs.span(
            "federation.gather", category="store", samples=int(indices.size)
        ):
            for member in np.unique(member_of):
                mask = member_of == member
                local = indices[mask] - self._bounds[member]
                out[:, mask, :] = self.streams[int(member)].gather(local)
        return out

    def __iter__(self):
        """Yield ``(raster, labels)`` shard by shard across members."""
        for stream in self.streams:
            yield from stream

    def materialize(self) -> np.ndarray:
        """Densify the whole federation (tests/small stores only)."""
        return self.gather(np.arange(self.num_samples))
