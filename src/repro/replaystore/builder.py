"""Byte-budgeted streaming construction of a replay store.

The builder accepts task arrivals chunk by chunk (``offer``), keeps at
most ``budget_bytes`` worth of samples under an
:class:`~repro.replaystore.policies.EvictionPolicy`, and materialises
the survivors as a :class:`~repro.replaystore.store.ReplayStore` on
``finalize``.  Samples are held *bit-packed* between arrival and
finalize, so the builder's resident memory tracks the byte budget — not
the stream length — which is the whole point of building replay memory
for embedded targets.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.compression.bitpack import BitpackCodec
from repro.errors import StoreError
from repro.replaystore.policies import EvictionPolicy
from repro.replaystore.store import DEFAULT_SHARD_SAMPLES, ReplayStore
from repro.seeding import default_rng

__all__ = ["StreamingStoreBuilder", "SAMPLE_HEADER_BYTES"]

#: Per-sample metadata charge (label + shape bookkeeping) of the Fig. 12
#: storage model.  This is the single authority: ``core/latent_replay.py``
#: re-exports it as ``HEADER_BYTES_PER_SAMPLE``, so the builder's byte
#: budget and the analytic latent-memory model can never diverge.
SAMPLE_HEADER_BYTES = 8


class StreamingStoreBuilder:
    """Build a budgeted replay store from streaming ``[T, n, C]`` chunks."""

    def __init__(
        self,
        budget_bytes: int,
        policy: EvictionPolicy,
        *,
        stored_frames: int,
        num_channels: int,
        generated_timesteps: int,
        insertion_layer: int = 0,
        codec_factor: int = 1,
        rng: np.random.Generator | None = None,
    ):
        if budget_bytes <= 0:
            raise StoreError(f"budget_bytes must be positive, got {budget_bytes}")
        self._codec = BitpackCodec()
        self.sample_bytes = (
            self._codec.packed_bytes((stored_frames, num_channels))
            + SAMPLE_HEADER_BYTES
        )
        self.capacity = budget_bytes // self.sample_bytes
        if self.capacity < 1:
            raise StoreError(
                f"budget of {budget_bytes} B holds no sample "
                f"({self.sample_bytes} B each)"
            )
        self.budget_bytes = int(budget_bytes)
        self.policy = policy
        self.policy.reset()
        self.stored_frames = int(stored_frames)
        self.num_channels = int(num_channels)
        self.generated_timesteps = int(generated_timesteps)
        self.insertion_layer = int(insertion_layer)
        self.codec_factor = int(codec_factor)
        self.rng = rng or default_rng()
        #: Kept set: per-slot (packed sample, label) — packed, so the
        #: builder's memory is ~budget_bytes irrespective of stream size.
        self._kept: list[tuple[np.ndarray, int]] = []
        self.seen = 0
        self.rejected = 0
        self.evicted = 0

    # ------------------------------------------------------------------
    @property
    def kept_labels(self) -> list[int]:
        """Labels of the current kept set, in slot order."""
        return [label for _, label in self._kept]

    @property
    def kept_bytes(self) -> int:
        """Current packed footprint of the kept set (headers included)."""
        return len(self._kept) * self.sample_bytes

    def offer(self, raster: np.ndarray, labels: np.ndarray) -> int:
        """Stream in a ``[T, n, C]`` chunk; returns how many were admitted."""
        raster = np.asarray(raster)
        labels = np.asarray(labels)
        if raster.ndim != 3:
            raise StoreError(f"offer expects [T, n, C], got shape {raster.shape}")
        if raster.shape[0] != self.stored_frames:
            raise StoreError(
                f"chunk has {raster.shape[0]} frames, builder holds "
                f"{self.stored_frames}"
            )
        if raster.shape[2] != self.num_channels:
            raise StoreError(
                f"chunk has {raster.shape[2]} channels, builder holds "
                f"{self.num_channels}"
            )
        if labels.ndim != 1 or labels.shape[0] != raster.shape[1]:
            raise StoreError(
                f"{labels.shape} labels incompatible with chunk {raster.shape}"
            )
        admitted = 0
        kept_labels = self.kept_labels
        for i in range(raster.shape[1]):
            self.seen += 1
            label = int(labels[i])
            slot = self.policy.admit(label, kept_labels, self.capacity, self.rng)
            if slot is None:
                self.rejected += 1
                continue
            packed, _ = self._codec.compress(raster[:, i, :])
            if slot == len(self._kept):
                self._kept.append((packed, label))
                kept_labels.append(label)
            else:
                self.evicted += 1
                self._kept[slot] = (packed, label)
                kept_labels[slot] = label
            admitted += 1
        return admitted

    # ------------------------------------------------------------------
    def finalize(
        self,
        root: str | Path,
        shard_samples: int = DEFAULT_SHARD_SAMPLES,
        overwrite: bool = False,
    ) -> ReplayStore:
        """Write the kept set to ``root`` as a shard-chunked store."""
        if not self._kept:
            raise StoreError("no samples admitted; cannot finalize an empty store")
        store = ReplayStore.create(
            root,
            stored_frames=self.stored_frames,
            num_channels=self.num_channels,
            generated_timesteps=self.generated_timesteps,
            insertion_layer=self.insertion_layer,
            codec_factor=self.codec_factor,
            shard_samples=shard_samples,
            overwrite=overwrite,
        )
        shape = (self.stored_frames, self.num_channels)
        for start in range(0, len(self._kept), shard_samples):
            chunk = self._kept[start : start + shard_samples]
            raster = np.stack(
                [self._codec.decompress(packed, shape) for packed, _ in chunk],
                axis=1,
            )
            store.append(raster, np.array([label for _, label in chunk]))
        return store
