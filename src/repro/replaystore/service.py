"""Async multi-tenant serving facade over a federated replay store.

The fleet framing: one byte-budgeted federation serves replay reads to
many concurrent learners ("tenants").  :class:`ReplayService` is the
serving layer — callers submit gather requests from asyncio tasks, a
single server task drains the request queue into batches, and each
batch is served as **one** union gather:

1. concatenate every request's indices and deduplicate
   (``np.unique(..., return_inverse=True)``) — overlapping working sets
   across tenants decode each shard once, not once per tenant;
2. run the union gather on an executor thread so the event loop stays
   responsive while shards decode;
3. slice each tenant's answer out of the union raster via the inverse
   map — bitwise what a direct ``gather`` would have returned, because
   shard decode is pure and slicing is fancy indexing.

Mutation safety rides on the PR's store concurrency work: the service's
member streams hold reader pins, so a compaction or rebalance racing a
batch never yanks shard files mid-gather.  When the underlying
federation *is* mutated (a writer rebalanced between batches), the
served stream raises ``StoreError("store was mutated…")``; the service
transparently reopens the federation, retries the batch once against
the fresh snapshot, and counts the refresh — tenants only see an error
when their indices no longer fit the refreshed store.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.errors import StoreError
from repro.replaystore.federation import (
    DEFAULT_OPEN_MEMBERS,
    FederatedReplayStore,
    FederatedReplayStream,
)

__all__ = ["ReplayService", "ServiceStats"]

#: Sentinel telling the server task to exit after draining its batch.
_STOP = object()


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate serving counters (a :meth:`ReplayService.stats` snapshot)."""

    requests: int
    batches: int
    samples_served: int
    samples_decoded: int
    refreshes: int
    tenant_requests: dict[str, int] = field(default_factory=dict)

    @property
    def coalescing_ratio(self) -> float:
        """Requested samples per union-decoded sample (>1 = shared work)."""
        if not self.samples_decoded:
            return 0.0
        return self.samples_served / self.samples_decoded

    @property
    def mean_batch_requests(self) -> float:
        """Average number of tenant requests coalesced per batch."""
        return self.requests / self.batches if self.batches else 0.0


class ReplayService:
    """Batched async gather server over one federated replay store.

    Parameters
    ----------
    root:
        Federation directory (opened via
        :meth:`FederatedReplayStore.open` at :meth:`start` and on every
        mutation-triggered refresh).
    decompress:
        Forwarded to :meth:`FederatedReplayStore.stream`.
    cache_shards:
        Per-member decoded-shard LRU size of the served stream.
    max_open_members:
        Open-handle cap for both the federation handle and the lazy
        member streams.
    max_batch_requests:
        Most tenant requests coalesced into one union gather; requests
        beyond the cap wait for the next batch.
    prefetch:
        Wrap opened member streams in
        :class:`~repro.replaystore.prefetch.PrefetchingStream`.

    Use as an async context manager (or call :meth:`start` /
    :meth:`close` explicitly); requests submitted before ``start`` or
    after ``close`` raise :class:`~repro.errors.StoreError`.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        decompress: bool = False,
        cache_shards: int = 2,
        max_open_members: int = DEFAULT_OPEN_MEMBERS,
        max_batch_requests: int = 32,
        prefetch: bool = False,
    ):
        if max_batch_requests < 1:
            raise StoreError(
                f"max_batch_requests must be >= 1, got {max_batch_requests}"
            )
        self.root = Path(root)
        self.decompress = bool(decompress)
        self.cache_shards = int(cache_shards)
        self.max_open_members = int(max_open_members)
        self.max_batch_requests = int(max_batch_requests)
        self.prefetch = bool(prefetch)
        self._federation: FederatedReplayStore | None = None
        self._stream: FederatedReplayStream | None = None
        self._queue: asyncio.Queue | None = None
        self._server: asyncio.Task | None = None
        self._requests = 0
        self._batches = 0
        self._samples_served = 0
        self._samples_decoded = 0
        self._refreshes = 0
        self._tenant_requests: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _open_view(self) -> None:
        """(Re)open the federation and its lazy serving stream."""
        old = self._stream
        self._federation = FederatedReplayStore.open(
            self.root, max_open_members=self.max_open_members
        )
        self._stream = self._federation.stream(
            decompress=self.decompress,
            cache_shards=self.cache_shards,
            max_open_streams=self.max_open_members,
            prefetch=self.prefetch,
        )
        if old is not None:
            old.close()

    async def start(self) -> None:
        """Open the serving view and launch the server task."""
        if self._server is not None:
            raise StoreError("replay service is already started")
        self._open_view()
        self._queue = asyncio.Queue()
        self._server = asyncio.get_running_loop().create_task(self._serve())

    async def close(self) -> None:
        """Drain in-flight batches, stop the server, release pins."""
        if self._server is not None:
            assert self._queue is not None
            self._queue.put_nowait(_STOP)
            await self._server
            self._server = None
            self._queue = None
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    async def __aenter__(self) -> "ReplayService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    @property
    def num_samples(self) -> int:
        """Samples in the currently served snapshot."""
        if self._stream is None:
            raise StoreError("replay service is not started")
        return self._stream.num_samples

    def stats(self) -> ServiceStats:
        """Snapshot of the serving counters."""
        return ServiceStats(
            requests=self._requests,
            batches=self._batches,
            samples_served=self._samples_served,
            samples_decoded=self._samples_decoded,
            refreshes=self._refreshes,
            tenant_requests=dict(self._tenant_requests),
        )

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------
    async def gather(
        self, indices: np.ndarray, tenant: str = "default"
    ) -> np.ndarray:
        """Gather ``[T, k, C]`` samples for one tenant.

        Batched behind the scenes with whatever else is in flight.
        """
        results = await self.gather_many([(tenant, indices)])
        return results[0]

    async def gather_many(
        self, requests: list[tuple[str, np.ndarray]]
    ) -> list[np.ndarray]:
        """Serve many ``(tenant, indices)`` requests, in request order.

        All requests enter the queue together, so they land in the same
        batch when the cap allows — the canonical way for one caller to
        exploit cross-request coalescing deliberately.
        """
        if self._server is None or self._queue is None:
            raise StoreError(
                "replay service is not started (use `async with` or start())"
            )
        loop = asyncio.get_running_loop()
        futures = []
        for tenant, indices in requests:
            arr = np.asarray(indices, dtype=np.int64)
            if arr.ndim != 1:
                raise StoreError(
                    f"indices must be 1-D, got shape {arr.shape}"
                )
            future: asyncio.Future = loop.create_future()
            self._queue.put_nowait((str(tenant), arr, future))
            futures.append(future)
        return list(await asyncio.gather(*futures))

    # ------------------------------------------------------------------
    # Server task
    # ------------------------------------------------------------------
    async def _serve(self) -> None:
        """Drain the request queue, one coalesced batch at a time."""
        assert self._queue is not None
        while True:
            item = await self._queue.get()
            if item is _STOP:
                return
            batch = [item]
            stopping = False
            while len(batch) < self.max_batch_requests:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is _STOP:
                    stopping = True
                    break
                batch.append(extra)
            await self._serve_batch(batch)
            if stopping:
                return

    async def _serve_batch(
        self, batch: list[tuple[str, np.ndarray, asyncio.Future]]
    ) -> None:
        """Serve one batch: validate, union-gather, slice, resolve."""
        assert self._stream is not None
        for attempt in (0, 1):
            live = [
                (tenant, indices, future)
                for tenant, indices, future in batch
                if not future.done()
            ]
            if not live:
                return
            total = self._stream.num_samples
            valid: list[tuple[str, np.ndarray, asyncio.Future]] = []
            for tenant, indices, future in live:
                if indices.size and (
                    indices.min() < 0 or indices.max() >= total
                ):
                    future.set_exception(
                        StoreError(
                            f"indices out of range [0, {total}) "
                            f"(got [{indices.min()}, {indices.max()}])"
                        )
                    )
                    continue
                valid.append((tenant, indices, future))
            if not valid:
                return
            sizes = [int(indices.size) for _, indices, _ in valid]
            try:
                loop = asyncio.get_running_loop()
                outputs, union_size = await loop.run_in_executor(
                    None,
                    self._gather_union,
                    [indices for _, indices, _ in valid],
                )
            except StoreError as error:
                if attempt == 0:
                    # The federation was mutated under us (rebalance,
                    # compaction, adoption): reopen and retry against
                    # the fresh snapshot.
                    self._refreshes += 1
                    obs.count("service.refreshes")
                    self._open_view()
                    continue
                for _tenant, _indices, future in valid:
                    if not future.done():
                        future.set_exception(error)
                return
            self._batches += 1
            self._requests += len(valid)
            self._samples_served += sum(sizes)
            self._samples_decoded += union_size
            obs.count("service.requests", len(valid))
            obs.count("service.samples_served", sum(sizes))
            obs.count("service.samples_decoded", union_size)
            for (tenant, _indices, future), out in zip(valid, outputs):
                self._tenant_requests[tenant] = (
                    self._tenant_requests.get(tenant, 0) + 1
                )
                if not future.done():
                    future.set_result(out)
            return

    def _gather_union(
        self, indices_list: list[np.ndarray]
    ) -> tuple[list[np.ndarray], int]:
        """One deduplicated gather serving every request in the batch.

        Runs on the executor thread.  Returns the per-request rasters
        (sliced from the union raster — bitwise identical to direct
        gathers, shard decode being pure) and the union size.
        """
        assert self._stream is not None
        concat = (
            np.concatenate(indices_list)
            if indices_list
            else np.zeros(0, dtype=np.int64)
        )
        with obs.span(
            "service.batch",
            category="store",
            requests=len(indices_list),
            samples=int(concat.size),
        ) as span:
            union, inverse = np.unique(concat, return_inverse=True)
            span.set(union=int(union.size))
            data = self._stream.gather(union)
            outputs: list[np.ndarray] = []
            offset = 0
            for indices in indices_list:
                take = inverse[offset : offset + indices.size]
                outputs.append(data[:, take, :])
                offset += indices.size
        return outputs, int(union.size)

    def __repr__(self) -> str:
        state = "running" if self._server is not None else "stopped"
        return f"ReplayService(root={str(self.root)!r}, {state})"
