"""Binary shard format for persisted latent-replay rasters.

A shard is the unit of storage and of replay-time decoding: one
``[T_stored, n, C]`` binary raster plus its ``n`` labels, serialised as

========  =====  =====================================================
offset    size   field
========  =====  =====================================================
0         4      magic ``b"RSHD"``
4         1      format version (:data:`SHARD_VERSION`)
5         1      codec id (0 = bitpack, 1 = address-event)
6         2      reserved (zero)
8         4      ``T_stored`` (uint32 LE)
12        4      ``n`` samples (uint32 LE)
16        4      ``C`` channels (uint32 LE)
20        8      payload length in bytes (uint64 LE)
28        8*n    labels (int64 LE)
28+8*n    —      codec payload
========  =====  =====================================================

The codec is chosen **per shard** by density: sparse shards store
``(t, flat_cell)`` address events (6 bytes/event), dense shards store a
1-bit/cell bitmap — whichever is smaller for the actual spike count.
Both are lossless, so a decode always reproduces the float32 raster
bit-for-bit (the store-backed training path depends on this).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.compression.bitpack import BitpackCodec
from repro.compression.sparse import AddressEventCodec
from repro.errors import StoreError

__all__ = [
    "SHARD_MAGIC",
    "SHARD_VERSION",
    "CODEC_BITPACK",
    "CODEC_AER",
    "ShardHeader",
    "choose_codec",
    "codec_payload_bytes",
    "encode_shard",
    "decode_shard",
    "peek_header",
    "payload_offset",
]

SHARD_MAGIC = b"RSHD"
SHARD_VERSION = 1

CODEC_BITPACK = "bitpack"
CODEC_AER = "aer"

_CODEC_IDS = {CODEC_BITPACK: 0, CODEC_AER: 1}
_CODEC_NAMES = {v: k for k, v in _CODEC_IDS.items()}

#: ``magic | version | codec | reserved | T | n | C | payload_len``.
_HEADER = struct.Struct("<4sBBHIIIQ")

#: Event coordinate widths: uint16 timestep, uint32 flattened
#: ``sample*C + channel`` cell index (shards can exceed 65536 cells).
_AER_TIME_BYTES = 2
_AER_CELL_BYTES = 4
_AER = AddressEventCodec(time_bytes=_AER_TIME_BYTES, channel_bytes=_AER_CELL_BYTES)
_BITPACK = BitpackCodec()


@dataclass(frozen=True)
class ShardHeader:
    """Decoded fixed-size shard header."""

    codec: str
    stored_frames: int
    num_samples: int
    num_channels: int
    payload_bytes: int


def payload_offset(num_samples: int) -> int:
    """Byte offset of the codec payload within a shard blob."""
    if num_samples <= 0:
        raise StoreError(f"shard must hold >= 1 sample, got {num_samples}")
    return _HEADER.size + 8 * num_samples


def codec_payload_bytes(raster: np.ndarray) -> dict[str, int]:
    """Payload size of each codec for ``raster`` (the density decision)."""
    raster = np.asarray(raster)
    bitmap = _BITPACK.packed_bytes(raster.shape)
    events = _AER.compressed_bytes(int(raster.sum()))
    return {CODEC_BITPACK: bitmap, CODEC_AER: events}


def choose_codec(raster: np.ndarray) -> str:
    """Pick the smaller lossless encoding for this shard's density."""
    sizes = codec_payload_bytes(raster)
    return CODEC_AER if sizes[CODEC_AER] < sizes[CODEC_BITPACK] else CODEC_BITPACK


def _validate_raster(raster: np.ndarray) -> np.ndarray:
    raster = np.asarray(raster)
    if raster.ndim != 3:
        raise StoreError(f"shard raster must be [T, n, C], got shape {raster.shape}")
    if min(raster.shape) == 0:
        raise StoreError(f"shard raster must be non-empty, got shape {raster.shape}")
    if raster.shape[0] >= 256**_AER_TIME_BYTES:
        raise StoreError(
            f"{raster.shape[0]} frames exceed the uint16 timestep coordinate"
        )
    if raster.shape[1] * raster.shape[2] >= 256**_AER_CELL_BYTES:
        raise StoreError(f"shard {raster.shape} exceeds the uint32 cell coordinate")
    return raster


def encode_shard(raster: np.ndarray, labels: np.ndarray) -> bytes:
    """Serialise one shard; codec chosen by :func:`choose_codec`."""
    raster = _validate_raster(raster)
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1 or labels.shape[0] != raster.shape[1]:
        raise StoreError(
            f"{labels.shape} labels incompatible with raster {raster.shape}"
        )
    codec = choose_codec(raster)
    if codec == CODEC_AER:
        times, cells, _ = _AER.compress(raster)
        payload = (
            times.astype("<u2").tobytes() + cells.astype("<u4").tobytes()
        )
    else:
        packed, _ = _BITPACK.compress(raster)
        payload = packed.tobytes()
    header = _HEADER.pack(
        SHARD_MAGIC,
        SHARD_VERSION,
        _CODEC_IDS[codec],
        0,
        raster.shape[0],
        raster.shape[1],
        raster.shape[2],
        len(payload),
    )
    return header + labels.astype("<i8").tobytes() + payload


def peek_header(blob: bytes) -> ShardHeader:
    """Parse and validate the fixed-size header of a shard blob."""
    if len(blob) < _HEADER.size:
        raise StoreError(f"shard blob of {len(blob)} B is shorter than the header")
    magic, version, codec_id, _, frames, samples, channels, payload = _HEADER.unpack(
        blob[: _HEADER.size]
    )
    if magic != SHARD_MAGIC:
        raise StoreError(f"bad shard magic {magic!r} (expected {SHARD_MAGIC!r})")
    if version != SHARD_VERSION:
        raise StoreError(f"unsupported shard version {version}")
    if codec_id not in _CODEC_NAMES:
        raise StoreError(f"unknown shard codec id {codec_id}")
    return ShardHeader(
        codec=_CODEC_NAMES[codec_id],
        stored_frames=int(frames),
        num_samples=int(samples),
        num_channels=int(channels),
        payload_bytes=int(payload),
    )


def decode_shard(blob: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Exact inverse of :func:`encode_shard`: ``(raster, labels)``."""
    header = peek_header(blob)
    offset = payload_offset(header.num_samples)
    expected = offset + header.payload_bytes
    if len(blob) < expected:
        raise StoreError(f"shard blob truncated: {len(blob)} B < {expected} B")
    labels = np.frombuffer(
        blob, dtype="<i8", count=header.num_samples, offset=_HEADER.size
    ).astype(np.int64)
    payload = blob[offset:expected]
    shape = (header.stored_frames, header.num_samples, header.num_channels)
    if header.codec == CODEC_AER:
        if header.payload_bytes % _AER.bytes_per_event:
            raise StoreError(
                f"AER payload of {header.payload_bytes} B is not a whole "
                f"number of {_AER.bytes_per_event}-byte events"
            )
        num_events = header.payload_bytes // _AER.bytes_per_event
        times = np.frombuffer(payload, dtype="<u2", count=num_events)
        cells = np.frombuffer(
            payload, dtype="<u4", count=num_events, offset=num_events * _AER_TIME_BYTES
        )
        raster = _AER.decompress(
            times.astype(np.uint32), cells.astype(np.uint32), shape
        )
    else:
        packed = np.frombuffer(payload, dtype=np.uint8)
        raster = _BITPACK.decompress(packed, shape)
    return raster, labels
