"""Persistent, budgeted, streaming replay-memory engine.

The paper's latent replay buffer, grown into a storage system: shards of
codec-compressed binary rasters on disk (``format``/``store``), hard
byte budgets with pluggable admission/eviction (``policies``/
``builder``), lazy shard-at-a-time replay into training (``stream``),
async shard prefetch overlapping decode with the SNN step
(``prefetch``), and multi-store federation for long task sequences
under one global budget (``federation``).
``LatentReplayBuffer.to_store()`` and the run entry points with a
store-backed spec — ``NCLMethod.run(...,
replay=ReplaySpec(store_dir=...))``, ``run_sequential`` /
``run_scenario`` likewise — are the high-level faces; ``repro store``
is the CLI one.
"""

from repro.replaystore.builder import SAMPLE_HEADER_BYTES, StreamingStoreBuilder
from repro.replaystore.federation import (
    FederatedReplayStore,
    FederatedReplayStream,
    FederationStats,
)
from repro.replaystore.format import (
    CODEC_AER,
    CODEC_BITPACK,
    ShardHeader,
    choose_codec,
    codec_payload_bytes,
    decode_shard,
    encode_shard,
    peek_header,
)
from repro.replaystore.policies import (
    ClassBalancedPolicy,
    EvictionPolicy,
    FIFOPolicy,
    ReservoirPolicy,
    get_policy,
)
from repro.replaystore.store import (
    ReplayStore,
    ShardInfo,
    StoreMeta,
    StoreStats,
)
from repro.replaystore.prefetch import PrefetchingStream, prefetch_enabled
from repro.replaystore.service import ReplayService, ServiceStats
from repro.replaystore.stream import ConcatReplaySource, ReplayStream

__all__ = [
    "CODEC_AER",
    "CODEC_BITPACK",
    "SAMPLE_HEADER_BYTES",
    "ShardHeader",
    "choose_codec",
    "codec_payload_bytes",
    "encode_shard",
    "decode_shard",
    "peek_header",
    "EvictionPolicy",
    "FIFOPolicy",
    "ReservoirPolicy",
    "ClassBalancedPolicy",
    "get_policy",
    "StreamingStoreBuilder",
    "ReplayStore",
    "ShardInfo",
    "StoreMeta",
    "StoreStats",
    "ConcatReplaySource",
    "ReplayStream",
    "PrefetchingStream",
    "prefetch_enabled",
    "FederatedReplayStore",
    "FederatedReplayStream",
    "FederationStats",
    "ReplayService",
    "ServiceStats",
]
