"""The chunked, file-backed replay store.

A store is a directory::

    store/
      index.json        # metadata + shard table (labels, sizes, offsets)
      shard-00000.bin   # one encoded shard per file (format.py)
      shard-00001.bin
      ...

The index is the lookup authority: it carries per-shard sample counts,
labels, codec choice, and payload byte offsets, so listing, budgeting
and class statistics never touch shard payloads.  Shard files are only
read when their samples are actually replayed (see ``stream.py``).

Shards are immutable once written; mutation happens by appending new
shards or by :meth:`ReplayStore.compact`, which rewrites the shard set
at uniform occupancy (after evictions leave ragged shards behind).

Concurrency: every index mutation runs under an exclusive advisory
:class:`~repro.ioutil.FileLock` (``index.json.lock``) and re-reads the
on-disk index before modifying it, so handles in different threads or
processes serialize their read-modify-write cycles; the atomic index
rename stays the commit point.  Readers register themselves through
crash-safe pins (``.readers/``): a compaction that finds live readers
leaves the superseded shard files on disk as a *tombstone generation*
(recorded in the index) instead of unlinking them, so an in-flight
gather against the old snapshot finishes cleanly — the reader then gets
a clean :class:`~repro.errors.StoreError` at its next snapshot check,
never a raw ``FileNotFoundError``.  Tombstones are swept by later
mutations once no live reader pins a generation that can reference
them.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.errors import StoreError
from repro.ioutil import (
    FileLock,
    Pin,
    acquire_pin,
    atomic_write_json,
    live_pin_payloads,
)
from repro.replaystore.format import decode_shard, encode_shard, peek_header

__all__ = [
    "StoreMeta",
    "ShardInfo",
    "StoreStats",
    "ReplayStore",
    "INDEX_NAME",
    "LOCK_NAME",
    "READERS_DIR",
]

INDEX_NAME = "index.json"
#: Lock file guarding index read-modify-write (never renamed, unlike
#: the index itself, so the locked inode is stable).
LOCK_NAME = "index.json.lock"
#: Directory of crash-safe reader pins (see :mod:`repro.ioutil`).
READERS_DIR = ".readers"
INDEX_VERSION = 1

#: Default samples per shard; also the replay-time decode granularity
#: (peak resident replay memory is ~``shard_samples`` dense samples).
DEFAULT_SHARD_SAMPLES = 64


@dataclass(frozen=True)
class StoreMeta:
    """Geometry and provenance of the stored latent data."""

    stored_frames: int
    num_channels: int
    generated_timesteps: int
    insertion_layer: int = 0
    codec_factor: int = 1
    shard_samples: int = DEFAULT_SHARD_SAMPLES

    def __post_init__(self):
        if self.stored_frames <= 0 or self.num_channels <= 0:
            raise StoreError(
                f"store geometry must be positive, got T={self.stored_frames} "
                f"C={self.num_channels}"
            )
        if self.generated_timesteps <= 0:
            raise StoreError(
                f"generated_timesteps must be positive, got {self.generated_timesteps}"
            )
        if self.codec_factor < 1:
            raise StoreError(f"codec_factor must be >= 1, got {self.codec_factor}")
        if self.shard_samples <= 0:
            raise StoreError(f"shard_samples must be positive, got {self.shard_samples}")


@dataclass
class ShardInfo:
    """One row of the index's shard table."""

    file: str
    num_samples: int
    codec: str
    payload_bytes: int
    payload_offset: int
    labels: list[int] = field(default_factory=list)


@dataclass(frozen=True)
class StoreStats:
    """Aggregate view of a store (the ``repro store stats`` payload)."""

    num_shards: int
    num_samples: int
    stored_frames: int
    num_channels: int
    codec_shards: dict[str, int]
    payload_bytes: int
    disk_bytes: int
    class_counts: dict[int, int]

    @property
    def bytes_per_sample(self) -> float:
        """Mean packed payload bytes per stored sample."""
        return self.payload_bytes / self.num_samples if self.num_samples else 0.0


class ReplayStore:
    """Persistent shard set + index over one latent-replay buffer."""

    def __init__(
        self,
        root: Path,
        meta: StoreMeta,
        shards: list[ShardInfo],
        generation: int = 0,
        tombstones: list[dict] | None = None,
    ):
        self.root = Path(root)
        self.meta = meta
        self.shards = shards
        #: Bumped by :meth:`compact`; compacted shard files carry the
        #: generation in their name so a rewrite never collides with the
        #: files the current index still points at.
        self.generation = int(generation)
        #: Superseded shard files kept on disk for live pinned readers:
        #: ``[{"file": name, "generation": g}]`` where ``g`` is the
        #: generation whose commit orphaned the file.  Swept by
        #: :meth:`sweep_tombstones` once no reader can reference them.
        self.tombstones: list[dict] = list(tombstones or [])

    # ------------------------------------------------------------------
    # Locking + reader registry
    # ------------------------------------------------------------------
    @contextmanager
    def _locked(self):
        """Exclusive advisory lock over index read-modify-write."""
        lock = FileLock(self.root / LOCK_NAME)
        lock.acquire()
        try:
            yield lock
        finally:
            lock.release()

    def pin_reader(self) -> Pin:
        """Register a live reader pinned to the current generation.

        While the pin is held (a crashed holder releases it
        automatically), mutations keep this generation's shard files on
        disk as tombstones instead of unlinking them, so the reader's
        in-flight gathers finish against its snapshot.  Release the pin
        as soon as the snapshot view is dropped.
        """
        return acquire_pin(
            self.root / READERS_DIR, {"generation": self.generation}
        )

    def _pinned_generations(self) -> list[int]:
        """Generations pinned by live readers (unparseable pins pin all)."""
        return [
            int(payload.get("generation", -1))
            for payload in live_pin_payloads(self.root / READERS_DIR)
        ]

    def _commit_and_sweep(self, orphans: list[str]) -> None:
        """Commit the index, then remove unpinned superseded files.

        ``orphans`` are files the *new* generation no longer references.
        Every candidate (prior tombstones included) is recorded in the
        committed index first, so a crash after the rename never loses
        track of a file; deletion only touches candidates no live
        reader's pinned generation can reference.  Caller holds the
        index lock.
        """
        candidates = list(self.tombstones) + [
            {"file": name, "generation": self.generation} for name in orphans
        ]
        self.tombstones = candidates
        self._write_index()  # atomic rename: the commit point
        if not candidates:
            return
        pinned = self._pinned_generations()
        keep = []
        dropped = 0
        for tomb in candidates:
            if any(g < int(tomb["generation"]) for g in pinned):
                keep.append(tomb)
                continue
            (self.root / str(tomb["file"])).unlink(missing_ok=True)
            dropped += 1
        if dropped:
            self.tombstones = keep
            self._write_index()
            obs.count("store.tombstones_swept", dropped)

    def sweep_tombstones(self) -> int:
        """Delete tombstoned files no live reader pins; returns count.

        Safe to call any time (takes the index lock); mutations sweep
        opportunistically, so explicit calls are only needed to reclaim
        disk promptly after long-lived readers close.
        """
        with self._locked():
            self._reload()
            before = len(self.tombstones)
            self._commit_and_sweep([])
            return before - len(self.tombstones)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: str | Path,
        *,
        stored_frames: int,
        num_channels: int,
        generated_timesteps: int,
        insertion_layer: int = 0,
        codec_factor: int = 1,
        shard_samples: int = DEFAULT_SHARD_SAMPLES,
        overwrite: bool = False,
    ) -> "ReplayStore":
        """Initialise an empty store directory (refuses to clobber one)."""
        root = Path(root)
        index_path = root / INDEX_NAME
        meta = StoreMeta(
            stored_frames=stored_frames,
            num_channels=num_channels,
            generated_timesteps=generated_timesteps,
            insertion_layer=insertion_layer,
            codec_factor=codec_factor,
            shard_samples=shard_samples,
        )
        store = cls(root, meta, [])
        with store._locked():
            if index_path.exists() and not overwrite:
                raise StoreError(
                    f"store already exists at {root} (pass overwrite=True to replace)"
                )
            root.mkdir(parents=True, exist_ok=True)
            if overwrite:
                for old in root.glob("shard-*.bin"):
                    old.unlink()
            store._write_index()
        return store

    @classmethod
    def open(cls, root: str | Path) -> "ReplayStore":
        """Load an existing store from its index."""
        root = Path(root)
        index_path = root / INDEX_NAME
        payload = cls._read_index(index_path)
        try:
            meta = StoreMeta(**payload["meta"])
            shards = [ShardInfo(**entry) for entry in payload["shards"]]
        except (KeyError, TypeError) as error:
            raise StoreError(
                f"malformed store index at {index_path}: {error}"
            ) from error
        return cls(
            root,
            meta,
            shards,
            generation=int(payload.get("generation", 0)),
            tombstones=list(payload.get("tombstones", [])),
        )

    @staticmethod
    def _read_index(index_path: Path) -> dict:
        """Parse the raw index payload (shared by ``open`` and reload)."""
        if not index_path.exists():
            raise StoreError(
                f"no replay store at {index_path.parent} (missing {INDEX_NAME})"
            )
        try:
            payload = json.loads(index_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise StoreError(f"corrupt store index at {index_path}: {error}") from error
        if payload.get("version") != INDEX_VERSION:
            raise StoreError(
                f"unsupported store index version {payload.get('version')!r}"
            )
        return payload

    def _reload(self) -> None:
        """Refresh this handle from the on-disk index.

        Called at the start of every locked mutation so read-modify-write
        cycles from concurrent handles compose instead of clobbering each
        other (the second writer starts from the first writer's commit).
        """
        payload = self._read_index(self.root / INDEX_NAME)
        try:
            self.meta = StoreMeta(**payload["meta"])
            self.shards = [ShardInfo(**entry) for entry in payload["shards"]]
        except (KeyError, TypeError) as error:
            raise StoreError(
                f"malformed store index at {self.root / INDEX_NAME}: {error}"
            ) from error
        self.generation = int(payload.get("generation", 0))
        self.tombstones = list(payload.get("tombstones", []))

    def _write_index(self) -> None:
        """Atomically replace the index (write-to-temp + rename)."""
        payload = {
            "version": INDEX_VERSION,
            "generation": self.generation,
            "meta": {
                "stored_frames": self.meta.stored_frames,
                "num_channels": self.meta.num_channels,
                "generated_timesteps": self.meta.generated_timesteps,
                "insertion_layer": self.meta.insertion_layer,
                "codec_factor": self.meta.codec_factor,
                "shard_samples": self.meta.shard_samples,
            },
            "shards": [
                {
                    "file": s.file,
                    "num_samples": s.num_samples,
                    "codec": s.codec,
                    "payload_bytes": s.payload_bytes,
                    "payload_offset": s.payload_offset,
                    "labels": list(map(int, s.labels)),
                }
                for s in self.shards
            ],
            "tombstones": [
                {"file": str(t["file"]), "generation": int(t["generation"])}
                for t in self.tombstones
            ],
        }
        atomic_write_json(self.root / INDEX_NAME, payload)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of shard files in the store."""
        return len(self.shards)

    @property
    def num_samples(self) -> int:
        """Total samples across every shard."""
        return sum(s.num_samples for s in self.shards)

    @property
    def labels(self) -> np.ndarray:
        """All labels in storage order (index-only, no shard reads)."""
        if not self.shards:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(
            [np.asarray(s.labels, dtype=np.int64) for s in self.shards]
        )

    def payload_bytes(self) -> int:
        """Codec payload bytes across all shards (index accounting)."""
        return sum(s.payload_bytes for s in self.shards)

    def disk_bytes(self) -> int:
        """Actual bytes on disk: shard files plus the index itself."""
        try:
            total = (self.root / INDEX_NAME).stat().st_size
            for shard in self.shards:
                total += (self.root / shard.file).stat().st_size
        except OSError as error:
            raise StoreError(
                f"store was mutated by another handle while measuring "
                f"disk usage at {self.root}: {error}"
            ) from error
        return total

    def stats(self) -> StoreStats:
        """Aggregate :class:`StoreStats` over shards and classes."""
        codec_shards: dict[str, int] = {}
        class_counts: dict[int, int] = {}
        for shard in self.shards:
            codec_shards[shard.codec] = codec_shards.get(shard.codec, 0) + 1
            for label in shard.labels:
                class_counts[int(label)] = class_counts.get(int(label), 0) + 1
        return StoreStats(
            num_shards=self.num_shards,
            num_samples=self.num_samples,
            stored_frames=self.meta.stored_frames,
            num_channels=self.meta.num_channels,
            codec_shards=codec_shards,
            payload_bytes=self.payload_bytes(),
            disk_bytes=self.disk_bytes(),
            class_counts=dict(sorted(class_counts.items())),
        )

    # ------------------------------------------------------------------
    # Shard I/O
    # ------------------------------------------------------------------
    def append(self, raster: np.ndarray, labels: np.ndarray) -> list[int]:
        """Persist ``[T_stored, n, C]`` samples as one or more new shards.

        The raster is split into chunks of ``meta.shard_samples`` columns;
        each chunk becomes an immutable shard file.  Returns the new shard
        ids.
        """
        raster = np.asarray(raster)
        labels = np.asarray(labels)
        if raster.ndim != 3:
            raise StoreError(f"append expects [T, n, C], got shape {raster.shape}")
        if raster.shape[0] != self.meta.stored_frames:
            raise StoreError(
                f"raster has {raster.shape[0]} frames, store holds "
                f"{self.meta.stored_frames}"
            )
        if raster.shape[2] != self.meta.num_channels:
            raise StoreError(
                f"raster has {raster.shape[2]} channels, store holds "
                f"{self.meta.num_channels}"
            )
        if labels.ndim != 1 or labels.shape[0] != raster.shape[1]:
            raise StoreError(
                f"{labels.shape} labels incompatible with raster {raster.shape}"
            )
        with self._locked():
            self._reload()
            new_ids: list[int] = []
            for start in range(0, raster.shape[1], self.meta.shard_samples):
                chunk = raster[:, start : start + self.meta.shard_samples, :]
                chunk_labels = labels[start : start + self.meta.shard_samples]
                new_ids.append(self._write_shard(chunk, chunk_labels))
            self._commit_and_sweep([])
        return new_ids

    def _shard_name(self, shard_id: int) -> str:
        """Next free ``shard-NNNNN.bin`` name (never reuses a tombstone).

        Plain sequential naming would collide with a same-numbered file
        kept alive as a tombstone after a compaction, silently clobbering
        the snapshot a pinned reader is still gathering from.
        """
        used = {s.file for s in self.shards}
        used.update(str(t["file"]) for t in self.tombstones)
        while f"shard-{shard_id:05d}.bin" in used:
            shard_id += 1
        return f"shard-{shard_id:05d}.bin"

    def _write_shard(self, raster: np.ndarray, labels: np.ndarray) -> int:
        shard_id = len(self.shards)
        with obs.span("store.encode_shard", category="store", shard=shard_id) as sp:
            blob = encode_shard(raster, labels)
            sp.set(bytes=len(blob), samples=int(raster.shape[1]))
        obs.count("store.bytes_encoded", len(blob))
        obs.count("store.shards_encoded")
        header = peek_header(blob)
        name = self._shard_name(shard_id)
        (self.root / name).write_bytes(blob)
        self.shards.append(
            ShardInfo(
                file=name,
                num_samples=header.num_samples,
                codec=header.codec,
                payload_bytes=header.payload_bytes,
                payload_offset=len(blob) - header.payload_bytes,
                labels=[int(v) for v in labels],
            )
        )
        return shard_id

    def read_shard(self, shard_id: int) -> tuple[np.ndarray, np.ndarray]:
        """Decode one shard to its dense ``[T_stored, n, C]`` raster."""
        if not 0 <= shard_id < len(self.shards):
            raise StoreError(
                f"shard {shard_id} out of range (store has {len(self.shards)})"
            )
        info = self.shards[shard_id]
        path = self.root / info.file
        with obs.span("store.decode_shard", category="store", shard=shard_id) as sp:
            try:
                blob = path.read_bytes()
            except OSError as error:
                raise StoreError(
                    f"shard file {info.file} is gone — store was mutated by "
                    f"another handle (compacted, filtered, or rebuilt); "
                    f"reopen the store to see its current state: {error}"
                ) from error
            sp.set(bytes=len(blob))
            raster, labels = decode_shard(blob)
        obs.count("store.bytes_decoded", len(blob))
        obs.count("store.shards_decoded")
        if raster.shape[1] != info.num_samples or not np.array_equal(
            labels, np.asarray(info.labels, dtype=np.int64)
        ):
            raise StoreError(f"shard {shard_id} disagrees with the index")
        return raster, labels

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def filter(self, keep: np.ndarray) -> int:
        """Keep only the samples at global indices ``keep``; returns evictions.

        ``keep`` indexes the store's global sample order (storage order,
        the order :attr:`labels` uses); kept samples preserve that order.
        This is the eviction primitive of cross-store rebalancing: a
        federation decides *which* samples survive, ``filter`` rewrites
        the shard set to hold exactly those.  Streams shard-by-shard like
        :meth:`compact` and shares its crash-safety: new-generation files
        first, atomic index rename as the commit point, old files removed
        last.  Filtering to the full index set is a no-op (no rewrite).
        """
        keep = np.asarray(keep, dtype=np.int64)
        if keep.ndim != 1:
            raise StoreError(f"keep indices must be 1-D, got shape {keep.shape}")
        with self._locked():
            self._reload()
            total = self.num_samples
            if keep.size:
                if keep.min() < 0 or keep.max() >= total:
                    raise StoreError(
                        f"keep indices out of range [0, {total}) "
                        f"(got [{keep.min()}, {keep.max()}])"
                    )
                if np.any(np.diff(keep) <= 0):
                    raise StoreError("keep indices must be strictly increasing")
            if keep.size == total:
                return 0
            evicted = total - int(keep.size)
            target = self.meta.shard_samples
            old_files = [s.file for s in self.shards]
            generation = self.generation + 1

            staged: list[ShardInfo] = []
            pending_raster: list[np.ndarray] = []
            pending_labels: list[np.ndarray] = []
            pending = 0

            def flush(force: bool) -> None:
                nonlocal pending
                while pending >= target or (force and pending > 0):
                    raster = np.concatenate(pending_raster, axis=1)
                    labels = np.concatenate(pending_labels)
                    take = min(target, raster.shape[1])
                    blob = encode_shard(raster[:, :take, :], labels[:take])
                    header = peek_header(blob)
                    name = f"shard-g{generation:03d}-{len(staged):05d}.bin"
                    (self.root / name).write_bytes(blob)
                    staged.append(
                        ShardInfo(
                            file=name,
                            num_samples=header.num_samples,
                            codec=header.codec,
                            payload_bytes=header.payload_bytes,
                            payload_offset=len(blob) - header.payload_bytes,
                            labels=[int(v) for v in labels[:take]],
                        )
                    )
                    pending_raster[:] = (
                        [raster[:, take:, :]] if take < raster.shape[1] else []
                    )
                    pending_labels[:] = (
                        [labels[take:]] if take < labels.shape[0] else []
                    )
                    pending -= take

            offset = 0
            for shard_id in range(len(self.shards)):
                count = self.shards[shard_id].num_samples
                local = keep[(keep >= offset) & (keep < offset + count)] - offset
                offset += count
                if local.size == 0:
                    continue
                raster, labels = self.read_shard(shard_id)
                pending_raster.append(raster[:, local, :])
                pending_labels.append(labels[local])
                pending += int(local.size)
                flush(force=False)
            flush(force=True)

            self.shards = staged
            self.generation = generation
            self._commit_and_sweep(old_files)
        return evicted

    def compact(self, shard_samples: int | None = None) -> int:
        """Rewrite all shards at uniform occupancy; returns the new count.

        Used after budget evictions leave ragged shards, or to retarget
        the decode granularity.  Streams shard-by-shard, so peak memory
        stays at ~2 shards regardless of store size.

        Crash-safe: the new generation's shard files are written under
        names the current index never references, the atomic index
        rename is the commit point, and only then are the old
        generation's files removed.  A crash anywhere leaves a store
        that opens cleanly (at worst with orphaned files from the
        interrupted generation).
        """
        if shard_samples is not None and shard_samples <= 0:
            raise StoreError(f"shard_samples must be positive, got {shard_samples}")
        with self._locked():
            self._reload()
            target = shard_samples or self.meta.shard_samples
            old_files = [s.file for s in self.shards]
            generation = self.generation + 1

            staged: list[ShardInfo] = []
            pending_raster: list[np.ndarray] = []
            pending_labels: list[np.ndarray] = []
            pending = 0

            def flush(force: bool) -> None:
                nonlocal pending
                while pending >= target or (force and pending > 0):
                    raster = np.concatenate(pending_raster, axis=1)
                    labels = np.concatenate(pending_labels)
                    take = min(target, raster.shape[1])
                    blob = encode_shard(raster[:, :take, :], labels[:take])
                    header = peek_header(blob)
                    name = f"shard-g{generation:03d}-{len(staged):05d}.bin"
                    (self.root / name).write_bytes(blob)
                    staged.append(
                        ShardInfo(
                            file=name,
                            num_samples=header.num_samples,
                            codec=header.codec,
                            payload_bytes=header.payload_bytes,
                            payload_offset=len(blob) - header.payload_bytes,
                            labels=[int(v) for v in labels[:take]],
                        )
                    )
                    pending_raster[:] = (
                        [raster[:, take:, :]] if take < raster.shape[1] else []
                    )
                    pending_labels[:] = (
                        [labels[take:]] if take < labels.shape[0] else []
                    )
                    pending -= take

            for shard_id in range(len(self.shards)):
                raster, labels = self.read_shard(shard_id)
                pending_raster.append(raster)
                pending_labels.append(labels)
                pending += raster.shape[1]
                flush(force=False)
            flush(force=True)

            self.shards = staged
            self.generation = generation
            self.meta = StoreMeta(
                stored_frames=self.meta.stored_frames,
                num_channels=self.meta.num_channels,
                generated_timesteps=self.meta.generated_timesteps,
                insertion_layer=self.meta.insertion_layer,
                codec_factor=self.meta.codec_factor,
                shard_samples=target,
            )
            self._commit_and_sweep(old_files)
        return len(self.shards)

    def __repr__(self) -> str:
        return (
            f"ReplayStore(root={str(self.root)!r}, shards={self.num_shards}, "
            f"samples={self.num_samples})"
        )
