"""Admission/eviction policies for byte-budgeted replay memory.

The paper builds its replay buffer from a fixed pre-training subset
(Alg. 1 line 7); an embedded deployment instead sees task data *arrive*
and must decide, sample by sample, what stays inside a hard byte budget.
A policy owns exactly that decision: given a new sample's label and the
currently kept labels, return the slot to (over)write or ``None`` to
reject the sample.

All three policies are deterministic given their RNG, so budgeted
streaming builds are reproducible (seeding discipline matches the rest
of the library).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import StoreError

__all__ = [
    "EvictionPolicy",
    "FIFOPolicy",
    "ReservoirPolicy",
    "ClassBalancedPolicy",
    "get_policy",
]


class EvictionPolicy:
    """Slot-assignment strategy for a fixed-capacity sample set."""

    #: Registry/CLI name (subclasses override).
    name = "base"

    def reset(self) -> None:
        """Clear streaming state (a builder calls this once at start)."""

    def admit(
        self,
        label: int,
        kept_labels: Sequence[int],
        capacity: int,
        rng: np.random.Generator,
    ) -> int | None:
        """Pick a slot for the new sample, or ``None`` to reject it.

        ``len(kept_labels)`` appends; anything lower evicts the
        occupant of that slot.
        """
        raise NotImplementedError


class FIFOPolicy(EvictionPolicy):
    """Evict the oldest admitted sample once the budget is full.

    Every arrival is admitted; under heavy streams the buffer degrades
    to "most recent window", which is the baseline the smarter policies
    are judged against.
    """

    name = "fifo"

    def __init__(self):
        self._next = 0

    def reset(self) -> None:
        """Restart the insertion cursor for a fresh build."""
        self._next = 0

    def admit(self, label, kept_labels, capacity, rng) -> int | None:
        """Admit into free slots, then overwrite the oldest slot."""
        if len(kept_labels) < capacity:
            return len(kept_labels)
        slot = self._next
        self._next = (self._next + 1) % capacity
        return slot


class ReservoirPolicy(EvictionPolicy):
    """Vitter reservoir sampling: a uniform sample of the whole stream.

    The ``i``-th arrival is admitted with probability ``capacity / i``,
    replacing a uniformly random slot — so at any point the kept set is
    an unbiased sample of everything seen so far.
    """

    name = "reservoir"

    def __init__(self):
        self._seen = 0

    def reset(self) -> None:
        """Forget the stream position for a fresh build."""
        self._seen = 0

    def admit(self, label, kept_labels, capacity, rng) -> int | None:
        """Vitter reservoir sampling: admit with probability k/seen."""
        self._seen += 1
        if len(kept_labels) < capacity:
            return len(kept_labels)
        slot = int(rng.integers(0, self._seen))
        return slot if slot < capacity else None


class ClassBalancedPolicy(EvictionPolicy):
    """Keep per-class counts as even as the label stream allows.

    A new sample whose class is *not* the (unique) largest evicts a
    random member of the largest class.  Within an already-largest
    class, admission falls back to per-class reservoir sampling so every
    class stays a uniform sample of its own arrivals.  This is the
    policy that preserves the paper's class-stratified replay guarantee
    under streaming arrivals.
    """

    name = "class-balanced"

    def __init__(self):
        self._class_seen: dict[int, int] = {}

    def reset(self) -> None:
        """Clear the per-class arrival counters for a fresh build."""
        self._class_seen = {}

    def admit(self, label, kept_labels, capacity, rng) -> int | None:
        """Per-class reservoir targeting equal slots per class."""
        label = int(label)
        self._class_seen[label] = self._class_seen.get(label, 0) + 1
        if len(kept_labels) < capacity:
            return len(kept_labels)

        counts: dict[int, int] = {}
        for kept in kept_labels:
            counts[int(kept)] = counts.get(int(kept), 0) + 1
        max_count = max(counts.values())
        largest = sorted(c for c, n in counts.items() if n == max_count)

        if counts.get(label, 0) < max_count:
            # Rebalance: push out a random member of the largest class
            # (smallest label id on ties, for determinism).
            victim_class = largest[0]
            positions = [
                i for i, kept in enumerate(kept_labels) if int(kept) == victim_class
            ]
            return positions[int(rng.integers(0, len(positions)))]

        # The class is already (joint-)largest: per-class reservoir.
        slot = int(rng.integers(0, self._class_seen[label]))
        if slot >= counts.get(label, 0):
            return None
        positions = [i for i, kept in enumerate(kept_labels) if int(kept) == label]
        return positions[slot]


_POLICIES = {
    FIFOPolicy.name: FIFOPolicy,
    ReservoirPolicy.name: ReservoirPolicy,
    ClassBalancedPolicy.name: ClassBalancedPolicy,
}


def get_policy(name: str) -> EvictionPolicy:
    """Instantiate a policy by its registry name."""
    if name not in _POLICIES:
        raise StoreError(
            f"unknown eviction policy {name!r}; expected one of {sorted(_POLICIES)}"
        )
    return _POLICIES[name]()
