"""Async shard prefetch: overlap shard decode with the SNN step.

Store-backed training pays a shard decode (disk read + codec) on every
LRU miss, serialised with the training step.  :class:`PrefetchingStream`
wraps a :class:`~repro.replaystore.stream.ReplayStream` and moves that
decode onto a background thread: callers (the
:class:`~repro.data.loaders.DataLoader`, via
:meth:`~repro.replaystore.stream.ConcatReplaySource.prefetch`) advise
which samples the *next* minibatch needs, the worker decodes the missing
shards into the stream's shared LRU while the current batch is training,
and the next ``gather`` finds them already resident.

Determinism: shard decode is pure (lossless codecs, no RNG), the worker
only ever *warms the cache*, and batch assembly stays on the calling
thread in calling order — so training trajectories are bitwise-identical
with prefetch on or off.  Set ``REPRO_PREFETCH=0`` to disable the
background thread everywhere (the wrapper degrades to a synchronous
passthrough).
"""

from __future__ import annotations

import queue
import threading

import numpy as np

from repro import obs
from repro.config import env_switch
from repro.errors import StoreError
from repro.replaystore.stream import ReplayStream

__all__ = ["PrefetchingStream", "prefetch_enabled"]

#: Sentinel telling the worker thread to exit.
_STOP = object()


def prefetch_enabled() -> bool:
    """Whether async shard prefetch is globally enabled.

    Controlled by the ``REPRO_PREFETCH`` environment variable; any of
    ``0``/``false``/``off`` disables the background decode thread (the
    kill switch mirrors ``REPRO_FUSED_KERNELS``).
    """
    return env_switch("REPRO_PREFETCH")


class PrefetchingStream:
    """A :class:`ReplayStream` with a background shard-decode worker.

    Parameters
    ----------
    stream:
        The wrapped replay stream; its LRU cache is the hand-off point
        between the worker and the caller, guarded by one lock.
    queue_shards:
        Bound of the decode request queue.  Requests beyond the bound
        are dropped (prefetch is advisory — a dropped request only means
        the shard decodes synchronously on first touch), so resident
        memory stays ``cache_shards`` decoded shards regardless of how
        aggressively callers advise.
    enabled:
        ``True``/``False`` forces the worker on/off; ``None`` (default)
        defers to :func:`prefetch_enabled`.  Disabled instances are pure
        passthroughs: same API, no thread, zero overhead.

    The wrapper serves the full lazy-source protocol (``shape`` /
    ``gather`` / ``labels`` / iteration), so it drops in anywhere a
    :class:`ReplayStream` does.  A worker exception is captured and
    re-raised as :class:`~repro.errors.StoreError` on the next public
    call — errors never vanish into the background thread.  Use as a
    context manager (or call :meth:`close`) to shut the worker down
    deterministically.
    """

    def __init__(
        self,
        stream: ReplayStream,
        queue_shards: int = 2,
        enabled: bool | None = None,
    ):
        if queue_shards < 1:
            raise StoreError(f"queue_shards must be >= 1, got {queue_shards}")
        self.stream = stream
        self.enabled = prefetch_enabled() if enabled is None else bool(enabled)
        self.queue_shards = int(queue_shards)
        #: Shards decoded by the worker (telemetry; synchronous decodes
        #: appear in ``stream.shard_decodes`` as usual).
        self.prefetched_shards = 0
        self._lock = threading.Lock()
        self._error: BaseException | None = None
        self._closed = False
        self._queue: queue.Queue | None = None
        self._worker: threading.Thread | None = None
        if self.enabled:
            self._queue = queue.Queue(maxsize=self.queue_shards)
            self._worker = threading.Thread(
                target=self._drain, name="replay-prefetch", daemon=True
            )
            self._worker.start()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Worker loop: decode requested shards into the shared LRU."""
        assert self._queue is not None
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            shard_id, enqueued_at = item
            obs.observe("prefetch.wait_seconds", obs.now() - enqueued_at)
            try:
                with self._lock:
                    if shard_id not in self.stream._cache:
                        with obs.span(
                            "prefetch.decode", category="store", shard=shard_id
                        ):
                            self.stream._decoded(int(shard_id))
                        self.prefetched_shards += 1
            except BaseException as error:  # propagate on next public call
                self._error = error
                return

    def _check_error(self) -> None:
        if self._error is not None:
            raise StoreError(
                f"prefetch worker failed: {self._error}"
            ) from self._error

    # ------------------------------------------------------------------
    # Lazy-source protocol (passthrough, lock-guarded)
    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        """Sample count of the wrapped stream."""
        return self.stream.num_samples

    @property
    def timesteps(self) -> int:
        """Frames per served sample (see :attr:`ReplayStream.timesteps`)."""
        return self.stream.timesteps

    @property
    def num_channels(self) -> int:
        """Channel count of the wrapped stream."""
        return self.stream.num_channels

    @property
    def shape(self) -> tuple[int, int, int]:
        """Logical ``[T, n, C]`` shape of the wrapped stream."""
        return self.stream.shape

    @property
    def labels(self) -> np.ndarray:
        """Labels of the wrapped stream (re-raising worker errors)."""
        self._check_error()
        return self.stream.labels

    @property
    def peak_cache_bytes(self) -> int:
        """High-water decoded-shard residency of the wrapped stream."""
        return self.stream.peak_cache_bytes

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Decode the requested samples (see :meth:`ReplayStream.gather`).

        Identical output to the wrapped stream's ``gather`` — prefetch
        only changes *when* shards decode, never what a gather returns.
        """
        self._check_error()
        with self._lock:
            return self.stream.gather(indices)

    def prefetch(self, indices: np.ndarray) -> int:
        """Queue background decodes for the shards holding ``indices``.

        Advisory and non-blocking: already-cached shards are skipped and
        requests beyond the queue bound are dropped.  Returns the number
        of decode requests actually queued.
        """
        self._check_error()
        if not self.enabled or self._closed:
            return 0
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return 0
        shard_of = (
            np.searchsorted(self.stream._bounds, indices, side="right") - 1
        )
        # Snapshot cached status in ONE lock acquisition before queuing
        # anything: the first enqueue wakes the worker, which takes the
        # lock to decode — re-checking per shard after that would stall
        # this (training) thread behind a full shard decode.
        with self._lock:
            missing = [
                int(shard_id)
                for shard_id in np.unique(shard_of)
                if int(shard_id) not in self.stream._cache
            ]
        queued = 0
        assert self._queue is not None
        for shard_id in missing:
            try:
                self._queue.put_nowait((shard_id, obs.now()))
                queued += 1
            except queue.Full:
                obs.count("prefetch.dropped", len(missing) - queued)
                break
        if queued:
            obs.count("prefetch.queued", queued)
        obs.gauge("prefetch.queue_depth", self._queue.qsize())
        return queued

    def __iter__(self):
        """Shard-ordered iteration with one-shard lookahead."""
        self._check_error()
        num_shards = len(self.stream._signature)
        for shard_id in range(num_shards):
            if shard_id + 1 < num_shards:
                start = self.stream._bounds[shard_id + 1]
                self.prefetch(np.asarray([start]))
            self._check_error()
            with self._lock:
                raster = self.stream._decoded(shard_id)
                labels = np.asarray(
                    self.stream.store.shards[shard_id].labels, dtype=np.int64
                )
            yield raster, labels

    def materialize(self) -> np.ndarray:
        """Densify the whole stream (tests/small stores only)."""
        self._check_error()
        with self._lock:
            return self.stream.materialize()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the worker thread; idempotent, never raises.

        After ``close`` the wrapper keeps serving ``gather`` calls
        synchronously (``prefetch`` becomes a no-op), so shutdown order
        relative to the last batch does not matter.
        """
        if self._closed:
            return
        self._closed = True
        worker = self._worker
        if worker is None or not worker.is_alive():
            return
        assert self._queue is not None
        while True:
            try:
                self._queue.put_nowait(_STOP)
                break
            except queue.Full:
                # Worker died with a backlog: drop one request and retry.
                try:
                    self._queue.get_nowait()
                except queue.Empty:
                    pass
                if not worker.is_alive():
                    break
        worker.join()

    def __enter__(self) -> "PrefetchingStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
